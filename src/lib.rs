//! # adapipe — An Adaptive Parallel Pipeline Pattern for Grids
//!
//! A Rust reconstruction of the adaptive parallel pipeline *algorithmic
//! skeleton* of Gonzalez-Velez & Cole (IPDPS 2008): the programmer
//! supplies per-stage functions; the skeleton owns placement on a set of
//! heterogeneous, dynamically loaded processors and **re-maps the
//! running pipeline** as resource availability changes.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`gridsim`] | deterministic discrete-event grid substrate |
//! | [`monitor`] | NWS-style measurement + forecasting |
//! | [`mapper`] | throughput model + mapping optimisers |
//! | [`runtime`] | backend-agnostic adaptive runtime: routing table, adaptation loop, controller, policies, reports |
//! | [`core`] | the skeleton: stages, specs, pipelines, simulation backend |
//! | [`engine`] | threaded backend with synthetic heterogeneity |
//! | [`workloads`] | cost models, imaging & signal pipelines, scenarios |
//!
//! Both execution backends sit under the shared [`runtime`] layer (see
//! `README.md` for the diagram and a "writing a new backend" guide).
//!
//! ## Quickstart
//!
//! ```
//! use adapipe::prelude::*;
//!
//! // A 3-stage pipeline on a 3-node grid, simulated.
//! let grid = testbed_small3();
//! let spec = PipelineSpec::balanced(3, 1.0, 0);
//! let report = sim_run(&grid, &spec, &SimConfig { items: 100, ..SimConfig::default() });
//! assert_eq!(report.completed, 100);
//! ```
//!
//! See `examples/` for runnable programs and `crates/bench` for the
//! experiment reproduction harness.

pub use adapipe_core as core;
pub use adapipe_engine as engine;
pub use adapipe_gridsim as gridsim;
pub use adapipe_mapper as mapper;
pub use adapipe_monitor as monitor;
pub use adapipe_runtime as runtime;
pub use adapipe_workloads as workloads;

/// One glob import for applications: brings in the preludes of every
/// sub-crate.
pub mod prelude {
    pub use adapipe_core::prelude::*;
    pub use adapipe_engine::prelude::*;
    pub use adapipe_gridsim::prelude::*;
    pub use adapipe_mapper::prelude::*;
    pub use adapipe_monitor::prelude::*;
    pub use adapipe_workloads::prelude::*;
}
