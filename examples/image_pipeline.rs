//! Real compute, real threads: the imaging pipeline on the threaded
//! backend of the unified API, with a synthetic load step on one
//! virtual node.
//!
//! Frames pass through blur → Sobel → quantise → checksum with genuine
//! pixel arithmetic; virtual node `v1` loses 90 % of its capacity 0.5 s
//! into the run and the periodic controller re-maps around it — watch
//! it happen live through the `on_remap` hook.
//!
//! Run with: `cargo run --release --example image_pipeline`

use adapipe::prelude::*;
use adapipe::workloads::imaging::{imaging_pipeline, Image};

fn main() {
    let side = 96; // 96×96 frames: a few ms of real kernels each
    let n_frames = 120u64;

    let vnodes = vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1").with_load(LoadModel::step(1.0, 0.10, SimTime::from_secs_f64(0.5))),
        VNodeSpec::free("v2"),
        VNodeSpec::free("v3"),
    ];

    // The unified program: the imaging stages (with their cost
    // metadata), a periodic policy, and a frame feed.
    let pipeline = PipelineBuilder::from_pipeline(imaging_pipeline(side))
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(250),
        })
        .feed(move |i| Image::synthetic(side, side, i))
        .build()
        .expect("a valid pipeline");

    println!(
        "== imaging pipeline on 4 virtual nodes (host rate {:.0} Mspin/s) ==",
        calibrate_host() / 1e6
    );
    println!("processing {n_frames} frames of {side}x{side} px; v1 degrades to 10% at t=0.5s\n");

    let cfg = RunConfig {
        items: n_frames,
        // Put the heavy Sobel stage on the node that is about to
        // degrade, so the controller has something to fix.
        initial_mapping: Some(Mapping::from_assignment(&[
            NodeId(0),
            NodeId(1),
            NodeId(2),
            NodeId(3),
        ])),
        // Live observation: print each re-mapping as it commits.
        hooks: RunHooks::on_remap(|plan| {
            println!(
                "  [live] re-mapped at t={:.2}s: stages {:?} moved",
                plan.at.as_secs_f64(),
                plan.moved,
            );
        }),
        ..RunConfig::default()
    };

    let handle = pipeline
        .run(Backend::Threads(vnodes), cfg)
        .expect("a compatible backend");
    let report = handle.report();

    println!(
        "\ncompleted {} frames in {:.2}s ({:.1} frames/s), mean latency {:.0} ms",
        report.completed,
        report.makespan.as_secs_f64(),
        report.mean_throughput(),
        report.mean_latency.as_secs_f64() * 1000.0,
    );
    println!("final mapping: {}", report.final_mapping);
    for event in handle.adaptations() {
        println!(
            "re-mapped at t={:.2}s: {} -> {} (stages {:?})",
            event.at.as_secs_f64(),
            event.from,
            event.to,
            event.migrated_stages,
        );
    }

    println!("\nthroughput timeline (500 ms buckets):");
    for (t, rate) in report.timeline.series() {
        let bar: String = std::iter::repeat_n('#', (rate / 4.0).round() as usize).collect();
        println!("  t={:>5.2}s {:>6.1} f/s |{bar}", t.as_secs_f64(), rate);
    }

    // Show one output so the kernels demonstrably ran.
    println!("\nchecksum of frame 0: {}", handle.outputs[0]);
}
