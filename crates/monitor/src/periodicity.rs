//! Oscillation detection via autocorrelation.
//!
//! Ablation A2 identified periodic background load near the control
//! period as the adversarial regime for forecast-driven adaptation: the
//! NWS family contains no periodic predictor, so its forecasts alias.
//! This module provides the diagnostic — a windowed autocorrelation scan
//! that flags a dominant oscillation period in an availability series —
//! which deployments can use to lengthen the control period or enable
//! verdict confirmation when a node's load is provably periodic.

use std::collections::VecDeque;

/// Normalised autocorrelation of `values` at the given `lag`
/// (`1` = perfectly periodic at this lag, `0` = unrelated).
///
/// Returns `None` when the series is too short (needs at least
/// `2 × lag` samples) or has zero variance.
pub fn autocorrelation(values: &[f64], lag: usize) -> Option<f64> {
    if lag == 0 || values.len() < 2 * lag {
        return None;
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let var: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
    if var <= 1e-12 {
        return None;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (values[i] - mean) * (values[i + lag] - mean))
        .sum();
    Some(cov / var)
}

/// Scans lags `1..=max_lag` and returns the lag with the highest
/// autocorrelation if it exceeds `threshold` — the dominant period in
/// sample units.
pub fn dominant_period(values: &[f64], max_lag: usize, threshold: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for lag in 1..=max_lag {
        if let Some(ac) = autocorrelation(values, lag) {
            if ac >= threshold && best.is_none_or(|(_, b)| ac > b) {
                best = Some((lag, ac));
            }
        }
    }
    best.map(|(lag, _)| lag)
}

/// A bounded-window oscillation detector for one monitored quantity.
#[derive(Clone, Debug)]
pub struct PeriodicityDetector {
    window: VecDeque<f64>,
    capacity: usize,
    threshold: f64,
}

impl PeriodicityDetector {
    /// Creates a detector over the last `capacity` samples, flagging
    /// periods whose autocorrelation reaches `threshold` (a sensible
    /// default is `0.5`).
    ///
    /// # Panics
    /// Panics if `capacity < 4` or the threshold is outside `(0, 1]`.
    pub fn new(capacity: usize, threshold: f64) -> Self {
        assert!(capacity >= 4, "need at least 4 samples to detect a period");
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0,1]"
        );
        PeriodicityDetector {
            window: VecDeque::with_capacity(capacity),
            capacity,
            threshold,
        }
    }

    /// Feeds one sample.
    pub fn observe(&mut self, value: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }

    /// The dominant oscillation period in sample units, if any. Lags up
    /// to half the window are considered (longer ones cannot repeat
    /// twice inside it).
    pub fn period(&self) -> Option<usize> {
        let values: Vec<f64> = self.window.iter().copied().collect();
        dominant_period(&values, values.len() / 2, self.threshold)
    }

    /// True if the series currently looks periodic.
    pub fn is_oscillating(&self) -> bool {
        self.period().is_some()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True if no samples retained.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(period: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if (i / (period / 2)).is_multiple_of(2) {
                    1.0
                } else {
                    0.1
                }
            })
            .collect()
    }

    #[test]
    fn square_wave_detected_at_its_period() {
        let series = square(8, 64);
        let detected = dominant_period(&series, 16, 0.5).expect("period found");
        assert_eq!(detected, 8);
    }

    #[test]
    fn sinusoid_detected_at_its_period() {
        let series: Vec<f64> = (0..120)
            .map(|i| 0.5 + 0.4 * (std::f64::consts::TAU * i as f64 / 12.0).sin())
            .collect();
        let detected = dominant_period(&series, 30, 0.5).expect("period found");
        assert_eq!(detected, 12);
    }

    #[test]
    fn constant_series_has_no_period() {
        let series = vec![0.7; 64];
        assert_eq!(dominant_period(&series, 16, 0.5), None);
        assert_eq!(autocorrelation(&series, 4), None, "zero variance");
    }

    #[test]
    fn white_noise_has_no_strong_period() {
        // Deterministic pseudo-noise via splitmix-style hashing.
        let series: Vec<f64> = (0..256u64)
            .map(|i| {
                let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93;
                x ^= x >> 29;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        assert_eq!(dominant_period(&series, 32, 0.5), None);
    }

    #[test]
    fn short_series_yields_none() {
        assert_eq!(autocorrelation(&[1.0, 0.0, 1.0], 2), None);
        assert_eq!(autocorrelation(&[1.0, 0.0], 0), None);
    }

    #[test]
    fn detector_tracks_a_live_stream() {
        let mut d = PeriodicityDetector::new(64, 0.5);
        assert!(!d.is_oscillating());
        for v in square(8, 64) {
            d.observe(v);
        }
        assert_eq!(d.period(), Some(8));
        assert!(d.is_oscillating());
        // Flood with a constant: oscillation flag must clear.
        for _ in 0..64 {
            d.observe(0.7);
        }
        assert!(!d.is_oscillating());
        assert_eq!(d.len(), 64);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let _ = PeriodicityDetector::new(8, 0.0);
    }
}
