//! Pipeline specifications: the metadata the adaptive runtime plans with.
//!
//! A [`PipelineSpec`] describes each stage's *cost shape* — expected work
//! per item, output size, migratable state size, statefulness — without
//! reference to any particular engine. Both the simulated engine and the
//! threaded engine consume the same spec; the mapper sees it through
//! [`PipelineSpec::profile`].

use adapipe_gridsim::node::NodeId;
use adapipe_gridsim::rng::{mix, unit_f64};
use adapipe_mapper::model::PipelineProfile;

pub use adapipe_mapper::graph::{
    DagGraphBuilder, Feed, GraphError, Next, Segment, StageGraph, StageGraphBuilder,
};
pub use adapipe_runtime::session::ResiliencePolicy;
pub use adapipe_state::StateAccess;

/// Per-item work drawn for `(stage, item)` pairs.
///
/// Implementations must be deterministic functions of the item index so
/// simulation runs replay exactly; `mean` feeds the analytic model.
pub trait WorkModel: Send + Sync {
    /// Work units stage processing of item `item` costs.
    fn draw(&self, item: u64) -> f64;
    /// Expected work units per item.
    fn mean(&self) -> f64;
    /// An owned copy of this model, so specs (and therefore whole
    /// pipelines) are cloneable — streaming sessions own their spec.
    fn clone_box(&self) -> Box<dyn WorkModel>;
}

impl Clone for Box<dyn WorkModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Every item costs exactly `work` units.
#[derive(Clone, Copy, Debug)]
pub struct ConstantWork(pub f64);

impl WorkModel for ConstantWork {
    fn draw(&self, _item: u64) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
    fn clone_box(&self) -> Box<dyn WorkModel> {
        Box::new(*self)
    }
}

/// Work uniform in `[mean·(1−spread), mean·(1+spread)]`, deterministic
/// per `(seed, item)`.
#[derive(Clone, Copy, Debug)]
pub struct UniformWork {
    mean: f64,
    spread: f64,
    seed: u64,
}

impl UniformWork {
    /// Creates the model; `spread ∈ [0, 1)`.
    ///
    /// # Panics
    /// Panics if `mean` is not positive or `spread` out of range.
    pub fn new(mean: f64, spread: f64, seed: u64) -> Self {
        assert!(mean > 0.0, "mean work must be positive");
        assert!((0.0..1.0).contains(&spread), "spread must be in [0,1)");
        UniformWork { mean, spread, seed }
    }
}

impl WorkModel for UniformWork {
    fn draw(&self, item: u64) -> f64 {
        let u = unit_f64(mix(self.seed, item));
        self.mean * (1.0 + self.spread * (2.0 * u - 1.0))
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn clone_box(&self) -> Box<dyn WorkModel> {
        Box::new(*self)
    }
}

/// Cost metadata for one stage.
#[derive(Clone)]
pub struct StageSpec {
    /// Stage name for reports.
    pub name: String,
    /// Per-item work model.
    pub work: Box<dyn WorkModel>,
    /// Bytes each output item carries to the next stage (or the sink).
    pub out_bytes: u64,
    /// Bytes of internal state a migration must move (0 for stateless).
    pub state_bytes: u64,
    /// True if the stage keeps no per-item state and may be replicated.
    /// Kept in lockstep with `state`: true iff `state.is_stateless()`.
    pub stateless: bool,
    /// Declared replica-width cap for the planner (`usize::MAX` leaves
    /// the width to the planner's global `max_width`; folded together
    /// with the state pattern's own bound by [`StageSpec::replica_cap`]).
    pub max_replicas: usize,
    /// Declared state-access pattern (Danelutto/Torquati taxonomy):
    /// decides replicability, shard routing, and whether the state can
    /// migrate off a dying node instead of aborting the run.
    pub state: StateAccess,
    /// Per-item failure handling (retries, timeout, dead-letter,
    /// trace); the default is the historical fail-fast behaviour.
    pub resilience: ResiliencePolicy,
}

impl StageSpec {
    /// A stateless stage with constant work.
    pub fn balanced(name: impl Into<String>, work: f64, out_bytes: u64) -> Self {
        StageSpec {
            name: name.into(),
            work: Box::new(ConstantWork(work)),
            out_bytes,
            state_bytes: 0,
            stateless: true,
            max_replicas: usize::MAX,
            state: StateAccess::Stateless,
            resilience: ResiliencePolicy::default(),
        }
    }

    /// Declares this stage's failure handling: retries with backoff,
    /// per-item timeout, dead-letter diversion, per-hop tracing.
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// Marks the stage stateful with `state_bytes` of state the runtime
    /// cannot inspect (*opaque* closure state: pinned to one node, lost
    /// with it). Prefer the declared patterns — [`Self::with_keyed_state`],
    /// [`Self::with_accumulator_state`], [`Self::with_exclusive_state`] —
    /// which replicate and/or migrate instead.
    pub fn with_state(mut self, state_bytes: u64) -> Self {
        self.stateless = false;
        self.state_bytes = state_bytes;
        self.state = StateAccess::Opaque;
        self
    }

    /// Declares keyed state: `state_bytes` of per-key state partitioned
    /// into `shards` independent slices by key hash. The stage may
    /// replicate up to `shards` ways and its shards migrate when their
    /// owner changes.
    pub fn with_keyed_state(mut self, shards: usize, state_bytes: u64) -> Self {
        assert!(shards > 0, "keyed state needs at least one shard");
        self.stateless = false;
        self.state_bytes = state_bytes;
        self.state = StateAccess::Keyed { shards };
        self
    }

    /// Declares accumulator state: `state_bytes` of one logical value
    /// with a commutative merge. Replicas keep partials; a vacating
    /// replica's partial is absorbed by a survivor.
    pub fn with_accumulator_state(mut self, state_bytes: u64) -> Self {
        self.stateless = false;
        self.state_bytes = state_bytes;
        self.state = StateAccess::Accumulator;
        self
    }

    /// Declares exclusive state: serializable but indivisible. Exactly
    /// one live instance, which can still snapshot and move off a dying
    /// node instead of aborting the run.
    pub fn with_exclusive_state(mut self, state_bytes: u64) -> Self {
        self.stateless = false;
        self.state_bytes = state_bytes;
        self.state = StateAccess::Exclusive;
        self
    }

    /// The planner-facing replica bound: the declared `max_replicas`
    /// preference folded with what the state pattern supports.
    pub fn replica_cap(&self) -> usize {
        // A zero declaration passes through unclamped so the unified
        // builder can reject it as a typed error at `build()` (which
        // also rejects an explicit width on a single-instance pattern —
        // it validates the raw `max_replicas` declaration, not this
        // planner-facing clamp).
        if self.max_replicas == 0 {
            return 0;
        }
        self.state.effective_cap(self.max_replicas)
    }

    /// Declares how wide the runtime may legally replicate this stage
    /// (Danelutto-style state-access declaration: the programmer states
    /// the replication property, the planner exploits it). The bound is
    /// validated by the unified builder — zero is rejected at `build()`.
    pub fn with_replicas(mut self, max_replicas: usize) -> Self {
        self.max_replicas = max_replicas;
        self
    }

    /// Replaces the work model.
    pub fn with_work(mut self, work: Box<dyn WorkModel>) -> Self {
        self.work = work;
        self
    }
}

impl std::fmt::Debug for StageSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageSpec")
            .field("name", &self.name)
            .field("mean_work", &self.work.mean())
            .field("out_bytes", &self.out_bytes)
            .field("state_bytes", &self.state_bytes)
            .field("stateless", &self.stateless)
            .field("max_replicas", &self.max_replicas)
            .field("state", &self.state)
            .field("resilience", &self.resilience)
            .finish()
    }
}

/// A complete engine-agnostic pipeline description.
#[derive(Clone, Debug)]
pub struct PipelineSpec {
    /// The stages in *flattened* order (chain stages in series; inside a
    /// parallel block: branch 0's stages, branch 1's, …, then the merge
    /// stage).
    pub stages: Vec<StageSpec>,
    /// The series-parallel shape over the flattened stage ids. A linear
    /// pipeline carries [`StageGraph::linear`] and behaves exactly as
    /// before the graph existed.
    pub graph: StageGraph,
    /// Bytes each input item carries into the entry stage(s).
    pub input_bytes: u64,
    /// Node where inputs originate (`None`: materialise at the entry
    /// host for free).
    pub source: Option<NodeId>,
    /// Node where outputs must be delivered (`None`: vanish at the last
    /// stage's host for free).
    pub sink: Option<NodeId>,
}

impl PipelineSpec {
    /// Builds a linear spec from stages with no explicit source/sink
    /// placement.
    ///
    /// # Panics
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<StageSpec>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        let graph = StageGraph::linear(stages.len());
        PipelineSpec {
            stages,
            graph,
            input_bytes: 0,
            source: None,
            sink: None,
        }
    }

    /// Builds a spec whose stages (in flattened order) follow an
    /// explicit series-parallel `graph` — branch spans fan out in
    /// parallel and rejoin at their merge stage.
    ///
    /// # Panics
    /// Panics if `stages` is empty or `graph` does not tile it.
    pub fn with_graph(stages: Vec<StageSpec>, graph: StageGraph) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        graph.validate(stages.len());
        PipelineSpec {
            stages,
            graph,
            input_bytes: 0,
            source: None,
            sink: None,
        }
    }

    /// A pipeline of `n` identical stateless stages — the balanced
    /// synthetic workload.
    pub fn balanced(n: usize, work: f64, bytes: u64) -> Self {
        assert!(n > 0);
        let mut spec = PipelineSpec::new(
            (0..n)
                .map(|i| StageSpec::balanced(format!("stage{i}"), work, bytes))
                .collect(),
        );
        spec.input_bytes = bytes;
        spec
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the spec has no stages (not constructible).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Per-item work drawn for `(stage, item)`.
    pub fn draw_work(&self, stage: usize, item: u64) -> f64 {
        self.stages[stage].work.draw(item)
    }

    /// The mapper's view: mean work, boundary bytes, replicability.
    ///
    /// The profile's `stateless` flag carries the planner-relevant
    /// property — *may this stage run more than one live instance* —
    /// so declared keyed and accumulator stages replicate even though
    /// they hold state; only exclusive and opaque state pins to one
    /// host. Replica caps fold each stage's declared `max_replicas`
    /// with its state pattern's own bound ([`StageSpec::replica_cap`]):
    /// a keyed stage never runs wider than its shard count, and
    /// single-instance patterns clamp to one. A declared bound of zero
    /// passes through — the unified builder rejects it at `build()`
    /// with a typed error, and backend-level callers hit
    /// `PipelineProfile::validate`'s assert.
    pub fn profile(&self) -> PipelineProfile {
        let ns = self.stages.len();
        let mut boundary_bytes = Vec::with_capacity(ns + 1);
        boundary_bytes.push(self.input_bytes);
        for s in &self.stages {
            boundary_bytes.push(s.out_bytes);
        }
        PipelineProfile {
            stage_work: self.stages.iter().map(|s| s.work.mean()).collect(),
            boundary_bytes,
            graph: self.graph.clone(),
            stateless: self.stages.iter().map(|s| s.state.replicable()).collect(),
            replica_cap: self.stages.iter().map(|s| s.replica_cap()).collect(),
            source: self.source,
            sink: self.sink,
            // Conservative default: the simulator routes every boundary
            // through its link model, self links included. The threaded
            // engine — the one backend that fuses co-located chains —
            // flips this on before planning.
            fuses_colocated: false,
        }
    }

    /// Mean total work per item.
    pub fn total_mean_work(&self) -> f64 {
        self.stages.iter().map(|s| s.work.mean()).sum()
    }

    /// Stage names in order.
    pub fn names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_work_is_flat() {
        let w = ConstantWork(2.5);
        assert_eq!(w.draw(0), 2.5);
        assert_eq!(w.draw(999), 2.5);
        assert_eq!(w.mean(), 2.5);
    }

    #[test]
    fn uniform_work_is_bounded_and_deterministic() {
        let w = UniformWork::new(2.0, 0.5, 7);
        let w2 = UniformWork::new(2.0, 0.5, 7);
        for item in 0..1000 {
            let v = w.draw(item);
            assert!((1.0..=3.0).contains(&v), "v={v}");
            assert_eq!(v, w2.draw(item));
        }
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|i| w.draw(i)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn balanced_spec_profile_round_trips() {
        let spec = PipelineSpec::balanced(3, 1.5, 100);
        let profile = spec.profile();
        profile.validate();
        assert_eq!(profile.stage_work, vec![1.5, 1.5, 1.5]);
        assert_eq!(profile.boundary_bytes, vec![100; 4]);
        assert!(profile.stateless.iter().all(|&s| s));
        assert_eq!(spec.total_mean_work(), 4.5);
    }

    #[test]
    fn with_state_marks_stateful() {
        let s = StageSpec::balanced("acc", 1.0, 10).with_state(4096);
        assert!(!s.stateless);
        assert_eq!(s.state_bytes, 4096);
        let spec = PipelineSpec::new(vec![s]);
        assert_eq!(spec.profile().stateless, vec![false]);
    }

    #[test]
    fn replica_bounds_flow_into_the_profile() {
        let spec = PipelineSpec::new(vec![
            StageSpec::balanced("wide", 1.0, 0).with_replicas(3),
            StageSpec::balanced("free", 1.0, 0),
            StageSpec::balanced("acc", 1.0, 0)
                .with_state(8)
                .with_replicas(5),
        ]);
        let profile = spec.profile();
        profile.validate();
        // Stateful stages are pinned to width 1 regardless of the bound.
        assert_eq!(profile.replica_cap, vec![3, usize::MAX, 1]);
    }

    #[test]
    fn declared_state_patterns_flow_into_the_profile() {
        let spec = PipelineSpec::new(vec![
            StageSpec::balanced("sessions", 1.0, 0).with_keyed_state(4, 4096),
            StageSpec::balanced("stats", 1.0, 0).with_accumulator_state(64),
            StageSpec::balanced("ledger", 1.0, 0).with_exclusive_state(256),
            StageSpec::balanced("legacy", 1.0, 0).with_state(8),
        ]);
        let profile = spec.profile();
        profile.validate();
        // Keyed and accumulator stages are replicable despite state;
        // exclusive and opaque state pins to one instance.
        assert_eq!(profile.stateless, vec![true, true, false, false]);
        assert_eq!(profile.replica_cap, vec![4, usize::MAX, 1, 1]);
        assert_eq!(spec.stages[0].state, StateAccess::Keyed { shards: 4 });
        assert!(spec.stages[0].state.migratable());
        assert!(!spec.stages[3].state.migratable());
    }

    #[test]
    fn keyed_cap_folds_with_declared_replicas() {
        let s = StageSpec::balanced("k", 1.0, 0)
            .with_keyed_state(8, 0)
            .with_replicas(3);
        assert_eq!(s.replica_cap(), 3);
        let s = StageSpec::balanced("k", 1.0, 0)
            .with_replicas(0)
            .with_keyed_state(8, 0);
        assert_eq!(s.replica_cap(), 0, "zero passes through for build()");
    }

    #[test]
    fn branched_spec_profile_carries_the_graph() {
        let graph = StageGraph::builder().stages(1).split(&[1, 1]).build();
        let spec = PipelineSpec::with_graph(
            vec![
                StageSpec::balanced("pre", 1.0, 10),
                StageSpec::balanced("a", 2.0, 4),
                StageSpec::balanced("b", 3.0, 4),
                StageSpec::balanced("join", 0.5, 8),
            ],
            graph.clone(),
        );
        let profile = spec.profile();
        profile.validate();
        assert_eq!(profile.graph, graph);
        assert!(!profile.graph.is_linear());
        assert_eq!(profile.boundary_bytes, vec![0, 10, 4, 4, 8]);
    }

    #[test]
    #[should_panic(expected = "graph covers")]
    fn mismatched_graph_is_rejected() {
        let _ = PipelineSpec::with_graph(
            vec![StageSpec::balanced("only", 1.0, 0)],
            StageGraph::linear(2),
        );
    }

    #[test]
    fn names_report_in_order() {
        let spec = PipelineSpec::new(vec![
            StageSpec::balanced("a", 1.0, 0),
            StageSpec::balanced("b", 1.0, 0),
        ]);
        assert_eq!(spec.names(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_spec_panics() {
        let _ = PipelineSpec::new(vec![]);
    }
}
