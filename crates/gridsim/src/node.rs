//! Grid nodes: heterogeneous processors with time-varying availability.

use crate::load::LoadModel;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Identifier of a node within a [`crate::grid::GridSpec`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The node's index in its grid.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Static description of one grid node.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Human-readable name, e.g. `"edi-03"`.
    pub name: String,
    /// Nominal speed in work units per second at availability 1. A node
    /// twice as fast as the reference executes the same stage in half the
    /// time.
    pub speed: f64,
    /// Number of independent execution contexts (cores). A node can run
    /// this many tasks concurrently, each at full effective rate.
    pub cores: u32,
}

impl NodeSpec {
    /// Convenience constructor with validation.
    ///
    /// # Panics
    /// Panics if `speed` is not strictly positive or `cores` is zero.
    pub fn new(name: impl Into<String>, speed: f64, cores: u32) -> Self {
        assert!(
            speed > 0.0 && speed.is_finite(),
            "node speed must be positive"
        );
        assert!(cores >= 1, "node needs at least one core");
        NodeSpec {
            name: name.into(),
            speed,
            cores,
        }
    }
}

/// A node instance: static spec plus its availability model.
#[derive(Clone, Debug)]
pub struct Node {
    /// Static description.
    pub spec: NodeSpec,
    /// Availability as a function of simulated time.
    pub load: LoadModel,
}

impl Node {
    /// Builds a node from its spec and load model.
    pub fn new(spec: NodeSpec, load: LoadModel) -> Self {
        Node { spec, load }
    }

    /// Effective processing rate (work units per second) at time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.spec.speed * self.load.availability(t)
    }

    /// The instant at which `work` units started at `start` complete on a
    /// dedicated core of this node, integrating the effective rate across
    /// availability breakpoints exactly.
    ///
    /// Returns [`SimTime::MAX`] if the work can never complete (the node
    /// is permanently unavailable from some point on).
    pub fn completion_time(&self, start: SimTime, work: f64) -> SimTime {
        assert!(work >= 0.0 && work.is_finite(), "work must be non-negative");
        if work == 0.0 {
            return start;
        }
        let mut t = start;
        let mut remaining = work;
        loop {
            let rate = self.rate_at(t);
            let next = self.load.next_breakpoint(t);
            match next {
                Some(bp) => {
                    let span = (bp - t).as_secs_f64();
                    let can_do = rate * span;
                    if can_do >= remaining {
                        // Completes within this segment.
                        return t + SimDuration::from_secs_f64(remaining / rate);
                    }
                    remaining -= can_do;
                    t = bp;
                }
                None => {
                    if rate <= 0.0 {
                        return SimTime::MAX;
                    }
                    return t + SimDuration::from_secs_f64(remaining / rate);
                }
            }
        }
    }

    /// Work accomplished on a dedicated core between `from` and `to`.
    /// Inverse of [`Node::completion_time`]; used by migration logic to
    /// compute residual work of a preempted task.
    pub fn work_done(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to >= from, "interval must be forward in time");
        if to == from {
            return 0.0;
        }
        let mut t = from;
        let mut acc = 0.0;
        while t < to {
            let rate = self.rate_at(t);
            let seg_end = match self.load.next_breakpoint(t) {
                Some(bp) if bp < to => bp,
                _ => to,
            };
            acc += rate * (seg_end - t).as_secs_f64();
            t = seg_end;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn completion_on_free_node_is_work_over_speed() {
        let n = Node::new(NodeSpec::new("a", 4.0, 1), LoadModel::free());
        let done = n.completion_time(secs(10.0), 8.0);
        assert!((done.as_secs_f64() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_completes_immediately() {
        let n = Node::new(NodeSpec::new("a", 1.0, 1), LoadModel::free());
        assert_eq!(n.completion_time(secs(3.0), 0.0), secs(3.0));
    }

    #[test]
    fn completion_integrates_across_step() {
        // Speed 1; availability 1.0 until t=5, then 0.5. 8 units of work
        // started at t=0: 5 done by t=5, remaining 3 at rate 0.5 → 6s more.
        let n = Node::new(
            NodeSpec::new("a", 1.0, 1),
            LoadModel::step(1.0, 0.5, secs(5.0)),
        );
        let done = n.completion_time(secs(0.0), 8.0);
        assert!((done.as_secs_f64() - 11.0).abs() < 1e-6, "done={done}");
    }

    #[test]
    fn completion_across_square_wave_accumulates_only_high_phases() {
        // hi=1 for 1s, lo=0 for 1s, speed 1: 3 units need 3 high phases.
        let n = Node::new(
            NodeSpec::new("a", 1.0, 1),
            LoadModel::square_wave(1.0, 0.0, SimDuration::from_secs(2), 0.5, SimDuration::ZERO),
        );
        let done = n.completion_time(secs(0.0), 3.0);
        assert!((done.as_secs_f64() - 5.0).abs() < 1e-6, "done={done}");
    }

    #[test]
    fn permanently_dead_node_never_completes() {
        let n = Node::new(NodeSpec::new("a", 1.0, 1), LoadModel::constant(0.0));
        assert_eq!(n.completion_time(secs(0.0), 1.0), SimTime::MAX);
    }

    #[test]
    fn outage_then_recovery_completes_after_outage() {
        let n = Node::new(
            NodeSpec::new("a", 1.0, 1),
            LoadModel::free().with_outages(&[(secs(1.0), secs(4.0))]),
        );
        // 2 units: 1 before the outage, 1 after it ends at t=4.
        let done = n.completion_time(secs(0.0), 2.0);
        assert!((done.as_secs_f64() - 5.0).abs() < 1e-6, "done={done}");
    }

    #[test]
    fn work_done_is_inverse_of_completion() {
        let n = Node::new(
            NodeSpec::new("a", 2.0, 1),
            LoadModel::step(1.0, 0.25, secs(3.0)),
        );
        let work = 10.0;
        let done = n.completion_time(secs(0.0), work);
        let measured = n.work_done(secs(0.0), done);
        assert!((measured - work).abs() < 1e-6, "measured={measured}");
    }

    #[test]
    fn rate_scales_with_speed_and_availability() {
        let n = Node::new(NodeSpec::new("a", 3.0, 2), LoadModel::constant(0.5));
        assert!((n.rate_at(secs(0.0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn non_positive_speed_rejected() {
        let _ = NodeSpec::new("bad", 0.0, 1);
    }
}
