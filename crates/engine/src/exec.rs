//! The threaded execution engine.
//!
//! One worker thread per virtual node; items travel in type-erased
//! *batched envelopes* (up to `EngineConfig::batch_size` items each)
//! through per-worker inboxes. Routing is lock-free on the hot path:
//! senders route each batch against an immutable [`RoutingSnapshot`]
//! cached per thread and revalidated with one atomic epoch load — the
//! controller re-maps a *running* pipeline by publishing a new snapshot
//! (never by stalling readers behind a lock). Every envelope carries
//! the epoch it was routed under; a worker receiving an envelope for a
//! stage it no longer hosts re-homes it to the stage's current hosts —
//! the same drain-and-forward semantics the simulator models, with the
//! epoch stamp as the staleness proof (a current-epoch envelope always
//! lands on a current host).
//!
//! Replicated stateless stages form a *work-stealing pool*: each worker
//! pulls from its own inbox, and when it runs dry it scans the tail of
//! its siblings' inboxes for stealable envelopes (stateless stage, this
//! worker is a current co-host, current epoch) instead of going to
//! sleep. A sender whose destination inbox is backing up additionally
//! wakes one idle co-host, so a hot replica sheds load without waiting
//! for the controller to rebalance.
//!
//! This module is the *threaded backend* of the shared adaptive
//! runtime: routing goes through `adapipe-runtime`'s [`RoutingTable`],
//! and sensing/planning/re-mapping through its [`AdaptationLoop`] — the
//! identical code the simulator runs (including the realized-throughput
//! regret guard). What lives here is only what is physically threaded:
//! workers, channels, the stage depot, and the re-mapping *commit*
//! (telling vacated hosts to relinquish their stage instances).
//!
//! ## Streaming sessions and backpressure
//!
//! The primary entry point is [`spawn`], which starts the workers and
//! returns a live [`EngineSession`]: the caller pushes items while the
//! pipeline runs, pulls outputs as they complete, and finishes with a
//! graceful [`EngineSession::drain`] or an [`EngineSession::abort`].
//! The batch entry points ([`execute`], [`execute_fed`]) are thin
//! wrappers — spawn, feed the arrival schedule, drain.
//!
//! With `EngineConfig::queue_capacity` set, the session enforces a
//! bounded-queue discipline: the total number of in-flight items is
//! capped at `capacity × (stages + 1)` — one bounded buffer per stage
//! boundary, source and sink boundaries included — and
//! [`EngineSession::push`] blocks until a completion frees a slot. The
//! bound is enforced end-to-end with a credit counter rather than with
//! per-channel blocking sends: stages may be *coalesced* on one worker,
//! and with blocking channel sends two workers hosting interleaved
//! stages can block sending to each other's full inboxes — a classic
//! pipeline deadlock. A worker therefore never blocks; only the source
//! does, which is exactly where backpressure belongs, and every
//! inter-stage queue's occupancy is still bounded by the same total.
//!
//! Workers block on their inbox (`recv`) and are woken by messages
//! only — work envelopes, depot hand-over notifications, and an
//! explicit shutdown sentinel message at teardown. There is no
//! polling timeout and no idle busy-wake.
//!
//! Stage instances live in a depot: stateless stages are replicated from
//! a prototype on first use per worker; stateful stages exist exactly
//! once and physically move between workers on migration (the old host
//! deposits the instance when it processes the controller's
//! `Relinquish`, then notifies the new hosts, which buffer items
//! meanwhile).
//!
//! ## Multi-tenant pools
//!
//! The worker threads belong to a [`Pool`], not to a session: any
//! number of concurrent sessions (heterogeneous stage graphs) attach to
//! one pool with [`attach`], each keeping its own typed push/pull API,
//! routing table, adaptation loop, collector, credit gate, and
//! exactly-once replay isolation. Worker inboxes hold one weighted-fair
//! *lane* per tenant (start-time fair queueing over item counts), so a
//! spiking tenant's backlog cannot starve a steady co-tenant; the
//! cluster arbiter moves capacity between tenants by setting shares
//! ([`TenantHandle::set_share`]), which reweights both lane service and
//! each tenant's planner view of the pool. Node health is pool-wide
//! (one tenant's fault tracker marking a node down excludes it for
//! everyone), while replay, eviction, and fatal teardown stay strictly
//! tenant-scoped. [`spawn`] is the degenerate cluster-of-one: it
//! launches a private pool and shuts it down at drain.
//!
//! Ordering: with `preserve_order` (default) outputs are resequenced by
//! item index. During a migration window a *stateful* stage may observe
//! items slightly out of sequence order (items forwarded from the old
//! host race items routed directly to the new one) — the same asynchrony
//! a real grid deployment exhibits; applications needing strict
//! per-stage sequencing should use stateless stages plus a fold at the
//! sink.

use crate::vnode::VNodeSpec;
use adapipe_core::payload::Payload;
use adapipe_core::pipeline::Pipeline;
use adapipe_core::spec::{Next, PipelineSpec};
use adapipe_core::stage::{quiesce, BoxedItem, DynStage, FanOutFn, KeyFn, StageError};
use adapipe_gridsim::fault::FaultPlan;
use adapipe_gridsim::net::{LinkSpec, Topology};
use adapipe_gridsim::node::NodeId;
use adapipe_gridsim::time::{SimDuration, SimTime};
use adapipe_mapper::mapping::Mapping;
use adapipe_runtime::adapt::{AdaptationLoop, RuntimeConfig};
use adapipe_runtime::arrivals::ArrivalProcess;
use adapipe_runtime::backend::{ExecutionBackend, RemapPlan};
use adapipe_runtime::controller::ControllerConfig;
use adapipe_runtime::policy::Policy;
use adapipe_runtime::report::{AdaptationEvent, DeadLetter, ReportBuilder, RunReport};
use adapipe_runtime::routing::{RoutingSnapshot, RoutingTable};
use adapipe_runtime::session::{RunError, RunEvent, RunHooks, SessionControl, SessionId, TryNext};
use adapipe_state::{shard_of, StateAccess, StateSnapshot};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One depot slot: a quiesced stage instance parked for its (possibly
/// new) owner to collect — `None` while the instance is live on a host.
type DepotSlot = Mutex<Option<Box<dyn DynStage>>>;

/// What the adaptation thread hands back at teardown: committed
/// adaptation events, planning cycles, migrations, and declared state
/// bytes moved.
type AdaptationOutcome = (Vec<AdaptationEvent>, u64, u64, u64);

/// Threaded-engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The virtual nodes (one worker thread each).
    pub vnodes: Vec<VNodeSpec>,
    /// Adaptation policy (intervals are interpreted as wall time).
    pub policy: Policy,
    /// Controller tunables.
    pub controller: ControllerConfig,
    /// Launch mapping; `None` plans from availability at start.
    pub initial_mapping: Option<Mapping>,
    /// Resequence outputs by item index (the `Pipeline1for1` contract).
    pub preserve_order: bool,
    /// Arrival process pacing the batch entry points against the wall
    /// clock (the same backend-independent schedule the simulator
    /// materialises as events). Sessions ignore it — a pushed item
    /// arrives when the caller pushes it.
    pub arrivals: ArrivalProcess,
    /// Legacy input pacing in items per second; when set it overrides
    /// `arrivals` with `ArrivalProcess::Uniform` at this rate.
    pub pacing_rate: Option<f64>,
    /// Topology used for *planning* (the box itself has uniform cheap
    /// links); `None` = uniform local links.
    pub topology: Option<Topology>,
    /// Relative availability observation noise.
    pub observation_noise: f64,
    /// Noise stream seed.
    pub noise_seed: u64,
    /// Timeline bucket width.
    pub timeline_bucket: SimDuration,
    /// Emulate network cost on stage boundaries: before handing an item
    /// to a *different* vnode, the sending worker sleeps the planning
    /// topology's transfer time for the boundary's declared bytes
    /// (NIC-serialisation semantics). Off by default: a single box has
    /// no real network, and the planner then treats links as free.
    pub emulate_links: bool,
    /// Live observation callbacks (invoked on the adaptation thread).
    pub hooks: RunHooks,
    /// Per-stage-boundary queue bound: caps total in-flight items at
    /// `capacity × (stages + 1)` so `push()` blocks under backpressure.
    /// `None` = unbounded (the legacy batch behaviour). Must be ≥ 1.
    pub queue_capacity: Option<usize>,
    /// Envelope batch granularity: the session coalesces up to this
    /// many pushed items into one routed envelope, and stage exits ship
    /// their outputs in like-sized batches, amortising channel-send,
    /// routing, and credit overhead. `1` (the default) reproduces the
    /// per-item wire behaviour exactly; the credit gate always accounts
    /// per *item* regardless. Buffered input is flushed on
    /// [`EngineSession::close`], on any output-side call, and whenever
    /// the credit gate would block.
    pub batch_size: usize,
    /// In-flight steering flags shared with a live session.
    pub control: SessionControl,
    /// Scheduled faults, with times read as wall-clock offsets from
    /// engine start. Slowdowns and outages rewrite the named vnodes'
    /// load schedules; outages and crashes additionally take the vnode
    /// *down*: its worker stops serving (in-flight items are re-dealt
    /// to live replicas or parked until the forced re-map rescues
    /// them), routing excludes it, and `RunEvent::NodeDown` fires.
    pub faults: FaultPlan,
}

impl EngineConfig {
    /// A sensible default over the given virtual nodes.
    pub fn new(vnodes: Vec<VNodeSpec>) -> Self {
        assert!(!vnodes.is_empty(), "engine needs at least one vnode");
        EngineConfig {
            vnodes,
            policy: Policy::Static,
            controller: ControllerConfig::default(),
            initial_mapping: None,
            preserve_order: true,
            arrivals: ArrivalProcess::AllAtOnce,
            pacing_rate: None,
            topology: None,
            observation_noise: 0.0,
            noise_seed: 1,
            timeline_bucket: SimDuration::from_millis(500),
            emulate_links: false,
            hooks: RunHooks::default(),
            queue_capacity: None,
            batch_size: 1,
            control: SessionControl::default(),
            faults: FaultPlan::new(),
        }
    }

    /// The effective arrival process: the legacy `pacing_rate` knob wins
    /// when set, otherwise `arrivals`.
    fn effective_arrivals(&self) -> ArrivalProcess {
        match self.pacing_rate {
            Some(rate) => ArrivalProcess::Uniform { rate },
            None => self.arrivals,
        }
    }
}

/// Result of a threaded run: typed outputs plus the standard report.
pub struct EngineOutcome<O> {
    /// Pipeline outputs (resequenced if `preserve_order`).
    pub outputs: Vec<O>,
    /// Run metrics in the same shape the simulator reports (times are
    /// wall-clock seconds since engine start).
    pub report: RunReport,
}

/// One in-flight item: its sequence number, birth time, and payload.
struct ItemSlot {
    seq: u64,
    born: Instant,
    payload: BoxedItem,
}

/// A routed batch of items bound for one stage on one worker.
struct Envelope {
    stage: usize,
    /// The routing epoch the sender routed this envelope under. A
    /// receiver that no longer hosts `stage` uses the mismatch with its
    /// own (current) epoch as proof the envelope is stale and re-homes
    /// it; a current-epoch envelope always lands on a current host.
    epoch: u64,
    items: Vec<ItemSlot>,
}

/// Control-plane messages, served strictly before work envelopes.
enum Ctrl {
    /// Deposit `tenant`'s (stateful) instance of `stage` back into the
    /// depot.
    Relinquish { tenant: Arc<Shared>, stage: usize },
    /// Pure wake-up: re-run the post-message service scan (a stateful
    /// instance landed in the depot, a node changed health, or a tenant
    /// tore down fatally and its blocked peers must re-check).
    Wake,
    /// `tenant` is detaching from the pool: drop its lane and local
    /// state, flush its accounting, and ack via `Shared::detached`.
    TenantGone { tenant: Arc<Shared> },
    /// Pool teardown sentinel: the worker exits after processing it.
    Shutdown,
}

/// One message popped from an inbox: a control message, or a work
/// envelope tagged with the tenant it belongs to.
enum Msg {
    Work { tenant: Arc<Shared>, env: Envelope },
    Ctrl(Ctrl),
}

struct Finished {
    seq: u64,
    born: Instant,
    done: Instant,
    payload: BoxedItem,
}

/// One tenant's queue inside a worker inbox, with its weighted-fair
/// virtual-time tag (start-time fair queueing): serving an envelope of
/// `n` items advances the lane's tag by `n / weight`, and the pop
/// always takes the backlogged lane with the smallest tag — so over any
/// congested window each tenant receives worker capacity proportional
/// to its share, and a spiking tenant's deep backlog cannot starve a
/// steady co-tenant's shallow one.
struct Lane {
    tenant: Arc<Shared>,
    queue: VecDeque<Envelope>,
    vtime: f64,
}

/// The guarded state of one worker inbox: control messages (served
/// first) plus one weighted-fair lane per tenant.
struct InboxQueue {
    ctrl: VecDeque<Ctrl>,
    lanes: Vec<Lane>,
    /// The inbox's virtual clock: the start tag of the lane served
    /// last. A lane going from empty to backlogged is clamped up to it,
    /// so idle periods bank no credit.
    vnow: f64,
}

impl InboxQueue {
    /// Pops the next message: control first, then the backlogged lane
    /// with the smallest virtual-time tag (charged by item count over
    /// the tenant's current share).
    fn pop(&mut self) -> Option<Msg> {
        if let Some(c) = self.ctrl.pop_front() {
            return Some(Msg::Ctrl(c));
        }
        let mut best: Option<usize> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if lane.queue.is_empty() {
                continue;
            }
            match best {
                Some(b) if lane.vtime >= self.lanes[b].vtime => {}
                _ => best = Some(i),
            }
        }
        let i = best?;
        let lane = &mut self.lanes[i];
        self.vnow = lane.vtime;
        let env = lane.queue.pop_front().expect("lane checked non-empty");
        let weight = lane.tenant.share().max(MIN_LANE_WEIGHT);
        lane.vtime += env.items.len().max(1) as f64 / weight;
        Some(Msg::Work {
            tenant: Arc::clone(&lane.tenant),
            env,
        })
    }
}

/// A worker's inbox: a mutex-guarded structure rather than an mpsc
/// channel so that (a) senders learn the post-push work depth (the
/// steal wake-up heuristic), (b) idle siblings can *steal* work
/// envelopes from the lane tails, and (c) concurrent tenants get
/// weighted-fair admission via per-tenant lanes instead of one FIFO a
/// spiking tenant could flood. The `idle` flag implements a
/// lost-wakeup-free hand-off with thieves: a worker advertises idleness
/// before scanning siblings, and anyone wanting to wake it clears the
/// flag first — a cleared flag makes a waiting thief loop back and
/// re-scan instead of sleeping through the notification.
struct Inbox {
    queue: Mutex<InboxQueue>,
    ready: Condvar,
    idle: AtomicBool,
}

impl Inbox {
    fn new() -> Self {
        Inbox {
            queue: Mutex::new(InboxQueue {
                ctrl: VecDeque::new(),
                lanes: Vec::new(),
                vnow: 0.0,
            }),
            ready: Condvar::new(),
            idle: AtomicBool::new(false),
        }
    }

    /// Enqueues a work envelope on `tenant`'s lane (created on first
    /// use) and returns the resulting total work depth across lanes.
    fn send_work(&self, tenant: &Arc<Shared>, env: Envelope) -> usize {
        let mut q = self.queue.lock().expect("inbox lock poisoned");
        let vnow = q.vnow;
        let idx = match q.lanes.iter().position(|l| l.tenant.id == tenant.id) {
            Some(i) => i,
            None => {
                q.lanes.push(Lane {
                    tenant: Arc::clone(tenant),
                    queue: VecDeque::new(),
                    vtime: vnow,
                });
                q.lanes.len() - 1
            }
        };
        let lane = &mut q.lanes[idx];
        if lane.queue.is_empty() && lane.vtime < vnow {
            // Re-activation: no banked credit from the idle period.
            lane.vtime = vnow;
        }
        lane.queue.push_back(env);
        let depth: usize = q.lanes.iter().map(|l| l.queue.len()).sum();
        drop(q);
        // The owner re-checks the queue under the lock before waiting,
        // so notifying without the lock cannot lose the wakeup.
        self.ready.notify_one();
        depth
    }

    /// Enqueues a control message (served before any lane).
    fn send_ctrl(&self, c: Ctrl) {
        let mut q = self.queue.lock().expect("inbox lock poisoned");
        q.ctrl.push_back(c);
        drop(q);
        self.ready.notify_one();
    }

    /// Removes `session`'s lane (dropping whatever it still queued —
    /// the tenant is detaching, so the backlog is either empty or
    /// deliberately discarded).
    fn drop_lane(&self, session: u64) {
        let mut q = self.queue.lock().expect("inbox lock poisoned");
        q.lanes.retain(|l| l.tenant.id != session);
    }

    /// Items currently queued for `session` on this inbox.
    fn queued_for(&self, session: u64) -> u64 {
        let q = self.queue.lock().expect("inbox lock poisoned");
        q.lanes
            .iter()
            .filter(|l| l.tenant.id == session)
            .flat_map(|l| l.queue.iter())
            .map(|env| env.items.len() as u64)
            .sum()
    }

    /// Wakes the owning worker if it advertised idleness; true if a
    /// wake was delivered. Clearing `idle` before notifying is what
    /// makes the hand-off race-free (see the struct docs).
    fn wake_if_idle(&self) -> bool {
        if self.idle.swap(false, Ordering::SeqCst) {
            let guard = self.queue.lock().expect("inbox lock poisoned");
            self.ready.notify_one();
            drop(guard);
            true
        } else {
            false
        }
    }
}

/// Floor for a lane's fair-queueing weight: an arbiter granting a
/// (near-)zero share must throttle a tenant, not freeze its lane's
/// virtual clock.
const MIN_LANE_WEIGHT: f64 = 0.01;

/// Collector-side control plane, multiplexed with finished items.
enum SinkMsg {
    /// A batch of finished items (one message per processed envelope
    /// that ended at the sink).
    Done(Vec<Finished>),
    /// An item exhausted a stage's retry budget and was diverted to the
    /// dead-letter channel: it settles (releasing its credit and
    /// counting toward drain termination) without producing an output.
    Dead {
        /// Sequence number of the diverted item.
        seq: u64,
        /// The stage that gave up on it.
        stage: usize,
        /// Total attempts consumed (first try + retries).
        attempts: u32,
        /// The final attempt's error.
        reason: String,
    },
    /// The input stream is closed; `expected` items were pushed.
    Closed { expected: u64 },
    /// Stop collecting immediately (session abort).
    Abort { pushed: u64 },
    /// Stop collecting: the run failed fatally (the typed error is on
    /// the shared `SessionControl`). Unlike `Abort`, the expected count
    /// is left as declared, so the report honestly shows truncation.
    Fatal,
}

/// End-to-end in-flight credit gate: `push()` acquires one slot per
/// item, the collector releases it at the sink. See the module docs for
/// why the bound is end-to-end rather than per-channel blocking sends.
struct Credits {
    available: Mutex<u64>,
    freed: Condvar,
    /// Raised at fatal teardown: nothing will ever release a slot
    /// again, so blocked pushers must wake and give up instead of
    /// waiting on a collector that is gone.
    broken: AtomicBool,
}

impl Credits {
    fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "credit capacity must be positive");
        Credits {
            available: Mutex::new(capacity),
            freed: Condvar::new(),
            broken: AtomicBool::new(false),
        }
    }

    /// Blocks until a slot frees; returns the blocked wall time, or
    /// `None` if a slot was immediately available (or the gate broke).
    fn acquire(&self) -> Option<Duration> {
        let mut available = self.available.lock().expect("credit lock poisoned");
        if *available > 0 || self.broken.load(Ordering::SeqCst) {
            *available = available.saturating_sub(1);
            return None;
        }
        let t0 = Instant::now();
        while *available == 0 && !self.broken.load(Ordering::SeqCst) {
            available = self.freed.wait(available).expect("credit lock poisoned");
        }
        *available = available.saturating_sub(1);
        Some(t0.elapsed())
    }

    /// Non-blocking acquire; true if a slot was taken (or the gate is
    /// broken — same contract as [`Credits::acquire`], which also
    /// proceeds when broken). The session uses this to decide whether
    /// it can keep buffering input or must flush before blocking.
    fn try_acquire(&self) -> bool {
        let mut available = self.available.lock().expect("credit lock poisoned");
        if *available > 0 || self.broken.load(Ordering::SeqCst) {
            *available = available.saturating_sub(1);
            true
        } else {
            false
        }
    }

    fn release_n(&self, n: u64) {
        let mut available = self.available.lock().expect("credit lock poisoned");
        *available += n;
        if n == 1 {
            self.freed.notify_one();
        } else {
            self.freed.notify_all();
        }
    }

    /// Wakes every blocked pusher permanently (fatal teardown).
    fn break_gate(&self) {
        let _guard = self.available.lock().expect("credit lock poisoned");
        self.broken.store(true, Ordering::SeqCst);
        self.freed.notify_all();
    }
}

/// Per-worker accounting for one tenant, flushed by the worker when the
/// tenant detaches ([`Ctrl::TenantGone`]) and read by the session's
/// teardown after every worker has acked.
#[derive(Default)]
struct WorkerAcc {
    busy: Duration,
    metrics: Option<adapipe_core::metrics::StageMetrics>,
}

/// The shared node pool: worker threads, their inboxes, and node health
/// — everything that outlives any single pipeline session. One `Pool`
/// serves any number of concurrent tenant sessions; the single-session
/// entry point [`spawn`] simply launches a pool of one tenant and shuts
/// it down at drain.
pub struct Pool {
    /// The virtual nodes (load schedules already rewritten for the
    /// pool-wide fault plan).
    vnodes: Vec<VNodeSpec>,
    /// Pool-wide scheduled faults (times are wall offsets from launch).
    faults: FaultPlan,
    inboxes: Vec<Inbox>,
    /// Wall-clock zero for every tenant admitted to this pool.
    epoch: Instant,
    /// Raised once by [`Pool::shutdown`]: workers exit, stray work is
    /// discarded, teardown ack-waits stop spinning.
    done: AtomicBool,
    /// Node down flags, shared with every tenant's routing table
    /// (`RoutingTable::with_shared_health`): one tenant's fault tracker
    /// marking a node down excludes it for all tenants.
    health: Arc<Vec<AtomicBool>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_session: AtomicU64,
}

impl Pool {
    /// Launches the pool: one worker thread per vnode, ready to serve
    /// sessions attached with [`attach`]. `faults` applies pool-wide
    /// (vnode load schedules are rewritten here once).
    pub fn launch(vnodes: Vec<VNodeSpec>, faults: FaultPlan) -> Arc<Pool> {
        assert!(!vnodes.is_empty(), "pool needs at least one vnode");
        let vnodes: Vec<VNodeSpec> = if faults.is_empty() {
            vnodes
        } else {
            vnodes
                .into_iter()
                .enumerate()
                .map(|(i, mut v)| {
                    v.load = faults.rewrite_load(NodeId(i), v.load);
                    v
                })
                .collect()
        };
        let np = vnodes.len();
        let pool = Arc::new(Pool {
            vnodes,
            faults,
            inboxes: (0..np).map(|_| Inbox::new()).collect(),
            epoch: Instant::now(),
            done: AtomicBool::new(false),
            health: Arc::new((0..np).map(|_| AtomicBool::new(false)).collect()),
            workers: Mutex::new(Vec::new()),
            next_session: AtomicU64::new(0),
        });
        let handles: Vec<JoinHandle<()>> = (0..np)
            .map(|me| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || worker_loop(me, pool))
            })
            .collect();
        *pool.workers.lock().expect("pool worker list poisoned") = handles;
        pool
    }

    /// Number of virtual nodes (= worker threads).
    pub fn node_count(&self) -> usize {
        self.vnodes.len()
    }

    /// The pool's vnode specs (fault-rewritten), for tenant planning.
    pub fn vnode_specs(&self) -> &[VNodeSpec] {
        &self.vnodes
    }

    /// The pool-wide fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Items currently queued at worker inboxes for `session`.
    pub fn queued_for(&self, session: SessionId) -> u64 {
        self.inboxes.iter().map(|b| b.queued_for(session.0)).sum()
    }

    fn is_down(&self, node: usize) -> bool {
        self.health
            .get(node)
            .is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// Stops and joins every worker. Idempotent; called automatically by
    /// the owning session's teardown when the pool was created by
    /// [`spawn`], or by the cluster facade when the cluster closes.
    /// Sessions still attached unwind with truncated reports (their
    /// ack-waits observe `done`).
    pub fn shutdown(&self) {
        self.done.store(true, Ordering::SeqCst);
        for inbox in &self.inboxes {
            inbox.send_ctrl(Ctrl::Shutdown);
        }
        let handles = std::mem::take(&mut *self.workers.lock().expect("pool worker list poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Everything the workers share *about one tenant*: its pipeline, its
/// routing table, its depot, its sink. The pool-wide half (inboxes,
/// vnodes, health, the clock) lives in [`Pool`], reached via `pool`.
struct Shared {
    /// Pool-unique session id (becomes the public [`SessionId`]).
    id: u64,
    pool: Arc<Pool>,
    spec: PipelineSpec,
    /// Per-stage in-edge bytes, precomputed once from the stage graph
    /// (`StageGraph::feed_bytes`) — link emulation must not walk the
    /// graph per envelope.
    bytes_into: Vec<u64>,
    /// Per-parallel-block fan-out duplicators (block order).
    fanouts: Vec<FanOutFn>,
    /// Join state per parallel block: branch outputs collected per item
    /// until the set completes and the merged envelope ships to the
    /// merge stage's host. Global (not per-worker), so branch outputs
    /// survive the loss of any vnode.
    joins: Vec<Mutex<HashMap<u64, Vec<Option<BoxedItem>>>>>,
    /// Per-parallel-block branch entry stages, precomputed once —
    /// fanning an item out must not re-derive (and re-allocate) the
    /// entry list per item.
    block_entries: Vec<Vec<usize>>,
    /// Planning topology; also drives link emulation when enabled.
    topology: Topology,
    emulate_links: bool,
    routing: RwLock<RoutingTable>,
    /// Per stage, per slot: prototype (stateless/accumulator, slot 0),
    /// the unique instance (exclusive/opaque, slot 0), or one instance
    /// per shard (keyed — slot = shard). A migration deposits the
    /// quiesced instance here for the new owner to collect.
    depot: Vec<Vec<DepotSlot>>,
    /// Per-stage routing-key extractors (keyed stages only); items with
    /// no extractor — or a payload the extractor cannot read — hash by
    /// sequence number.
    keys: Vec<Option<KeyFn>>,
    /// Accumulator hand-off: a replica vacating a host parks its partial
    /// snapshot here; whichever replica processes next absorbs the
    /// backlog through the stage's merge operator.
    merge_inbox: Vec<Mutex<Vec<StateSnapshot>>>,
    sink: Sender<SinkMsg>,
    completed: AtomicU64,
    /// Tenant teardown flag: raised by drain/abort/fatal teardown.
    /// Workers discard this tenant's envelopes once set; the pool keeps
    /// running for the other tenants.
    done: AtomicBool,
    /// Event bus + error slot shared with the session (fault
    /// notifications, replay announcements, fatal failures).
    hooks: RunHooks,
    control: SessionControl,
    /// Items re-dealt to a live host after their vnode went down.
    replays: AtomicU64,
    /// Retries performed across all stages (in-place re-attempts under
    /// a per-stage [`adapipe_runtime::session::ResiliencePolicy`]).
    retries: AtomicU64,
    /// Attempts whose service time exceeded their stage's declared
    /// per-attempt bound (observational: a running closure cannot be
    /// interrupted, so the overrun is counted, not cancelled).
    timeouts: AtomicU64,
    /// Sequence numbers diverted to the dead-letter channel. Consulted
    /// by ordered delivery (a dead seq will never arrive — skip it) and
    /// by join deposits (a sibling branch of a dead item must not park
    /// its output forever). Guarded by `dead_count` so the common
    /// no-dead-letter run never takes the lock.
    dead: Mutex<BTreeSet<u64>>,
    /// Lock-free size of `dead`.
    dead_count: AtomicU64,
    /// Work envelopes taken off a sibling's inbox by an idle co-host.
    steals: AtomicU64,
    /// Stage-boundary hand-offs executed *fused*: the producing worker
    /// ran the consumer stage directly in the same batch loop instead
    /// of routing an envelope through an inbox (see [`FusionPlan`]).
    fused: AtomicU64,
    /// Items that arrived under a retired routing epoch and were
    /// re-homed to their stage's current hosts.
    rehomed: AtomicU64,
    /// The in-flight credit gate (shared so fatal teardown can wake a
    /// blocked `push()`).
    credits: Option<Arc<Credits>>,
    /// This tenant's granted fraction of pool capacity (f64 bits),
    /// written by the cluster arbiter, read by the fair-queueing lanes
    /// and the share-scaled planner backend. `1.0` for a tenant that
    /// owns its pool.
    share: AtomicU64,
    /// Raised by graceful eviction: further pushes return
    /// [`RunError::Evicted`] while in-flight items drain normally.
    evicting: AtomicBool,
    /// Per-worker busy/metrics accounting, flushed at detach.
    accs: Vec<Mutex<WorkerAcc>>,
    /// Workers that have processed this tenant's [`Ctrl::TenantGone`];
    /// teardown waits for all of them before reading `accs`.
    detached: AtomicU64,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.pool.epoch.elapsed().as_secs_f64())
    }

    /// The tenant's current capacity share in `(0, 1]`.
    fn share(&self) -> f64 {
        f64::from_bits(self.share.load(Ordering::Relaxed))
    }

    /// True once this tenant — or the whole pool — is tearing down.
    fn finished(&self) -> bool {
        self.done.load(Ordering::Relaxed) || self.pool.done.load(Ordering::Relaxed)
    }

    /// The routing-key hash of one in-flight item at `stage`: the
    /// declared key extractor when it can read the payload, the item's
    /// sequence number otherwise (deterministic for the run either way).
    fn key_hash(&self, stage: usize, slot: &ItemSlot) -> u64 {
        self.keys[stage]
            .as_ref()
            .and_then(|k| k(&slot.payload))
            .unwrap_or(slot.seq)
    }

    /// True if `seq` was diverted to the dead-letter channel. The
    /// common path (no dead letters this run) is one relaxed load.
    fn is_dead(&self, seq: u64) -> bool {
        self.dead_count.load(Ordering::Relaxed) > 0
            && self.dead.lock().expect("dead set poisoned").contains(&seq)
    }

    /// Diverts `seq` to the dead-letter channel: marks it dead, cancels
    /// any join deposits its sibling branches already parked, announces
    /// the diversion on the event bus, and settles the item with the
    /// collector (which records it and releases its credit).
    fn divert_dead(&self, seq: u64, stage: usize, attempts: u32, reason: String) {
        {
            let mut dead = self.dead.lock().expect("dead set poisoned");
            dead.insert(seq);
            self.dead_count.store(dead.len() as u64, Ordering::Relaxed);
        }
        for join in &self.joins {
            join.lock().expect("join lock poisoned").remove(&seq);
        }
        self.hooks.events.emit(RunEvent::ItemDeadLettered {
            session: SessionId(self.id),
            seq,
            stage,
            attempts,
        });
        let _ = self.sink.send(SinkMsg::Dead {
            seq,
            stage,
            attempts,
            reason,
        });
    }

    /// Records one item rescued off the down vnode `from`.
    fn note_replay(&self, seq: u64, stage: usize, from: usize) {
        self.replays.fetch_add(1, Ordering::Relaxed);
        self.hooks.events.emit(RunEvent::ItemReplayed {
            session: SessionId(self.id),
            seq,
            stage,
            from,
            branch: self.spec.graph.branch_of(stage),
        });
    }
}

/// A thread's lock-free view of the routing state: the last snapshot it
/// loaded plus the shared epoch counter. Revalidation is one atomic
/// load per batch; the `RwLock` is touched only when an install
/// actually happened since the last look.
struct RouteCache {
    snap: Arc<RoutingSnapshot>,
    epoch_cell: Arc<AtomicU64>,
}

impl RouteCache {
    fn new(shared: &Shared) -> Self {
        let table = shared.routing.read().expect("routing lock poisoned");
        RouteCache {
            snap: table.snapshot(),
            epoch_cell: table.epoch_cell(),
        }
    }

    /// The current snapshot (refreshed if the table published a newer
    /// epoch since the last call).
    fn current(&mut self, shared: &Shared) -> &Arc<RoutingSnapshot> {
        if self.epoch_cell.load(Ordering::Acquire) != self.snap.epoch() {
            self.snap = shared
                .routing
                .read()
                .expect("routing lock poisoned")
                .snapshot();
        }
        &self.snap
    }
}

/// Inbox depth beyond which a sender tries to wake an idle co-host of
/// the destination's stage (work-stealing assist).
const STEAL_WAKE_DEPTH: usize = 2;

/// How deep into a victim's backlog (from the tail) a thief scans for a
/// stealable envelope.
const STEAL_SCAN: usize = 8;

/// Cap per recycled-buffer free list: buffers beyond it are dropped.
const BUF_POOL_CAP: usize = 64;

/// Process-wide free lists recycling the two hot-path buffer shapes:
/// envelope item vectors (drained by whichever worker serves them) and
/// finished-batch vectors (consumed on the session thread after
/// delivery). Both cross threads, hence shared pools rather than
/// thread-locals; `try_lock` keeps them strictly off the critical path —
/// under contention the caller just allocates.
static SLOT_BUFS: Mutex<Vec<Vec<ItemSlot>>> = Mutex::new(Vec::new());
static FIN_BUFS: Mutex<Vec<Vec<Finished>>> = Mutex::new(Vec::new());

fn take_slot_buf(cap: usize) -> Vec<ItemSlot> {
    if let Ok(mut pool) = SLOT_BUFS.try_lock() {
        if let Some(buf) = pool.pop() {
            return buf;
        }
    }
    Vec::with_capacity(cap)
}

/// Returns an item buffer to the pool. Clearing happens here — on the
/// thread that owned the buffer — so any unconsumed payloads drop
/// before the buffer is offered to another thread.
fn put_slot_buf(mut buf: Vec<ItemSlot>) {
    buf.clear();
    if buf.capacity() == 0 {
        return;
    }
    if let Ok(mut pool) = SLOT_BUFS.try_lock() {
        if pool.len() < BUF_POOL_CAP {
            pool.push(buf);
        }
    }
}

fn take_fin_buf() -> Vec<Finished> {
    if let Ok(mut pool) = FIN_BUFS.try_lock() {
        if let Some(buf) = pool.pop() {
            return buf;
        }
    }
    Vec::new()
}

fn put_fin_buf(mut buf: Vec<Finished>) {
    buf.clear();
    if buf.capacity() == 0 {
        return;
    }
    if let Ok(mut pool) = FIN_BUFS.try_lock() {
        if pool.len() < BUF_POOL_CAP {
            pool.push(buf);
        }
    }
}

/// Hard ceiling on the stamp-sampling window (items per clock read) of
/// [`process_batch`]'s fast path.
const MAX_STAMP_STRIDE: u32 = 64;
/// A full sampling window completing faster than this doubles the
/// stride: the clock reads themselves are a measurable share of the
/// work.
const STRIDE_GROW_BELOW: Duration = Duration::from_micros(200);
/// A window slower than this halves the stride: sink stamps are fixed
/// up at window boundaries, so the per-item latency error is bounded by
/// one window and must stay small against real stage times.
const STRIDE_SHRINK_ABOVE: Duration = Duration::from_millis(1);

/// Routes `items` of `stage` against `snap` and delivers them bucketed
/// per destination worker. The single-host case (linear pipelines)
/// skips per-item routing entirely; replicated stages keep per-item
/// round-robin dealing inside the batch. `from` is the sending worker
/// (`None` for the source), used for link emulation.
fn ship(
    shared: &Arc<Shared>,
    snap: &RoutingSnapshot,
    from: Option<usize>,
    stage: usize,
    mut items: Vec<ItemSlot>,
) {
    if items.is_empty() {
        put_slot_buf(items);
        return;
    }
    let hosts = snap.hosts(stage);
    if hosts.len() == 1 {
        let dest = hosts[0].index();
        deliver_env(shared, snap, from, stage, dest, items);
        return;
    }
    let np = shared.pool.inboxes.len();
    let cap = items.len();
    let mut buckets: Vec<Vec<ItemSlot>> = (0..np).map(|_| take_slot_buf(cap)).collect();
    if shared.spec.stages[stage].state.shards() > 0 {
        // Keyed stage: every item is pinned to its key's shard owner —
        // never dealt round-robin, never detoured around a down owner
        // (the state lives there; a re-map moves it, then the items).
        for slot in items.drain(..) {
            let hash = shared.key_hash(stage, &slot);
            buckets[snap.route_keyed(stage, hash).index()].push(slot);
        }
    } else {
        for slot in items.drain(..) {
            buckets[snap.route(stage).index()].push(slot);
        }
    }
    put_slot_buf(items);
    for (dest, batch) in buckets.into_iter().enumerate() {
        if !batch.is_empty() {
            deliver_env(shared, snap, from, stage, dest, batch);
        } else {
            put_slot_buf(batch);
        }
    }
}

/// Sends one envelope to `dest`, paying the emulated link cost first
/// when enabled (NIC-serialisation semantics: the sender sleeps the
/// transfer time of the whole batch — latency is paid once per
/// envelope, which is exactly the amortisation batching buys).
fn deliver_env(
    shared: &Arc<Shared>,
    snap: &RoutingSnapshot,
    from: Option<usize>,
    stage: usize,
    dest: usize,
    items: Vec<ItemSlot>,
) {
    if let Some(from) = from {
        if shared.emulate_links && from != dest {
            let bytes = shared.bytes_into[stage].saturating_mul(items.len() as u64);
            let d = shared
                .topology
                .transfer_time(NodeId(from), NodeId(dest), bytes)
                .as_secs_f64();
            if d > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(d));
            }
        }
    }
    dispatch(
        shared,
        snap,
        dest,
        Envelope {
            stage,
            epoch: snap.epoch(),
            items,
        },
    );
}

/// Feeds a batch of source items into the pipeline entry: one envelope
/// to the entry stage, or — when the graph opens with a parallel block
/// — per-item fan-out grouped into one envelope per branch entry (the
/// in-flight credit still counts *items*, not branch copies).
fn push_entry(shared: &Arc<Shared>, cache: &mut RouteCache, mut items: Vec<ItemSlot>) {
    let snap = cache.current(shared).clone();
    match shared.spec.graph.entry() {
        Next::Stage(stage) => ship(shared, &snap, None, stage, items),
        Next::FanOut { block } => {
            let entries = &shared.block_entries[block];
            let mut per_entry: Vec<Vec<ItemSlot>> =
                entries.iter().map(|_| take_slot_buf(items.len())).collect();
            for slot in items.drain(..) {
                match (shared.fanouts[block])(slot.payload) {
                    Ok(parts) => {
                        for (i, payload) in parts.into_iter().enumerate() {
                            per_entry[i].push(ItemSlot {
                                seq: slot.seq,
                                born: slot.born,
                                payload,
                            });
                        }
                    }
                    Err(type_err) => {
                        shared.control.fail(RunError::StageTypeMismatch {
                            stage: type_err.stage,
                        });
                        fatal_teardown(shared);
                        return;
                    }
                }
            }
            put_slot_buf(items);
            for (i, batch) in per_entry.into_iter().enumerate() {
                ship(shared, &snap, None, entries[i], batch);
            }
        }
        _ => unreachable!("pipelines enter at a stage or a fan-out"),
    }
}

/// Enqueues `env` on `dest`'s inbox lane for this tenant; if the inbox
/// is backing up and the stage has live sibling replicas, wakes one
/// idle co-host so it starts stealing instead of sleeping through the
/// backlog.
fn dispatch(shared: &Arc<Shared>, snap: &RoutingSnapshot, dest: usize, env: Envelope) {
    let stage = env.stage;
    let depth = shared.pool.inboxes[dest].send_work(shared, env);
    if depth > STEAL_WAKE_DEPTH && shared.spec.stages[stage].stateless {
        let hosts = snap.hosts(stage);
        if hosts.len() > 1 {
            for &h in hosts {
                if h.index() != dest
                    && !snap.is_down(h)
                    && shared.pool.inboxes[h.index()].wake_if_idle()
                {
                    break;
                }
            }
        }
    }
}

/// Irrecoverable failure *of one tenant* (stateful stage lost, every
/// node down, wrong-typed item, forced eviction): record nothing
/// further for it, stop its collector, raise its done flag, wake every
/// worker (so tenant-scoped backlog gets discarded) and any of its
/// pushers blocked on the credit gate. The typed error is already on
/// `shared.control`; the session surfaces it via `error()` while
/// `drain()`/`next()` unwind cleanly with a truncated report. Other
/// tenants on the pool are untouched.
fn fatal_teardown(shared: &Shared) {
    shared.done.store(true, Ordering::SeqCst);
    let _ = shared.sink.send(SinkMsg::Fatal);
    for inbox in &shared.pool.inboxes {
        inbox.send_ctrl(Ctrl::Wake);
    }
    if let Some(credits) = &shared.credits {
        credits.break_gate();
    }
}

/// The threaded engine's view for the shared [`AdaptationLoop`]: wall
/// clock, vnode load schedules, the completion counter, and the
/// relinquish-on-remap commit. All capacity observations are scaled by
/// the tenant's granted share, so each tenant's planner sees "its"
/// fraction of the pool — the cross-tenant arbiter moves capacity by
/// moving shares, and every tenant re-plans against the new slice on
/// its next window. With share = 1 (a pool of one tenant) this is
/// exactly the single-session backend.
struct EngineBackend {
    shared: Arc<Shared>,
}

impl ExecutionBackend for EngineBackend {
    fn node_count(&self) -> usize {
        self.shared.pool.vnodes.len()
    }

    fn now(&self) -> SimTime {
        self.shared.now()
    }

    fn mean_availability(&self, node: usize, from: SimTime, to: SimTime) -> f64 {
        self.shared.pool.vnodes[node]
            .load
            .mean_availability(from, to)
            * self.shared.share()
    }

    fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    fn oracle_rates(&self, from: SimTime, to: SimTime) -> Vec<f64> {
        let share = self.shared.share();
        self.shared
            .pool
            .vnodes
            .iter()
            .map(|v| v.speed * v.load.mean_availability(from, to) * share)
            .collect()
    }

    fn commit_remap(&mut self, plan: &RemapPlan) {
        // Old hosts must surrender stateful instances (and drop
        // stateless replicas to reclaim memory); the new hosts pick them
        // up from the depot on first use, buffering items meanwhile.
        for &stage in &plan.moved {
            for host in plan.from.placement(stage).hosts() {
                self.shared.pool.inboxes[host.index()].send_ctrl(Ctrl::Relinquish {
                    tenant: Arc::clone(&self.shared),
                    stage,
                });
            }
        }
    }

    fn on_node_down(&mut self, node: usize, _at: SimTime) {
        // Wake the dead worker: its post-message service scan re-deals
        // buffered items to live replicas (or parks them for the forced
        // re-map's Relinquish to flush).
        self.shared.pool.inboxes[node].send_ctrl(Ctrl::Wake);
    }

    fn on_node_up(&mut self, node: usize, _at: SimTime) {
        // Wake the recovered worker so parked items resume service.
        self.shared.pool.inboxes[node].send_ctrl(Ctrl::Wake);
    }
}

/// A live threaded pipeline: workers are running, the caller feeds
/// items and pulls outputs while adaptation happens underneath. See the
/// module docs for the backpressure discipline.
///
/// Obtained from [`spawn`]; applications should prefer the unified
/// `adapipe::api::Pipeline::spawn`, which wraps this per backend.
pub struct EngineSession<I, O> {
    shared: Arc<Shared>,
    credits: Option<Arc<Credits>>,
    /// True when this session launched its own pool ([`spawn`]): the
    /// pool is shut down when the session tears down. Cluster-attached
    /// sessions leave the pool running for their co-tenants.
    owns_pool: bool,
    collector: Option<JoinHandle<ReportBuilder>>,
    adaptation: Option<JoinHandle<AdaptationOutcome>>,
    out_rx: Receiver<Vec<Finished>>,
    events: adapipe_runtime::session::EventBus,
    /// The pusher's lock-free routing view.
    cache: RouteCache,
    /// Input buffered towards the next envelope (≤ `batch_size` items,
    /// each already holding a credit).
    pending: Vec<ItemSlot>,
    batch_size: usize,
    /// Finished items received from the collector but not yet delivered
    /// to the caller (tail of the last output batch).
    inbuf: VecDeque<Finished>,
    pushed: u64,
    closed: bool,
    preserve_order: bool,
    /// Resequencing buffer (`preserve_order` only); bounded by the
    /// in-flight credit when `queue_capacity` is set. In-order arrivals
    /// bypass it entirely.
    reorder: BTreeMap<u64, O>,
    next_seq: u64,
    _types: PhantomData<fn(I) -> O>,
}

impl<I, O> EngineSession<I, O>
where
    I: Send + 'static,
    O: Send + 'static,
{
    /// Feeds one item into the pipeline. The item joins the pending
    /// envelope and ships when `batch_size` items have accumulated (or
    /// on `close`/output interaction/credit pressure). Blocks while the
    /// bounded in-flight budget is exhausted (emitting
    /// [`RunEvent::BackpressureStall`]); buffered input is flushed
    /// *before* blocking so the items holding credits can complete.
    /// Returns the item's sequence number.
    ///
    /// # Errors
    /// [`RunError::SessionClosed`] after [`EngineSession::close`];
    /// [`RunError::Evicted`] once the cluster began evicting this
    /// session (in-flight items still drain). The item is dropped in
    /// both cases.
    pub fn push(&mut self, item: I) -> Result<u64, RunError> {
        self.push_born(item, Instant::now())
    }

    /// [`EngineSession::push`] with an explicit birth stamp, so a batch
    /// push pays one clock read for the whole batch (every item of a
    /// batch arrives at the call instant — the same arrival semantics
    /// the all-at-once batch feed declares).
    fn push_born(&mut self, item: I, born: Instant) -> Result<u64, RunError> {
        if self.closed {
            return Err(RunError::SessionClosed);
        }
        if self.shared.evicting.load(Ordering::Relaxed) {
            return Err(RunError::Evicted {
                session: SessionId(self.shared.id),
            });
        }
        let seq = self.pushed;
        if let Some(credits) = &self.credits {
            if !credits.try_acquire() {
                // The buffered items hold credits that only completions
                // can return — flush them into the pipeline, then wait.
                self.flush_pending();
                let credits = self.credits.as_ref().expect("checked above");
                if let Some(waited) = credits.acquire() {
                    self.events.emit(RunEvent::BackpressureStall {
                        session: SessionId(self.shared.id),
                        seq,
                        waited: SimDuration::from_secs_f64(waited.as_secs_f64()),
                    });
                }
            }
        }
        self.pushed += 1;
        self.pending.push(ItemSlot {
            seq,
            born,
            payload: Payload::new(item),
        });
        if self.pending.len() >= self.batch_size {
            self.flush_pending();
        }
        Ok(seq)
    }

    /// Feeds a whole batch of items through the batched envelope path,
    /// flushing any remainder at the end of the call (so the batch is
    /// fully in flight when this returns). Returns the number of items
    /// pushed. Blocks like [`EngineSession::push`] under a bounded
    /// in-flight budget.
    ///
    /// # Errors
    /// Same lifecycle errors as [`EngineSession::push`]; items pushed
    /// before the error remain in flight (and are flushed first).
    pub fn push_batch(&mut self, items: impl IntoIterator<Item = I>) -> Result<u64, RunError> {
        let born = Instant::now();
        let mut n = 0;
        for item in items {
            if let Err(e) = self.push_born(item, born) {
                self.flush_pending();
                return Err(e);
            }
            n += 1;
        }
        self.flush_pending();
        Ok(n)
    }

    /// Ships the buffered input as one routed envelope (routing the
    /// pipeline entry — or fanning each item out when the graph opens
    /// with a parallel block, still one credit per *item*).
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let items = std::mem::replace(&mut self.pending, take_slot_buf(self.batch_size));
        push_entry(&self.shared, &mut self.cache, items);
    }

    /// Declares the input stream complete (flushing buffered input).
    /// Idempotent; pushing after close returns
    /// [`RunError::SessionClosed`].
    pub fn close(&mut self) {
        if !self.closed {
            self.flush_pending();
            self.closed = true;
            let _ = self.shared.sink.send(SinkMsg::Closed {
                expected: self.pushed,
            });
        }
    }

    /// Items pushed so far.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Items that reached the sink so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Items currently between source and sink.
    pub fn in_flight(&self) -> u64 {
        self.pushed.saturating_sub(self.completed())
    }

    /// The pool's wall-clock epoch (all report times are relative to
    /// it).
    pub fn epoch(&self) -> Instant {
        self.shared.pool.epoch
    }

    /// This session's pool-unique id.
    pub fn session_id(&self) -> SessionId {
        SessionId(self.shared.id)
    }

    /// A cloneable cluster-side handle to this tenant: share control,
    /// demand sensing, and eviction. Used by the cluster arbiter; a
    /// plain session never needs it.
    pub fn tenant_handle(&self) -> TenantHandle {
        TenantHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The run's fatal error, if one was recorded (stateful stage lost
    /// to a crashed vnode, every vnode down, wrong-typed item). The
    /// failed run unwinds cleanly: `next()` stops yielding, `drain()`
    /// returns the truncated report, and this surfaces why.
    pub fn error(&self) -> Option<RunError> {
        self.shared.control.error()
    }

    /// Work envelopes stolen off sibling inboxes by idle co-hosts so
    /// far (work-stealing pool activity).
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Items that arrived under a retired routing epoch and were
    /// re-homed to their stage's current hosts (remap drain activity).
    pub fn rehomed(&self) -> u64 {
        self.shared.rehomed.load(Ordering::Relaxed)
    }

    /// Stage-boundary hand-offs executed *fused* so far: the producing
    /// worker ran the consumer stage directly in its batch loop instead
    /// of routing an envelope through an inbox, because the consumer is
    /// stateless, default-policy, and mapped solely to that worker.
    /// Re-maps that separate the pair un-fuse it automatically (the
    /// fusion plan is epoch-scoped).
    pub fn fused_hops(&self) -> u64 {
        self.shared.fused.load(Ordering::Relaxed)
    }

    /// Non-blocking poll of the output side (flushes buffered input
    /// first — waiting for output while input sits buffered would
    /// deadlock).
    pub fn try_next(&mut self) -> TryNext<O> {
        self.flush_pending();
        loop {
            if self.preserve_order {
                if let Some(o) = self.pop_ordered() {
                    return TryNext::Item(o);
                }
            }
            if let Some(fin) = self.inbuf.pop_front() {
                if let Some(o) = self.deliver(fin) {
                    return TryNext::Item(o);
                }
                continue;
            }
            match self.out_rx.try_recv() {
                Ok(mut batch) => {
                    self.inbuf.extend(batch.drain(..));
                    put_fin_buf(batch);
                }
                Err(TryRecvError::Empty) => return TryNext::Pending,
                Err(TryRecvError::Disconnected) => {
                    return match self.flush_reorder() {
                        Some(o) => TryNext::Item(o),
                        None => TryNext::Done,
                    }
                }
            }
        }
    }

    fn deliver(&mut self, fin: Finished) -> Option<O> {
        let out = fin
            .payload
            .downcast::<O>()
            .expect("pipeline output type mismatch");
        if self.preserve_order {
            self.skip_dead();
            // In-order fast path: the common case (single-replica
            // stages, no remap in flight) never touches the tree.
            if fin.seq == self.next_seq {
                self.next_seq += 1;
                Some(out)
            } else {
                self.reorder.insert(fin.seq, out);
                self.pop_ordered()
            }
        } else {
            Some(out)
        }
    }

    /// Advances the resequencing cursor past dead-lettered sequence
    /// numbers: a diverted item never produces an output, so ordered
    /// delivery must not wait for it.
    fn skip_dead(&mut self) {
        while self.shared.is_dead(self.next_seq) {
            self.next_seq += 1;
        }
    }

    fn pop_ordered(&mut self) -> Option<O> {
        self.skip_dead();
        let o = self.reorder.remove(&self.next_seq)?;
        self.next_seq += 1;
        Some(o)
    }

    /// After the collector is gone, deliver whatever the resequencing
    /// buffer still holds, in sequence order (gaps — aborted items —
    /// are skipped).
    fn flush_reorder(&mut self) -> Option<O> {
        let (&seq, _) = self.reorder.iter().next()?;
        self.next_seq = seq + 1;
        self.reorder.remove(&seq)
    }

    /// Graceful shutdown: closes the stream, waits for every pushed
    /// item to complete, and returns the remaining (un-pulled) outputs
    /// plus the standard report. Items already pulled via
    /// [`EngineSession::next`] are not repeated.
    pub fn drain(mut self) -> EngineOutcome<O> {
        self.close();
        let mut outputs = Vec::new();
        for o in self.by_ref() {
            outputs.push(o);
        }
        self.teardown(outputs)
    }

    /// Immediate shutdown: in-flight items are dropped and the report
    /// comes back `truncated` if anything was lost. Workers bail after
    /// at most the item they are currently processing — the queued
    /// backlog is discarded, not drained.
    pub fn abort(mut self) -> RunReport {
        let _ = self.shared.sink.send(SinkMsg::Abort {
            pushed: self.pushed,
        });
        // Raise the flag *before* the wake-up sentinels: a worker
        // chewing through a deep backlog checks it between items and
        // exits without serving the rest of its inbox.
        self.shared.done.store(true, Ordering::SeqCst);
        self.closed = true;
        self.teardown(Vec::new()).report
    }

    /// Detaches this tenant from the pool and assembles the report. The
    /// collector must already be on its way out (stream closed and
    /// delivered, or aborted). Every worker acks the detach
    /// ([`Ctrl::TenantGone`]) after flushing this tenant's accounting
    /// into `Shared::accs`; the wait escapes early if the whole pool is
    /// shutting down underneath us.
    fn teardown(&mut self, outputs: Vec<O>) -> EngineOutcome<O> {
        let mut report = self
            .collector
            .take()
            .expect("collector joined twice")
            .join()
            .expect("collector panicked");
        report.set_replays(self.shared.replays.load(Ordering::Relaxed));
        report.set_retries(self.shared.retries.load(Ordering::Relaxed));
        report.set_timeouts(self.shared.timeouts.load(Ordering::Relaxed));
        self.shared.done.store(true, Ordering::SeqCst);
        for inbox in &self.shared.pool.inboxes {
            inbox.send_ctrl(Ctrl::TenantGone {
                tenant: Arc::clone(&self.shared),
            });
        }
        let np = self.shared.pool.vnodes.len();
        while self.shared.detached.load(Ordering::SeqCst) < np as u64
            && !self.shared.pool.done.load(Ordering::SeqCst)
        {
            std::thread::sleep(Duration::from_micros(200));
        }
        let (adaptations, planning_cycles, migrations, state_bytes_moved) = self
            .adaptation
            .take()
            .expect("adaptation joined twice")
            .join()
            .expect("adaptation thread panicked");
        report.set_migrations(migrations, state_bytes_moved);
        report.set_stage_shards(
            self.shared
                .spec
                .stages
                .iter()
                .map(|s| s.state.shards())
                .collect(),
        );
        let ns = self.shared.spec.len();
        let mut node_busy = vec![SimDuration::ZERO; np];
        let mut stage_metrics = adapipe_core::metrics::StageMetrics::new(ns);
        for (i, acc) in self.shared.accs.iter().enumerate() {
            let acc = acc.lock().expect("worker accounting poisoned");
            node_busy[i] = SimDuration::from_secs_f64(acc.busy.as_secs_f64());
            if let Some(m) = &acc.metrics {
                stage_metrics.absorb(m);
            }
        }
        let final_mapping = self
            .shared
            .routing
            .read()
            .expect("routing lock poisoned")
            .mapping()
            .clone();
        let report = report.finish(
            final_mapping,
            adaptations,
            planning_cycles,
            node_busy,
            stage_metrics,
        );
        if self.owns_pool {
            self.shared.pool.shutdown();
        }
        EngineOutcome { outputs, report }
    }
}

/// A session dropped without [`EngineSession::drain`] or
/// [`EngineSession::abort`] (an error path, a panic unwind) must not
/// leak its threads or its pool lanes: workers hold the pool alive on
/// their own, so nothing disconnects by itself, and the adaptation
/// thread sleeps in a loop until the done flag rises. Drop performs the
/// abort shutdown — signal, detach, join — discarding outputs and the
/// report (and shutting the pool down when this session owns it).
impl<I, O> Drop for EngineSession<I, O> {
    fn drop(&mut self) {
        if self.collector.is_none() {
            return; // drain()/abort() already tore the run down
        }
        let _ = self.shared.sink.send(SinkMsg::Abort {
            pushed: self.pushed,
        });
        self.shared.done.store(true, Ordering::SeqCst);
        for inbox in &self.shared.pool.inboxes {
            inbox.send_ctrl(Ctrl::TenantGone {
                tenant: Arc::clone(&self.shared),
            });
        }
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
        let np = self.shared.pool.vnodes.len();
        while self.shared.detached.load(Ordering::SeqCst) < np as u64
            && !self.shared.pool.done.load(Ordering::SeqCst)
        {
            std::thread::sleep(Duration::from_micros(200));
        }
        if let Some(adaptation) = self.adaptation.take() {
            let _ = adaptation.join();
        }
        if self.owns_pool {
            self.shared.pool.shutdown();
        }
    }
}

/// A cluster-side handle to one tenant on a pool: read demand signals,
/// set the granted share, drive eviction. Cloneable and independent of
/// the typed [`EngineSession`] (the arbiter is type-erased).
#[derive(Clone)]
pub struct TenantHandle {
    shared: Arc<Shared>,
}

impl TenantHandle {
    /// The tenant's session id.
    pub fn session(&self) -> SessionId {
        SessionId(self.shared.id)
    }

    /// Items that reached this tenant's sink so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Items queued for this tenant across all pool inboxes (backlog —
    /// the arbiter's demand signal alongside the completion rate).
    pub fn queued(&self) -> u64 {
        self.shared
            .pool
            .inboxes
            .iter()
            .map(|b| b.queued_for(self.shared.id))
            .sum()
    }

    /// The tenant's current capacity share.
    pub fn share(&self) -> f64 {
        self.shared.share()
    }

    /// Grants the tenant `share` of pool capacity (clamped to
    /// `[0.01, 1.0]` — a zero share would freeze the tenant's fair-
    /// queueing clock instead of throttling it). Takes effect on the
    /// next envelope pop and the next planning window.
    pub fn set_share(&self, share: f64) {
        let clamped = share.clamp(MIN_LANE_WEIGHT, 1.0);
        self.shared
            .share
            .store(clamped.to_bits(), Ordering::Relaxed);
    }

    /// True once the tenant finished or was torn down.
    pub fn is_done(&self) -> bool {
        self.shared.done.load(Ordering::SeqCst)
    }

    /// The tenant's fatal error, if any.
    pub fn error(&self) -> Option<RunError> {
        self.shared.control.error()
    }

    /// Begins graceful eviction: the session's further pushes return
    /// [`RunError::Evicted`], while everything already in flight drains
    /// normally. The caller still drains/closes the session itself.
    pub fn begin_eviction(&self) {
        self.shared.evicting.store(true, Ordering::SeqCst);
    }

    /// Forced eviction (pool shrink): fails the session with
    /// [`RunError::Evicted`] and tears its data plane down immediately;
    /// in-flight items are dropped and the report shows truncation.
    /// Co-tenants are untouched.
    pub fn evict_now(&self) {
        self.shared.evicting.store(true, Ordering::SeqCst);
        self.shared.control.fail(RunError::Evicted {
            session: SessionId(self.shared.id),
        });
        fatal_teardown(&self.shared);
    }
}

/// Blocking output iteration: `next()` waits for the next completed
/// output and yields `None` once the stream is finished (closed and
/// fully delivered, or aborted). With `preserve_order` outputs come in
/// push order; otherwise in completion order.
impl<I, O> Iterator for EngineSession<I, O>
where
    I: Send + 'static,
    O: Send + 'static,
{
    type Item = O;

    fn next(&mut self) -> Option<O> {
        self.flush_pending();
        loop {
            if self.preserve_order {
                if let Some(o) = self.pop_ordered() {
                    return Some(o);
                }
            }
            if let Some(fin) = self.inbuf.pop_front() {
                if let Some(o) = self.deliver(fin) {
                    return Some(o);
                }
                continue;
            }
            match self.out_rx.recv() {
                Ok(mut batch) => {
                    self.inbuf.extend(batch.drain(..));
                    put_fin_buf(batch);
                }
                Err(_) => return self.flush_reorder(),
            }
        }
    }
}

/// Starts `pipeline` on the configured virtual nodes and returns the
/// live [`EngineSession`]. `items_hint` seeds the adaptation loop's
/// remaining-work amortisation (a session's true length is unknown
/// until it closes); batch wrappers pass the exact stream length.
///
/// This is the single-session path: it launches a private [`Pool`]
/// (applying `cfg.faults` pool-wide) and attaches the one session as
/// its owning tenant, so the pool is shut down when the session drains.
/// Multi-tenant serving launches the pool once and calls [`attach`] per
/// session.
///
/// # Panics
/// Panics if the initial mapping references unknown nodes or covers the
/// wrong number of stages, or if `queue_capacity` is zero.
pub fn spawn<I, O>(
    pipeline: Pipeline<I, O>,
    cfg: &EngineConfig,
    items_hint: u64,
) -> EngineSession<I, O>
where
    I: Send + 'static,
    O: Send + 'static,
{
    // Fault physics: the plan rewrites the vnode load schedules (inside
    // `Pool::launch`) exactly as it rewrites a simulated grid's, so
    // slowdown/outage windows degrade workers through the same
    // availability → sleep machinery. The down/up control plane
    // (routing exclusion, forced re-maps, replay) runs through the
    // shared adaptation loop.
    let pool = Pool::launch(cfg.vnodes.clone(), cfg.faults.clone());
    attach(&pool, pipeline, cfg, items_hint, true)
}

/// Attaches `pipeline` as one tenant of a running [`Pool`] and returns
/// its live [`EngineSession`]. Any number of sessions (heterogeneous
/// stage graphs) may be attached concurrently; each keeps its own typed
/// push/pull API, routing table, adaptation loop, collector, and
/// exactly-once replay isolation, while sharing the pool's worker
/// threads under weighted-fair envelope admission.
///
/// Planning and fault handling use the *pool's* vnodes and fault plan —
/// `cfg.vnodes` and `cfg.faults` are ignored here (faults are a
/// pool-wide physical property, applied once at [`Pool::launch`]).
/// `owns_pool` makes the session shut the pool down at teardown (the
/// [`spawn`] cluster-of-one case).
///
/// # Panics
/// Panics if the initial mapping references unknown nodes or covers the
/// wrong number of stages, if a provided topology does not cover the
/// pool, or if `queue_capacity` is zero.
pub fn attach<I, O>(
    pool: &Arc<Pool>,
    pipeline: Pipeline<I, O>,
    cfg: &EngineConfig,
    items_hint: u64,
    owns_pool: bool,
) -> EngineSession<I, O>
where
    I: Send + 'static,
    O: Send + 'static,
{
    let np = pool.vnodes.len();
    let (spec, stages, fanouts, keys) = pipeline.into_keyed_parts();
    let ns = spec.len();
    let blocks = spec.graph.blocks();
    // Fan and join blocks coincide on sugar graphs but are independent
    // on explicitly wired DAGs.
    let join_blocks = spec.graph.join_blocks();
    let vnodes = &pool.vnodes;

    let topology = cfg
        .topology
        .clone()
        .unwrap_or_else(|| Topology::uniform(np, LinkSpec::local()));
    assert_eq!(topology.len(), np, "topology must cover every vnode");

    let mut profile = spec.profile();
    // This engine fuses co-located stateless chain edges into direct
    // calls (see `FusionPlan`), so the planner may discount them.
    profile.fuses_colocated = true;
    profile.validate();
    let launch_rates: Vec<f64> = vnodes
        .iter()
        .map(|v| v.effective_rate(SimTime::ZERO))
        .collect();
    let initial_mapping = cfg.initial_mapping.clone().unwrap_or_else(|| {
        adapipe_mapper::search::plan(&profile, &launch_rates, &topology, &cfg.controller.planner)
            .mapping
    });
    assert_eq!(initial_mapping.len(), ns, "mapping must cover every stage");
    for node in initial_mapping.nodes_used() {
        assert!(
            node.index() < np,
            "mapping uses vnode {node} outside the engine"
        );
    }

    let session_id = pool.next_session.fetch_add(1, Ordering::SeqCst);
    let runtime_cfg = RuntimeConfig {
        policy: cfg.policy,
        controller: cfg.controller.clone(),
        profile,
        topology: topology.clone(),
        speeds: vnodes.iter().map(|v| v.speed).collect(),
        state_bytes: spec.stages.iter().map(|s| s.state_bytes).collect(),
        // "Stateless" to the planner means *replicable*: keyed and
        // accumulator stages run many live instances too.
        stateless: spec.stages.iter().map(|s| s.state.replicable()).collect(),
        state_access: spec.stages.iter().map(|s| s.state).collect(),
        faults: pool.faults.clone(),
        total_items: items_hint,
        observation_noise: cfg.observation_noise,
        noise_seed: cfg.noise_seed,
        hooks: cfg.hooks.clone(),
        control: cfg.control.clone(),
        session: SessionId(session_id),
    };
    let aloop = AdaptationLoop::new(runtime_cfg, &initial_mapping, &launch_rates);

    let (sink_tx, sink_rx) = channel::<SinkMsg>();

    // One in-flight slot per stage boundary (source→s0, s0→s1, …,
    // s_last→sink) per unit of declared capacity.
    let credits = cfg
        .queue_capacity
        .map(|c| Arc::new(Credits::new((c * (ns + 1)) as u64)));

    let boundary: Vec<u64> = std::iter::once(spec.input_bytes)
        .chain(spec.stages.iter().map(|s| s.out_bytes))
        .collect();
    let bytes_into = (0..ns)
        .map(|s| spec.graph.feed_bytes(s, &boundary))
        .collect();
    let block_entries = (0..blocks).map(|b| spec.graph.branch_entries(b)).collect();
    // Depot: one slot per stage, except keyed stages get one per shard —
    // the built instance takes slot 0 and fresh (empty) shells seed the
    // rest; each shard accumulates exactly the keys routed to it.
    let depot: Vec<Vec<DepotSlot>> = stages
        .into_iter()
        .zip(spec.stages.iter())
        .map(|(built, sspec)| {
            let shards = sspec.state.shards();
            let mut slots = Vec::with_capacity(shards.max(1));
            for _ in 1..shards {
                let shell = built
                    .fresh()
                    .expect("keyed stages always produce fresh shells");
                slots.push(Mutex::new(Some(shell)));
            }
            slots.insert(0, Mutex::new(Some(built)));
            slots
        })
        .collect();
    let stage_shards: Vec<usize> = spec.stages.iter().map(|s| s.state.shards()).collect();
    let shared = Arc::new(Shared {
        id: session_id,
        pool: Arc::clone(pool),
        depot,
        keys,
        merge_inbox: (0..ns).map(|_| Mutex::new(Vec::new())).collect(),
        spec,
        bytes_into,
        fanouts,
        joins: (0..join_blocks)
            .map(|_| Mutex::new(HashMap::new()))
            .collect(),
        block_entries,
        topology,
        emulate_links: cfg.emulate_links,
        // Health flags are the pool's: any tenant's fault tracker
        // marking a node down excludes it for every tenant's routing.
        routing: RwLock::new(
            RoutingTable::with_shared_health(
                initial_mapping,
                adapipe_runtime::routing::Selection::RoundRobin,
                Arc::clone(&pool.health),
            )
            .with_stage_shards(stage_shards),
        ),
        sink: sink_tx,
        completed: AtomicU64::new(0),
        done: AtomicBool::new(false),
        hooks: cfg.hooks.clone(),
        control: cfg.control.clone(),
        replays: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        timeouts: AtomicU64::new(0),
        dead: Mutex::new(BTreeSet::new()),
        dead_count: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        fused: AtomicU64::new(0),
        rehomed: AtomicU64::new(0),
        credits: credits.clone(),
        share: AtomicU64::new(1.0f64.to_bits()),
        evicting: AtomicBool::new(false),
        accs: (0..np).map(|_| Mutex::new(WorkerAcc::default())).collect(),
        detached: AtomicU64::new(0),
    });

    // --- collector ---------------------------------------------------
    let (out_tx, out_rx) = channel::<Vec<Finished>>();
    let collector = {
        let shared = Arc::clone(&shared);
        let credits = credits.clone();
        let bucket = cfg.timeline_bucket;
        let faults = pool.faults.clone();
        std::thread::spawn(move || {
            let mut report = ReportBuilder::new(bucket, u64::MAX);
            if !faults.is_empty() {
                report.set_faults(faults, shared.pool.vnodes.len());
            }
            let mut expected: Option<u64> = None;
            loop {
                // Dead-lettered items settle without reaching the sink:
                // termination counts everything *accounted for*.
                if expected.is_some_and(|e| report.accounted() >= e) {
                    break;
                }
                let Ok(msg) = sink_rx.recv() else { break };
                match msg {
                    SinkMsg::Done(batch) => {
                        // Sink-side bookkeeping is per *envelope*, not
                        // per item: done stamps are non-decreasing
                        // within a batch, so the last one is the
                        // envelope's completion instant.
                        if let Some(last) = batch.last() {
                            let at = SimTime::from_secs_f64(
                                last.done.duration_since(shared.pool.epoch).as_secs_f64(),
                            );
                            report.record_envelope(
                                at,
                                batch.iter().map(|fin| {
                                    SimDuration::from_secs_f64(
                                        fin.done.duration_since(fin.born).as_secs_f64(),
                                    )
                                }),
                            );
                        }
                        shared
                            .completed
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                        if let Some(c) = &credits {
                            c.release_n(batch.len() as u64);
                        }
                        // The session may have gone away (abort path):
                        // delivery failures are fine.
                        let _ = out_tx.send(batch);
                    }
                    SinkMsg::Dead {
                        seq,
                        stage,
                        attempts,
                        reason,
                    } => {
                        report.record_dead_letter(DeadLetter {
                            seq,
                            stage,
                            attempts,
                            reason,
                        });
                        // The diverted item settles: its credit returns
                        // so the in-flight gate cannot wedge on it.
                        if let Some(c) = &credits {
                            c.release_n(1);
                        }
                    }
                    SinkMsg::Closed { expected: e } => {
                        report.set_expected(e);
                        expected = Some(e);
                    }
                    SinkMsg::Abort { pushed } => {
                        report.set_expected(pushed);
                        return report;
                    }
                    // The declared expectation stands: a fatal run
                    // reports honestly as truncated.
                    SinkMsg::Fatal => return report,
                }
            }
            report
        })
    };

    // --- adaptation --------------------------------------------------
    let adaptation = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || adaptation_thread(shared, aloop))
    };

    let cache = RouteCache::new(&shared);
    let batch_size = cfg.batch_size.max(1);
    EngineSession {
        shared,
        credits,
        owns_pool,
        collector: Some(collector),
        adaptation: Some(adaptation),
        out_rx,
        events: cfg.hooks.events.clone(),
        cache,
        pending: Vec::with_capacity(batch_size),
        batch_size,
        inbuf: VecDeque::new(),
        pushed: 0,
        closed: false,
        preserve_order: cfg.preserve_order,
        reorder: BTreeMap::new(),
        next_seq: 0,
        _types: PhantomData,
    }
}

/// Runs `pipeline` over `inputs` on the configured virtual nodes.
///
/// This is the threaded *backend* batch entry point; applications
/// should prefer the unified `adapipe::api::Pipeline` builder, which
/// delegates here via `Backend::Threads`.
///
/// # Panics
/// Panics if the initial mapping references unknown nodes or covers the
/// wrong number of stages.
pub fn execute<I, O>(
    pipeline: Pipeline<I, O>,
    inputs: Vec<I>,
    cfg: &EngineConfig,
) -> EngineOutcome<O>
where
    I: Send + 'static,
    O: Send + 'static,
{
    let n_items = inputs.len() as u64;
    let mut it = inputs.into_iter();
    execute_fed(
        pipeline,
        n_items,
        move |_| it.next().expect("iterator covers n_items"),
        cfg,
    )
}

/// Like [`execute`], but draws each input lazily from `feed` at its
/// scheduled arrival time — memory stays proportional to the in-flight
/// window, not the whole stream, which matters for paced open streams
/// of large items.
///
/// Batch execution is sugar over the streaming session: [`spawn`], feed
/// the arrival schedule (pacing the pushes against the wall clock),
/// [`EngineSession::drain`].
///
/// # Panics
/// Panics if the initial mapping references unknown nodes or covers the
/// wrong number of stages.
pub fn execute_fed<I, O, F>(
    pipeline: Pipeline<I, O>,
    n_items: u64,
    feed: F,
    cfg: &EngineConfig,
) -> EngineOutcome<O>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(u64) -> I + Send + 'static,
{
    let mut session = spawn(pipeline, cfg, n_items);
    let mut feed = feed;
    match cfg.effective_arrivals() {
        // Everything is due at t = 0: feed the whole stream through the
        // batched envelope path in one call.
        ArrivalProcess::AllAtOnce => {
            session
                .push_batch((0..n_items).map(&mut feed))
                .expect("batch feed pushes into an open session");
        }
        // Stream the backend-independent arrival schedule (O(1) state)
        // and pace the pushes against the wall clock with it — the
        // exact times the simulator would turn into arrival events.
        // Inputs are drawn from the feed only when their slot comes up.
        arrivals => {
            let mut arrivals = arrivals.stream();
            let epoch = session.epoch();
            for seq in 0..n_items {
                let at = arrivals
                    .next()
                    .expect("arrival stream is infinite")
                    .as_secs_f64();
                if at > 0.0 {
                    let due = epoch + Duration::from_secs_f64(at);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                session
                    .push(feed(seq))
                    .expect("paced feed pushes into an open session");
            }
        }
    }
    session.drain()
}

/// A worker's thread-local view of one tenant: its stage instances,
/// parked envelopes, routing cache, and accounting (flushed into
/// `Shared::accs` when the tenant detaches).
struct TenantLocal {
    tenant: Arc<Shared>,
    /// Held stage instances, keyed by `(stage, slot)` — slot is the
    /// shard for keyed stages and `0` for everything else.
    local: HashMap<(usize, usize), Box<dyn DynStage>>,
    /// Parked envelopes per `(stage, slot)`: the instance is in transit
    /// (migration), or this vnode is down and the items await rescue.
    waiting: HashMap<(usize, usize), VecDeque<Envelope>>,
    cache: RouteCache,
    busy: Duration,
    metrics: adapipe_core::metrics::StageMetrics,
    /// Stage-fusion plan and stamp strides, refreshed lazily per
    /// routing epoch.
    fusion: FusionPlan,
}

impl TenantLocal {
    fn new(tenant: Arc<Shared>) -> Self {
        let cache = RouteCache::new(&tenant);
        let ns = tenant.spec.len();
        TenantLocal {
            tenant,
            local: HashMap::new(),
            waiting: HashMap::new(),
            cache,
            busy: Duration::ZERO,
            metrics: adapipe_core::metrics::StageMetrics::new(ns),
            fusion: FusionPlan::new(ns),
        }
    }

    /// Flushes this worker's accounting for the tenant into the shared
    /// per-worker slot (detach / worker exit).
    fn flush_acc(self, me: usize) {
        let mut acc = self.tenant.accs[me]
            .lock()
            .expect("worker accounting poisoned");
        acc.busy += self.busy;
        match &mut acc.metrics {
            Some(m) => m.absorb(&self.metrics),
            None => acc.metrics = Some(self.metrics),
        }
    }
}

/// Worker body: serve envelopes for every attached tenant, honour
/// migrations, account busy time per tenant. Blocks on the inbox
/// (stealing from siblings before sleeping); the only exit is the
/// [`Ctrl::Shutdown`] sentinel (or the pool's done flag).
fn worker_loop(me: usize, pool: Arc<Pool>) {
    let mut tenants: HashMap<u64, TenantLocal> = HashMap::new();

    loop {
        let msg = next_msg(me, &pool);
        // Pool teardown discards every backlog: the flag is raised
        // before the Shutdown sentinels, so a worker deep in queued work
        // exits here instead of serving the rest of its inbox first.
        if pool.done.load(Ordering::Relaxed) {
            break;
        }
        match msg {
            Msg::Work { tenant, env } => {
                // An aborted/fatally-failed tenant's backlog is
                // discarded, not served — its co-tenants keep running.
                if !tenant.done.load(Ordering::Relaxed) {
                    let tl = tenants
                        .entry(tenant.id)
                        .or_insert_with(|| TenantLocal::new(Arc::clone(&tenant)));
                    handle_work(me, env, tl);
                }
            }
            Msg::Ctrl(Ctrl::Relinquish { tenant, stage }) => {
                let tl = tenants
                    .entry(tenant.id)
                    .or_insert_with(|| TenantLocal::new(Arc::clone(&tenant)));
                relinquish(me, &pool, &tenant, stage, tl);
            }
            Msg::Ctrl(Ctrl::Wake) => {} // wake-up only; service below
            Msg::Ctrl(Ctrl::TenantGone { tenant }) => {
                // Detach: flush accounting, drop local state and the
                // inbox lane, then ack so teardown can read `accs`.
                if let Some(tl) = tenants.remove(&tenant.id) {
                    tl.flush_acc(me);
                }
                pool.inboxes[me].drop_lane(tenant.id);
                tenant.detached.fetch_add(1, Ordering::SeqCst);
            }
            Msg::Ctrl(Ctrl::Shutdown) => break,
        }
        // After every message, serve or re-route anything that became
        // actionable for any tenant: buffered items whose instance
        // landed in the depot, or whose stage has moved away meanwhile.
        for tl in tenants.values_mut() {
            if tl.tenant.done.load(Ordering::Relaxed) {
                // Aborted tenant: discard its parked backlog.
                tl.waiting.clear();
                continue;
            }
            serve_waiting(me, tl);
        }
    }
    // Pool shutdown with tenants still attached (cluster torn down
    // under live sessions): flush what accounting we have — their
    // teardown ack-waits escape on the pool flag.
    for (_, tl) in tenants.drain() {
        tl.flush_acc(me);
    }
}

/// Surrenders this worker's instances of `stage` for a migration — the
/// [`Ctrl::Relinquish`] a re-map commit sends to every old host. What
/// "surrender" means follows the stage's declared access pattern:
///
/// * **Stateless** — the replica is dropped; the depot keeps the
///   prototype and new hosts replicate their own.
/// * **Accumulator** — the local partial is snapshotted into the
///   stage's merge inbox for a surviving replica to absorb, then
///   dropped (the depot prototype seeds new replicas).
/// * **Keyed** — every locally-held shard instance is quiesced
///   (snapshot → fresh shell → restore, proving the state serializes)
///   and deposited in its shard's depot slot for the new owner.
/// * **Exclusive / Opaque** — the unique instance is quiesced and
///   deposited in slot 0; opaque closures cannot snapshot, so
///   [`quiesce`] passes the live box through unchanged.
///
/// Afterwards the stage's current hosts are woken: items they buffered
/// while the instance was in transit can be served now. The wake also
/// covers the case where this worker never held the instance (it sat in
/// the depot through a double migration) — the notification is
/// idempotent.
fn relinquish(me: usize, pool: &Pool, tenant: &Arc<Shared>, stage: usize, tl: &mut TenantLocal) {
    match tenant.spec.stages[stage].state {
        StateAccess::Stateless => {
            tl.local.remove(&(stage, 0));
            return; // nothing migrates; no one is blocked on a depot slot
        }
        StateAccess::Accumulator => {
            if let Some(mut inst) = tl.local.remove(&(stage, 0)) {
                if let Some(snap) = inst.snapshot() {
                    tenant.merge_inbox[stage]
                        .lock()
                        .expect("merge inbox poisoned")
                        .push(snap);
                }
            }
        }
        StateAccess::Keyed { shards } => {
            for shard in 0..shards {
                if let Some(inst) = tl.local.remove(&(stage, shard)) {
                    let (inst, _bytes) = quiesce(inst);
                    tenant.depot[stage][shard]
                        .lock()
                        .expect("depot lock poisoned")
                        .replace(inst);
                }
            }
        }
        StateAccess::Exclusive | StateAccess::Opaque => {
            if let Some(inst) = tl.local.remove(&(stage, 0)) {
                let (inst, _bytes) = quiesce(inst);
                tenant.depot[stage][0]
                    .lock()
                    .expect("depot lock poisoned")
                    .replace(inst);
            }
        }
    }
    let snap = tl.cache.current(tenant).clone();
    for &h in snap.hosts(stage) {
        if h.index() != me {
            pool.inboxes[h.index()].send_ctrl(Ctrl::Wake);
        }
    }
}

/// Blocks until a message is available for worker `me`: its own inbox
/// first, then a steal attempt across sibling inboxes, then a condvar
/// wait. The idle-flag protocol (see [`Inbox`]) guarantees a thief
/// woken by [`Inbox::wake_if_idle`] loops back to re-scan instead of
/// sleeping through the notification.
fn next_msg(me: usize, pool: &Pool) -> Msg {
    let inbox = &pool.inboxes[me];
    loop {
        if let Some(msg) = inbox.queue.lock().expect("inbox lock poisoned").pop() {
            return msg;
        }
        // Out of local work: advertise idleness, then go stealing.
        inbox.idle.store(true, Ordering::SeqCst);
        if let Some(msg) = try_steal(me, pool) {
            inbox.idle.store(false, Ordering::SeqCst);
            return msg;
        }
        let mut q = inbox.queue.lock().expect("inbox lock poisoned");
        loop {
            if let Some(msg) = q.pop() {
                inbox.idle.store(false, Ordering::SeqCst);
                return msg;
            }
            if !inbox.idle.load(Ordering::SeqCst) {
                break; // a sender cleared the flag: re-scan for steals
            }
            q = inbox.ready.wait(q).expect("inbox lock poisoned");
        }
    }
}

/// Scans sibling inboxes (lane tails, bounded) for a work envelope this
/// worker may legally serve: the stage must be stateless (stateful
/// instances are pinned), currently replicated onto this worker under
/// the owning tenant's *current* routing epoch (stale envelopes belong
/// to their addressee, which re-homes them on arrival). A down worker
/// never steals; down victims keep their backlog for the replay/rescue
/// path, which does the fault accounting. Stolen envelopes are not
/// charged to the lane's virtual clock — the thief was idle, so the
/// capacity was surplus.
fn try_steal(me: usize, pool: &Pool) -> Option<Msg> {
    if pool.is_down(me) {
        return None;
    }
    let np = pool.inboxes.len();
    for off in 1..np {
        let victim = (me + off) % np;
        if pool.is_down(victim) {
            continue;
        }
        // Never wait on a victim's lock: a missed steal is cheap, a
        // stalled thief is not.
        let Ok(mut q) = pool.inboxes[victim].queue.try_lock() else {
            continue;
        };
        for lane in &mut q.lanes {
            if lane.queue.is_empty() || lane.tenant.done.load(Ordering::Relaxed) {
                continue;
            }
            // The per-tenant snapshot read happens under the victim's
            // inbox lock; safe because no path takes an inbox lock
            // while holding a routing lock (remap commits and fault
            // hooks run after the adaptation loop released it).
            let snap = lane
                .tenant
                .routing
                .read()
                .expect("routing lock poisoned")
                .snapshot();
            let lo = lane.queue.len().saturating_sub(STEAL_SCAN);
            for i in (lo..lane.queue.len()).rev() {
                let env = &lane.queue[i];
                let stage = env.stage;
                if lane.tenant.spec.stages[stage].stateless
                    && env.epoch == snap.epoch()
                    && snap.contains(stage, NodeId(me))
                    && snap.hosts(stage).len() > 1
                {
                    let env = lane.queue.remove(i).expect("index in range");
                    lane.tenant.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(Msg::Work {
                        tenant: Arc::clone(&lane.tenant),
                        env,
                    });
                }
            }
        }
    }
    None
}

/// Serves one work envelope: re-homes it if this worker no longer hosts
/// the stage (stale epoch), re-deals it if this vnode is down, buffers
/// it if the stage instance is unavailable, and processes it otherwise.
fn handle_work(me: usize, env: Envelope, tl: &mut TenantLocal) {
    let TenantLocal {
        tenant: shared,
        local,
        waiting,
        cache,
        busy,
        metrics,
        fusion,
    } = tl;
    let stage = env.stage;
    let snap = cache.current(shared).clone();
    let hosted = snap.contains(stage, NodeId(me));
    let me_down = snap.is_down(NodeId(me));
    if !hosted {
        // The sender routed by a snapshot no newer than ours (the inbox
        // hand-off orders its epoch load before ours), and `contains`
        // is immutable per snapshot — so a current-epoch envelope
        // always lands on a current host. Arriving here proves the
        // envelope is stale: re-home it at the current epoch. Off a
        // down vnode this is a rescue (the stage moved away because
        // this node died) — each item counts as a replay.
        debug_assert_ne!(
            env.epoch,
            snap.epoch(),
            "current-epoch envelope delivered to a non-host of stage {stage}"
        );
        shared
            .rehomed
            .fetch_add(env.items.len() as u64, Ordering::Relaxed);
        if me_down {
            for slot in &env.items {
                shared.note_replay(slot.seq, stage, me);
            }
        }
        ship(shared, &snap, Some(me), stage, env.items);
        return;
    }
    let shards = shared.spec.stages[stage].state.shards();
    if shards > 0 {
        // Keyed stage: split the envelope per shard and serve each
        // shard against its own instance slot. A shard this worker no
        // longer owns (the envelope predates a shard re-balance) is
        // forwarded to its current owner; a shard owned by this *down*
        // vnode parks — its keys pin here until a re-map moves the
        // shard, whose Relinquish wake-up flushes the queue.
        let mut per_shard: Vec<(usize, Vec<ItemSlot>)> = Vec::new();
        for slot in env.items {
            let shard = shard_of(shared.key_hash(stage, &slot), shards);
            push_onward(&mut per_shard, shard, slot);
        }
        for (shard, items) in per_shard {
            let owner = snap.shard_owner(stage, shard);
            if owner.index() != me {
                shared
                    .rehomed
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                if me_down {
                    for slot in &items {
                        shared.note_replay(slot.seq, stage, me);
                    }
                }
                deliver_env(shared, &snap, Some(me), stage, owner.index(), items);
            } else if me_down
                || waiting.get(&(stage, shard)).is_some_and(|q| !q.is_empty())
                || !try_acquire(shared, local, stage, shard)
            {
                waiting
                    .entry((stage, shard))
                    .or_default()
                    .push_back(Envelope {
                        stage,
                        epoch: snap.epoch(),
                        items,
                    });
            } else {
                let env = Envelope {
                    stage,
                    epoch: snap.epoch(),
                    items,
                };
                *busy += process_batch(me, env, shard, shared, cache, local, metrics, fusion);
            }
        }
    } else if me_down {
        // This vnode is down: it must not serve. Re-deal what a live
        // replica can absorb; park the rest — the forced re-map will
        // move the stage away, and the Relinquish wake-up flushes the
        // queue.
        let parked = redeal(shared, &snap, me, stage, env.items);
        if !parked.is_empty() {
            waiting.entry((stage, 0)).or_default().push_back(Envelope {
                stage,
                epoch: snap.epoch(),
                items: parked,
            });
        }
    } else if waiting.get(&(stage, 0)).is_some_and(|q| !q.is_empty())
        || !try_acquire(shared, local, stage, 0)
    {
        waiting.entry((stage, 0)).or_default().push_back(env);
    } else {
        *busy += process_batch(me, env, 0, shared, cache, local, metrics, fusion);
    }
}

/// Re-deals a down vnode's items to live replicas (counted and
/// announced as replays), returning the remainder to park — every
/// replica is down, so only a re-map can rescue those, and the rescue
/// flush happens on the Relinquish wake-up that re-map sends here.
fn redeal(
    shared: &Arc<Shared>,
    snap: &RoutingSnapshot,
    me: usize,
    stage: usize,
    items: Vec<ItemSlot>,
) -> Vec<ItemSlot> {
    let np = shared.pool.inboxes.len();
    let mut buckets: Vec<Vec<ItemSlot>> = (0..np).map(|_| Vec::new()).collect();
    let mut parked = Vec::new();
    for slot in items {
        let dest = snap.route(stage);
        if dest.index() == me || snap.is_down(dest) {
            parked.push(slot);
        } else {
            shared.note_replay(slot.seq, stage, me);
            buckets[dest.index()].push(slot);
        }
    }
    for (dest, batch) in buckets.into_iter().enumerate() {
        if !batch.is_empty() {
            dispatch(
                shared,
                snap,
                dest,
                Envelope {
                    stage,
                    epoch: snap.epoch(),
                    items: batch,
                },
            );
        }
    }
    parked
}

/// Serves every waiting queue that became actionable: processes queues
/// whose stage instance is (now) acquirable, re-homes queues whose
/// stage is no longer hosted here, and — when this vnode is down —
/// re-deals buffered items to live replicas.
fn serve_waiting(me: usize, tl: &mut TenantLocal) {
    let TenantLocal {
        tenant: shared,
        local,
        waiting,
        cache,
        busy,
        metrics,
        fusion,
    } = tl;
    if waiting.is_empty() {
        return;
    }
    let slots: Vec<(usize, usize)> = waiting
        .iter()
        .filter(|(_, q)| !q.is_empty())
        .map(|(&k, _)| k)
        .collect();
    for (stage, slot) in slots {
        let snap = cache.current(shared).clone();
        let me_down = snap.is_down(NodeId(me));
        let keyed = shared.spec.stages[stage].state.shards() > 0;
        let owned = if keyed {
            // Shard ownership, not mere stage hosting: a co-host that
            // lost this shard in a re-balance must forward its backlog.
            snap.contains(stage, NodeId(me)) && snap.shard_owner(stage, slot).index() == me
        } else {
            snap.contains(stage, NodeId(me))
        };
        if !owned {
            // The stage (or this shard) moved away while these items
            // were buffered: ship them to the current owner. Off a down
            // vnode this is the post-re-map rescue — each item counts
            // as a replay.
            if let Some(queue) = waiting.remove(&(stage, slot)) {
                for env in queue {
                    if me_down {
                        for item in &env.items {
                            shared.note_replay(item.seq, stage, me);
                        }
                    }
                    ship(shared, &snap, Some(me), stage, env.items);
                }
            }
        } else if me_down {
            if keyed {
                // Keys pin to their shard owner: nothing can be
                // re-dealt — the backlog waits for the re-map to move
                // the shard, whose Relinquish wake-up lands here again.
                continue;
            }
            // Still hosted but down: re-deal whatever a live replica
            // can absorb; the rest stays parked for the re-map. The
            // snapshot is lock-free, so a deep stranded backlog cannot
            // contend the adaptation thread's recovery re-map.
            if let Some(queue) = waiting.get_mut(&(stage, slot)) {
                let mut parked = Vec::new();
                for env in queue.drain(..) {
                    parked.extend(redeal(shared, &snap, me, stage, env.items));
                }
                if !parked.is_empty() {
                    queue.push_back(Envelope {
                        stage,
                        epoch: snap.epoch(),
                        items: parked,
                    });
                }
            }
        } else if try_acquire(shared, local, stage, slot) {
            let queue = waiting
                .get_mut(&(stage, slot))
                .expect("slot has a waiting queue");
            let envs: Vec<Envelope> = queue.drain(..).collect();
            for env in envs {
                *busy += process_batch(me, env, slot, shared, cache, local, metrics, fusion);
            }
        }
    }
}

/// Ensures `local` holds an instance of `(stage, slot)`; true on
/// success. Stateless and accumulator stages replicate from the depot
/// prototype (every host gets its own replica / partial); keyed stages
/// take their shard's unique instance, exclusive and opaque stages the
/// stage's unique instance — `false` while a migration still has it in
/// transit (the previous host has not deposited it yet).
fn try_acquire(
    shared: &Shared,
    local: &mut HashMap<(usize, usize), Box<dyn DynStage>>,
    stage: usize,
    slot: usize,
) -> bool {
    if local.contains_key(&(stage, slot)) {
        return true;
    }
    match shared.spec.stages[stage].state {
        StateAccess::Stateless | StateAccess::Accumulator => {
            let proto = shared.depot[stage][0].lock().expect("depot lock poisoned");
            if let Some(proto) = proto.as_ref() {
                if let Some(replica) = proto.replicate() {
                    local.insert((stage, slot), replica);
                    return true;
                }
            }
            false
        }
        StateAccess::Keyed { .. } | StateAccess::Exclusive | StateAccess::Opaque => {
            let mut cell = shared.depot[stage][slot]
                .lock()
                .expect("depot lock poisoned");
            match cell.take() {
                Some(inst) => {
                    local.insert((stage, slot), inst);
                    true
                }
                None => false, // still held by the previous host
            }
        }
    }
}

/// Appends `slot` to the onward batch for `stage`, creating the bucket
/// on first use (from the buffer pool). Linear pipelines keep exactly
/// one bucket, so this is a length-1 scan — no per-item allocation.
fn push_onward(onward: &mut Vec<(usize, Vec<ItemSlot>)>, stage: usize, slot: ItemSlot) {
    match onward.iter_mut().find(|(s, _)| *s == stage) {
        Some((_, batch)) => batch.push(slot),
        None => {
            let mut batch = take_slot_buf(0);
            batch.push(slot);
            onward.push((stage, batch));
        }
    }
}

/// Deposits one branch output into join `block`'s slot `branch` for item
/// `seq`. Returns the assembled parts (branch order) when this deposit
/// completes the set; `None` while siblings are still outstanding — or
/// when the item already dead-lettered on another branch, in which case
/// the output is dropped rather than parked forever.
fn deposit_join(
    shared: &Shared,
    block: usize,
    branch: usize,
    seq: u64,
    out: BoxedItem,
) -> Option<Vec<BoxedItem>> {
    if shared.is_dead(seq) {
        return None;
    }
    let mut joins = shared.joins[block].lock().expect("join lock poisoned");
    let k = shared.spec.graph.branch_count(block);
    let slots = joins
        .entry(seq)
        .or_insert_with(|| (0..k).map(|_| None).collect());
    slots[branch] = Some(out);
    if slots.iter().all(Option::is_some) {
        let parts: Vec<BoxedItem> = joins
            .remove(&seq)
            .expect("slots just inserted")
            .into_iter()
            .map(|p| p.expect("all branches present"))
            .collect();
        Some(parts)
    } else {
        None
    }
}

/// Outcome of one item's trip through a stage under a non-default
/// [`adapipe_runtime::session::ResiliencePolicy`].
enum ResilientOut {
    /// The stage produced an output, possibly after in-place retries.
    Done(BoxedItem),
    /// The item exhausted its retry budget and was diverted to the
    /// dead-letter channel; it takes no further part in the run.
    Dead,
    /// Unrecoverable failure — the session is already torn down; the
    /// worker must stop processing this tenant's batch.
    Fatal,
}

/// Runs one item through `inst` under `stage`'s resilience policy:
/// bounded in-place retries with exponential backoff on item-level
/// failures, observational per-attempt timeout accounting (a running
/// closure cannot be interrupted, so an overrun is counted, never
/// cancelled), opt-in per-hop tracing, and dead-letter diversion — or a
/// typed fatal error — once the budget is spent.
fn process_resilient(
    inst: &mut dyn DynStage,
    shared: &Arc<Shared>,
    stage: usize,
    seq: u64,
    mut payload: BoxedItem,
) -> ResilientOut {
    let policy = &shared.spec.stages[stage].resilience;
    let bound = policy
        .timeout
        .map(|t| Duration::from_secs_f64(t.as_secs_f64()));
    let mut attempt: u32 = 1;
    loop {
        let started = Instant::now();
        let result = inst.try_process(payload);
        if bound.is_some_and(|b| started.elapsed() > b) {
            shared.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        match result {
            Ok(out) => {
                if policy.trace {
                    shared.hooks.events.emit(RunEvent::ItemTrace {
                        session: SessionId(shared.id),
                        seq,
                        stage,
                        attempts: attempt,
                        at: shared.now(),
                    });
                }
                return ResilientOut::Done(out);
            }
            Err(StageError::Type(type_err)) => {
                shared.control.fail(RunError::StageTypeMismatch {
                    stage: type_err.stage,
                });
                fatal_teardown(shared);
                return ResilientOut::Fatal;
            }
            Err(StageError::Item { reason, item }) => {
                if attempt > policy.max_retries {
                    if policy.dead_letter {
                        shared.divert_dead(seq, stage, attempt, reason);
                        return ResilientOut::Dead;
                    }
                    // No dead-letter channel declared: a poison item is
                    // fatal for the session, with a typed error naming
                    // the stage and the give-up attempt count.
                    shared.control.fail(RunError::PoisonItem {
                        stage: shared.spec.stages[stage].name.clone(),
                        seq,
                        attempts: attempt,
                        reason,
                    });
                    fatal_teardown(shared);
                    return ResilientOut::Fatal;
                }
                shared.retries.fetch_add(1, Ordering::Relaxed);
                let delay = policy.backoff_delay(attempt);
                if delay.as_secs_f64() > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(delay.as_secs_f64()));
                }
                payload = item;
                attempt += 1;
            }
        }
    }
}

/// A worker's per-tenant stage-fusion plan, recomputed lazily per
/// routing epoch: which stage boundaries collapse into direct calls
/// inside [`process_batch`]'s loop — no envelope, no inbox hop, no
/// re-routing.
///
/// `next[s] = Some(t)` iff `s`'s sole linear successor `t` is
/// stateless with a default resilience policy and is currently mapped
/// to exactly this worker — then every output of `s` produced here is
/// necessarily an input of `t` here, and the hand-off can be a plain
/// function call. The structural in-degree-1 requirement is implied:
/// a multi-predecessor stage is reached through a fan-in
/// ([`Next::Join`] or a slotted fan-out edge), never through
/// [`Next::Stage`]. The *entry* stage of a fused chain may be stateful
/// or resilient (a chain starts wherever the envelope landed); only
/// the fused successors must be stateless and default-policy, so
/// retry/dead-letter accounting and state migration keep their exact
/// per-envelope semantics. The moment a re-map separates a pair (or
/// replicates the successor), the epoch bump invalidates the plan and
/// the boundary reverts to an envelope — un-fusing is automatic.
///
/// `stride` rides along because it is the other per-stage hot-path
/// knob: the adaptive clock-sampling window of [`process_batch`]'s
/// fast path. It deliberately survives epoch changes — a re-map does
/// not forget how coarse a stage's timing windows can safely be.
struct FusionPlan {
    /// Routing epoch `next` was computed for (`u64::MAX` = never).
    epoch: u64,
    next: Vec<Option<usize>>,
    stride: Vec<u32>,
}

impl FusionPlan {
    fn new(ns: usize) -> Self {
        FusionPlan {
            epoch: u64::MAX,
            next: vec![None; ns],
            stride: vec![1; ns],
        }
    }

    /// Recomputes the plan against `snap` if the epoch moved since the
    /// last refresh.
    fn refresh(&mut self, me: usize, shared: &Shared, snap: &RoutingSnapshot) {
        if self.epoch == snap.epoch() {
            return;
        }
        self.epoch = snap.epoch();
        for s in 0..self.next.len() {
            self.next[s] = match shared.spec.graph.after(s) {
                Next::Stage(t)
                    if shared.spec.stages[t].state == StateAccess::Stateless
                        && shared.spec.stages[t].resilience.is_default() =>
                {
                    let hosts = snap.hosts(t);
                    (hosts.len() == 1 && hosts[0].index() == me).then_some(t)
                }
                _ => None,
            };
        }
    }
}

/// Runs one payload through every instance of a fused chain in order.
/// With `samp`, each hop is clock-stamped and its duration written
/// there (the fast path measures one item per window this way to split
/// window time across the chain's stages). `None` means a type
/// mismatch: the session is already failed and torn down, and the
/// caller must abandon its batch.
fn run_chain(
    insts: &mut [Box<dyn DynStage>],
    shared: &Arc<Shared>,
    mut out: BoxedItem,
    samp: Option<&mut [Duration]>,
) -> Option<BoxedItem> {
    // A wrong-typed item is a pipeline assembly bug, but it must fail
    // the *session* with a typed error — not kill this worker thread
    // and hang everyone blocked on it.
    match samp {
        None => {
            for inst in insts.iter_mut() {
                match inst.process(out) {
                    Ok(o) => out = o,
                    Err(type_err) => {
                        shared.control.fail(RunError::StageTypeMismatch {
                            stage: type_err.stage,
                        });
                        fatal_teardown(shared);
                        return None;
                    }
                }
            }
        }
        Some(samp) => {
            let mut t_prev = Instant::now();
            for (ci, inst) in insts.iter_mut().enumerate() {
                match inst.process(out) {
                    Ok(o) => out = o,
                    Err(type_err) => {
                        shared.control.fail(RunError::StageTypeMismatch {
                            stage: type_err.stage,
                        });
                        fatal_teardown(shared);
                        return None;
                    }
                }
                let t_now = Instant::now();
                samp[ci] = t_now.duration_since(t_prev);
                t_prev = t_now;
            }
        }
    }
    Some(out)
}

/// Routes one stage output according to `after` — into the sink batch,
/// an onward per-stage batch, a fan-out duplication (plain and slotted
/// targets), or a join deposit. `Err(())` means a fan-out type
/// mismatch: the session is already failed and torn down, and the
/// caller must abandon the rest of its batch.
#[allow(clippy::too_many_arguments)]
fn dispatch_out(
    shared: &Arc<Shared>,
    after: &Next,
    seq: u64,
    born: Instant,
    done: Instant,
    out: BoxedItem,
    finished: &mut Vec<Finished>,
    onward: &mut Vec<(usize, Vec<ItemSlot>)>,
) -> Result<(), ()> {
    match after {
        Next::Done => finished.push(Finished {
            seq,
            born,
            done,
            payload: out,
        }),
        Next::Stage(next) => push_onward(
            onward,
            *next,
            ItemSlot {
                seq,
                born,
                payload: out,
            },
        ),
        Next::FanOut { block } => match (shared.fanouts[*block])(out) {
            Ok(parts) => {
                // Copies ship in edge order. A plain target gets its
                // copy as an ordinary envelope; a *slotted* target — a
                // DAG shortcut edge feeding a joining stage directly —
                // deposits the copy into that join's slot instead (the
                // joining stage must receive the assembled vector, not
                // a raw copy to process).
                let targets = shared.spec.graph.fan_targets(*block);
                for (i, payload) in parts.into_iter().enumerate() {
                    let target = &targets[i];
                    match target.slot {
                        None => push_onward(onward, target.stage, ItemSlot { seq, born, payload }),
                        Some(jslot) => {
                            let jblock = shared
                                .spec
                                .graph
                                .merge_block_of(target.stage)
                                .expect("slotted fan target joins");
                            if let Some(parts) = deposit_join(shared, jblock, jslot, seq, payload) {
                                push_onward(
                                    onward,
                                    target.stage,
                                    ItemSlot {
                                        seq,
                                        born,
                                        payload: Payload::new(parts),
                                    },
                                );
                            }
                        }
                    }
                }
            }
            Err(type_err) => {
                // Same contract as a stage-level mismatch: fail the
                // session typed, never kill the worker thread.
                shared.control.fail(RunError::StageTypeMismatch {
                    stage: type_err.stage,
                });
                fatal_teardown(shared);
                return Err(());
            }
        },
        Next::Join { block, branch } => {
            if let Some(parts) = deposit_join(shared, *block, *branch, seq, out) {
                push_onward(
                    onward,
                    shared.spec.graph.merge_of(*block),
                    ItemSlot {
                        seq,
                        born,
                        payload: Payload::new(parts),
                    },
                );
            }
        }
    }
    Ok(())
}

/// Runs every item of one envelope through its stage — and, when the
/// worker's [`FusionPlan`] fuses the stage with stateless successors
/// mapped solely here, straight through the whole chain in the same
/// loop, skipping the per-boundary envelope/inbox round-trip entirely.
/// Results ship onward in per-destination-stage batches (one sink
/// message per envelope that finished items). Returns occupied (busy)
/// time.
///
/// Two bookkeeping regimes:
///
/// * **Fast path** (entry stage has the default resilience policy and
///   the vnode can never throttle): the clock is read once per
///   *window* of [`FusionPlan`] stride items instead of per item, sink
///   stamps are fixed up at the window boundary, and service metrics
///   absorb each window as one exact-count batch
///   (`StageMetrics::record_batch`) — steady-state bookkeeping is
///   O(windows), not O(items). The stride adapts between 1 and
///   [`MAX_STAMP_STRIDE`] to keep windows in the
///   hundreds-of-microseconds band: cheap stages stop paying a clock
///   read per item, slow stages keep honest latency stamps. Fused
///   chains stamp one item per window hop-by-hop and split the
///   window's busy time across the chain's stages in those proportions
///   (counts and totals stay exact; the adaptation loop plans from
///   declared rates, so the report is the only consumer).
/// * **Slow path** (resilient entry stage, or a vnode with throttle
///   windows): exact per-item, per-hop accounting —
///   retry/backoff/dead-letter via [`process_resilient`] on the entry
///   hop, synthetic slowdown sleeps and individual service samples on
///   every hop.
#[allow(clippy::too_many_arguments)]
fn process_batch(
    me: usize,
    env: Envelope,
    slot: usize,
    shared: &Arc<Shared>,
    cache: &mut RouteCache,
    local: &mut HashMap<(usize, usize), Box<dyn DynStage>>,
    metrics: &mut adapipe_core::metrics::StageMetrics,
    fusion: &mut FusionPlan,
) -> Duration {
    let stage = env.stage;
    let snap = cache.current(shared).clone();
    fusion.refresh(me, shared, &snap);
    // The fused chain: the envelope's stage plus every successor the
    // plan fuses whose instance is acquirable right now. An instance
    // still in migration transit truncates the chain — those items
    // travel by envelope and buffer at the receiver, exactly as
    // unfused traffic would.
    let mut chain: Vec<usize> = vec![stage];
    {
        let mut s = stage;
        while let Some(t) = fusion.next[s] {
            if !try_acquire(shared, local, t, 0) {
                break;
            }
            chain.push(t);
            s = t;
        }
    }
    let after = shared.spec.graph.after(chain[chain.len() - 1]);
    let works: Vec<f64> = chain
        .iter()
        .map(|&s| shared.spec.stages[s].work.mean())
        .collect();
    // Each hop needs its own `&mut` inside the item loop: take the
    // chain's instances out of the map and reinsert them at the end.
    let mut insts: Vec<Box<dyn DynStage>> = chain
        .iter()
        .enumerate()
        .map(|(ci, &s)| {
            let key = (s, if ci == 0 { slot } else { 0 });
            local
                .remove(&key)
                .expect("instance acquired before process")
        })
        .collect();
    if shared.spec.stages[stage].state == StateAccess::Accumulator {
        // Absorb partials parked by replicas that vacated their hosts —
        // state migrated in via the stage's merge operator, before any
        // new item folds in.
        let pending: Vec<StateSnapshot> = shared.merge_inbox[stage]
            .lock()
            .expect("merge inbox poisoned")
            .drain(..)
            .collect();
        for snap in pending {
            insts[0].absorb(snap);
        }
    }
    let never_throttles = shared.pool.vnodes[me].never_throttles();
    let fast = never_throttles && shared.spec.stages[stage].resilience.is_default();
    let nseg = chain.len();
    let mut finished: Vec<Finished> = take_fin_buf();
    let mut onward: Vec<(usize, Vec<ItemSlot>)> = Vec::new();
    let mut busy = Duration::ZERO;
    let mut fused_hops: u64 = 0;
    let mut fatal = false;
    let mut items = env.items;
    let n = items.len();
    let mut it = items.drain(..);
    if fast {
        // Per-hop durations of the window's sampled item (fused chains
        // only; a chain of one skips per-hop stamping altogether).
        let mut samp = vec![Duration::ZERO; nseg];
        let mut idx = 0usize;
        let mut t_win = Instant::now();
        'windows: while idx < n {
            // An abort mid-batch (of this tenant or the whole pool)
            // drops the remainder — same contract as the discarded
            // inbox backlog (the report shows truncation). Checked per
            // window on this path.
            if shared.finished() {
                break;
            }
            let win = (fusion.stride[stage] as usize).min(n - idx);
            let win_fin_start = finished.len();
            let mut live: u64 = 0;
            let mut sampled = nseg == 1;
            for _ in 0..win {
                let slot = it.next().expect("window within batch");
                idx += 1;
                // A sibling branch may have dead-lettered this item
                // while this copy sat queued; its work is moot.
                if shared.is_dead(slot.seq) {
                    continue;
                }
                let out = if sampled {
                    run_chain(&mut insts, shared, slot.payload, None)
                } else {
                    sampled = true;
                    run_chain(&mut insts, shared, slot.payload, Some(&mut samp))
                };
                let Some(out) = out else {
                    fatal = true;
                    break 'windows;
                };
                live += 1;
                if dispatch_out(
                    shared,
                    &after,
                    slot.seq,
                    slot.born,
                    t_win,
                    out,
                    &mut finished,
                    &mut onward,
                )
                .is_err()
                {
                    fatal = true;
                    break 'windows;
                }
            }
            let t_end = Instant::now();
            let w = t_end.duration_since(t_win);
            busy += w;
            // Completed items take the window boundary as their sink
            // stamp: stamps stay non-decreasing, and the per-item
            // error is bounded by one window, which the stride
            // adaptation keeps short.
            for f in &mut finished[win_fin_start..] {
                f.done = t_end;
            }
            if live > 0 {
                let wsecs = w.as_secs_f64();
                if nseg == 1 {
                    metrics.record_batch(
                        stage,
                        SimDuration::from_secs_f64(wsecs),
                        live,
                        works[0] * live as f64,
                    );
                } else {
                    let total: f64 = samp.iter().map(Duration::as_secs_f64).sum();
                    for (ci, &cs) in chain.iter().enumerate() {
                        let frac = if total > 0.0 {
                            samp[ci].as_secs_f64() / total
                        } else {
                            1.0 / nseg as f64
                        };
                        metrics.record_batch(
                            cs,
                            SimDuration::from_secs_f64(wsecs * frac),
                            live,
                            works[ci] * live as f64,
                        );
                    }
                    fused_hops += (nseg as u64 - 1) * live;
                }
            }
            // Only full windows adapt the stride: a clipped tail
            // window is fast because it is short, not because the
            // stage is.
            if win == fusion.stride[stage] as usize {
                let stride = &mut fusion.stride[stage];
                if w < STRIDE_GROW_BELOW && *stride < MAX_STAMP_STRIDE {
                    *stride *= 2;
                } else if w > STRIDE_SHRINK_ABOVE && *stride > 1 {
                    *stride /= 2;
                }
            }
            t_win = t_end;
        }
        if fatal {
            busy += t_win.elapsed();
        }
    } else {
        let entry_resilient = !shared.spec.stages[stage].resilience.is_default();
        let mut t_start = Instant::now();
        'items: for slot in it.by_ref() {
            if shared.finished() {
                break;
            }
            if shared.is_dead(slot.seq) {
                continue;
            }
            let mut out = slot.payload;
            let mut done = t_start;
            for (ci, inst) in insts.iter_mut().enumerate() {
                let cs = chain[ci];
                if ci == 0 && entry_resilient {
                    match process_resilient(inst.as_mut(), shared, cs, slot.seq, out) {
                        ResilientOut::Done(o) => out = o,
                        ResilientOut::Dead => {
                            // Diverted to the dead-letter channel: the
                            // item is settled, nothing ships onward.
                            // The attempt time still counts as busy.
                            let t_end = Instant::now();
                            busy += t_end.duration_since(t_start);
                            t_start = t_end;
                            continue 'items;
                        }
                        ResilientOut::Fatal => {
                            busy += t_start.elapsed();
                            fatal = true;
                            break 'items;
                        }
                    }
                } else {
                    match inst.process(out) {
                        Ok(o) => out = o,
                        Err(type_err) => {
                            // Fail the session typed, never kill the
                            // worker thread (see `run_chain`).
                            shared.control.fail(RunError::StageTypeMismatch {
                                stage: type_err.stage,
                            });
                            fatal_teardown(shared);
                            busy += t_start.elapsed();
                            fatal = true;
                            break 'items;
                        }
                    }
                }
                let t_end = Instant::now();
                let compute = t_end.duration_since(t_start);
                t_start = t_end;
                done = t_end;
                let took = if never_throttles {
                    compute
                } else {
                    let started_at = SimTime::from_secs_f64(
                        t_end.duration_since(shared.pool.epoch).as_secs_f64(),
                    );
                    let sleep = shared.pool.vnodes[me].slowdown_sleep(compute, started_at);
                    if !sleep.is_zero() {
                        std::thread::sleep(sleep);
                        // The sleep must not be attributed to the next
                        // hop's compute window.
                        t_start = Instant::now();
                    }
                    compute + sleep
                };
                busy += took;
                metrics.record(
                    cs,
                    SimDuration::from_secs_f64(took.as_secs_f64()),
                    works[ci],
                );
            }
            if nseg > 1 {
                fused_hops += nseg as u64 - 1;
            }
            if dispatch_out(
                shared,
                &after,
                slot.seq,
                slot.born,
                done,
                out,
                &mut finished,
                &mut onward,
            )
            .is_err()
            {
                fatal = true;
                break;
            }
        }
    }
    // Dropping the drain clears any unprocessed remainder (abort /
    // fatal), so the buffer recycles empty with its payloads released.
    drop(it);
    put_slot_buf(items);
    for (ci, inst) in insts.into_iter().enumerate() {
        let key = (chain[ci], if ci == 0 { slot } else { 0 });
        local.insert(key, inst);
    }
    if fused_hops > 0 {
        shared.fused.fetch_add(fused_hops, Ordering::Relaxed);
    }
    if fatal || finished.is_empty() {
        // Fatal: nothing ships — the collector already received
        // `Fatal` and the report shows truncation.
        put_fin_buf(finished);
    } else {
        let _ = shared.sink.send(SinkMsg::Done(finished));
    }
    if fatal {
        for (_, batch) in onward {
            put_slot_buf(batch);
        }
    } else {
        for (next, batch) in onward {
            ship(shared, &snap, Some(me), next, batch);
        }
    }
    busy
}

/// The monitoring/adaptation thread: wakes `samples_per_interval` times
/// per adaptation interval to feed the shared loop an observation, and
/// once per interval lets it tick (plan/decide/re-map). Fault
/// transitions get their own wake-ups at their exact scheduled wall
/// offsets — even under `Policy::Static`, where no sampling runs but
/// nodes must still go down (and fatal losses must still surface).
fn adaptation_thread(shared: Arc<Shared>, mut aloop: AdaptationLoop) -> AdaptationOutcome {
    let sample_wall = aloop
        .sample_dt()
        .map(|dt| Duration::from_secs_f64(dt.as_secs_f64()));
    let divisions = aloop.samples_per_interval();
    let mut backend = EngineBackend {
        shared: Arc::clone(&shared),
    };

    let mut next_sample = sample_wall.map(|w| Instant::now() + w);
    let mut rounds: u32 = 0;
    'run: loop {
        let next_fault = aloop
            .next_fault_at()
            .map(|at| shared.pool.epoch + Duration::from_secs_f64(at.as_secs_f64()));
        let next_wake = match (next_sample, next_fault) {
            (Some(s), Some(f)) => s.min(f),
            (Some(s), None) => s,
            (None, Some(f)) => f,
            // Static policy and no further faults: nothing to do, ever.
            (None, None) => break 'run,
        };
        // Sleep in short slices so shutdown is prompt.
        while Instant::now() < next_wake {
            if shared.finished() {
                break 'run;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        if shared.finished() {
            break 'run;
        }

        if next_fault.is_some_and(|f| f <= Instant::now()) {
            let outcome = aloop.poll_faults(&mut backend, &shared.routing);
            if outcome.fatal {
                fatal_teardown(&shared);
                break 'run;
            }
        }
        if let Some(due) = next_sample {
            if due <= Instant::now() {
                next_sample = Some(due + sample_wall.expect("sample schedule implies width"));
                aloop.sample(&backend);
                rounds += 1;
                if rounds.is_multiple_of(divisions) {
                    // Planning happens once per interval; sensing every
                    // round. The tick also settles due fault transitions;
                    // an unrecoverable one latches the loop's fatal flag.
                    let _ = aloop.tick(&mut backend, &shared.routing);
                    if aloop.is_fatal() {
                        fatal_teardown(&shared);
                        break 'run;
                    }
                }
            }
        }
    }
    let (migrations, state_bytes_moved) = aloop.migration_totals();
    let (adaptations, planning_cycles) = aloop.finish();
    (adaptations, planning_cycles, migrations, state_bytes_moved)
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnode::spin_for;
    use adapipe_core::pipeline::PipelineBuilder;
    use adapipe_core::spec::StageSpec;
    use adapipe_gridsim::load::LoadModel;
    use adapipe_gridsim::node::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    /// A stage spinning for `ms` milliseconds per item.
    fn spin_stage(name: &str, ms: u64) -> (StageSpec, impl FnMut(u64) -> u64 + Send + Clone) {
        (
            StageSpec::balanced(name, ms as f64 / 1000.0, 8),
            move |x: u64| {
                spin_for(Duration::from_millis(ms));
                x + 1
            },
        )
    }

    fn free_nodes(k: usize) -> Vec<VNodeSpec> {
        (0..k).map(|i| VNodeSpec::free(format!("v{i}"))).collect()
    }

    /// Wall-clock speedup assertions need real hardware parallelism; on
    /// an undersized host only correctness is asserted.
    fn multicore(k: usize) -> bool {
        std::thread::available_parallelism()
            .map(|p| p.get() >= k)
            .unwrap_or(false)
    }

    #[test]
    fn outputs_are_complete_and_ordered() {
        let (s0, f0) = spin_stage("a", 1);
        let (s1, f1) = spin_stage("b", 1);
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(s0, f0)
            .stage(s1, f1)
            .build();
        let cfg = EngineConfig::new(free_nodes(2));
        let inputs: Vec<u64> = (0..50).collect();
        let outcome = execute(pipeline, inputs, &cfg);
        assert_eq!(outcome.report.completed, 50);
        assert!(!outcome.report.truncated);
        // Each item passed both stages exactly once: x + 2, in order.
        let expect: Vec<u64> = (0..50).map(|x| x + 2).collect();
        assert_eq!(outcome.outputs, expect);
    }

    #[test]
    fn session_streams_outputs_while_pushing() {
        let (s0, f0) = spin_stage("a", 1);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let cfg = EngineConfig::new(free_nodes(2));
        let mut session = spawn(pipeline, &cfg, 20);
        let mut got = Vec::new();
        for i in 0..20u64 {
            session.push(i).unwrap();
            // Interleave pulls with pushes — the pipeline is live.
            if let TryNext::Item(o) = session.try_next() {
                got.push(o);
            }
        }
        assert!(session.in_flight() <= 20);
        let outcome = session.drain();
        got.extend(outcome.outputs);
        assert_eq!(got, (1..=20).collect::<Vec<_>>());
        assert_eq!(outcome.report.completed, 20);
        assert!(!outcome.report.truncated);
    }

    #[test]
    fn session_next_blocks_until_each_output() {
        let (s0, f0) = spin_stage("a", 1);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let cfg = EngineConfig::new(free_nodes(1));
        let mut session = spawn(pipeline, &cfg, 5);
        for i in 0..5u64 {
            session.push(i).unwrap();
        }
        session.close();
        let mut got = Vec::new();
        for o in session.by_ref() {
            got.push(o);
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        let outcome = session.drain();
        assert!(outcome.outputs.is_empty(), "everything already pulled");
        assert_eq!(outcome.report.completed, 5);
    }

    #[test]
    fn bounded_session_blocks_push_under_stall() {
        // capacity 1 over a 1-stage pipeline ⇒ 2 in-flight slots. The
        // stage takes ≥ 20 ms per item, so pushing 8 items must block
        // the source for roughly (8 − 2) × 20 ms.
        let (s0, f0) = spin_stage("slow", 20);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let mut cfg = EngineConfig::new(free_nodes(1));
        cfg.queue_capacity = Some(1);
        let events = cfg.hooks.events.subscribe();
        let mut session = spawn(pipeline, &cfg, 8);
        let t0 = Instant::now();
        for i in 0..8u64 {
            session.push(i).unwrap();
        }
        let pushing = t0.elapsed();
        assert!(
            pushing >= Duration::from_millis(80),
            "8 pushes through 2 slots of a 20 ms stage took only {pushing:?}"
        );
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 8);
        assert_eq!(outcome.outputs, (1..=8).collect::<Vec<_>>());
        let stalls = events
            .try_iter()
            .filter(|e| matches!(e, RunEvent::BackpressureStall { .. }))
            .count();
        assert!(stalls >= 4, "expected repeated stalls, saw {stalls}");
    }

    #[test]
    fn abort_discards_backlog_instead_of_draining_it() {
        // 200 queued items of a 5 ms stage ≈ 1 s of backlog; abort must
        // return after at most the item in flight, not chew through it.
        let (s0, f0) = spin_stage("slow", 5);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let cfg = EngineConfig::new(free_nodes(1));
        let mut session = spawn(pipeline, &cfg, 200);
        for i in 0..200u64 {
            session.push(i).unwrap();
        }
        let t0 = Instant::now();
        let report = session.abort();
        let took = t0.elapsed();
        assert!(
            took < Duration::from_millis(400),
            "abort must not drain the ~1 s backlog, took {took:?}"
        );
        assert!(report.truncated);
    }

    #[test]
    fn dropping_a_session_reclaims_its_threads() {
        // A session abandoned without drain()/abort() (error path) must
        // shut its workers, collector, and adaptation thread down via
        // Drop — promptly, even with a deep backlog queued.
        let (s0, f0) = spin_stage("slow", 5);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let mut cfg = EngineConfig::new(free_nodes(2));
        cfg.policy = Policy::Periodic {
            interval: SimDuration::from_millis(100),
        };
        let mut session = spawn(pipeline, &cfg, 100);
        for i in 0..100u64 {
            session.push(i).unwrap();
        }
        let t0 = Instant::now();
        drop(session);
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "drop must join all threads without draining the backlog"
        );
    }

    #[test]
    fn abort_reports_truncation() {
        let (s0, f0) = spin_stage("slow", 20);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let cfg = EngineConfig::new(free_nodes(1));
        let mut session = spawn(pipeline, &cfg, 50);
        for i in 0..50u64 {
            session.push(i).unwrap();
        }
        let report = session.abort();
        assert!(
            report.truncated || report.completed == 50,
            "an aborted run either lost items (truncated) or got lucky"
        );
    }

    #[test]
    fn pipeline_parallelism_beats_sequential_time() {
        // 3 stages × 8 ms on 3 nodes: sequential would be n×24 ms; a
        // pipeline approaches n×8 ms.
        let (s0, f0) = spin_stage("a", 8);
        let (s1, f1) = spin_stage("b", 8);
        let (s2, f2) = spin_stage("c", 8);
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(s0, f0)
            .stage(s1, f1)
            .stage(s2, f2)
            .build();
        let mut cfg = EngineConfig::new(free_nodes(3));
        cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1), n(2)]));
        let items = 40u64;
        let outcome = execute(pipeline, (0..items).collect(), &cfg);
        assert_eq!(outcome.report.completed, items);
        if multicore(4) {
            let makespan = outcome.report.makespan.as_secs_f64();
            let sequential = items as f64 * 0.024;
            assert!(
                makespan < sequential * 0.75,
                "makespan {makespan:.3}s should be well under sequential {sequential:.3}s"
            );
        }
    }

    #[test]
    fn slow_vnode_slows_its_stage() {
        let (s0, f0) = spin_stage("a", 5);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        // Same stage on a full-speed vs a quarter-speed node.
        let mut fast_cfg = EngineConfig::new(vec![VNodeSpec::free("fast")]);
        fast_cfg.initial_mapping = Some(Mapping::all_on(n(0), 1));
        let mut slow_cfg = EngineConfig::new(vec![VNodeSpec::with_speed("slow", 0.25)]);
        slow_cfg.initial_mapping = Some(Mapping::all_on(n(0), 1));
        let fast = execute(
            PipelineBuilder::<u64>::new()
                .stage(spin_stage("a", 5).0, spin_stage("a", 5).1)
                .build(),
            (0..20).collect(),
            &fast_cfg,
        );
        let slow = execute(pipeline, (0..20).collect(), &slow_cfg);
        let ratio = slow.report.makespan.as_secs_f64() / fast.report.makespan.as_secs_f64();
        assert!(
            ratio > 2.0,
            "quarter-speed node should be ≳4× slower, measured ratio {ratio:.2}"
        );
    }

    #[test]
    fn stateful_stage_migrates_with_state_intact() {
        // A stateful running-sum stage must produce exactly-once,
        // order-insensitive totals even across a migration.
        let sum_spec = StageSpec::balanced("sum", 0.003, 8).with_state(8);
        let pipeline = PipelineBuilder::<u64>::new()
            .stateful_stage(sum_spec, {
                let mut acc = 0u64;
                move |x: u64| {
                    spin_for(Duration::from_millis(3));
                    acc += x;
                    acc
                }
            })
            .build();
        // The host collapses to 5 % almost immediately, so hundreds of
        // items remain when the controller first looks — migration is
        // unambiguously worthwhile.
        let vnodes = vec![
            VNodeSpec::free("v0").with_load(LoadModel::step(
                1.0,
                0.05,
                SimTime::from_secs_f64(0.1),
            )),
            VNodeSpec::free("v1"),
        ];
        let mut cfg = EngineConfig::new(vnodes);
        cfg.initial_mapping = Some(Mapping::all_on(n(0), 1));
        cfg.policy = Policy::Periodic {
            interval: SimDuration::from_millis(150),
        };
        let items: Vec<u64> = (1..=300).collect();
        let outcome = execute(pipeline, items, &cfg);
        assert_eq!(outcome.report.completed, 300);
        // The final (largest) accumulator value must be the total sum:
        // every item added exactly once.
        let max = outcome.outputs.iter().max().copied().unwrap();
        assert_eq!(max, 45150, "state lost or duplicated across migration");
        assert!(outcome.report.adaptation_count() >= 1);
    }

    #[test]
    fn vnode_crash_mid_run_loses_nothing() {
        // Stage "slow" starts pinned to v1; v1 crashes at 150 ms with a
        // deep backlog queued. The fault wake-up must mark it down,
        // force a re-map onto a live vnode, and replay the stranded
        // envelopes — every output delivered exactly once, in order.
        let (s0, f0) = spin_stage("slow", 4);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let mut cfg = EngineConfig::new(free_nodes(2));
        cfg.initial_mapping = Some(Mapping::all_on(n(1), 1));
        cfg.policy = Policy::Periodic {
            interval: SimDuration::from_millis(100),
        };
        cfg.faults = FaultPlan::new().crash(n(1), SimTime::from_secs_f64(0.15));
        let events = cfg.hooks.events.subscribe();
        let mut session = spawn(pipeline, &cfg, 100);
        for i in 0..100u64 {
            session.push(i).unwrap();
        }
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 100, "items lost to the crash");
        assert!(!outcome.report.truncated);
        assert_eq!(outcome.outputs, (1..=100).collect::<Vec<_>>());
        assert!(outcome.report.replays > 0, "backlog must replay");
        assert!(!outcome.report.final_mapping.nodes_used().contains(&n(1)));
        assert!(outcome.report.node_downtime[1] > SimDuration::ZERO);
        let seen: Vec<_> = events.try_iter().collect();
        assert!(seen
            .iter()
            .any(|e| matches!(e, RunEvent::NodeDown { node: 1, .. })));
        assert!(seen
            .iter()
            .any(|e| matches!(e, RunEvent::ItemReplayed { .. })));
    }

    #[test]
    fn branched_pipeline_joins_every_item_exactly_once() {
        use adapipe_core::spec::{PipelineSpec, StageGraph};
        use adapipe_core::stage::{fan_out_fn, FnStage, MergeStage};
        // (x+1 ‖ x*2) → sum, assembled from erased graph parts.
        let spec = PipelineSpec::with_graph(
            vec![
                StageSpec::balanced("a", 0.001, 8),
                StageSpec::balanced("b", 0.001, 8),
                StageSpec::balanced("join", 0.001, 8),
            ],
            StageGraph::builder().split(&[1, 1]).build(),
        );
        let stages: Vec<Box<dyn DynStage>> = vec![
            Box::new(FnStage::new("a", |x: u64| x + 1)),
            Box::new(FnStage::new("b", |x: u64| x * 2)),
            Box::new(MergeStage::new("join", |parts: Vec<u64>| {
                parts[0] * 1000 + parts[1]
            })),
        ];
        let pipeline: Pipeline<u64, u64> =
            Pipeline::from_graph_parts(spec, stages, vec![fan_out_fn::<u64>(2)]);
        let cfg = EngineConfig::new(free_nodes(3));
        let outcome = execute(pipeline, (0..100).collect(), &cfg);
        assert_eq!(outcome.report.completed, 100);
        assert!(!outcome.report.truncated);
        // Branch order is part of the merge contract: parts[0] is always
        // branch a, parts[1] always branch b.
        let expect: Vec<u64> = (0..100).map(|x| (x + 1) * 1000 + x * 2).collect();
        assert_eq!(outcome.outputs, expect);
    }

    #[test]
    fn wrong_typed_item_fails_session_with_typed_error() {
        // Assemble a deliberately mis-typed pipeline from erased parts:
        // the stage declares u64 but the session pushes strings. The
        // run must fail with StageTypeMismatch on the session — not
        // panic a worker thread and hang the drain.
        use adapipe_core::spec::StageSpec;
        use adapipe_core::stage::FnStage;
        let spec =
            adapipe_core::spec::PipelineSpec::new(vec![StageSpec::balanced("typed", 0.001, 8)]);
        let stages: Vec<Box<dyn DynStage>> = vec![Box::new(FnStage::new("typed", |x: u64| x + 1))];
        let pipeline: Pipeline<String, u64> = Pipeline::from_parts(spec, stages);
        let cfg = EngineConfig::new(free_nodes(1));
        let mut session = spawn(pipeline, &cfg, 4);
        for i in 0..4 {
            session.push(format!("item {i}")).unwrap();
        }
        // The failure is asynchronous; drain unwinds cleanly.
        let outcome = session.drain();
        assert!(outcome.report.truncated);
        assert!(outcome.report.completed < 4);
    }

    #[test]
    fn wrong_typed_item_error_is_readable_before_drain() {
        use adapipe_core::spec::StageSpec;
        use adapipe_core::stage::FnStage;
        let spec =
            adapipe_core::spec::PipelineSpec::new(vec![StageSpec::balanced("typed", 0.001, 8)]);
        let stages: Vec<Box<dyn DynStage>> = vec![Box::new(FnStage::new("typed", |x: u64| x + 1))];
        let pipeline: Pipeline<String, u64> = Pipeline::from_parts(spec, stages);
        let cfg = EngineConfig::new(free_nodes(1));
        let mut session = spawn(pipeline, &cfg, 1);
        session.push("oops".to_string()).unwrap();
        let t0 = Instant::now();
        while session.error().is_none() && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            session.error(),
            Some(RunError::StageTypeMismatch {
                stage: "typed".into()
            })
        );
        let _ = session.drain(); // unwinds, no hang
    }

    #[test]
    fn link_emulation_slows_cross_node_boundaries() {
        let mk_pipeline = || {
            let (s0, f0) = spin_stage("a", 1);
            let (s1, f1) = spin_stage("b", 1);
            let mut p = PipelineBuilder::<u64>::new().stage(s0, f0).stage(s1, f1);
            p = p.input_bytes(0);
            p.build()
        };
        let slow_link = Topology::uniform(2, LinkSpec::new(SimDuration::from_millis(10), 1e9));
        let mk_cfg = |emulate: bool| {
            let mut cfg = EngineConfig::new(free_nodes(2));
            cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1)]));
            cfg.topology = Some(slow_link.clone());
            cfg.emulate_links = emulate;
            cfg
        };
        let items = 30u64;
        let without = execute(mk_pipeline(), (0..items).collect(), &mk_cfg(false));
        let with = execute(mk_pipeline(), (0..items).collect(), &mk_cfg(true));
        assert_eq!(with.report.completed, items);
        // Each boundary crossing pays ≥ 10 ms of sender serialisation:
        // the emulated run must be visibly slower.
        assert!(
            with.report.makespan.as_secs_f64() > without.report.makespan.as_secs_f64() + 0.1,
            "emulated {} vs plain {}",
            with.report.makespan,
            without.report.makespan
        );
        let expect: Vec<u64> = (0..items).map(|x| x + 2).collect();
        assert_eq!(with.outputs, expect);
    }

    #[test]
    fn empty_input_returns_immediately() {
        let (s0, f0) = spin_stage("a", 1);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let cfg = EngineConfig::new(free_nodes(1));
        let outcome = execute(pipeline, vec![], &cfg);
        assert_eq!(outcome.report.completed, 0);
        assert!(outcome.outputs.is_empty());
    }

    #[test]
    fn pacing_limits_throughput() {
        let (s0, f0) = spin_stage("a", 1);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let mut cfg = EngineConfig::new(free_nodes(1));
        cfg.pacing_rate = Some(100.0); // 10 ms between items
        let outcome = execute(pipeline, (0..30).collect(), &cfg);
        // 30 items at 100/s ≥ 0.29 s regardless of stage speed.
        assert!(outcome.report.makespan.as_secs_f64() > 0.25);
        assert_eq!(outcome.report.completed, 30);
    }

    #[test]
    fn replicated_hot_stage_uses_multiple_nodes() {
        // One 10 ms stage, 3 nodes: the planner should replicate it, and
        // the engine must produce exactly-once outputs anyway.
        let (s0, f0) = spin_stage("hot", 10);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let cfg = EngineConfig::new(free_nodes(3));
        let outcome = execute(pipeline, (0..60).collect(), &cfg);
        assert_eq!(outcome.report.completed, 60);
        let expect: Vec<u64> = (0..60).map(|x| x + 1).collect();
        assert_eq!(outcome.outputs, expect);
        // With ≥2 replicas the makespan beats the single-node 600 ms —
        // only observable with real hardware parallelism.
        if multicore(4) && outcome.report.final_mapping.placement(0).width() > 1 {
            assert!(outcome.report.makespan.as_secs_f64() < 0.55);
        }
    }

    #[test]
    fn batched_envelopes_preserve_order_and_exactly_once() {
        // batch_size 16 over a 2-stage pipeline: outputs must be the
        // same complete ordered stream the per-item wire produces.
        let (s0, f0) = spin_stage("a", 1);
        let (s1, f1) = spin_stage("b", 1);
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(s0, f0)
            .stage(s1, f1)
            .build();
        let mut cfg = EngineConfig::new(free_nodes(2));
        cfg.batch_size = 16;
        let outcome = execute(pipeline, (0..100).collect(), &cfg);
        assert_eq!(outcome.report.completed, 100);
        assert!(!outcome.report.truncated);
        let expect: Vec<u64> = (0..100).map(|x| x + 2).collect();
        assert_eq!(outcome.outputs, expect);
    }

    #[test]
    fn batched_branched_pipeline_joins_exactly_once() {
        use adapipe_core::spec::{PipelineSpec, StageGraph};
        use adapipe_core::stage::{fan_out_fn, FnStage, MergeStage};
        // Fan-out/join with batch_size 8: per-item fan-out and join
        // accounting inside batches must not lose or duplicate parts.
        let spec = PipelineSpec::with_graph(
            vec![
                StageSpec::balanced("a", 0.001, 8),
                StageSpec::balanced("b", 0.001, 8),
                StageSpec::balanced("join", 0.001, 8),
            ],
            StageGraph::builder().split(&[1, 1]).build(),
        );
        let stages: Vec<Box<dyn DynStage>> = vec![
            Box::new(FnStage::new("a", |x: u64| x + 1)),
            Box::new(FnStage::new("b", |x: u64| x * 2)),
            Box::new(MergeStage::new("join", |parts: Vec<u64>| {
                parts[0] * 1000 + parts[1]
            })),
        ];
        let pipeline: Pipeline<u64, u64> =
            Pipeline::from_graph_parts(spec, stages, vec![fan_out_fn::<u64>(2)]);
        let mut cfg = EngineConfig::new(free_nodes(3));
        cfg.batch_size = 8;
        let outcome = execute(pipeline, (0..100).collect(), &cfg);
        assert_eq!(outcome.report.completed, 100);
        let expect: Vec<u64> = (0..100).map(|x| (x + 1) * 1000 + x * 2).collect();
        assert_eq!(outcome.outputs, expect);
    }

    #[test]
    fn push_batch_respects_bounded_credits() {
        // batch_size 8 against a 2-slot in-flight window: push_batch
        // must flush buffered input before blocking on the credit gate
        // (buffered items hold credits only completions can return) —
        // anything else deadlocks here.
        let (s0, f0) = spin_stage("slow", 2);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let mut cfg = EngineConfig::new(free_nodes(1));
        cfg.queue_capacity = Some(1);
        cfg.batch_size = 8;
        let mut session = spawn(pipeline, &cfg, 50);
        let pushed = session.push_batch(0..50u64).unwrap();
        assert_eq!(pushed, 50);
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 50);
        assert_eq!(outcome.outputs, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn pending_input_flushes_on_output_interaction() {
        // 3 items buffered under a batch_size far larger than the
        // stream: next() must flush them or it would wait forever.
        let (s0, f0) = spin_stage("a", 1);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let mut cfg = EngineConfig::new(free_nodes(1));
        cfg.batch_size = 64;
        let mut session = spawn(pipeline, &cfg, 3);
        for i in 0..3u64 {
            session.push(i).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(session.next().expect("pending input must flush"));
        }
        assert_eq!(got, vec![1, 2, 3]);
        session.close();
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 3);
    }

    #[test]
    fn idle_replica_steals_from_a_loaded_sibling() {
        use adapipe_mapper::mapping::Placement;
        // One stateless stage replicated on a quarter-speed and a free
        // vnode. Round-robin deals half the stream to each; the fast
        // replica drains its share early and must steal from the slow
        // one's backlog instead of idling. Exactly-once and ordering
        // must survive the steals.
        let (s0, f0) = spin_stage("hot", 2);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let mut cfg = EngineConfig::new(vec![
            VNodeSpec::with_speed("slow", 0.25),
            VNodeSpec::free("fast"),
        ]);
        cfg.initial_mapping = Some(Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]));
        let mut session = spawn(pipeline, &cfg, 40);
        for i in 0..40u64 {
            session.push(i).unwrap();
        }
        session.close();
        let mut got = Vec::new();
        for o in session.by_ref() {
            got.push(o);
        }
        assert_eq!(got, (1..=40).collect::<Vec<_>>());
        assert!(
            session.steals() > 0,
            "fast replica should have stolen from the slow one's backlog"
        );
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 40);
        assert!(!outcome.report.truncated);
    }

    #[test]
    fn fused_colocated_chain_is_item_identical_to_spread() {
        use adapipe_runtime::session::ResiliencePolicy;
        // Three cheap stateless stages. Coalesced on one vnode the
        // fusion plan collapses both boundaries into direct calls
        // (counted per hop); spread over three vnodes nothing may
        // fuse. Outputs must be bit-identical either way.
        let build = || {
            PipelineBuilder::<u64>::new()
                .stage(StageSpec::balanced("a", 0.001, 8), |x: u64| x + 1)
                .stage(StageSpec::balanced("b", 0.001, 8), |x: u64| x * 3)
                .stage(StageSpec::balanced("c", 0.001, 8), |x: u64| x - 2)
                .build()
        };
        let expect: Vec<u64> = (0..500u64).map(|x| (x + 1) * 3 - 2).collect();

        let mut co_cfg = EngineConfig::new(free_nodes(1));
        co_cfg.initial_mapping = Some(Mapping::all_on(n(0), 3));
        let mut session = spawn(build(), &co_cfg, 500);
        for i in 0..500u64 {
            session.push(i).unwrap();
        }
        session.close();
        let got: Vec<u64> = session.by_ref().collect();
        assert_eq!(got, expect);
        assert!(
            session.fused_hops() > 0,
            "co-located stateless chain must fuse"
        );
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 500);
        assert!(!outcome.report.truncated);

        let mut sp_cfg = EngineConfig::new(free_nodes(3));
        sp_cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1), n(2)]));
        let mut session = spawn(build(), &sp_cfg, 500);
        for i in 0..500u64 {
            session.push(i).unwrap();
        }
        session.close();
        let got: Vec<u64> = session.by_ref().collect();
        assert_eq!(got, expect);
        assert_eq!(
            session.fused_hops(),
            0,
            "cross-node boundaries must not fuse"
        );
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 500);

        // A resilient *entry* stage still fuses into its stateless
        // successor (the slow path walks the chain per item), so the
        // retry bookkeeping on the entry hop costs nothing downstream.
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(
                StageSpec::balanced("a", 0.001, 8)
                    .with_resilience(ResiliencePolicy::new().retries(2)),
                |x: u64| x + 1,
            )
            .stage(StageSpec::balanced("b", 0.001, 8), |x: u64| x * 3)
            .build();
        let mut cfg = EngineConfig::new(free_nodes(1));
        cfg.initial_mapping = Some(Mapping::all_on(n(0), 2));
        let mut session = spawn(pipeline, &cfg, 100);
        for i in 0..100u64 {
            session.push(i).unwrap();
        }
        session.close();
        let got: Vec<u64> = session.by_ref().collect();
        assert_eq!(got, (0..100u64).map(|x| (x + 1) * 3).collect::<Vec<_>>());
        assert!(
            session.fused_hops() > 0,
            "resilient entry must not block fusing its successor"
        );
        session.drain();
    }

    #[test]
    fn stateful_or_resilient_successors_refuse_fusion() {
        use adapipe_runtime::session::ResiliencePolicy;
        // a → sum, co-located, but sum is stateful: fusing would route
        // items around the state-migration bookkeeping, so the plan
        // must refuse.
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(StageSpec::balanced("a", 0.001, 8), |x: u64| x + 1)
            .stateful_stage(StageSpec::balanced("sum", 0.001, 8).with_state(8), {
                let mut acc = 0u64;
                move |x: u64| {
                    acc += x;
                    acc
                }
            })
            .build();
        let mut cfg = EngineConfig::new(free_nodes(1));
        cfg.initial_mapping = Some(Mapping::all_on(n(0), 2));
        let mut session = spawn(pipeline, &cfg, 100);
        for i in 0..100u64 {
            session.push(i).unwrap();
        }
        session.close();
        let got: Vec<u64> = session.by_ref().collect();
        let max = got.iter().max().copied().unwrap();
        assert_eq!(max, (1..=100u64).sum::<u64>(), "sum lost or doubled");
        assert_eq!(session.fused_hops(), 0, "stateful successor fused");
        session.drain();

        // Same refusal for a resilient successor: its retry/dead-letter
        // accounting is per-envelope and must keep receiving envelopes.
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(StageSpec::balanced("a", 0.001, 8), |x: u64| x + 1)
            .stage(
                StageSpec::balanced("b", 0.001, 8)
                    .with_resilience(ResiliencePolicy::new().retries(2)),
                |x: u64| x * 2,
            )
            .build();
        let mut cfg = EngineConfig::new(free_nodes(1));
        cfg.initial_mapping = Some(Mapping::all_on(n(0), 2));
        let mut session = spawn(pipeline, &cfg, 100);
        for i in 0..100u64 {
            session.push(i).unwrap();
        }
        session.close();
        let got: Vec<u64> = session.by_ref().collect();
        assert_eq!(got, (0..100u64).map(|x| (x + 1) * 2).collect::<Vec<_>>());
        assert_eq!(session.fused_hops(), 0, "resilient successor fused");
        session.drain();
    }

    #[test]
    fn forced_remap_fuses_newly_colocated_stages() {
        // Stages start spread (nothing fuses); v1 crashes mid-run, the
        // forced re-map lands both stages on v0, and the refreshed plan
        // starts fusing — while replay keeps the stream exactly-once.
        let (s0, f0) = spin_stage("a", 2);
        let (s1, f1) = spin_stage("b", 2);
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(s0, f0)
            .stage(s1, f1)
            .build();
        let mut cfg = EngineConfig::new(free_nodes(2));
        cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1)]));
        cfg.policy = Policy::Periodic {
            interval: SimDuration::from_millis(100),
        };
        cfg.faults = FaultPlan::new().crash(n(1), SimTime::from_secs_f64(0.15));
        let mut session = spawn(pipeline, &cfg, 100);
        for i in 0..100u64 {
            session.push(i).unwrap();
        }
        session.close();
        let got: Vec<u64> = session.by_ref().collect();
        assert_eq!(got, (2..=101).collect::<Vec<_>>());
        assert!(
            session.fused_hops() > 0,
            "post-crash co-location must start fusing"
        );
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 100);
        assert!(!outcome.report.final_mapping.nodes_used().contains(&n(1)));
    }

    #[test]
    fn planner_unfuses_when_spreading_wins() {
        // Two equal spin stages start coalesced (fused); the periodic
        // controller finds that spreading doubles predicted throughput
        // — the fusion latency discount must not override the
        // bottleneck term — re-maps, and the plan un-fuses. Outputs
        // stay exact through the transition.
        let (s0, f0) = spin_stage("a", 3);
        let (s1, f1) = spin_stage("b", 3);
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(s0, f0)
            .stage(s1, f1)
            .build();
        let mut cfg = EngineConfig::new(free_nodes(2));
        cfg.initial_mapping = Some(Mapping::all_on(n(0), 2));
        cfg.policy = Policy::Periodic {
            interval: SimDuration::from_millis(100),
        };
        let mut session = spawn(pipeline, &cfg, 150);
        for i in 0..150u64 {
            session.push(i).unwrap();
        }
        session.close();
        let got: Vec<u64> = session.by_ref().collect();
        assert_eq!(got, (2..=151).collect::<Vec<_>>());
        assert!(
            session.fused_hops() > 0,
            "coalesced start must fuse until the re-map"
        );
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 150);
        assert!(
            outcome.report.adaptation_count() >= 1,
            "controller must discover the spread mapping"
        );
        assert_eq!(
            outcome.report.final_mapping.nodes_used().len(),
            2,
            "final mapping must be spread"
        );
    }

    #[test]
    fn push_after_close_returns_typed_error() {
        let (s0, f0) = spin_stage("a", 1);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let cfg = EngineConfig::new(free_nodes(1));
        let mut session = spawn(pipeline, &cfg, 2);
        session.push(1).unwrap();
        session.close();
        assert_eq!(session.push(2), Err(RunError::SessionClosed));
        assert_eq!(session.push_batch(3..5), Err(RunError::SessionClosed));
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 1, "rejected pushes never ran");
    }

    #[test]
    fn eviction_rejects_new_pushes_but_drains_in_flight() {
        let (s0, f0) = spin_stage("a", 1);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let cfg = EngineConfig::new(free_nodes(1));
        let mut session = spawn(pipeline, &cfg, 10);
        for i in 0..10u64 {
            session.push(i).unwrap();
        }
        let handle = session.tenant_handle();
        handle.begin_eviction();
        let id = session.session_id();
        assert_eq!(session.push(10), Err(RunError::Evicted { session: id }));
        // Graceful: everything already accepted still completes.
        let outcome = session.drain();
        assert_eq!(outcome.report.completed, 10);
        assert!(!outcome.report.truncated);
    }

    #[test]
    fn concurrent_tenants_share_one_pool_exactly_once() {
        // Three heterogeneous sessions attached to one 2-worker pool,
        // pushed interleaved: each must finish complete, ordered, and
        // isolated (disjoint transforms prove no cross-tenant leakage).
        let pool = Pool::launch(free_nodes(2), FaultPlan::new());
        let cfg = EngineConfig::new(free_nodes(2));
        let mk = |add: u64| {
            let (s0, _) = spin_stage("t", 1);
            PipelineBuilder::<u64>::new()
                .stage(s0, move |x: u64| {
                    spin_for(Duration::from_millis(1));
                    x + add
                })
                .build()
        };
        let mut a = attach(&pool, mk(100), &cfg, 30, false);
        let mut b = attach(&pool, mk(1000), &cfg, 30, false);
        let mut c = attach(&pool, mk(10000), &cfg, 30, false);
        assert_ne!(a.session_id(), b.session_id());
        for i in 0..30u64 {
            a.push(i).unwrap();
            b.push(i).unwrap();
            c.push(i).unwrap();
        }
        let (oa, ob, oc) = (a.drain(), b.drain(), c.drain());
        assert_eq!(oa.outputs, (0..30).map(|x| x + 100).collect::<Vec<_>>());
        assert_eq!(ob.outputs, (0..30).map(|x| x + 1000).collect::<Vec<_>>());
        assert_eq!(oc.outputs, (0..30).map(|x| x + 10000).collect::<Vec<_>>());
        assert!(!oa.report.truncated && !ob.report.truncated && !oc.report.truncated);
        pool.shutdown();
    }

    #[test]
    fn forced_eviction_leaves_co_tenants_running() {
        let pool = Pool::launch(free_nodes(2), FaultPlan::new());
        let cfg = EngineConfig::new(free_nodes(2));
        let (s0, f0) = spin_stage("keep", 1);
        let keep = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let (s1, f1) = spin_stage("goner", 2);
        let goner = PipelineBuilder::<u64>::new().stage(s1, f1).build();
        let mut survivor = attach(&pool, keep, &cfg, 40, false);
        let mut victim = attach(&pool, goner, &cfg, 200, false);
        for i in 0..200u64 {
            victim.push(i).unwrap();
        }
        let handle = victim.tenant_handle();
        handle.evict_now();
        assert_eq!(
            handle.error(),
            Some(RunError::Evicted {
                session: handle.session()
            })
        );
        let report = {
            // The evicted session unwinds truncated, promptly.
            let t0 = Instant::now();
            let outcome = victim.drain();
            assert!(t0.elapsed() < Duration::from_secs(2));
            outcome.report
        };
        assert!(report.truncated);
        // The co-tenant is unaffected: full exactly-once stream.
        for i in 0..40u64 {
            survivor.push(i).unwrap();
        }
        let outcome = survivor.drain();
        assert_eq!(outcome.outputs, (1..=40).collect::<Vec<_>>());
        assert!(!outcome.report.truncated);
        pool.shutdown();
    }

    #[test]
    fn weighted_shares_bias_worker_capacity() {
        // Two identical spin-heavy tenants flood one single-worker pool;
        // tenant A holds 4× the share of tenant B. Weighted-fair lane
        // service must let A finish its stream well before B finishes
        // its own (both streams are equal length).
        let pool = Pool::launch(free_nodes(1), FaultPlan::new());
        let cfg = EngineConfig::new(free_nodes(1));
        let mk = || {
            let (s0, f0) = spin_stage("w", 2);
            PipelineBuilder::<u64>::new().stage(s0, f0).build()
        };
        let mut a = attach(&pool, mk(), &cfg, 60, false);
        let mut b = attach(&pool, mk(), &cfg, 60, false);
        a.tenant_handle().set_share(0.8);
        b.tenant_handle().set_share(0.2);
        // Envelope-per-item keeps many envelopes queued per lane.
        for i in 0..60u64 {
            a.push(i).unwrap();
            b.push(i).unwrap();
        }
        a.close();
        b.close();
        let a_handle = a.tenant_handle();
        let b_handle = b.tenant_handle();
        // Wait until A's stream completes; B must still have backlog.
        let t0 = Instant::now();
        while a_handle.completed() < 60 && t0.elapsed() < Duration::from_secs(30) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(a_handle.completed(), 60, "high-share tenant finished");
        let b_done = b_handle.completed();
        assert!(
            b_done < 60,
            "low-share tenant should lag the high-share one (completed {b_done})"
        );
        let (oa, ob) = (a.drain(), b.drain());
        assert_eq!(oa.report.completed, 60);
        assert_eq!(ob.report.completed, 60);
        pool.shutdown();
    }
}
