//! Keyed-state scaling: a stage with *declared* keyed state may run as
//! wide as its shard count, so a latency-bound keyed stage (each item
//! holds its worker for a fixed service time, as any remote-call or
//! I/O-bound stage does) must scale with shards — the whole point of
//! declaring the access pattern instead of pinning the stage to one
//! host. The pair of rows measures the same 512-item keyed-counter
//! stream at 1 shard (pinned, the pre-declaration behaviour) and at
//! 4 shards over 4 vnodes; CI gates the 4-shard leg at >= 1.5x the
//! pinned throughput.
//!
//! `cargo bench -p adapipe-bench --bench state`
//!
//! Regenerate the committed baseline with:
//! `ADAPIPE_BENCH_JSON=$PWD/BENCH_state.json \
//!     cargo bench -p adapipe-bench --bench state`

use adapipe::api::{Backend, Pipeline, RunConfig};
use adapipe_core::spec::StageSpec;
use adapipe_engine::vnode::VNodeSpec;
use adapipe_gridsim::node::NodeId;
use adapipe_mapper::mapping::{Mapping, Placement};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const ITEMS: u64 = 512;
/// Per-item service time: a sleep, not a spin, so the bench measures
/// shard concurrency (latency-bound stage) rather than contending for
/// the single CI core with CPU-bound work.
const SERVICE: Duration = Duration::from_micros(200);

/// The keyed session counter from the README, at a declared shard
/// width. Keys are the raw item values, so items round-robin the
/// shards evenly.
fn keyed_pipeline(shards: usize) -> Pipeline<u64, (u64, u64)> {
    Pipeline::<u64>::builder()
        .keyed_stage_with(
            StageSpec::balanced("sessions", 0.0002, 8).with_keyed_state(shards, 64),
            |x: &u64| *x,
            || 0u64,
            |seen, x: u64| {
                std::thread::sleep(SERVICE);
                *seen += 1;
                (x, *seen)
            },
        )
        .feed(|i| i)
        .build()
        .expect("valid keyed pipeline")
}

fn vnodes(n: usize) -> Vec<VNodeSpec> {
    (0..n).map(|i| VNodeSpec::free(format!("v{i}"))).collect()
}

/// Launch mapping at the given stage width: the single-shard leg pins
/// to one host, the 4-shard leg starts shard-per-host so the bench
/// measures steady-state sharded throughput, not ramp-up planning.
fn launch_mapping(width: usize) -> Mapping {
    Mapping::new(vec![Placement::replicated(
        (0..width).map(NodeId).collect(),
    )])
}

fn run_keyed(shards: usize, width: usize) {
    let mut session = keyed_pipeline(shards)
        .spawn(
            Backend::Threads(vnodes(4)),
            RunConfig {
                items: ITEMS,
                initial_mapping: Some(launch_mapping(width)),
                ..RunConfig::default()
            },
        )
        .expect("spawn");
    for i in 0..ITEMS {
        session.push(i).unwrap();
    }
    let handle = session.drain();
    assert_eq!(handle.report.completed, ITEMS, "bench run lost items");
    assert_eq!(handle.error, None, "bench run errored");
}

fn bench_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("state");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    group.bench_with_input(BenchmarkId::new("keyed_1shard", ITEMS), &ITEMS, |b, _| {
        b.iter(|| run_keyed(1, 1))
    });
    group.bench_with_input(BenchmarkId::new("keyed_4shard", ITEMS), &ITEMS, |b, _| {
        b.iter(|| run_keyed(4, 4))
    });

    group.finish();
}

criterion_group!(benches, bench_state);
criterion_main!(benches);
