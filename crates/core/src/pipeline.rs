//! The typed pipeline builder — the user-facing skeleton API.
//!
//! ```
//! use adapipe_core::pipeline::PipelineBuilder;
//! use adapipe_core::spec::StageSpec;
//!
//! let pipeline = PipelineBuilder::<u32>::new()
//!     .stage(StageSpec::balanced("square", 1.0, 8), |x: u32| x * x)
//!     .stage(StageSpec::balanced("format", 0.5, 16), |x: u32| format!("{x}"))
//!     .build();
//! assert_eq!(pipeline.len(), 2);
//! ```
//!
//! The builder tracks the current item type at compile time: stage `i+1`
//! must accept exactly what stage `i` produces. `build` yields a
//! [`Pipeline`] bundling the erased stage functions with the
//! [`PipelineSpec`] metadata the planner needs.

use crate::spec::{PipelineSpec, StageSpec};
use crate::stage::{DynStage, FanOutFn, FnStage, KeyFn, KeyedStage, StatefulFnStage};
use adapipe_gridsim::node::NodeId;
use adapipe_state::StateCodec;
use std::marker::PhantomData;

/// A fully built, type-checked pipeline: erased stage functions plus the
/// cost metadata, and — when the spec's stage graph has parallel
/// blocks — one fan-out duplicator per block (in block order). Keyed
/// stages additionally carry their erased key extractor so the routing
/// hot path can pick the destination shard per item.
pub struct Pipeline<I, O> {
    spec: PipelineSpec,
    stages: Vec<Box<dyn DynStage>>,
    fanouts: Vec<FanOutFn>,
    keys: Vec<Option<KeyFn>>,
    _types: PhantomData<fn(I) -> O>,
}

impl<I, O> Pipeline<I, O> {
    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the pipeline has no stages (unbuildable via the builder).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The planner-facing metadata.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Splits a *linear* pipeline into its spec and stage functions —
    /// engines take ownership of both.
    ///
    /// # Panics
    /// Panics if the stage graph has parallel blocks (their fan-out
    /// duplicators would be lost); use [`Pipeline::into_graph_parts`].
    pub fn into_parts(self) -> (PipelineSpec, Vec<Box<dyn DynStage>>) {
        assert!(
            self.spec.graph.is_linear(),
            "branched pipelines split via into_graph_parts()"
        );
        (self.spec, self.stages)
    }

    /// Splits the pipeline into spec, stage functions, and the per-block
    /// fan-out duplicators (empty for linear pipelines). Per-stage key
    /// extractors are dropped; engines routing keyed stages take them
    /// via [`Pipeline::into_keyed_parts`].
    pub fn into_graph_parts(self) -> (PipelineSpec, Vec<Box<dyn DynStage>>, Vec<FanOutFn>) {
        (self.spec, self.stages, self.fanouts)
    }

    /// Splits the pipeline into every erased part, including the
    /// per-stage key extractors (`None` for unkeyed stages).
    #[allow(clippy::type_complexity)]
    pub fn into_keyed_parts(
        self,
    ) -> (
        PipelineSpec,
        Vec<Box<dyn DynStage>>,
        Vec<FanOutFn>,
        Vec<Option<KeyFn>>,
    ) {
        (self.spec, self.stages, self.fanouts, self.keys)
    }

    /// Per-stage key extractors (`None` for unkeyed stages).
    pub fn keys(&self) -> &[Option<KeyFn>] {
        &self.keys
    }

    /// Reassembles a *linear* pipeline from a spec and matching stage
    /// functions.
    ///
    /// The caller asserts the type discipline the builder normally
    /// enforces: stage `0` accepts `I`, each stage feeds the next, and
    /// the last produces `O`. The unified `adapipe::api` builder uses
    /// this to hand its (already type-checked) stages to an engine.
    ///
    /// # Panics
    /// Panics if `stages` is empty, its length disagrees with `spec`,
    /// or the spec's graph has parallel blocks (those need fan-out
    /// duplicators; use [`Pipeline::from_graph_parts`]).
    pub fn from_parts(spec: PipelineSpec, stages: Vec<Box<dyn DynStage>>) -> Self {
        assert!(
            spec.graph.is_linear(),
            "branched pipelines assemble via from_graph_parts()"
        );
        Self::from_graph_parts(spec, stages, Vec::new())
    }

    /// Reassembles a pipeline from a spec, matching stage functions, and
    /// one fan-out duplicator per parallel block of the spec's graph.
    /// The caller asserts the same type discipline as
    /// [`Pipeline::from_parts`], plus: each merge stage accepts the
    /// joined `Vec` of its branch outputs, and each fan-out duplicates
    /// the item type entering its block.
    ///
    /// # Panics
    /// Panics if `stages` is empty, its length disagrees with `spec`,
    /// or `fanouts` does not cover the graph's parallel blocks.
    pub fn from_graph_parts(
        spec: PipelineSpec,
        stages: Vec<Box<dyn DynStage>>,
        fanouts: Vec<FanOutFn>,
    ) -> Self {
        let keys = vec![None; stages.len()];
        Self::from_keyed_parts(spec, stages, fanouts, keys)
    }

    /// Reassembles a pipeline from every erased part, including the
    /// per-stage key extractors a keyed stage routes by. The caller
    /// asserts the type discipline of [`Pipeline::from_graph_parts`],
    /// plus: each `Some` key extractor accepts its stage's input type.
    ///
    /// # Panics
    /// Panics under the [`Pipeline::from_graph_parts`] conditions, or
    /// if `keys` does not cover every stage.
    pub fn from_keyed_parts(
        spec: PipelineSpec,
        stages: Vec<Box<dyn DynStage>>,
        fanouts: Vec<FanOutFn>,
        keys: Vec<Option<KeyFn>>,
    ) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        assert_eq!(spec.len(), stages.len(), "spec must cover every stage");
        assert_eq!(
            spec.graph.blocks(),
            fanouts.len(),
            "need one fan-out per parallel block"
        );
        assert_eq!(spec.len(), keys.len(), "keys must cover every stage");
        Pipeline {
            spec,
            stages,
            fanouts,
            keys,
            _types: PhantomData,
        }
    }
}

/// Builder for [`Pipeline`]; `Cur` is the item type flowing out of the
/// last stage added so far.
pub struct PipelineBuilder<In, Cur = In> {
    spec_stages: Vec<StageSpec>,
    stages: Vec<Box<dyn DynStage>>,
    keys: Vec<Option<KeyFn>>,
    input_bytes: u64,
    source: Option<NodeId>,
    sink: Option<NodeId>,
    _types: PhantomData<fn(In) -> Cur>,
}

impl<In: Send + 'static> PipelineBuilder<In, In> {
    /// Starts a pipeline whose inputs have type `In`.
    pub fn new() -> Self {
        PipelineBuilder {
            spec_stages: Vec::new(),
            stages: Vec::new(),
            keys: Vec::new(),
            input_bytes: 0,
            source: None,
            sink: None,
            _types: PhantomData,
        }
    }
}

impl<In: Send + 'static> Default for PipelineBuilder<In, In> {
    fn default() -> Self {
        Self::new()
    }
}

impl<In: Send + 'static, Cur: Send + 'static> PipelineBuilder<In, Cur> {
    /// Declares how many bytes each input item carries into stage 0.
    pub fn input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes = bytes;
        self
    }

    /// Pins the input source to a grid node (inputs pay the transfer
    /// from there to stage 0's host).
    pub fn source(mut self, node: NodeId) -> Self {
        self.source = Some(node);
        self
    }

    /// Pins the output sink to a grid node.
    pub fn sink(mut self, node: NodeId) -> Self {
        self.sink = Some(node);
        self
    }

    /// Appends a stateless stage. The closure must be `Clone` so the
    /// runtime can replicate the stage across nodes.
    ///
    /// # Panics
    /// Panics if `spec` is marked stateful — use
    /// [`PipelineBuilder::stateful_stage`] for stateful stages.
    pub fn stage<Out, F>(mut self, spec: StageSpec, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        assert!(
            spec.stateless,
            "stage '{}' is declared stateful; use stateful_stage()",
            spec.name
        );
        self.stages
            .push(Box::new(FnStage::new(spec.name.clone(), f)));
        self.spec_stages.push(spec);
        self.keys.push(None);
        PipelineBuilder {
            spec_stages: self.spec_stages,
            stages: self.stages,
            keys: self.keys,
            input_bytes: self.input_bytes,
            source: self.source,
            sink: self.sink,
            _types: PhantomData,
        }
    }

    /// Appends a stateful stage with *opaque* closure state: it will
    /// never be replicated, and a permanent loss of its host aborts the
    /// run. Prefer [`PipelineBuilder::keyed_stage`] (or the unified
    /// builder's declared-state methods) for state the runtime should
    /// be able to move.
    pub fn stateful_stage<Out, F>(mut self, spec: StageSpec, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + 'static,
    {
        let spec = if spec.stateless {
            spec.with_state(0)
        } else {
            spec
        };
        self.stages
            .push(Box::new(StatefulFnStage::new(spec.name.clone(), f)));
        self.spec_stages.push(spec);
        self.keys.push(None);
        PipelineBuilder {
            spec_stages: self.spec_stages,
            stages: self.stages,
            keys: self.keys,
            input_bytes: self.input_bytes,
            source: self.source,
            sink: self.sink,
            _types: PhantomData,
        }
    }

    /// Appends a stage with *keyed* state: `key` hashes each item to a
    /// state slice, `init` seeds a first-seen key's state `S`, and `f`
    /// transforms the item with mutable access to its key's state. The
    /// spec must declare the pattern (`with_keyed_state`): the declared
    /// shard count is what lets the stage replicate and migrate.
    ///
    /// # Panics
    /// Panics if `spec` does not declare keyed state.
    pub fn keyed_stage<Out, S, K, F>(
        mut self,
        spec: StageSpec,
        key: K,
        init: impl Fn() -> S + Send + Sync + 'static,
        f: F,
    ) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        S: StateCodec + Send + 'static,
        K: Fn(&Cur) -> u64 + Send + Sync + 'static,
        F: FnMut(&mut S, Cur) -> Out + Send + Clone + 'static,
    {
        assert!(
            spec.state.shards() > 0,
            "stage '{}' must declare keyed state (with_keyed_state)",
            spec.name
        );
        let stage = KeyedStage::new(spec.name.clone(), key, init, f);
        self.keys.push(Some(stage.routing_key()));
        self.stages.push(Box::new(stage));
        self.spec_stages.push(spec);
        PipelineBuilder {
            spec_stages: self.spec_stages,
            stages: self.stages,
            keys: self.keys,
            input_bytes: self.input_bytes,
            source: self.source,
            sink: self.sink,
            _types: PhantomData,
        }
    }

    /// Appends an already-erased stage (with optional routing key) under
    /// `spec`. The caller asserts the type discipline; the unified
    /// `adapipe::api` builder uses this for its declared-state stages.
    pub fn erased_stage<Out>(
        mut self,
        spec: StageSpec,
        stage: Box<dyn DynStage>,
        key: Option<KeyFn>,
    ) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
    {
        self.stages.push(stage);
        self.spec_stages.push(spec);
        self.keys.push(key);
        PipelineBuilder {
            spec_stages: self.spec_stages,
            stages: self.stages,
            keys: self.keys,
            input_bytes: self.input_bytes,
            source: self.source,
            sink: self.sink,
            _types: PhantomData,
        }
    }

    /// Finalises the pipeline.
    ///
    /// # Panics
    /// Panics if no stage was added.
    pub fn build(self) -> Pipeline<In, Cur> {
        assert!(!self.stages.is_empty(), "pipeline needs at least one stage");
        let mut spec = PipelineSpec::new(self.spec_stages);
        spec.input_bytes = self.input_bytes;
        spec.source = self.source;
        spec.sink = self.sink;
        Pipeline {
            spec,
            stages: self.stages,
            fanouts: Vec::new(),
            keys: self.keys,
            _types: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_types() {
        let p = PipelineBuilder::<u32>::new()
            .stage(StageSpec::balanced("inc", 1.0, 4), |x: u32| x + 1)
            .stage(StageSpec::balanced("to_str", 1.0, 16), |x: u32| {
                x.to_string()
            })
            .stage(StageSpec::balanced("len", 1.0, 8), |s: String| s.len())
            .build();
        assert_eq!(p.len(), 3);
        assert_eq!(p.spec().names(), vec!["inc", "to_str", "len"]);
    }

    #[test]
    fn stages_execute_in_order_when_driven_manually() {
        let p = PipelineBuilder::<u32>::new()
            .stage(StageSpec::balanced("inc", 1.0, 4), |x: u32| x + 1)
            .stage(StageSpec::balanced("double", 1.0, 4), |x: u32| x * 2)
            .build();
        let (_, mut stages) = p.into_parts();
        let mut item: crate::stage::BoxedItem = crate::payload::Payload::new(5u32);
        for s in &mut stages {
            item = s.process(item).expect("stages are type-aligned");
        }
        assert_eq!(item.downcast::<u32>().unwrap(), 12);
    }

    #[test]
    fn stateful_stage_keeps_state_and_refuses_replication() {
        let p = PipelineBuilder::<u64>::new()
            .stateful_stage(StageSpec::balanced("sum", 1.0, 8).with_state(8), {
                let mut acc = 0u64;
                move |x: u64| {
                    acc += x;
                    acc
                }
            })
            .build();
        assert_eq!(p.spec().profile().stateless, vec![false]);
        let (_, mut stages) = p.into_parts();
        assert!(stages[0].replicate().is_none());
        assert_eq!(
            stages[0]
                .process(crate::payload::Payload::new(2u64))
                .expect("typed item")
                .downcast::<u64>()
                .unwrap(),
            2
        );
        assert_eq!(
            stages[0]
                .process(crate::payload::Payload::new(3u64))
                .expect("typed item")
                .downcast::<u64>()
                .unwrap(),
            5
        );
    }

    #[test]
    fn builder_records_source_sink_and_input_bytes() {
        let p = PipelineBuilder::<u8>::new()
            .input_bytes(1024)
            .source(NodeId(0))
            .sink(NodeId(2))
            .stage(StageSpec::balanced("id", 1.0, 512), |x: u8| x)
            .build();
        let spec = p.spec();
        assert_eq!(spec.input_bytes, 1024);
        assert_eq!(spec.source, Some(NodeId(0)));
        assert_eq!(spec.sink, Some(NodeId(2)));
        let profile = spec.profile();
        assert_eq!(profile.boundary_bytes, vec![1024, 512]);
    }

    #[test]
    fn keyed_stage_builds_and_carries_its_key() {
        let p = PipelineBuilder::<u64>::new()
            .keyed_stage(
                StageSpec::balanced("count", 1.0, 8).with_keyed_state(4, 1024),
                |x: &u64| *x % 10,
                || 0u64,
                |n: &mut u64, x: u64| {
                    *n += 1;
                    (x, *n)
                },
            )
            .build();
        assert_eq!(p.spec().profile().replica_cap, vec![4]);
        let kf = p.keys()[0].clone().expect("keyed stage has a key fn");
        let item: crate::stage::BoxedItem = crate::payload::Payload::new(13u64);
        assert_eq!(kf(&item), Some(3));
        let (_, mut stages, _, keys) = p.into_keyed_parts();
        assert_eq!(keys.len(), 1);
        let out = stages[0]
            .process(crate::payload::Payload::new(13u64))
            .expect("typed item");
        assert_eq!(out.downcast::<(u64, u64)>().unwrap(), (13, 1));
    }

    #[test]
    #[should_panic(expected = "must declare keyed state")]
    fn keyed_stage_requires_the_declaration() {
        let _ = PipelineBuilder::<u64>::new().keyed_stage(
            StageSpec::balanced("k", 1.0, 0),
            |x: &u64| *x,
            || 0u64,
            |_: &mut u64, x: u64| x,
        );
    }

    #[test]
    #[should_panic(expected = "stateful")]
    fn stateless_api_rejects_stateful_spec() {
        let _ = PipelineBuilder::<u8>::new()
            .stage(StageSpec::balanced("x", 1.0, 0).with_state(64), |x: u8| x);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_build_panics() {
        let _ = PipelineBuilder::<u8>::new().build();
    }
}
