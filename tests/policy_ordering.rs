//! Cross-crate integration: the fundamental ordering claims of the paper
//! — oracle ≥ adaptive ≥ static under dynamic load — hold end-to-end in
//! simulation, across seeds and scenarios.

use adapipe::core::simengine::run as sim_run;
use adapipe::prelude::*;

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

fn run_policy(grid: &GridSpec, spec: &PipelineSpec, items: u64, policy: Policy) -> RunReport {
    let cfg = SimConfig {
        items,
        policy,
        ..SimConfig::default()
    };
    sim_run(grid, spec, &cfg)
}

/// Load step on one host: adaptive must end between oracle and static.
#[test]
fn ordering_under_load_step() {
    let interval = SimDuration::from_secs(5);
    for seed in [1u64, 2, 3] {
        let mut grid = testbed_hetero8(seed);
        // Hit the fastest node (which the planner will have used).
        FaultPlan::new()
            .slowdown(NodeId(0), secs(40.0), secs(1e6), 0.05)
            .apply(&mut grid);
        let spec = PipelineSpec::balanced(4, 2.0, 10_000);

        let static_r = run_policy(&grid, &spec, 400, Policy::Static);
        let adaptive_r = run_policy(&grid, &spec, 400, Policy::Periodic { interval });
        let oracle_r = run_policy(&grid, &spec, 400, Policy::Oracle { interval });

        assert_eq!(static_r.completed, 400);
        assert_eq!(adaptive_r.completed, 400);
        assert_eq!(oracle_r.completed, 400);
        assert!(
            adaptive_r.makespan.as_secs_f64() <= static_r.makespan.as_secs_f64() * 1.02,
            "seed {seed}: adaptive {} must not lose to static {}",
            adaptive_r.makespan,
            static_r.makespan
        );
        assert!(
            oracle_r.makespan.as_secs_f64() <= adaptive_r.makespan.as_secs_f64() * 1.10,
            "seed {seed}: oracle {} should be near-best vs adaptive {}",
            oracle_r.makespan,
            adaptive_r.makespan
        );
    }
}

/// On a *calm* grid adaptation must not thrash: the adaptive run stays
/// within a whisker of static (same mapping, zero or few remaps).
#[test]
fn no_thrashing_on_calm_grid() {
    let grid = testbed_small3();
    let spec = PipelineSpec::balanced(3, 1.0, 1000);
    let static_r = run_policy(&grid, &spec, 300, Policy::Static);
    let adaptive_r = run_policy(
        &grid,
        &spec,
        300,
        Policy::Periodic {
            interval: SimDuration::from_secs(5),
        },
    );
    assert_eq!(adaptive_r.adaptation_count(), 0, "nothing to adapt to");
    let ratio = adaptive_r.makespan.as_secs_f64() / static_r.makespan.as_secs_f64();
    assert!((0.98..1.02).contains(&ratio), "ratio={ratio}");
}

/// The analytic model predicts simulated makespan well on a static,
/// load-free grid (model validation, the basis of experiment T2).
#[test]
fn model_matches_simulation_on_static_grid() {
    let grid = testbed_small3();
    let spec = PipelineSpec::balanced(3, 2.0, 50_000);
    let profile = spec.profile();
    let mapping = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)]);
    let rates = grid.rates_at(SimTime::ZERO);
    let prediction = evaluate(&profile, &mapping, &rates, grid.topology());

    let items = 500u64;
    let report = sim_run(
        &grid,
        &spec,
        &SimConfig {
            items,
            initial_mapping: Some(mapping),
            ..SimConfig::default()
        },
    );
    let predicted = prediction.completion_time(items);
    let simulated = report.makespan.as_secs_f64();
    let err = (predicted - simulated).abs() / simulated;
    assert!(
        err < 0.05,
        "model {predicted:.1}s vs sim {simulated:.1}s (err {:.1}%)",
        err * 100.0
    );
}

/// Reactive planning runs fewer cycles than periodic but still recovers.
#[test]
fn reactive_is_lazier_but_recovers() {
    let interval = SimDuration::from_secs(5);
    let mut grid = testbed_small3();
    FaultPlan::new()
        .slowdown(NodeId(1), secs(50.0), secs(1e6), 0.05)
        .apply(&mut grid);
    let spec = PipelineSpec::balanced(3, 1.0, 0);
    let mapping = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)]);

    let mk = |policy| SimConfig {
        items: 500,
        policy,
        initial_mapping: Some(mapping.clone()),
        ..SimConfig::default()
    };
    let reactive = sim_run(
        &grid,
        &spec,
        &mk(Policy::Reactive {
            interval,
            degradation: 0.7,
        }),
    );
    let static_r = sim_run(&grid, &spec, &mk(Policy::Static));
    assert!(reactive.adaptation_count() >= 1);
    assert!(
        reactive.makespan.as_secs_f64() < 0.6 * static_r.makespan.as_secs_f64(),
        "reactive {} vs static {}",
        reactive.makespan,
        static_r.makespan
    );
}

/// Longer streams amortise adaptation better: the adaptive:static
/// makespan ratio must not grow with N.
#[test]
fn adaptation_gain_amortises_with_stream_length() {
    let interval = SimDuration::from_secs(5);
    let mut ratios = Vec::new();
    for items in [100u64, 400, 1600] {
        let mut grid = testbed_small3();
        FaultPlan::new()
            .slowdown(NodeId(1), secs(30.0), secs(1e6), 0.1)
            .apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let mapping = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)]);
        let mk = |policy| SimConfig {
            items,
            policy,
            initial_mapping: Some(mapping.clone()),
            ..SimConfig::default()
        };
        let adaptive = sim_run(&grid, &spec, &mk(Policy::Periodic { interval }));
        let static_r = sim_run(&grid, &spec, &mk(Policy::Static));
        ratios.push(adaptive.makespan.as_secs_f64() / static_r.makespan.as_secs_f64());
    }
    assert!(
        ratios[2] <= ratios[0] + 0.02,
        "gain should not shrink with N: ratios {ratios:?}"
    );
    assert!(ratios[2] < 0.6, "long stream must clearly win: {ratios:?}");
}
