//! Property-style tests for forecasting invariants.
//!
//! The workspace builds offline, so instead of a property-testing
//! framework these sweep each invariant over a deterministic fan of
//! seeded series (seeds drive `adapipe_gridsim::rng::Rng64`, a dev
//! dependency). Failures print the offending case, which reproduces
//! exactly.

use adapipe_gridsim::rng::Rng64;
use adapipe_monitor::prelude::*;

fn feed(f: &mut dyn Forecaster, values: &[f64]) {
    for (i, &v) in values.iter().enumerate() {
        f.observe(i as f64, v);
    }
}

fn series(rng: &mut Rng64, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| lo + (hi - lo) * rng.next_unit()).collect()
}

const CASES: u64 = 32;

/// Every forecaster converges exactly on a constant series.
#[test]
fn constant_series_is_learned_exactly() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xC0 + case);
        let value = -1e6 + 2e6 * rng.next_unit();
        let n = 2 + rng.next_range(98);
        let mut forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingMean::new(8)),
            Box::new(SlidingMedian::new(8)),
            Box::new(Ewma::new(0.3)),
            Box::new(AdaptiveEwma::new(0.05, 0.9)),
            Box::new(Ensemble::nws_default(8)),
        ];
        let series = vec![value; n];
        for f in &mut forecasters {
            feed(f.as_mut(), &series);
            let p = f.predict().expect("observed data");
            assert!(
                (p - value).abs() <= 1e-9 * value.abs().max(1.0),
                "case {case}: {} predicted {p} for constant {value}",
                f.name()
            );
        }
    }
}

/// Mean-family predictions stay within the observed value range.
#[test]
fn predictions_stay_in_observed_range() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x4A6E + case);
        let len = 1 + rng.next_range(199);
        let values = series(&mut rng, len, -1e3, 1e3);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingMean::new(16)),
            Box::new(SlidingMedian::new(16)),
            Box::new(Ewma::new(0.5)),
            Box::new(Ensemble::nws_default(16)),
        ];
        for f in &mut forecasters {
            feed(f.as_mut(), &values);
            let p = f.predict().expect("observed data");
            let slack = 1e-9 * hi.abs().max(lo.abs()).max(1.0);
            assert!(
                p >= lo - slack && p <= hi + slack,
                "case {case}: {} predicted {p} outside [{lo}, {hi}]",
                f.name()
            );
        }
    }
}

/// Welford's streaming moments match the naive two-pass formulas.
#[test]
fn welford_matches_naive() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x3E1F + case);
        let len = 2 + rng.next_range(98);
        let values = series(&mut rng, len, -1e4, 1e4);
        let mut w = Welford::new();
        for &v in &values {
            w.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!(
            (w.mean().unwrap() - mean).abs() < 1e-6 * mean.abs().max(1.0),
            "case {case}"
        );
        assert!(
            (w.variance().unwrap() - var).abs() < 1e-5 * var.abs().max(1.0),
            "case {case}"
        );
    }
}

/// Welford's parallel merge matches one accumulator over the
/// concatenated stream, at any split point.
#[test]
fn welford_merge_matches_single_stream() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x3E20 + case);
        let len = 2 + rng.next_range(98);
        let values = series(&mut rng, len, -1e4, 1e4);
        let split = rng.next_range(values.len() + 1);
        let mut left = Welford::new();
        let mut right = Welford::new();
        let mut whole = Welford::new();
        for (i, &v) in values.iter().enumerate() {
            if i < split {
                left.push(v);
            } else {
                right.push(v);
            }
            whole.push(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count(), "case {case}");
        let (lm, wm) = (left.mean().unwrap(), whole.mean().unwrap());
        assert!((lm - wm).abs() < 1e-9 * wm.abs().max(1.0), "case {case}");
        if let (Some(lv), Some(wv)) = (left.variance(), whole.variance()) {
            assert!((lv - wv).abs() < 1e-6 * wv.abs().max(1.0), "case {case}");
        }
    }
}

/// Quantiles are monotone in q and bounded by the extremes.
#[test]
fn quantiles_are_monotone() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x9A4 + case);
        let len = 1 + rng.next_range(99);
        let mut values = series(&mut rng, len, -1e4, 1e4);
        let q1 = rng.next_unit();
        let q2 = rng.next_unit();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile_sorted(&values, lo_q);
        let b = quantile_sorted(&values, hi_q);
        assert!(a <= b + 1e-12, "case {case}");
        assert!(a >= values[0] - 1e-12, "case {case}");
        assert!(b <= values[values.len() - 1] + 1e-12, "case {case}");
    }
}

/// The observation window never exceeds its capacity and always keeps
/// the most recent items.
#[test]
fn window_keeps_most_recent() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x817D + case);
        let capacity = 1 + rng.next_range(31);
        let len = 1 + rng.next_range(99);
        let values = series(&mut rng, len, -1e3, 1e3);
        let mut w = ObservationWindow::new(capacity);
        for (i, &v) in values.iter().enumerate() {
            w.push(i as f64, v);
        }
        assert!(w.len() <= capacity, "case {case}");
        let kept: Vec<f64> = w.values().collect();
        let expected: Vec<f64> = values
            .iter()
            .skip(values.len().saturating_sub(capacity))
            .copied()
            .collect();
        assert_eq!(kept, expected, "case {case}");
    }
}

/// Ensemble trailing errors: on any series, the ensemble's one-step MAE
/// is within a factor of the best member's (dynamic selection may lag,
/// but must not be wildly worse).
#[test]
fn ensemble_tracks_best_member() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xE75E + case);
        let len = 50 + rng.next_range(100);
        let seed_values = series(&mut rng, len, 0.0, 1.0);
        let window = 8;
        let mut members: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(SlidingMean::new(window)),
            Box::new(SlidingMedian::new(window)),
            Box::new(Ewma::new(0.3)),
        ];
        let mut ensemble = Ensemble::nws_default(window);
        let mut member_errors = vec![ErrorStats::new(); members.len()];
        let mut ensemble_errors = ErrorStats::new();
        for (i, &v) in seed_values.iter().enumerate() {
            let t = i as f64;
            for (m, errs) in members.iter().zip(member_errors.iter_mut()) {
                if let Some(p) = m.predict() {
                    errs.record(p, v);
                }
            }
            if let Some(p) = ensemble.predict() {
                ensemble_errors.record(p, v);
            }
            for m in &mut members {
                m.observe(t, v);
            }
            ensemble.observe(t, v);
        }
        if let Some(e_mae) = ensemble_errors.mae() {
            let best = member_errors
                .iter()
                .filter_map(|e| e.mae())
                .fold(f64::INFINITY, f64::min);
            assert!(
                e_mae <= best * 3.0 + 1e-9,
                "case {case}: ensemble MAE {e_mae} vs best member {best}"
            );
        }
    }
}
