//! General DAG (diamond) vs the equivalent serialized chain.
//!
//! The same eleven stages run twice on a pinned one-stage-per-node
//! mapping: once as an explicit DAG — `fetch` fans out to two
//! depth-four branches that re-join at `combine` before `sink` (one
//! item's critical path is six stages) — and once flattened into a
//! serial chain (the critical path is all eleven). Throughput is
//! resource-bound either way; the win is the fill/drain latency on a
//! burst, so the diamond makespan must beat the chain by ≥ 1.2×. As in
//! the `graph` bench, the gate lives *inside* the bench: regressing the
//! ratio fails the run, locally and in CI.
//!
//! Unlike `graph` (which uses the series-parallel `split` sugar), this
//! bench declares the topology edge-by-edge through [`StageGraph::dag`]
//! — the path every explicitly wired `Pipeline::dag()` program takes.
//!
//! `cargo bench -p adapipe-bench --bench dag`
//!
//! Regenerate the committed baseline with:
//! `ADAPIPE_BENCH_JSON=$PWD/BENCH_dag.json \
//!     cargo bench -p adapipe-bench --bench dag`

use adapipe_core::simengine::{run, SimConfig};
use adapipe_core::spec::{PipelineSpec, StageGraph, StageSpec};
use adapipe_gridsim::grid::GridSpec;
use adapipe_gridsim::load::LoadModel;
use adapipe_gridsim::net::{LinkSpec, Topology};
use adapipe_gridsim::node::{Node, NodeId, NodeSpec};
use adapipe_mapper::mapping::Mapping;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const BRANCH_DEPTH: usize = 4;
const STAGE_WORK: f64 = 2.0;
const ITEMS: u64 = 6;
/// fetch + two branches + combine + sink.
const STAGES: usize = 2 * BRANCH_DEPTH + 3;

fn stages() -> Vec<StageSpec> {
    let mut stages = vec![StageSpec::balanced("fetch", STAGE_WORK, 1_000)];
    for b in 0..2 {
        for d in 0..BRANCH_DEPTH {
            stages.push(StageSpec::balanced(format!("b{b}s{d}"), STAGE_WORK, 1_000));
        }
    }
    stages.push(StageSpec::balanced("combine", 0.1, 1_000));
    stages.push(StageSpec::balanced("sink", 0.1, 1_000));
    stages
}

/// fetch ─┬─ b0s0 … b0s3 ─┐
///        └─ b1s0 … b1s3 ─┴─ combine → sink, declared edge-by-edge.
fn diamond_spec() -> PipelineSpec {
    let combine = 2 * BRANCH_DEPTH + 1;
    let mut dag = StageGraph::dag(STAGES);
    for b in 0..2 {
        let first = 1 + b * BRANCH_DEPTH;
        dag = dag.edge(0, first);
        for d in 1..BRANCH_DEPTH {
            dag = dag.edge(first + d - 1, first + d);
        }
        dag = dag.edge(first + BRANCH_DEPTH - 1, combine);
    }
    dag = dag.edge(combine, combine + 1);
    PipelineSpec::with_graph(stages(), dag.build().expect("diamond is a valid DAG"))
}

fn chain_spec() -> PipelineSpec {
    PipelineSpec::new(stages())
}

fn grid() -> GridSpec {
    let nodes = (0..STAGES)
        .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
        .collect();
    GridSpec::new(nodes, Topology::uniform(STAGES, LinkSpec::lan()))
}

fn cfg() -> SimConfig {
    SimConfig {
        items: ITEMS,
        initial_mapping: Some(Mapping::from_assignment(
            &(0..STAGES).map(NodeId).collect::<Vec<_>>(),
        )),
        ..SimConfig::default()
    }
}

fn bench_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    let grid = grid();
    group.bench_function("diamond_2x4", |b| {
        b.iter(|| run(&grid, &diamond_spec(), &cfg()))
    });
    group.bench_function("serial_chain_11", |b| {
        b.iter(|| run(&grid, &chain_spec(), &cfg()))
    });
    group.finish();

    // --- the gate: simulated makespan ratio ---------------------------
    let diamond = run(&grid, &diamond_spec(), &cfg());
    let chain = run(&grid, &chain_spec(), &cfg());
    assert_eq!(diamond.completed, ITEMS);
    assert_eq!(chain.completed, ITEMS);
    let ratio = chain.makespan.as_secs_f64() / diamond.makespan.as_secs_f64();
    println!(
        "dag gate: chain {:.2}s / diamond {:.2}s = {ratio:.3}x (need >= 1.2)",
        chain.makespan.as_secs_f64(),
        diamond.makespan.as_secs_f64(),
    );
    assert!(
        ratio >= 1.2,
        "the diamond DAG must beat the serialized chain by >= 1.2x simulated \
         makespan, measured {ratio:.3}x"
    );
}

criterion_group!(benches, bench_dag);
criterion_main!(benches);
