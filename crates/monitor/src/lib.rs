//! # adapipe-monitor
//!
//! Resource measurement and forecasting for the adaptive pipeline —
//! the stand-in for the Network Weather Service (Wolski et al., 1999)
//! that grid deployments of the pattern would query.
//!
//! The adaptive pipeline pattern decides *when and where* to move stages
//! based on predictions of node availability, per-stage work, and link
//! cost. This crate supplies:
//!
//! * [`forecast`] — a family of one-step-ahead predictors (persistence,
//!   running/sliding mean, sliding median, fixed and adaptive EWMA) and an
//!   NWS-style [`forecast::Ensemble`] that dynamically selects the member
//!   with the lowest trailing error;
//! * [`series`] — bounded observation windows;
//! * [`sensor`] — dense forecaster banks keyed by metric index, plus
//!   deterministic observation noise for robustness experiments;
//! * [`stats`] — streaming moments, quantiles, and forecast-error metrics.
//!
//! The crate is dependency-free and clock-agnostic: timestamps are plain
//! `f64` seconds supplied by the caller (simulated or wall time).
//!
//! ## Example
//!
//! ```
//! use adapipe_monitor::prelude::*;
//!
//! let mut bank = MetricBank::new(1, 16);
//! for step in 0..50 {
//!     let availability = if step < 25 { 1.0 } else { 0.25 };
//!     bank.observe(0, step as f64, availability);
//! }
//! // After the load step the forecast tracks the new level.
//! assert!((bank.predict(0).unwrap() - 0.25).abs() < 0.1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod forecast;
pub mod periodicity;
pub mod sensor;
pub mod series;
pub mod stats;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::forecast::{
        AdaptiveEwma, Ensemble, Ewma, Forecaster, LastValue, RunningMean, SlidingMean,
        SlidingMedian,
    };
    pub use crate::periodicity::{autocorrelation, dominant_period, PeriodicityDetector};
    pub use crate::sensor::{ForecasterKind, MetricBank, NoisyChannel};
    pub use crate::series::ObservationWindow;
    pub use crate::stats::{median, quantile_sorted, ErrorStats, Welford};
}

pub use prelude::*;
