//! Sensors: keyed forecaster banks and observation noise.
//!
//! A [`MetricBank`] is what the adaptive controller actually holds: one
//! forecaster per monitored quantity (node availability, stage work,
//! link cost), indexed densely. [`NoisyChannel`] perturbs measurements to
//! model imperfect grid sensors; experiments use it to check the
//! controller tolerates realistic observation error.

use crate::forecast::{
    AdaptiveEwma, Ensemble, Ewma, Forecaster, LastValue, RunningMean, SlidingMean, SlidingMedian,
};

/// Which predictor family a [`MetricBank`] instantiates per metric —
/// exposed so ablation experiments can quantify the value of the NWS
/// ensemble against its individual members.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ForecasterKind {
    /// NWS-style dynamic selection over the whole family (the default).
    #[default]
    NwsEnsemble,
    /// Persistence only.
    LastValue,
    /// Running mean of all history.
    RunningMean,
    /// Mean over the observation window.
    SlidingMean,
    /// Median over the observation window.
    SlidingMedian,
    /// Fixed-gain EWMA (α = 0.3).
    Ewma,
    /// Error-adaptive EWMA.
    AdaptiveEwma,
}

impl ForecasterKind {
    /// Instantiates one forecaster of this kind.
    pub fn build(self, window: usize) -> Box<dyn Forecaster> {
        match self {
            ForecasterKind::NwsEnsemble => Box::new(Ensemble::nws_default(window)),
            ForecasterKind::LastValue => Box::new(LastValue::new()),
            ForecasterKind::RunningMean => Box::new(RunningMean::new()),
            ForecasterKind::SlidingMean => Box::new(SlidingMean::new(window)),
            ForecasterKind::SlidingMedian => Box::new(SlidingMedian::new(window)),
            ForecasterKind::Ewma => Box::new(Ewma::new(0.3)),
            ForecasterKind::AdaptiveEwma => Box::new(AdaptiveEwma::new(0.05, 0.9)),
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ForecasterKind::NwsEnsemble => "nws_ensemble",
            ForecasterKind::LastValue => "last_value",
            ForecasterKind::RunningMean => "running_mean",
            ForecasterKind::SlidingMean => "sliding_mean",
            ForecasterKind::SlidingMedian => "sliding_median",
            ForecasterKind::Ewma => "ewma",
            ForecasterKind::AdaptiveEwma => "adaptive_ewma",
        }
    }

    /// Every kind, for sweep experiments.
    pub fn all() -> [ForecasterKind; 7] {
        [
            ForecasterKind::NwsEnsemble,
            ForecasterKind::LastValue,
            ForecasterKind::RunningMean,
            ForecasterKind::SlidingMean,
            ForecasterKind::SlidingMedian,
            ForecasterKind::Ewma,
            ForecasterKind::AdaptiveEwma,
        ]
    }
}

/// A dense bank of independent forecasters, one per monitored metric.
pub struct MetricBank {
    metrics: Vec<Box<dyn Forecaster>>,
    window: usize,
    kind: ForecasterKind,
}

impl MetricBank {
    /// Creates a bank of `n` NWS-default ensembles with the given
    /// observation window.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(n: usize, window: usize) -> Self {
        MetricBank::with_kind(n, window, ForecasterKind::NwsEnsemble)
    }

    /// Creates a bank of `n` forecasters of the given kind.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn with_kind(n: usize, window: usize, kind: ForecasterKind) -> Self {
        assert!(window > 0, "window must be positive");
        MetricBank {
            metrics: (0..n).map(|_| kind.build(window)).collect(),
            window,
            kind,
        }
    }

    /// Number of metrics tracked.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True if the bank tracks no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The configured observation window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Feeds one observation of metric `idx` at time `t`.
    pub fn observe(&mut self, idx: usize, t: f64, value: f64) {
        self.metrics[idx].observe(t, value);
    }

    /// Forecast for metric `idx`, or `None` before any observation.
    pub fn predict(&self, idx: usize) -> Option<f64> {
        self.metrics[idx].predict()
    }

    /// Forecast for metric `idx`, falling back to `default` when the
    /// metric has never been observed.
    pub fn predict_or(&self, idx: usize, default: f64) -> f64 {
        self.predict(idx).unwrap_or(default)
    }

    /// Grows the bank to `n` metrics (no-op if already that large);
    /// used when stages are replicated at run time.
    pub fn grow_to(&mut self, n: usize) {
        while self.metrics.len() < n {
            self.metrics.push(self.kind.build(self.window));
        }
    }

    /// Clears all learned state (e.g. after a migration invalidates
    /// node-specific history).
    pub fn reset(&mut self, idx: usize) {
        self.metrics[idx].reset();
    }

    /// The predictor family this bank instantiates.
    pub fn kind(&self) -> ForecasterKind {
        self.kind
    }

    /// Direct access to the underlying forecaster of metric `idx`.
    pub fn forecaster(&self, idx: usize) -> &dyn Forecaster {
        self.metrics[idx].as_ref()
    }
}

/// Multiplicative observation noise: `observe(v) = v · (1 + ε)` with `ε`
/// uniform in `[-magnitude, magnitude]`, deterministic per seed.
#[derive(Clone, Debug)]
pub struct NoisyChannel {
    state: u64,
    magnitude: f64,
}

impl NoisyChannel {
    /// Creates a channel with the given relative noise magnitude
    /// (`0.05` = ±5 %).
    ///
    /// # Panics
    /// Panics if `magnitude` is negative or ≥ 1.
    pub fn new(seed: u64, magnitude: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&magnitude),
            "magnitude must be in [0,1)"
        );
        NoisyChannel {
            state: seed.max(1),
            magnitude,
        }
    }

    /// A noiseless channel.
    pub fn clean() -> Self {
        NoisyChannel {
            state: 1,
            magnitude: 0.0,
        }
    }

    /// Perturbs one measurement.
    pub fn perturb(&mut self, value: f64) -> f64 {
        if self.magnitude == 0.0 {
            return value;
        }
        // xorshift64* — tiny, deterministic, plenty for noise.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        let eps = (2.0 * u - 1.0) * self.magnitude;
        value * (1.0 + eps)
    }

    /// The configured noise magnitude.
    pub fn magnitude(&self) -> f64 {
        self.magnitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_tracks_metrics_independently() {
        let mut b = MetricBank::new(2, 8);
        for i in 0..20 {
            b.observe(0, i as f64, 1.0);
            b.observe(1, i as f64, 5.0);
        }
        assert!((b.predict(0).unwrap() - 1.0).abs() < 1e-9);
        assert!((b.predict(1).unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn predict_or_falls_back() {
        let b = MetricBank::new(1, 4);
        assert_eq!(b.predict(0), None);
        assert_eq!(b.predict_or(0, 0.5), 0.5);
    }

    #[test]
    fn grow_extends_without_losing_state() {
        let mut b = MetricBank::new(1, 4);
        b.observe(0, 0.0, 2.0);
        b.grow_to(3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.predict(0), Some(2.0));
        assert_eq!(b.predict(2), None);
        b.grow_to(2); // shrink request is a no-op
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn reset_forgets_one_metric_only() {
        let mut b = MetricBank::new(2, 4);
        b.observe(0, 0.0, 1.0);
        b.observe(1, 0.0, 2.0);
        b.reset(0);
        assert_eq!(b.predict(0), None);
        assert_eq!(b.predict(1), Some(2.0));
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let mut a = NoisyChannel::new(9, 0.1);
        let mut b = NoisyChannel::new(9, 0.1);
        for _ in 0..1000 {
            let va = a.perturb(10.0);
            let vb = b.perturb(10.0);
            assert_eq!(va, vb);
            assert!((9.0..=11.0).contains(&va), "va={va}");
        }
    }

    #[test]
    fn clean_channel_is_identity() {
        let mut c = NoisyChannel::clean();
        assert_eq!(c.perturb(3.25), 3.25);
        assert_eq!(c.magnitude(), 0.0);
    }

    #[test]
    fn noise_has_roughly_zero_mean() {
        let mut c = NoisyChannel::new(17, 0.2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| c.perturb(1.0)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "magnitude")]
    fn bad_magnitude_panics() {
        let _ = NoisyChannel::new(1, 1.5);
    }
}
