//! The unit of state movement: a versioned byte blob.

/// A serialized piece of stage state in transit between hosts.
///
/// Produced when an instance quiesces (migration, node death, shard
/// rebalance), consumed by `restore` on the new host or `absorb` by a
/// surviving accumulator replica. The version is a per-instance
/// monotonic counter: a restore must never apply an older snapshot over
/// a newer one, and the counter carries across the hand-off so the
/// restored instance keeps counting from where the donor stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateSnapshot {
    /// Monotonic snapshot counter of the donor instance.
    pub version: u64,
    /// Codec-encoded state ([`crate::StateCodec`]).
    pub bytes: Vec<u8>,
}

impl StateSnapshot {
    /// Wraps encoded state bytes under a version counter.
    pub fn new(version: u64, bytes: Vec<u8>) -> Self {
        StateSnapshot { version, bytes }
    }

    /// Size of the encoded state in bytes — what a migration actually
    /// ships (reported as `state_bytes_moved`).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the encoded state is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_its_payload_size() {
        let snap = StateSnapshot::new(3, vec![1, 2, 3, 4]);
        assert_eq!(snap.version, 3);
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
        assert!(StateSnapshot::new(0, Vec::new()).is_empty());
    }
}
