//! Arrival processes: how input items enter a pipeline over time.
//!
//! Backend-independent workload description — the simulator materialises
//! the schedule as events, a wall-clock backend can pace its source
//! thread off the same schedule.

use adapipe_gridsim::rng::exp_at;
use adapipe_gridsim::time::SimTime;

/// How input items enter the pipeline.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// The whole stream is available at `t = 0` (closed workload).
    AllAtOnce,
    /// One item every `1/rate` seconds.
    Uniform {
        /// Items per second.
        rate: f64,
    },
    /// Poisson arrivals with the given mean rate, deterministic per seed.
    Poisson {
        /// Mean items per second.
        rate: f64,
        /// Stream seed.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// Materialises the arrival time of every item.
    pub fn schedule(&self, items: u64) -> Vec<SimTime> {
        self.stream().take(items as usize).collect()
    }

    /// Streaming form of [`ArrivalProcess::schedule`]: an infinite
    /// iterator yielding item `i`'s arrival time on the `i`-th call,
    /// with O(1) state — long paced streams need no materialised
    /// schedule.
    ///
    /// # Panics
    /// Panics if a rate-based process declares a non-positive rate.
    pub fn stream(&self) -> ArrivalStream {
        if let ArrivalProcess::Uniform { rate } | ArrivalProcess::Poisson { rate, .. } = *self {
            assert!(rate > 0.0, "arrival rate must be positive");
        }
        ArrivalStream {
            process: *self,
            index: 0,
            elapsed: 0.0,
        }
    }
}

/// Infinite iterator over an [`ArrivalProcess`]'s arrival times; see
/// [`ArrivalProcess::stream`].
#[derive(Clone, Debug)]
pub struct ArrivalStream {
    process: ArrivalProcess,
    index: u64,
    /// Running arrival-time accumulator (Poisson inter-arrival sums).
    elapsed: f64,
}

impl Iterator for ArrivalStream {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        let i = self.index;
        self.index += 1;
        Some(match self.process {
            ArrivalProcess::AllAtOnce => SimTime::ZERO,
            ArrivalProcess::Uniform { rate } => SimTime::from_secs_f64(i as f64 / rate),
            ArrivalProcess::Poisson { rate, seed } => {
                self.elapsed += exp_at(seed, i, 1.0 / rate);
                SimTime::from_secs_f64(self.elapsed)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_at_once_lands_at_zero() {
        let s = ArrivalProcess::AllAtOnce.schedule(3);
        assert_eq!(s, vec![SimTime::ZERO; 3]);
    }

    #[test]
    fn uniform_spacing_matches_rate() {
        let s = ArrivalProcess::Uniform { rate: 2.0 }.schedule(4);
        let secs: Vec<f64> = s.iter().map(|t| t.as_secs_f64()).collect();
        assert_eq!(secs, vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn stream_matches_materialised_schedule() {
        for process in [
            ArrivalProcess::AllAtOnce,
            ArrivalProcess::Uniform { rate: 3.0 },
            ArrivalProcess::Poisson { rate: 2.0, seed: 5 },
        ] {
            let materialised = process.schedule(64);
            let streamed: Vec<SimTime> = process.stream().take(64).collect();
            assert_eq!(materialised, streamed, "{process:?}");
        }
    }

    #[test]
    fn poisson_is_deterministic_and_monotone() {
        let a = ArrivalProcess::Poisson { rate: 1.0, seed: 9 }.schedule(50);
        let b = ArrivalProcess::Poisson { rate: 1.0, seed: 9 }.schedule(50);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival ≈ 1 s over 50 draws — loose sanity bound.
        let span = a.last().unwrap().as_secs_f64();
        assert!(span > 20.0 && span < 100.0, "span={span}");
    }
}
