//! A live *stateful* service surviving a node kill: keyed session
//! state migrates mid-stream instead of dying with its host.
//!
//! Before declared state, this program was impossible: a stateful
//! stage pinned to a crashing node was a typed, terminal
//! `StatefulStageLost`. Here the session store *declares* keyed state
//! (4 shards over the request key), so when the chaos plan kills the
//! node owning the shards:
//!
//! 1. items routed to those shards park (keys pin to their shard's
//!    owner — the state is never forked onto a second copy);
//! 2. the recovery re-map reassigns the shards; the dead host's shard
//!    instances are quiesced and their `StateSnapshot`s deposited;
//! 3. live hosts restore the snapshots, the parked items replay, and
//!    every session counter continues exactly where it left off;
//! 4. the moves land in `RunReport::{migrations, state_bytes_moved}`.
//!
//! Run with: `cargo run --release --example stateful_service`

use adapipe::prelude::*;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Per-request work the session stage spins for: ~2 ms.
const STAGE: Duration = Duration::from_millis(2);
const REQUESTS: u64 = 240;
/// Distinct user sessions the requests hash over.
const USERS: u64 = 8;

fn main() {
    // Node 1 — the launch host of every session shard — dies at
    // t = 0.6 s and never comes back.
    let plan = FaultPlan::new().crash(NodeId(1), SimTime::from_secs_f64(0.6));

    let pipeline = Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("ingest", 0.002, 64), |req: u64| {
            spin_for(STAGE);
            req
        })
        .keyed_stage_with(
            StageSpec::balanced("sessions", 0.002, 64).with_keyed_state(4, 64),
            |req: &u64| req % USERS,
            || 0u64,
            |seen: &mut u64, req: u64| {
                spin_for(STAGE);
                *seen += 1;
                (req % USERS, *seen)
            },
        )
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(150),
        })
        .faults(plan)
        .build()
        .expect("a valid pipeline");

    let vnodes: Vec<VNodeSpec> = (0..3).map(|i| VNodeSpec::free(format!("v{i}"))).collect();
    let mut session = pipeline
        .spawn(
            Backend::Threads(vnodes),
            RunConfig {
                items: REQUESTS,
                // The session store starts on the doomed node.
                initial_mapping: Some(Mapping::from_assignment(&[NodeId(0), NodeId(1)])),
                queue_capacity: Some(32),
                ..RunConfig::default()
            },
        )
        .expect("a compatible backend");
    let events = session.events();

    println!("== stateful service: session shards on a node that dies at 0.6s ==\n");

    // Steady ~150 req/s while the crash unfolds underneath.
    let epoch = Instant::now();
    let mut outputs: Vec<(u64, u64)> = Vec::new();
    for req in 0..REQUESTS {
        let target = req as f64 / 150.0;
        let now = epoch.elapsed().as_secs_f64();
        if target > now {
            std::thread::sleep(Duration::from_secs_f64(target - now));
        }
        session.push(req).unwrap();
        while let TryNext::Item(o) = session.try_next() {
            outputs.push(o);
        }
    }

    let handle = session.drain();
    outputs.extend(handle.outputs);
    let report = handle.report;

    let mut downs = 0u32;
    let mut replays = 0u32;
    for ev in events.try_iter() {
        match ev {
            RunEvent::NodeDown { node, at, .. } => {
                downs += 1;
                println!("NODE DOWN: v{node} at t={:.2}s", at.as_secs_f64());
            }
            RunEvent::ItemReplayed { .. } => replays += 1,
            RunEvent::Remap { plan, .. } if !plan.to.nodes_used().contains(&NodeId(1)) => {
                println!(
                    "recovery remap at t={:.2}s: {} -> {}",
                    plan.at.as_secs_f64(),
                    plan.from,
                    plan.to
                );
            }
            _ => {}
        }
    }

    // Each user's counter must have counted every one of their requests
    // exactly once — the counts for user u are exactly 1..=n_u, with no
    // reset (forked state) and no double-count across the migration.
    let mut per_user: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (user, count) in &outputs {
        per_user.entry(*user).or_default().push(*count);
    }
    for (user, counts) in &mut per_user {
        counts.sort_unstable();
        let expect: Vec<u64> = (1..=counts.len() as u64).collect();
        assert_eq!(
            *counts, expect,
            "user {user}: session counter lost, duplicated, or forked"
        );
    }

    println!(
        "\nserved {} / {REQUESTS} | {downs} node-down | {replays} replay(s) | \
         {} migration(s), {} state bytes moved",
        report.completed, report.migrations, report.state_bytes_moved,
    );
    println!(
        "final sessions per user: {:?}",
        per_user
            .iter()
            .map(|(u, c)| (*u, c.len() as u64))
            .collect::<Vec<_>>()
    );

    // The stateful-survival contract.
    assert_eq!(handle.error, None, "run failed: {:?}", handle.error);
    assert_eq!(report.completed, REQUESTS, "a request was dropped");
    assert!(!report.truncated);
    assert_eq!(downs, 1, "the crash must surface as NodeDown");
    assert_eq!(outputs.len() as u64, REQUESTS, "output not exactly-once");
    assert_eq!(per_user.len() as u64, USERS, "a user's session vanished");
    assert!(
        !report.final_mapping.nodes_used().contains(&NodeId(1)),
        "the dead node must be evacuated"
    );
    assert!(
        report.migrations > 0,
        "shard recovery must be accounted as migration"
    );
    assert!(
        report.state_bytes_moved > 0,
        "declared state bytes must be accounted"
    );

    println!("\nmachine-readable report:\n{}", report.to_json());
}
