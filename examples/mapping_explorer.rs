//! Mapping explorer: how network quality and processor load move the
//! optimal stage-to-processor mapping.
//!
//! For a 3-stage pipeline on 3 processors this prints, for each grid
//! condition, the model-optimal mapping and its predicted throughput —
//! the decision table the adaptive pattern consults internally.
//!
//! Run with: `cargo run --release --example mapping_explorer`

use adapipe::prelude::*;

fn main() {
    // One work unit per stage; 1 MB items.
    let profile = PipelineProfile::uniform(vec![1.0, 1.0, 1.0], 1 << 20);

    struct Case {
        label: &'static str,
        link: LinkSpec,
        rates: [f64; 3],
    }
    let cases = [
        Case {
            label: "fast LAN, equal nodes",
            link: LinkSpec::lan(),
            rates: [1.0, 1.0, 1.0],
        },
        Case {
            label: "fast LAN, node 2 busy (25%)",
            link: LinkSpec::lan(),
            rates: [1.0, 1.0, 0.25],
        },
        Case {
            label: "WAN links, equal nodes",
            link: LinkSpec::wan(),
            rates: [1.0, 1.0, 1.0],
        },
        Case {
            label: "slow WAN, equal nodes",
            link: LinkSpec::slow_wan(),
            rates: [1.0, 1.0, 1.0],
        },
        Case {
            label: "slow WAN, node 2 is 4x faster",
            link: LinkSpec::slow_wan(),
            rates: [1.0, 1.0, 4.0],
        },
    ];

    println!("== optimal mapping of a 3-stage pipeline onto 3 processors ==\n");
    println!(
        "{:<32} {:>18} {:>12} {:>10}",
        "grid condition", "best mapping", "tput (it/s)", "groups"
    );
    for case in &cases {
        let topology = Topology::uniform(3, case.link);
        let best = plan(&profile, &case.rates, &topology, &PlannerConfig::default());
        println!(
            "{:<32} {:>18} {:>12.3} {:>10}",
            case.label,
            best.mapping.notation(),
            best.prediction.throughput,
            best.mapping.nodes_used().len(),
        );
    }

    println!("\nReading the table: on an even grid the planner spreads the");
    println!("stages (one per node). When a node loses capacity it farms the");
    println!("affected stage over the survivors ({{...}} sets), and when one");
    println!("node dominates in speed it concentrates and replicates work");
    println!("there — exactly the trade-offs the adaptive pattern");
    println!("re-evaluates every monitoring period.");

    // The planner consumes a *stage graph*, not a list: linear chains
    // and series-parallel splits are special cases of a general DAG.
    // Print the topology the cost model walks for the README's diamond.
    let names = ["fetch", "parse", "audit", "combine", "sink"];
    let diamond = StageGraph::dag(5)
        .edge(0, 1) // fetch → parse
        .edge(0, 2) // fetch → audit
        .edge(1, 3) // parse → combine
        .edge(2, 3) // audit → combine
        .edge(3, 4) // combine → sink
        .build()
        .expect("the diamond is a valid DAG");
    println!("\n== stage-graph topology (a general DAG) ==\n");
    println!(
        "stages, topologically: {}",
        diamond
            .topo_order()
            .iter()
            .map(|&s| names[s])
            .collect::<Vec<_>>()
            .join(" → ")
    );
    println!("edges:");
    for (from, to) in diamond.edges() {
        println!("  {} → {}", names[from], names[to]);
    }
    println!(
        "fan-out points: {}   joining stages: {}",
        diamond.blocks(),
        diamond.join_blocks()
    );
    println!("\nEvery stage above is planned like the 3-stage chain in the");
    println!("table — the graph only changes which stages feed which, so a");
    println!("branch can overlap with its sibling instead of queueing");
    println!("behind it.");
}
