//! Builder/session-layer overhead: the unified `adapipe::api` path must
//! add no measurable cost over calling the simulation backend directly.
//! Each "builder" iteration pays the *whole* new surface — stage
//! declaration, validation, config translation — on top of the
//! identical simulated run, so the pair bounds the API tax from above.
//!
//! `cargo bench -p adapipe-bench --bench api_overhead`
//!
//! Regenerate the committed baseline with:
//! `ADAPIPE_BENCH_JSON=$PWD/BENCH_api_overhead.json \
//!     cargo bench -p adapipe-bench --bench api_overhead`

use adapipe::api::{Backend, PipelineBuilder, RunConfig};
use adapipe_core::policy::Policy;
use adapipe_core::simengine::{run, SimConfig};
use adapipe_core::spec::PipelineSpec;
use adapipe_gridsim::grid::{testbed_hetero8, testbed_small3};
use adapipe_gridsim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_api_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("api_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    // Static, small grid: the run itself is cheap, so any per-run API
    // overhead would show up loudest here.
    group.bench_function("small3_static_1k_direct", |b| {
        let grid = testbed_small3();
        let spec = PipelineSpec::balanced(3, 1.0, 10_000);
        let cfg = SimConfig {
            items: 1_000,
            ..SimConfig::default()
        };
        b.iter(|| run(&grid, &spec, &cfg));
    });
    group.bench_function("small3_static_1k_builder", |b| {
        let grid = testbed_small3();
        b.iter(|| {
            PipelineBuilder::from_spec(PipelineSpec::balanced(3, 1.0, 10_000))
                .build()
                .expect("valid pipeline")
                .run(
                    Backend::Sim(&grid),
                    RunConfig {
                        items: 1_000,
                        ..RunConfig::default()
                    },
                )
                .expect("sim run")
        });
    });

    // Adaptive, heterogeneous grid: the representative workload.
    group.bench_function("hetero8_adaptive_1k_direct", |b| {
        let grid = testbed_hetero8(3);
        let spec = PipelineSpec::balanced(4, 1.0, 10_000);
        let cfg = SimConfig {
            items: 1_000,
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            ..SimConfig::default()
        };
        b.iter(|| run(&grid, &spec, &cfg));
    });
    group.bench_function("hetero8_adaptive_1k_builder", |b| {
        let grid = testbed_hetero8(3);
        b.iter(|| {
            PipelineBuilder::from_spec(PipelineSpec::balanced(4, 1.0, 10_000))
                .policy(Policy::Periodic {
                    interval: SimDuration::from_secs(5),
                })
                .build()
                .expect("valid pipeline")
                .run(
                    Backend::Sim(&grid),
                    RunConfig {
                        items: 1_000,
                        ..RunConfig::default()
                    },
                )
                .expect("sim run")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_api_overhead);
criterion_main!(benches);
