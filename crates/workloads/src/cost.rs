//! Stage-cost distributions beyond the uniform/constant models in
//! `adapipe-core`: exponential, Pareto (heavy tail), and bimodal — the
//! shapes grid workload studies report for real stage service times.

use adapipe_core::spec::WorkModel;
use adapipe_gridsim::rng::{exp_at, mix, unit_f64};

/// Exponentially distributed work with the given mean.
#[derive(Clone, Copy, Debug)]
pub struct ExponentialWork {
    mean: f64,
    seed: u64,
}

impl ExponentialWork {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics if `mean` is not positive.
    pub fn new(mean: f64, seed: u64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        ExponentialWork { mean, seed }
    }
}

impl WorkModel for ExponentialWork {
    fn draw(&self, item: u64) -> f64 {
        exp_at(self.seed, item, self.mean)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn clone_box(&self) -> Box<dyn WorkModel> {
        Box::new(*self)
    }
}

/// Pareto-distributed work (heavy tail): occasional items cost far more
/// than the mean, stressing the adaptation logic with service-time
/// variance the forecaster cannot smooth away.
#[derive(Clone, Copy, Debug)]
pub struct ParetoWork {
    /// Scale (minimum work).
    xm: f64,
    /// Tail index; must exceed 1 for a finite mean.
    alpha: f64,
    seed: u64,
}

impl ParetoWork {
    /// Creates a Pareto model with scale `xm` and tail index `alpha > 1`.
    ///
    /// # Panics
    /// Panics if parameters are out of range.
    pub fn new(xm: f64, alpha: f64, seed: u64) -> Self {
        assert!(xm > 0.0, "scale must be positive");
        assert!(alpha > 1.0, "tail index must exceed 1 for a finite mean");
        ParetoWork { xm, alpha, seed }
    }
}

impl WorkModel for ParetoWork {
    fn draw(&self, item: u64) -> f64 {
        let u = unit_f64(mix(self.seed, item));
        // Inverse CDF; guard u→1 which would blow up.
        self.xm / (1.0 - u.min(0.999_999_9)).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        self.alpha * self.xm / (self.alpha - 1.0)
    }
    fn clone_box(&self) -> Box<dyn WorkModel> {
        Box::new(*self)
    }
}

/// Bimodal work: a fraction `heavy_frac` of items cost `heavy`, the rest
/// cost `light` — the "mostly cheap, sometimes expensive" shape of
/// filter-then-analyse pipelines.
#[derive(Clone, Copy, Debug)]
pub struct BimodalWork {
    light: f64,
    heavy: f64,
    heavy_frac: f64,
    seed: u64,
}

impl BimodalWork {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics if costs are non-positive or `heavy_frac` out of `[0, 1]`.
    pub fn new(light: f64, heavy: f64, heavy_frac: f64, seed: u64) -> Self {
        assert!(light > 0.0 && heavy > 0.0, "costs must be positive");
        assert!(
            (0.0..=1.0).contains(&heavy_frac),
            "fraction must be in [0,1]"
        );
        BimodalWork {
            light,
            heavy,
            heavy_frac,
            seed,
        }
    }
}

impl WorkModel for BimodalWork {
    fn draw(&self, item: u64) -> f64 {
        if unit_f64(mix(self.seed, item)) < self.heavy_frac {
            self.heavy
        } else {
            self.light
        }
    }
    fn mean(&self) -> f64 {
        self.heavy_frac * self.heavy + (1.0 - self.heavy_frac) * self.light
    }
    fn clone_box(&self) -> Box<dyn WorkModel> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(model: &dyn WorkModel, n: u64) -> f64 {
        (0..n).map(|i| model.draw(i)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_matches_mean() {
        let m = ExponentialWork::new(3.0, 11);
        assert_eq!(m.mean(), 3.0);
        let emp = empirical_mean(&m, 200_000);
        assert!((emp - 3.0).abs() < 0.05, "emp={emp}");
        assert!((0..1000).all(|i| m.draw(i) >= 0.0));
    }

    #[test]
    fn pareto_mean_and_minimum() {
        let m = ParetoWork::new(1.0, 3.0, 5);
        assert!((m.mean() - 1.5).abs() < 1e-12);
        assert!((0..100_000).all(|i| m.draw(i) >= 1.0));
        let emp = empirical_mean(&m, 400_000);
        assert!((emp - 1.5).abs() < 0.05, "emp={emp}");
    }

    #[test]
    fn pareto_has_heavy_tail() {
        let m = ParetoWork::new(1.0, 1.5, 5);
        let big = (0..100_000).filter(|&i| m.draw(i) > 10.0).count();
        // P(X > 10) = 10^-1.5 ≈ 3.2 %.
        assert!(big > 1500 && big < 5500, "big={big}");
    }

    #[test]
    fn bimodal_mixes_two_levels() {
        let m = BimodalWork::new(1.0, 10.0, 0.25, 9);
        assert!((m.mean() - 3.25).abs() < 1e-12);
        let n = 100_000u64;
        let heavy = (0..n).filter(|&i| m.draw(i) == 10.0).count();
        let frac = heavy as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
        assert!((0..1000).all(|i| {
            let v = m.draw(i);
            v == 1.0 || v == 10.0
        }));
    }

    #[test]
    fn draws_are_deterministic() {
        let a = ExponentialWork::new(1.0, 3);
        let b = ExponentialWork::new(1.0, 3);
        let c = ExponentialWork::new(1.0, 4);
        assert_eq!(a.draw(42), b.draw(42));
        assert_ne!(a.draw(42), c.draw(42));
    }

    #[test]
    #[should_panic(expected = "tail index")]
    fn infinite_mean_pareto_rejected() {
        let _ = ParetoWork::new(1.0, 1.0, 0);
    }
}
