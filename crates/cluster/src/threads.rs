//! The threaded-backend cluster: one shared worker [`Pool`] serving any
//! number of concurrent tenant sessions, with a background arbiter
//! re-dividing capacity every sensing window.
//!
//! [`ThreadCluster`] owns the pool. Sessions are attached through the
//! engine's `attach` (the facade does this) and *registered* here with
//! their [`ShareQuota`]; from then on the arbiter thread:
//!
//! 1. prunes finished tenants from the registry;
//! 2. senses each live tenant's window signal — completed delta and
//!    inbox backlog ([`arbiter::TenantSignal`]);
//! 3. derives demands and runs weighted progressive filling
//!    ([`arbiter::arbitrate_window`]);
//! 4. pushes the new shares into the tenants' [`TenantHandle`]s, which
//!    both re-weights the pool inboxes' fair-queueing lanes
//!    (enforcement) and re-scales each tenant's planner view of the
//!    pool (planning).
//!
//! Eviction is two-speed: [`ThreadCluster::evict`] stops new pushes and
//! lets in-flight work drain (the session's `drain()` then completes
//! normally), while [`ThreadCluster::evict_now`] tears the tenant down
//! immediately with a typed `RunError::Evicted`.

use crate::arbiter::{self, TenantSignal};
use adapipe_engine::exec::{Pool, TenantHandle};
use adapipe_engine::vnode::VNodeSpec;
use adapipe_gridsim::fault::FaultPlan;
use adapipe_mapper::share::{fair_shares, ShareQuota};
use adapipe_runtime::session::SessionId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One registered tenant: its live handle, its capacity contract, and
/// the arbiter's per-window sensing state.
struct TenantEntry {
    handle: TenantHandle,
    quota: ShareQuota,
    /// Completed count at the previous window (progress delta sensing).
    last_completed: u64,
    /// Consecutive windows with no progress and no backlog.
    idle_windows: u32,
}

impl TenantEntry {
    /// Senses this tenant's window signal and updates the idle counter.
    fn sense(&mut self, pool: &Pool) -> TenantSignal {
        let completed = self.handle.completed();
        let progressed = completed > self.last_completed;
        self.last_completed = completed;
        let backlog = pool.queued_for(self.handle.session());
        if progressed || backlog > 0 {
            self.idle_windows = 0;
        } else {
            self.idle_windows = self.idle_windows.saturating_add(1);
        }
        TenantSignal {
            backlog,
            progressed,
            idle_windows: self.idle_windows,
            share: self.handle.share(),
        }
    }
}

/// A shared worker pool plus the cross-tenant capacity arbiter. The
/// cluster outlives its sessions: dropping (or
/// [`ThreadCluster::shutdown`]-ing) it stops the arbiter and the pool's
/// worker threads.
pub struct ThreadCluster {
    pool: Arc<Pool>,
    registry: Arc<Mutex<Vec<TenantEntry>>>,
    stop: Arc<AtomicBool>,
    arbiter: Option<JoinHandle<()>>,
}

impl ThreadCluster {
    /// Launches the shared pool (one worker thread per vnode, with the
    /// pool-level fault plan applied once) and the arbiter thread
    /// re-dividing capacity every `window`.
    pub fn launch(vnodes: Vec<VNodeSpec>, faults: FaultPlan, window: Duration) -> ThreadCluster {
        let pool = Pool::launch(vnodes, faults);
        let registry: Arc<Mutex<Vec<TenantEntry>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let arbiter = {
            let pool = Arc::clone(&pool);
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Sleep in small slices so shutdown is prompt even
                // under a long window.
                let slice = window
                    .min(Duration::from_millis(10))
                    .max(Duration::from_micros(500));
                let mut elapsed = Duration::ZERO;
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed < window {
                        continue;
                    }
                    elapsed = Duration::ZERO;
                    let mut reg = registry.lock().expect("cluster registry poisoned");
                    reg.retain(|t| !t.handle.is_done());
                    if reg.is_empty() {
                        continue;
                    }
                    let signals: Vec<TenantSignal> =
                        reg.iter_mut().map(|t| t.sense(&pool)).collect();
                    let quotas: Vec<ShareQuota> = reg.iter().map(|t| t.quota).collect();
                    let shares = arbiter::arbitrate_window(&signals, &quotas);
                    for (t, &s) in reg.iter().zip(&shares) {
                        // An idled-out tenant's grant is released to the
                        // others, but its own lane keeps a minimal
                        // weight (set_share clamps) so a late burst is
                        // admitted and re-sensed next window.
                        t.handle.set_share(s);
                    }
                }
            })
        };
        ThreadCluster {
            pool,
            registry,
            stop,
            arbiter: Some(arbiter),
        }
    }

    /// The shared worker pool (the facade attaches sessions to it).
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Registers an attached session under `quota` and immediately
    /// re-arbitrates as if every tenant were saturated (the static
    /// [`fair_shares`] split), so the newcomer holds real capacity
    /// before its first sensing window elapses.
    ///
    /// # Panics
    /// Panics if the quota is invalid ([`ShareQuota::is_valid`]).
    pub fn register(&self, handle: TenantHandle, quota: ShareQuota) {
        assert!(
            quota.is_valid(),
            "invalid quota for session {}: {quota:?}",
            handle.session()
        );
        let mut reg = self.registry.lock().expect("cluster registry poisoned");
        reg.retain(|t| !t.handle.is_done());
        let last_completed = handle.completed();
        reg.push(TenantEntry {
            handle,
            quota,
            last_completed,
            idle_windows: 0,
        });
        let quotas: Vec<ShareQuota> = reg.iter().map(|t| t.quota).collect();
        for (t, s) in reg.iter().zip(fair_shares(&quotas)) {
            t.handle.set_share(s);
        }
    }

    /// Live registered sessions, in registration order.
    pub fn sessions(&self) -> Vec<SessionId> {
        let reg = self.registry.lock().expect("cluster registry poisoned");
        reg.iter()
            .filter(|t| !t.handle.is_done())
            .map(|t| t.handle.session())
            .collect()
    }

    /// The share currently granted to `session`, if registered.
    pub fn share_of(&self, session: SessionId) -> Option<f64> {
        let reg = self.registry.lock().expect("cluster registry poisoned");
        reg.iter()
            .find(|t| t.handle.session() == session)
            .map(|t| t.handle.share())
    }

    /// Graceful eviction: the session stops admitting new pushes
    /// (`RunError::Evicted`) but its in-flight items drain normally —
    /// the owner's `drain()` completes with a full report. Returns
    /// false if the session is not registered.
    pub fn evict(&self, session: SessionId) -> bool {
        let reg = self.registry.lock().expect("cluster registry poisoned");
        match reg.iter().find(|t| t.handle.session() == session) {
            Some(t) => {
                t.handle.begin_eviction();
                true
            }
            None => false,
        }
    }

    /// Forced eviction (pool shrink, misbehaving tenant): the session
    /// fails immediately with `RunError::Evicted`, in-flight items are
    /// dropped, its report comes back truncated — and co-tenants are
    /// untouched. Returns false if the session is not registered.
    pub fn evict_now(&self, session: SessionId) -> bool {
        let mut reg = self.registry.lock().expect("cluster registry poisoned");
        let Some(pos) = reg.iter().position(|t| t.handle.session() == session) else {
            return false;
        };
        let entry = reg.remove(pos);
        entry.handle.evict_now();
        let quotas: Vec<ShareQuota> = reg.iter().map(|t| t.quota).collect();
        for (t, s) in reg.iter().zip(fair_shares(&quotas)) {
            t.handle.set_share(s);
        }
        true
    }

    /// Stops the arbiter and the pool's worker threads. Sessions still
    /// attached unwind as evicted (their teardown observes the pool
    /// going down); drain sessions first for clean reports.
    pub fn shutdown(mut self) {
        self.stop_arbiter();
        self.pool.shutdown();
    }

    fn stop_arbiter(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.arbiter.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadCluster {
    fn drop(&mut self) {
        self.stop_arbiter();
        self.pool.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_core::pipeline::PipelineBuilder;
    use adapipe_engine::exec::{attach, EngineConfig};
    use adapipe_engine::vnode::spin_for;

    fn free_nodes(n: usize) -> Vec<VNodeSpec> {
        (0..n).map(|i| VNodeSpec::free(format!("v{i}"))).collect()
    }

    fn spin_pipeline(tag: &str, ms: u64) -> adapipe_core::pipeline::Pipeline<u64, u64> {
        PipelineBuilder::<u64>::new()
            .stage(
                adapipe_core::spec::StageSpec::balanced(tag, ms as f64 / 1000.0, 8),
                move |x: u64| {
                    spin_for(Duration::from_millis(ms));
                    x
                },
            )
            .build()
    }

    #[test]
    fn arbiter_splits_capacity_by_weight_under_contention() {
        let cluster =
            ThreadCluster::launch(free_nodes(1), FaultPlan::new(), Duration::from_millis(20));
        let cfg = EngineConfig::new(free_nodes(1));
        let mut a = attach(cluster.pool(), spin_pipeline("a", 1), &cfg, 400, false);
        let mut b = attach(cluster.pool(), spin_pipeline("b", 1), &cfg, 400, false);
        cluster.register(a.tenant_handle(), ShareQuota::weighted(3.0));
        cluster.register(b.tenant_handle(), ShareQuota::weighted(1.0));
        // Registration already applies the static fair split.
        assert!((cluster.share_of(a.session_id()).unwrap() - 0.75).abs() < 1e-9);
        assert!((cluster.share_of(b.session_id()).unwrap() - 0.25).abs() < 1e-9);
        // Keep both backlogged across several windows: the dynamic
        // arbiter must hold the weighted split.
        for i in 0..200u64 {
            a.push(i).unwrap();
            b.push(i).unwrap();
        }
        std::thread::sleep(Duration::from_millis(80));
        assert!((cluster.share_of(a.session_id()).unwrap() - 0.75).abs() < 0.01);
        assert!((cluster.share_of(b.session_id()).unwrap() - 0.25).abs() < 0.01);
        let (ra, rb) = (a.drain(), b.drain());
        assert_eq!(ra.outputs.len(), 200);
        assert_eq!(rb.outputs.len(), 200);
        cluster.shutdown();
    }

    #[test]
    fn finished_tenant_releases_its_share_to_the_survivors() {
        let cluster =
            ThreadCluster::launch(free_nodes(1), FaultPlan::new(), Duration::from_millis(10));
        let cfg = EngineConfig::new(free_nodes(1));
        let mut a = attach(cluster.pool(), spin_pipeline("a", 1), &cfg, 50, false);
        let mut b = attach(cluster.pool(), spin_pipeline("b", 1), &cfg, 400, false);
        cluster.register(a.tenant_handle(), ShareQuota::default());
        cluster.register(b.tenant_handle(), ShareQuota::default());
        let b_id = b.session_id();
        for i in 0..50u64 {
            a.push(i).unwrap();
        }
        for i in 0..400u64 {
            b.push(i).unwrap();
        }
        // A finishes and detaches; B stays backlogged. Within a few
        // windows B must hold the whole pool again.
        let ra = a.drain();
        assert_eq!(ra.outputs.len(), 50);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let share = cluster.share_of(b_id).unwrap();
            if (share - 1.0).abs() < 1e-6 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "B never reclaimed the pool (share {share})"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(cluster.sessions(), vec![b_id]);
        let rb = b.drain();
        assert_eq!(rb.outputs.len(), 400);
        cluster.shutdown();
    }

    #[test]
    fn evict_now_removes_the_tenant_and_rebalances() {
        let cluster = ThreadCluster::launch(
            free_nodes(1),
            FaultPlan::new(),
            Duration::from_millis(500), // effectively no dynamic window
        );
        let cfg = EngineConfig::new(free_nodes(1));
        let mut keep = attach(cluster.pool(), spin_pipeline("k", 1), &cfg, 30, false);
        let mut goner = attach(cluster.pool(), spin_pipeline("g", 1), &cfg, 200, false);
        cluster.register(keep.tenant_handle(), ShareQuota::default());
        cluster.register(goner.tenant_handle(), ShareQuota::default());
        for i in 0..200u64 {
            goner.push(i).unwrap();
        }
        assert!(cluster.evict_now(goner.session_id()));
        assert!(!cluster.evict_now(goner.session_id()), "already gone");
        // The survivor is immediately re-granted the whole pool.
        assert!((cluster.share_of(keep.session_id()).unwrap() - 1.0).abs() < 1e-9);
        for i in 0..30u64 {
            keep.push(i).unwrap();
        }
        let rg = goner.drain();
        assert!(rg.report.truncated, "evicted tenant reports truncation");
        let rk = keep.drain();
        assert_eq!(rk.outputs.len(), 30, "survivor unaffected");
        cluster.shutdown();
    }
}
