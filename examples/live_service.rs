//! Live streaming service: an open-ended `RunSession` absorbing a load
//! spike without dropping an item.
//!
//! A long-running service does not know its stream length up front: it
//! pushes requests as they arrive, pulls results as they complete, and
//! expects the runtime to re-map *while traffic keeps flowing*. This
//! example runs such a service on the threaded backend:
//!
//! 1. spawn a session over 3 virtual nodes with bounded queues
//!    (`queue_capacity`), so a stalled pipeline pushes back on the
//!    source instead of buffering without limit;
//! 2. push steady traffic; mid-run, node 1 collapses to 5 %
//!    availability (the "load spike") and the arrival rate doubles;
//! 3. watch the live `RunEvent` stream — window statistics, the
//!    committed re-mapping away from the loaded node, and any
//!    backpressure stalls — while outputs are consumed concurrently;
//! 4. drain gracefully and emit the machine-readable report
//!    (`RunReport::to_json`).
//!
//! Run with: `cargo run --release --example live_service`

use adapipe::prelude::*;
use std::time::{Duration, Instant};

/// Per-item work each stage spins for, per phase: ~3 ms.
const STAGE: Duration = Duration::from_millis(3);

fn main() {
    // Three vnodes; node 1 collapses to 5 % availability at t = 0.9 s.
    let vnodes = vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1").with_load(LoadModel::step(1.0, 0.05, SimTime::from_secs_f64(0.9))),
        VNodeSpec::free("v2"),
    ];

    let pipeline = Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("decode", 0.003, 256), |req: u64| {
            spin_for(STAGE);
            req + 1
        })
        .stage_with(StageSpec::balanced("transform", 0.003, 256), |x: u64| {
            spin_for(STAGE);
            x * 2
        })
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(250),
        })
        .build()
        .expect("a valid pipeline");

    let mut session = pipeline
        .spawn(
            Backend::Threads(vnodes),
            RunConfig {
                items: 1_000, // amortisation hint only — the stream is open
                initial_mapping: Some(Mapping::from_assignment(&[NodeId(0), NodeId(1)])),
                queue_capacity: Some(16),
                ..RunConfig::default()
            },
        )
        .expect("a compatible backend");
    let events = session.events();

    println!("== live service: open stream, spike at t=0.9s ==\n");

    // Two traffic phases: steady 100 req/s, then a 200 req/s burst that
    // lands while node 1 is collapsed. The service never stops pushing
    // and never stops consuming.
    let epoch = Instant::now();
    let mut outputs: Vec<u64> = Vec::new();
    let mut offered = 0u64;
    for (phase, (rate, count)) in [(100.0_f64, 120u64), (200.0, 180)].iter().enumerate() {
        let phase_start = offered;
        for i in 0..*count {
            let due = epoch.elapsed().as_secs_f64();
            let target =
                (phase_start + i) as f64 / rate + if phase == 1 { 120.0 / 100.0 } else { 0.0 };
            if target > due {
                std::thread::sleep(Duration::from_secs_f64(target - due));
            }
            session.push(offered).unwrap();
            offered += 1;
            // Consume whatever is ready — the stream stays live.
            while let TryNext::Item(o) = session.try_next() {
                outputs.push(o);
            }
        }
        println!(
            "phase {} done: {:>3} pushed at {:>3.0} req/s ({} in flight)",
            phase + 1,
            count,
            rate,
            session.in_flight()
        );
    }

    // Graceful drain: every pushed request completes.
    let handle = session.drain();
    outputs.extend(handle.outputs);
    let report = handle.report;

    // What the live event stream saw, while we were serving.
    let mut remaps = 0u32;
    let mut stalls = 0u32;
    let mut windows = 0u32;
    for ev in events.try_iter() {
        match ev {
            RunEvent::Remap { plan, .. } => {
                remaps += 1;
                println!(
                    "remap at t={:.2}s: {} -> {} (cost {:.3}s)",
                    plan.at.as_secs_f64(),
                    plan.from,
                    plan.to,
                    plan.migration_cost.as_secs_f64(),
                );
            }
            RunEvent::BackpressureStall { seq, waited, .. } => {
                stalls += 1;
                if stalls <= 3 {
                    println!(
                        "backpressure: push #{seq} waited {:.1}ms",
                        waited.as_secs_f64() * 1e3
                    );
                }
            }
            RunEvent::WindowStats { .. } => windows += 1,
            _ => {} // future event kinds: not this example's business
        }
    }

    println!(
        "\nserved {} / {} requests | {} re-mappings | {} stall(s) | {} windows observed",
        report.completed, offered, remaps, stalls, windows
    );
    println!(
        "final mapping {} (collapsed node evacuated: {})",
        report.final_mapping,
        !report.final_mapping.nodes_used().contains(&NodeId(1)),
    );

    // The service contract: nothing dropped, everything exactly once,
    // in order.
    assert_eq!(report.completed, offered, "an item was dropped");
    let expect: Vec<u64> = (0..offered).map(|x| (x + 1) * 2).collect();
    assert_eq!(outputs, expect, "outputs must be exactly-once, in order");
    assert!(remaps >= 1, "the spike must force a re-mapping");

    println!("\nmachine-readable report:\n{}", report.to_json());
}
