//! Per-stage instrumentation: observed service and queueing behaviour.
//!
//! The adaptive pattern's founding premise is that the skeleton can
//! *measure itself*: every task execution yields a service-time sample
//! attributable to (stage, node). Engines accumulate these into a
//! [`StageMetrics`] included in the final report — the observable a
//! deployment would feed to capacity planning, and the ground truth the
//! evaluation uses to validate the analytic model's service estimates.

use adapipe_gridsim::time::SimDuration;
use adapipe_monitor::stats::Welford;

/// Accumulated service-time statistics for one pipeline stage.
#[derive(Clone, Debug, Default)]
pub struct StageStats {
    service: Welford,
    /// Work units processed (sum of draws).
    work_done: f64,
}

impl StageStats {
    /// Records one completed task.
    pub fn record(&mut self, service: SimDuration, work: f64) {
        self.service.push(service.as_secs_f64());
        self.work_done += work;
    }

    /// Records `count` completed tasks totalling `total` busy time and
    /// `work` work units, absorbed as one zero-variance batch at the
    /// window mean. Counts, sums and means stay exact; only the
    /// within-window service spread is collapsed — the trade the
    /// threaded engine's stride-sampled hot path makes to keep its
    /// bookkeeping at O(batches) rather than O(items).
    pub fn record_batch(&mut self, total: SimDuration, count: u64, work: f64) {
        if count == 0 {
            return;
        }
        self.service
            .push_n(total.as_secs_f64() / count as f64, count);
        self.work_done += work;
    }

    /// Number of tasks recorded.
    pub fn count(&self) -> u64 {
        self.service.count()
    }

    /// Mean service time, if any task completed.
    pub fn mean_service(&self) -> Option<SimDuration> {
        self.service.mean().map(SimDuration::from_secs_f64)
    }

    /// Service-time standard deviation, with ≥ 2 samples.
    pub fn service_std_dev(&self) -> Option<SimDuration> {
        self.service.std_dev().map(SimDuration::from_secs_f64)
    }

    /// Total work units processed.
    pub fn work_done(&self) -> f64 {
        self.work_done
    }

    /// Merges another stage's statistics into this one (exact for all
    /// reported moments) — how per-worker accumulators fold into one
    /// report.
    pub fn absorb(&mut self, other: &StageStats) {
        self.service.merge(&other.service);
        self.work_done += other.work_done;
    }

    /// Observed effective rate: work per busy second. Comparing this
    /// against `speed × availability` validates the engine's slowdown
    /// accounting end-to-end.
    pub fn effective_rate(&self) -> Option<f64> {
        let mean = self.service.mean()?;
        if mean <= 0.0 || self.service.count() == 0 {
            return None;
        }
        let mean_work = self.work_done / self.service.count() as f64;
        Some(mean_work / mean)
    }
}

/// Service-time statistics for every stage of a run.
#[derive(Clone, Debug, Default)]
pub struct StageMetrics {
    stages: Vec<StageStats>,
}

impl StageMetrics {
    /// Creates metrics for `ns` stages.
    pub fn new(ns: usize) -> Self {
        StageMetrics {
            stages: vec![StageStats::default(); ns],
        }
    }

    /// Records a completed task of `stage`.
    pub fn record(&mut self, stage: usize, service: SimDuration, work: f64) {
        self.stages[stage].record(service, work);
    }

    /// Records a whole window of `count` tasks of `stage` totalling
    /// `total` busy time and `work` work units in O(1) — see
    /// [`StageStats::record_batch`].
    pub fn record_batch(&mut self, stage: usize, total: SimDuration, count: u64, work: f64) {
        self.stages[stage].record_batch(total, count, work);
    }

    /// Merges another run's (or worker's) metrics into this one,
    /// stage by stage.
    ///
    /// # Panics
    /// Panics if the stage counts differ.
    pub fn absorb(&mut self, other: &StageMetrics) {
        assert_eq!(
            self.stages.len(),
            other.stages.len(),
            "stage count mismatch"
        );
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.absorb(theirs);
        }
    }

    /// Statistics of one stage.
    pub fn stage(&self, s: usize) -> &StageStats {
        &self.stages[s]
    }

    /// All stages in order.
    pub fn stages(&self) -> &[StageStats] {
        &self.stages
    }

    /// Number of stages tracked.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if no stages are tracked.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage with the largest mean service time — the empirical
    /// bottleneck, to compare against the model's prediction.
    pub fn bottleneck_stage(&self) -> Option<usize> {
        self.stages
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.mean_service().map(|m| (i, m)))
            .max_by_key(|&(_, m)| m)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(secs: f64) -> SimDuration {
        SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn stats_accumulate_mean_and_count() {
        let mut s = StageStats::default();
        s.record(d(1.0), 1.0);
        s.record(d(3.0), 1.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean_service(), Some(d(2.0)));
        assert_eq!(s.work_done(), 2.0);
    }

    #[test]
    fn record_batch_keeps_exact_count_mean_and_work() {
        let mut batched = StageStats::default();
        let mut stream = StageStats::default();
        for _ in 0..8 {
            stream.record(d(0.25), 1.5);
        }
        batched.record_batch(d(2.0), 8, 12.0);
        assert_eq!(batched.count(), stream.count());
        assert_eq!(batched.mean_service(), stream.mean_service());
        assert!((batched.work_done() - stream.work_done()).abs() < 1e-12);
        // A zero-count window is a no-op.
        batched.record_batch(d(5.0), 0, 5.0);
        assert_eq!(batched.count(), 8);
        assert!((batched.work_done() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn batched_windows_merge_with_streamed_samples() {
        // Mixing record() and record_batch() keeps first moments exact.
        let mut m = StageMetrics::new(1);
        m.record(0, d(1.0), 2.0);
        m.record_batch(0, d(3.0), 3, 6.0);
        let s = m.stage(0);
        assert_eq!(s.count(), 4);
        assert!((s.mean_service().unwrap().as_secs_f64() - 1.0).abs() < 1e-12);
        assert!((s.work_done() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn effective_rate_is_work_per_busy_second() {
        let mut s = StageStats::default();
        // 2 units of work in 4 s each time → rate 0.5.
        s.record(d(4.0), 2.0);
        s.record(d(4.0), 2.0);
        let rate = s.effective_rate().unwrap();
        assert!((rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_no_estimates() {
        let s = StageStats::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_service(), None);
        assert_eq!(s.effective_rate(), None);
    }

    #[test]
    fn bottleneck_is_slowest_stage() {
        let mut m = StageMetrics::new(3);
        m.record(0, d(1.0), 1.0);
        m.record(1, d(5.0), 1.0);
        m.record(2, d(2.0), 1.0);
        assert_eq!(m.bottleneck_stage(), Some(1));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn empty_metrics_have_no_bottleneck() {
        let m = StageMetrics::new(2);
        assert_eq!(m.bottleneck_stage(), None);
    }

    #[test]
    fn absorb_equals_single_stream() {
        // Two workers' accumulators folded together must match one
        // accumulator that saw every sample.
        let mut a = StageMetrics::new(1);
        let mut b = StageMetrics::new(1);
        let mut whole = StageMetrics::new(1);
        for (i, v) in [1.0, 2.0, 4.0, 8.0, 16.0].iter().enumerate() {
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.record(0, d(*v), *v);
            whole.record(0, d(*v), *v);
        }
        a.absorb(&b);
        let (merged, single) = (a.stage(0), whole.stage(0));
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.work_done(), single.work_done());
        let (ms, ss) = (
            merged.mean_service().unwrap().as_secs_f64(),
            single.mean_service().unwrap().as_secs_f64(),
        );
        assert!((ms - ss).abs() < 1e-12);
        let (md, sd) = (
            merged.service_std_dev().unwrap().as_secs_f64(),
            single.service_std_dev().unwrap().as_secs_f64(),
        );
        assert!((md - sd).abs() < 1e-9, "variance merge must be exact");
    }

    #[test]
    fn std_dev_needs_two_samples() {
        let mut s = StageStats::default();
        s.record(d(2.0), 1.0);
        assert_eq!(s.service_std_dev(), None);
        s.record(d(4.0), 1.0);
        let sd = s.service_std_dev().unwrap().as_secs_f64();
        assert!((sd - std::f64::consts::SQRT_2).abs() < 1e-9);
    }
}
