//! A task farm on the grid: the degenerate one-stage pipeline that the
//! planner replicates as wide as it pays, surviving a worker crash.
//!
//! Simulates a "render farm": each item costs ~4 work units (±30 %
//! per-frame jitter); the planner spreads the stage over the 8-node
//! heterogeneous testbed, and when the fastest node crashes mid-run the
//! controller re-spreads without losing a frame. The replication width
//! is declared in the API (`with_replicas`), so the runtime farms only
//! as wide as the programmer permitted.
//!
//! Run with: `cargo run --release --example render_farm`

use adapipe::prelude::*;

fn main() {
    let mut grid = testbed_hetero8(21);
    FaultPlan::new()
        .crash(NodeId(0), SimTime::from_secs_f64(120.0))
        .apply(&mut grid);

    // The farm: one stateless stage, jittered cost, 256 KiB frames,
    // replicable up to `width` nodes — the bound declared in the API.
    let run_with = |policy: Policy, width: usize| {
        let stage = StageSpec::balanced("render", 4.0, 256 << 10)
            .with_work(Box::new(UniformWork::new(4.0, 0.3, 77)))
            .with_replicas(width);
        let mut spec = PipelineSpec::new(vec![stage]);
        spec.input_bytes = 256 << 10;
        let mut cfg = RunConfig {
            items: 600,
            ..RunConfig::default()
        };
        cfg.controller.planner.max_width = width.max(1);
        PipelineBuilder::from_spec(spec)
            .policy(policy)
            .build()
            .expect("a valid pipeline")
            .run(Backend::Sim(&grid), cfg)
            .expect("a compatible backend")
            .report
    };

    println!("== render farm: 600 frames on hetero8, fastest node crashes at t=120s ==\n");
    let narrow = run_with(Policy::Static, 1);
    let static_wide = run_with(Policy::Static, 8);
    let adaptive = run_with(Policy::periodic_default(), 8);

    let describe = |name: &str, r: &RunReport| {
        println!(
            "{name:>16}: {} frames in {:>8.1}s ({:>5.2} f/s) | width {} | remaps {}{}",
            r.completed,
            r.makespan.as_secs_f64(),
            r.mean_throughput(),
            r.final_mapping.placement(0).width(),
            r.adaptation_count(),
            if r.truncated { " | TRUNCATED" } else { "" },
        );
    };
    describe("single node", &narrow);
    describe("static farm", &static_wide);
    describe("adaptive farm", &adaptive);

    println!(
        "\nlatency p50/p95/p99 (adaptive): {:.1}s / {:.1}s / {:.1}s",
        adaptive.latency_percentile(0.50).unwrap().as_secs_f64(),
        adaptive.latency_percentile(0.95).unwrap().as_secs_f64(),
        adaptive.latency_percentile(0.99).unwrap().as_secs_f64(),
    );
    for e in &adaptive.adaptations {
        println!(
            "re-mapped at t={:.0}s: width {} -> {}",
            e.at.as_secs_f64(),
            e.from.placement(0).width(),
            e.to.placement(0).width(),
        );
    }
    println!(
        "\nThe static farm loses every frame queued on the crashed node\n\
         (truncated run); the adaptive farm re-spreads and finishes all 600."
    );
}
