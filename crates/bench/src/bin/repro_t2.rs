//! Table 2 — model validation: does the analytic bottleneck model pick
//! (nearly) the mapping that actually simulates fastest?
//!
//! For a 3-stage pipeline on 3 nodes we sweep network quality and node
//! load, and for each cell (a) let the planner choose a mapping with the
//! analytic model, and (b) simulate *every* unreplicated mapping (3³ =
//! 27) to find the true optimum. The planner is validated if its choice
//! simulates within a few percent of the true best.

use adapipe_bench::{banner, Table};
use adapipe_core::prelude::*;
use adapipe_core::simengine::run as sim_run;
use adapipe_gridsim::prelude::*;
use adapipe_mapper::prelude::*;

struct Case {
    label: &'static str,
    link: LinkSpec,
    avail: [f64; 3],
}

fn main() {
    banner(
        "T2",
        "model-selected vs simulated-best mapping (3 stages x 3 nodes)",
        "planner within ~5% of the exhaustive-simulation optimum in every \
         cell; coalescing wins on slow links, spreading on fast ones",
    );

    let cases = [
        Case {
            label: "lan/free",
            link: LinkSpec::lan(),
            avail: [1.0, 1.0, 1.0],
        },
        Case {
            label: "lan/n2-busy",
            link: LinkSpec::lan(),
            avail: [1.0, 1.0, 0.25],
        },
        Case {
            label: "lan/n1+n2-busy",
            link: LinkSpec::lan(),
            avail: [1.0, 0.5, 0.25],
        },
        Case {
            label: "wan/free",
            link: LinkSpec::wan(),
            avail: [1.0, 1.0, 1.0],
        },
        Case {
            label: "wan/n2-busy",
            link: LinkSpec::wan(),
            avail: [1.0, 1.0, 0.25],
        },
        Case {
            label: "slowwan/free",
            link: LinkSpec::slow_wan(),
            avail: [1.0, 1.0, 1.0],
        },
        Case {
            label: "slowwan/n2-busy",
            link: LinkSpec::slow_wan(),
            avail: [1.0, 1.0, 0.25],
        },
        Case {
            label: "slowwan/n2-4x",
            link: LinkSpec::slow_wan(),
            avail: [0.25, 0.25, 1.0],
        },
    ];

    let items = 300u64;
    let bytes = 1u64 << 20; // 1 MB items make network quality matter
    let spec = PipelineSpec::balanced(3, 1.0, bytes);
    let profile = spec.profile();

    let mut table = Table::new(&[
        "case",
        "model pick",
        "model tput",
        "sim tput(pick)",
        "sim best map",
        "sim tput(best)",
        "gap %",
    ]);
    let mut worst_gap = 0.0f64;

    for case in &cases {
        let nodes = case
            .avail
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                Node::new(
                    NodeSpec::new(format!("n{i}"), 1.0, 1),
                    LoadModel::constant(a),
                )
            })
            .collect();
        let grid = GridSpec::new(nodes, Topology::uniform(3, case.link));
        let rates = grid.rates_at(SimTime::ZERO);

        // (a) planner choice under the analytic model (no replication, to
        // keep the space identical to the exhaustive sweep).
        let cfg = PlannerConfig {
            max_width: 1,
            ..PlannerConfig::default()
        };
        let picked = plan(&profile, &rates, grid.topology(), &cfg);

        // (b) simulate every assignment.
        let mut best: Option<(Mapping, f64)> = None;
        let mut picked_tput = 0.0;
        for mapping in Assignments::new(3, 3) {
            let report = sim_run(
                &grid,
                &spec,
                &SimConfig {
                    items,
                    initial_mapping: Some(mapping.clone()),
                    link_contention: true,
                    ..SimConfig::default()
                },
            );
            let tput = report.mean_throughput();
            if mapping == picked.mapping {
                picked_tput = tput;
            }
            if best.as_ref().is_none_or(|&(_, b)| tput > b) {
                best = Some((mapping, tput));
            }
        }
        let (best_mapping, best_tput) = best.expect("27 mappings simulated");
        let gap = (best_tput - picked_tput) / best_tput * 100.0;
        worst_gap = worst_gap.max(gap);
        table.row(vec![
            case.label.to_string(),
            picked.mapping.notation(),
            format!("{:.3}", picked.prediction.throughput),
            format!("{picked_tput:.3}"),
            best_mapping.notation(),
            format!("{best_tput:.3}"),
            format!("{gap:.1}"),
        ]);
    }
    table.print();
    println!("worst model-vs-simulation gap: {worst_gap:.1}% (validated if ≲5%)");
}
