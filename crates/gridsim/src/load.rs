//! Background-load (availability) models for grid nodes.
//!
//! A node's *availability* `a(t) ∈ [0, 1]` is the fraction of its nominal
//! speed the pipeline can actually use at simulated time `t`; the remainder
//! is consumed by other grid users. Availability models are **pure
//! functions of time** fixed at construction: the simulator can therefore
//! integrate work across future load changes exactly, and runs are
//! reproducible under a seed.
//!
//! All stochastic variants (random walk, Markov on/off) are lowered at
//! construction to a piecewise-constant trace over a finite horizon that
//! repeats cyclically, so queries are `O(log n)` and take `&self`.

use crate::rng::{exp_at, mix, unit_f64};
use crate::time::{SimDuration, SimTime};

/// A piecewise-constant function of simulated time.
///
/// `points` holds `(start_time, value)` segments sorted by time, with the
/// first segment starting at `t = 0`. If `cycle` is set, the function
/// repeats with that period; otherwise the last segment extends forever.
#[derive(Clone, Debug, PartialEq)]
pub struct PiecewiseConst {
    points: Vec<(SimTime, f64)>,
    cycle: Option<SimDuration>,
}

impl PiecewiseConst {
    /// Builds a piecewise-constant function.
    ///
    /// # Panics
    /// Panics if `points` is empty, unsorted, does not start at `t = 0`,
    /// or if `cycle` is shorter than the last segment start.
    pub fn new(points: Vec<(SimTime, f64)>, cycle: Option<SimDuration>) -> Self {
        assert!(
            !points.is_empty(),
            "piecewise trace needs at least one segment"
        );
        assert_eq!(
            points[0].0,
            SimTime::ZERO,
            "first segment must start at t=0"
        );
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "piecewise segments must be strictly increasing in time"
        );
        if let Some(c) = cycle {
            let last = points.last().expect("non-empty").0;
            assert!(
                SimTime::ZERO + c > last,
                "cycle {c} must extend past the last segment start {last}"
            );
        }
        PiecewiseConst { points, cycle }
    }

    /// Value at time `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        let local = self.localise(t);
        match self.points.binary_search_by(|probe| probe.0.cmp(&local)) {
            Ok(i) => self.points[i].1,
            Err(0) => unreachable!("first segment starts at 0"),
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The next time strictly after `t` at which the value may change,
    /// or `None` if the function is constant from `t` on.
    pub fn next_change(&self, t: SimTime) -> Option<SimTime> {
        match self.cycle {
            None => {
                let idx = self.points.iter().position(|&(start, _)| start > t)?;
                Some(self.points[idx].0)
            }
            Some(cycle) => {
                // Which cycle are we in, and where within it?
                let cycle_ns = cycle.as_nanos();
                let base = t.as_nanos() / cycle_ns * cycle_ns;
                let local = SimTime::from_nanos(t.as_nanos() - base);
                for &(start, _) in &self.points {
                    if start > local {
                        return Some(SimTime::from_nanos(base + start.as_nanos()));
                    }
                }
                // Wrap to the start of the next cycle.
                Some(SimTime::from_nanos(base + cycle_ns))
            }
        }
    }

    fn localise(&self, t: SimTime) -> SimTime {
        match self.cycle {
            None => t,
            Some(c) => SimTime::from_nanos(t.as_nanos() % c.as_nanos()),
        }
    }

    /// Number of segments in one cycle (or in the whole trace).
    pub fn segment_count(&self) -> usize {
        self.points.len()
    }
}

/// Availability model of one grid node over simulated time.
///
/// Values are clamped to `[0, 1]` at query time. An availability of `0`
/// models a node that is (temporarily) unusable.
#[derive(Clone, Debug)]
pub enum LoadModel {
    /// Constant availability.
    Constant {
        /// The fixed availability level in `[0, 1]`.
        level: f64,
    },
    /// A single step change at a known instant — the canonical "another
    /// job arrived on this node" event.
    Step {
        /// Availability before `at`.
        before: f64,
        /// Availability from `at` on.
        after: f64,
        /// The instant of the change.
        at: SimTime,
    },
    /// Periodic square wave alternating between `hi` and `lo`.
    SquareWave {
        /// Availability during the high phase.
        hi: f64,
        /// Availability during the low phase.
        lo: f64,
        /// Full period of the wave.
        period: SimDuration,
        /// Fraction of the period spent in the high phase, in `(0, 1)`.
        duty: f64,
        /// Offset applied to the clock before phase computation.
        phase: SimDuration,
    },
    /// Arbitrary piecewise-constant trace (optionally cyclic). Stochastic
    /// models are lowered to this representation at construction.
    Trace(PiecewiseConst),
    /// A base model with capped-availability windows layered on top —
    /// the representation of injected faults. Within a window the
    /// availability is `min(base, cap)`; outside, the base applies
    /// unchanged. Windows are sorted and disjoint.
    Overlay {
        /// The underlying model.
        base: Box<LoadModel>,
        /// Sorted, disjoint `(from, to, cap)` windows.
        windows: Vec<OverlayWindow>,
    },
}

/// One availability-cap window of a [`LoadModel::Overlay`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverlayWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
    /// Availability ceiling inside the window (`0.0` = outage).
    pub cap: f64,
}

impl LoadModel {
    /// Fully available node (availability 1).
    pub fn free() -> Self {
        LoadModel::Constant { level: 1.0 }
    }

    /// Constant availability `level`.
    pub fn constant(level: f64) -> Self {
        assert!((0.0..=1.0).contains(&level), "level must be in [0,1]");
        LoadModel::Constant { level }
    }

    /// Step from `before` to `after` at time `at`.
    pub fn step(before: f64, after: f64, at: SimTime) -> Self {
        assert!((0.0..=1.0).contains(&before) && (0.0..=1.0).contains(&after));
        LoadModel::Step { before, after, at }
    }

    /// Square wave between `hi` and `lo` with the given period and duty cycle.
    pub fn square_wave(
        hi: f64,
        lo: f64,
        period: SimDuration,
        duty: f64,
        phase: SimDuration,
    ) -> Self {
        assert!((0.0..=1.0).contains(&hi) && (0.0..=1.0).contains(&lo));
        assert!(duty > 0.0 && duty < 1.0, "duty must be in (0,1)");
        assert!(!period.is_zero(), "period must be positive");
        LoadModel::SquareWave {
            hi,
            lo,
            period,
            duty,
            phase,
        }
    }

    /// Sinusoidal availability `mean + amplitude·sin(2πt/period)`,
    /// discretised into `segments` piecewise-constant steps per period.
    pub fn sinusoid(mean: f64, amplitude: f64, period: SimDuration, segments: usize) -> Self {
        assert!(segments >= 2, "need at least two segments per period");
        assert!(!period.is_zero(), "period must be positive");
        let seg_ns = (period.as_nanos() / segments as u64).max(1);
        let points = (0..segments)
            .map(|k| {
                let start = SimTime::from_nanos(k as u64 * seg_ns);
                // Sample at the segment midpoint.
                let mid = (k as f64 + 0.5) / segments as f64;
                let v = mean + amplitude * (std::f64::consts::TAU * mid).sin();
                (start, v.clamp(0.0, 1.0))
            })
            .collect();
        LoadModel::Trace(PiecewiseConst::new(
            points,
            Some(SimDuration::from_nanos(seg_ns * segments as u64)),
        ))
    }

    /// Bounded random walk: availability starts at `start` and moves by a
    /// uniform step in `[-step, step]` every `dt`, reflected into
    /// `[lo, hi]`. Lowered to a cyclic trace spanning `horizon`.
    pub fn random_walk(
        seed: u64,
        start: f64,
        step: f64,
        dt: SimDuration,
        lo: f64,
        hi: f64,
        horizon: SimDuration,
    ) -> Self {
        assert!(
            lo >= 0.0 && hi <= 1.0 && lo < hi,
            "bounds must satisfy 0≤lo<hi≤1"
        );
        assert!(!dt.is_zero() && !horizon.is_zero());
        let steps = (horizon.as_nanos() / dt.as_nanos()).max(1) as usize;
        let mut value = start.clamp(lo, hi);
        let mut points = Vec::with_capacity(steps);
        for k in 0..steps {
            points.push((SimTime::from_nanos(k as u64 * dt.as_nanos()), value));
            let u = unit_f64(mix(seed, k as u64));
            value += (2.0 * u - 1.0) * step;
            // Reflect into [lo, hi].
            if value > hi {
                value = 2.0 * hi - value;
            }
            if value < lo {
                value = 2.0 * lo - value;
            }
            value = value.clamp(lo, hi);
        }
        LoadModel::Trace(PiecewiseConst::new(
            points,
            Some(SimDuration::from_nanos(steps as u64 * dt.as_nanos())),
        ))
    }

    /// Markov on/off process: exponentially distributed dwell times with
    /// means `mean_up`/`mean_down`; availability is 1 when up and
    /// `degraded` when down. Lowered to a cyclic trace spanning `horizon`.
    pub fn markov_on_off(
        seed: u64,
        mean_up: SimDuration,
        mean_down: SimDuration,
        degraded: f64,
        horizon: SimDuration,
    ) -> Self {
        assert!((0.0..=1.0).contains(&degraded));
        assert!(!mean_up.is_zero() && !mean_down.is_zero() && !horizon.is_zero());
        let mut points = Vec::new();
        let mut t = 0u64;
        let mut up = true;
        let mut k = 0u64;
        while t < horizon.as_nanos() {
            points.push((SimTime::from_nanos(t), if up { 1.0 } else { degraded }));
            let mean = if up { mean_up } else { mean_down };
            let dwell = exp_at(seed, k, mean.as_secs_f64()).max(1e-6);
            t = t.saturating_add(SimDuration::from_secs_f64(dwell).as_nanos().max(1));
            up = !up;
            k += 1;
        }
        LoadModel::Trace(PiecewiseConst::new(
            points,
            Some(SimDuration::from_nanos(horizon.as_nanos())),
        ))
    }

    /// Availability from an explicit `(time, level)` trace; the last level
    /// holds forever.
    pub fn trace(points: Vec<(SimTime, f64)>) -> Self {
        LoadModel::Trace(PiecewiseConst::new(points, None))
    }

    /// Availability at time `t`, clamped to `[0, 1]`.
    pub fn availability(&self, t: SimTime) -> f64 {
        let raw = match self {
            LoadModel::Constant { level } => *level,
            LoadModel::Step { before, after, at } => {
                if t < *at {
                    *before
                } else {
                    *after
                }
            }
            LoadModel::SquareWave {
                hi,
                lo,
                period,
                duty,
                phase,
            } => {
                let pos = (t.as_nanos().wrapping_add(phase.as_nanos())) % period.as_nanos();
                let threshold = (period.as_nanos() as f64 * duty) as u64;
                if pos < threshold {
                    *hi
                } else {
                    *lo
                }
            }
            LoadModel::Trace(trace) => trace.value_at(t),
            LoadModel::Overlay { base, windows } => {
                let b = base.availability(t);
                match windows.iter().find(|w| t >= w.from && t < w.to) {
                    Some(w) => b.min(w.cap),
                    None => b,
                }
            }
        };
        raw.clamp(0.0, 1.0)
    }

    /// The next instant strictly after `t` at which availability may
    /// change, or `None` if it is constant from `t` on.
    pub fn next_breakpoint(&self, t: SimTime) -> Option<SimTime> {
        match self {
            LoadModel::Constant { .. } => None,
            LoadModel::Step { at, .. } => (*at > t).then_some(*at),
            LoadModel::SquareWave {
                period,
                duty,
                phase,
                ..
            } => {
                let period_ns = period.as_nanos();
                let shifted = t.as_nanos().wrapping_add(phase.as_nanos());
                let pos = shifted % period_ns;
                let threshold = (period_ns as f64 * duty) as u64;
                let next_local = if pos < threshold {
                    threshold
                } else {
                    period_ns
                };
                Some(SimTime::from_nanos(t.as_nanos() + (next_local - pos)))
            }
            LoadModel::Trace(trace) => trace.next_change(t),
            LoadModel::Overlay { base, windows } => {
                let from_base = base.next_breakpoint(t);
                let from_windows = windows
                    .iter()
                    .flat_map(|w| [w.from, w.to])
                    .filter(|&b| b > t)
                    .min();
                match (from_base, from_windows) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            }
        }
    }

    /// Mean availability over `[from, to)`, integrating across breakpoints.
    pub fn mean_availability(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to > from, "empty interval");
        let mut t = from;
        let mut acc = 0.0;
        while t < to {
            let a = self.availability(t);
            let seg_end = match self.next_breakpoint(t) {
                Some(b) if b < to => b,
                _ => to,
            };
            acc += a * (seg_end - t).as_secs_f64();
            t = seg_end;
        }
        acc / (to - from).as_secs_f64()
    }

    /// Overlays outage windows (availability forced to zero) on this model,
    /// used by fault injection. The base model's own dynamics are preserved
    /// outside — and resume after — the outage windows.
    pub fn with_outages(self, outages: &[(SimTime, SimTime)]) -> Self {
        let windows = outages
            .iter()
            .map(|&(from, to)| OverlayWindow { from, to, cap: 0.0 })
            .collect::<Vec<_>>();
        self.with_windows(windows)
    }

    /// Overlays a single availability-cap window: within `[from, to)` the
    /// availability becomes `min(base, cap)`.
    pub fn with_cap_window(self, from: SimTime, to: SimTime, cap: f64) -> Self {
        self.with_windows(vec![OverlayWindow { from, to, cap }])
    }

    /// Overlays a set of cap windows on this model.
    ///
    /// # Panics
    /// Panics if windows are empty-intervaled, unsorted or overlapping, or
    /// if a cap lies outside `[0, 1]`.
    pub fn with_windows(self, windows: Vec<OverlayWindow>) -> Self {
        if windows.is_empty() {
            return self;
        }
        for w in &windows {
            assert!(w.from < w.to, "overlay window must be non-empty");
            assert!((0.0..=1.0).contains(&w.cap), "cap must be in [0,1]");
        }
        for pair in windows.windows(2) {
            assert!(
                pair[0].to <= pair[1].from,
                "overlay windows must be sorted and disjoint"
            );
        }
        // Flatten nested overlays on the same base where possible: if this
        // model is already an overlay and the new windows don't intersect
        // the existing ones we could merge, but correctness never requires
        // it — nesting composes via min() — so keep the simple form.
        LoadModel::Overlay {
            base: Box::new(self),
            windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn constant_has_no_breakpoints() {
        let m = LoadModel::constant(0.7);
        assert_eq!(m.availability(secs(0.0)), 0.7);
        assert_eq!(m.availability(secs(1e6)), 0.7);
        assert_eq!(m.next_breakpoint(secs(5.0)), None);
    }

    #[test]
    fn step_changes_exactly_at_instant() {
        let m = LoadModel::step(1.0, 0.25, secs(10.0));
        assert_eq!(m.availability(secs(9.999)), 1.0);
        assert_eq!(m.availability(secs(10.0)), 0.25);
        assert_eq!(m.next_breakpoint(secs(0.0)), Some(secs(10.0)));
        assert_eq!(m.next_breakpoint(secs(10.0)), None);
    }

    #[test]
    fn square_wave_alternates_with_duty() {
        let m =
            LoadModel::square_wave(1.0, 0.2, SimDuration::from_secs(10), 0.5, SimDuration::ZERO);
        assert_eq!(m.availability(secs(1.0)), 1.0);
        assert_eq!(m.availability(secs(6.0)), 0.2);
        assert_eq!(m.availability(secs(11.0)), 1.0);
        assert_eq!(m.next_breakpoint(secs(1.0)), Some(secs(5.0)));
        assert_eq!(m.next_breakpoint(secs(6.0)), Some(secs(10.0)));
    }

    #[test]
    fn sinusoid_stays_in_bounds_and_cycles() {
        let m = LoadModel::sinusoid(0.6, 0.3, SimDuration::from_secs(20), 16);
        for i in 0..200 {
            let a = m.availability(secs(i as f64 * 0.7));
            assert!((0.0..=1.0).contains(&a));
            assert!((0.25..=0.95).contains(&a), "a={a}");
        }
        // Cyclic: availability one period apart is identical.
        assert_eq!(m.availability(secs(3.0)), m.availability(secs(23.0)));
    }

    #[test]
    fn random_walk_is_bounded_deterministic_and_cyclic() {
        let mk = || {
            LoadModel::random_walk(
                42,
                0.8,
                0.1,
                SimDuration::from_secs(1),
                0.2,
                1.0,
                SimDuration::from_secs(100),
            )
        };
        let m1 = mk();
        let m2 = mk();
        for i in 0..500 {
            let t = secs(i as f64 * 0.37);
            let a = m1.availability(t);
            assert!((0.2..=1.0).contains(&a), "a={a}");
            assert_eq!(a, m2.availability(t), "determinism at {t}");
        }
        assert_eq!(m1.availability(secs(5.0)), m1.availability(secs(105.0)));
    }

    #[test]
    fn markov_alternates_between_one_and_degraded() {
        let m = LoadModel::markov_on_off(
            7,
            SimDuration::from_secs(5),
            SimDuration::from_secs(2),
            0.3,
            SimDuration::from_secs(200),
        );
        let mut seen_up = false;
        let mut seen_down = false;
        for i in 0..400 {
            let a = m.availability(secs(i as f64 * 0.5));
            assert!(a == 1.0 || a == 0.3, "a={a}");
            seen_up |= a == 1.0;
            seen_down |= a == 0.3;
        }
        assert!(seen_up && seen_down);
    }

    #[test]
    fn mean_availability_integrates_step() {
        let m = LoadModel::step(1.0, 0.5, secs(5.0));
        let mean = m.mean_availability(secs(0.0), secs(10.0));
        assert!((mean - 0.75).abs() < 1e-9, "mean={mean}");
    }

    #[test]
    fn outages_force_zero_and_restore() {
        let m = LoadModel::constant(0.9).with_outages(&[(secs(2.0), secs(4.0))]);
        assert_eq!(m.availability(secs(1.0)), 0.9);
        assert_eq!(m.availability(secs(3.0)), 0.0);
        assert_eq!(m.availability(secs(4.0)), 0.9);
    }

    #[test]
    fn outage_overlay_preserves_underlying_breakpoints() {
        let base = LoadModel::step(1.0, 0.4, secs(3.0));
        let m = base.with_outages(&[(secs(1.0), secs(2.0))]);
        assert_eq!(m.availability(secs(0.5)), 1.0);
        assert_eq!(m.availability(secs(1.5)), 0.0);
        assert_eq!(m.availability(secs(2.5)), 1.0);
        assert_eq!(m.availability(secs(3.5)), 0.4);
    }

    #[test]
    fn piecewise_next_change_wraps_cycles() {
        let p = PiecewiseConst::new(
            vec![(SimTime::ZERO, 1.0), (secs(3.0), 0.5)],
            Some(SimDuration::from_secs(10)),
        );
        assert_eq!(p.next_change(secs(4.0)), Some(secs(10.0)));
        assert_eq!(p.next_change(secs(10.5)), Some(secs(13.0)));
        assert_eq!(p.value_at(secs(12.0)), 1.0);
        assert_eq!(p.value_at(secs(13.5)), 0.5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_trace_panics() {
        let _ = PiecewiseConst::new(vec![(SimTime::ZERO, 1.0), (SimTime::ZERO, 0.5)], None);
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn bad_duty_panics() {
        let _ = LoadModel::square_wave(1.0, 0.5, SimDuration::from_secs(1), 1.5, SimDuration::ZERO);
    }
}
