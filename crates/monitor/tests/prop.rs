//! Property-based tests for forecasting invariants.

use adapipe_monitor::prelude::*;
use proptest::prelude::*;

fn feed(f: &mut dyn Forecaster, values: &[f64]) {
    for (i, &v) in values.iter().enumerate() {
        f.observe(i as f64, v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every forecaster converges exactly on a constant series.
    #[test]
    fn constant_series_is_learned_exactly(
        value in -1e6f64..1e6,
        n in 2usize..100,
    ) {
        let mut forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingMean::new(8)),
            Box::new(SlidingMedian::new(8)),
            Box::new(Ewma::new(0.3)),
            Box::new(AdaptiveEwma::new(0.05, 0.9)),
            Box::new(Ensemble::nws_default(8)),
        ];
        let series = vec![value; n];
        for f in &mut forecasters {
            feed(f.as_mut(), &series);
            let p = f.predict().expect("observed data");
            prop_assert!(
                (p - value).abs() <= 1e-9 * value.abs().max(1.0),
                "{} predicted {p} for constant {value}",
                f.name()
            );
        }
    }

    /// Mean-family predictions stay within the observed value range.
    #[test]
    fn predictions_stay_in_observed_range(
        values in prop::collection::vec(-1e3f64..1e3, 1..200),
    ) {
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingMean::new(16)),
            Box::new(SlidingMedian::new(16)),
            Box::new(Ewma::new(0.5)),
            Box::new(Ensemble::nws_default(16)),
        ];
        for f in &mut forecasters {
            feed(f.as_mut(), &values);
            let p = f.predict().expect("observed data");
            let slack = 1e-9 * hi.abs().max(lo.abs()).max(1.0);
            prop_assert!(
                p >= lo - slack && p <= hi + slack,
                "{} predicted {p} outside [{lo}, {hi}]",
                f.name()
            );
        }
    }

    /// Welford's streaming moments match the naive two-pass formulas.
    #[test]
    fn welford_matches_naive(
        values in prop::collection::vec(-1e4f64..1e4, 2..100),
    ) {
        let mut w = Welford::new();
        for &v in &values {
            w.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean().unwrap() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance().unwrap() - var).abs() < 1e-5 * var.abs().max(1.0));
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantiles_are_monotone(
        mut values in prop::collection::vec(-1e4f64..1e4, 1..100),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile_sorted(&values, lo_q);
        let b = quantile_sorted(&values, hi_q);
        prop_assert!(a <= b + 1e-12);
        prop_assert!(a >= values[0] - 1e-12);
        prop_assert!(b <= values[values.len() - 1] + 1e-12);
    }

    /// The observation window never exceeds its capacity and always
    /// keeps the most recent items.
    #[test]
    fn window_keeps_most_recent(
        capacity in 1usize..32,
        values in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut w = ObservationWindow::new(capacity);
        for (i, &v) in values.iter().enumerate() {
            w.push(i as f64, v);
        }
        prop_assert!(w.len() <= capacity);
        let kept: Vec<f64> = w.values().collect();
        let expected: Vec<f64> = values
            .iter()
            .skip(values.len().saturating_sub(capacity))
            .copied()
            .collect();
        prop_assert_eq!(kept, expected);
    }

    /// Ensemble trailing errors: on any series, the ensemble's one-step
    /// MAE is within a factor of the best member's (dynamic selection
    /// may lag, but must not be wildly worse).
    #[test]
    fn ensemble_tracks_best_member(
        seed_values in prop::collection::vec(0.0f64..1.0, 50..150),
    ) {
        let window = 8;
        let mut members: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(SlidingMean::new(window)),
            Box::new(SlidingMedian::new(window)),
            Box::new(Ewma::new(0.3)),
        ];
        let mut ensemble = Ensemble::nws_default(window);
        let mut member_errors = vec![ErrorStats::new(); members.len()];
        let mut ensemble_errors = ErrorStats::new();
        for (i, &v) in seed_values.iter().enumerate() {
            let t = i as f64;
            for (m, errs) in members.iter().zip(member_errors.iter_mut()) {
                if let Some(p) = m.predict() {
                    errs.record(p, v);
                }
            }
            if let Some(p) = ensemble.predict() {
                ensemble_errors.record(p, v);
            }
            for m in &mut members {
                m.observe(t, v);
            }
            ensemble.observe(t, v);
        }
        if let Some(e_mae) = ensemble_errors.mae() {
            let best = member_errors
                .iter()
                .filter_map(|e| e.mae())
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                e_mae <= best * 3.0 + 1e-9,
                "ensemble MAE {e_mae} vs best member {best}"
            );
        }
    }
}
