//! Node-health tracking derived from a fault plan.
//!
//! The physics of a fault (degraded availability, zeroed windows) is
//! applied by each backend to its own load schedules before the run
//! starts. What remains backend-*independent* is the control plane: at
//! which instants does a node go **down** (outage start, crash) or come
//! back **up** (outage end), which nodes are down right now, and what
//! the adaptation loop must do about it — exclude them from routing,
//! force a committed re-map away from them, and have the backend replay
//! the items that were stranded. [`FaultTracker`] is that control
//! plane's state machine, consumed by `AdaptationLoop::poll_faults`.

use adapipe_gridsim::fault::FaultPlan;
use adapipe_gridsim::node::NodeId;
use adapipe_gridsim::time::SimTime;

/// One node-health transition derived from a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTransition {
    /// The node becomes unusable at `at` (outage start or crash).
    Down {
        /// The affected node.
        node: NodeId,
        /// The scheduled instant of the transition.
        at: SimTime,
    },
    /// The node recovers at `at` (outage end). Crashes never emit this.
    Up {
        /// The recovered node.
        node: NodeId,
        /// The scheduled instant of the transition.
        at: SimTime,
    },
}

impl FaultTransition {
    /// The scheduled instant of the transition.
    pub fn at(&self) -> SimTime {
        match *self {
            FaultTransition::Down { at, .. } | FaultTransition::Up { at, .. } => at,
        }
    }

    /// The node the transition affects.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultTransition::Down { node, .. } | FaultTransition::Up { node, .. } => node,
        }
    }
}

/// Replays a [`FaultPlan`]'s down/up transitions against a backend
/// clock, tracking which nodes are currently down.
///
/// Transitions are precomputed at construction from the plan's merged
/// per-node down intervals, so overlapping outages collapse into one
/// down/up pair and a crash inside an outage never emits a spurious
/// recovery.
#[derive(Debug)]
pub struct FaultTracker {
    /// All transitions, sorted by time (ties: `Up` before `Down` so a
    /// back-to-back outage pair settles down at the boundary instant).
    transitions: Vec<FaultTransition>,
    next: usize,
    down: Vec<bool>,
}

impl FaultTracker {
    /// Builds the tracker for a run over `node_count` nodes.
    pub fn new(plan: &FaultPlan, node_count: usize) -> Self {
        let far = adapipe_gridsim::fault::FOREVER;
        let mut transitions = Vec::new();
        for i in 0..node_count {
            let node = NodeId(i);
            for (from, to) in plan.down_intervals(node) {
                transitions.push(FaultTransition::Down { node, at: from });
                if to < far {
                    transitions.push(FaultTransition::Up { node, at: to });
                }
            }
        }
        transitions.sort_by_key(|t| (t.at(), matches!(t, FaultTransition::Down { .. })));
        FaultTracker {
            transitions,
            next: 0,
            down: vec![false; node_count],
        }
    }

    /// A tracker with no faults (never fires).
    pub fn empty(node_count: usize) -> Self {
        Self::new(&FaultPlan::new(), node_count)
    }

    /// The instant of the next unprocessed transition, if any — backends
    /// that sleep on a wall clock use this to wake exactly when a fault
    /// is due.
    pub fn next_transition_at(&self) -> Option<SimTime> {
        self.transitions.get(self.next).map(|t| t.at())
    }

    /// Consumes and returns every transition due at or before `now`,
    /// updating the down set.
    pub fn poll(&mut self, now: SimTime) -> Vec<FaultTransition> {
        let mut due = Vec::new();
        while let Some(&t) = self.transitions.get(self.next) {
            if t.at() > now {
                break;
            }
            self.next += 1;
            match t {
                FaultTransition::Down { node, .. } => self.down[node.index()] = true,
                FaultTransition::Up { node, .. } => self.down[node.index()] = false,
            }
            due.push(t);
        }
        due
    }

    /// True if `node` is currently down (per the transitions processed
    /// so far).
    pub fn is_down(&self, node: usize) -> bool {
        self.down.get(node).copied().unwrap_or(false)
    }

    /// Indices of the nodes currently down.
    pub fn down_nodes(&self) -> Vec<usize> {
        (0..self.down.len()).filter(|&i| self.down[i]).collect()
    }

    /// True once every node is down — no placement can make progress.
    pub fn all_down(&self) -> bool {
        !self.down.is_empty() && self.down.iter().all(|&d| d)
    }

    /// True if `node` is down with no recovery ever scheduled (a crash,
    /// or an outage merged into one).
    pub fn is_permanently_down(&self, node: usize) -> bool {
        self.is_down(node)
            && !self.transitions[self.next..]
                .iter()
                .any(|t| matches!(t, FaultTransition::Up { node: n, .. } if n.index() == node))
    }

    /// Zeroes the entries of `rates` belonging to down nodes, so no
    /// planning path — periodic, reactive, forced, or fault-driven —
    /// can map work back onto a node known to be dead.
    pub fn mask_rates(&self, rates: &mut [f64]) {
        for (i, r) in rates.iter_mut().enumerate() {
            if self.is_down(i) {
                *r = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut t = FaultTracker::empty(3);
        assert_eq!(t.next_transition_at(), None);
        assert!(t.poll(secs(1e9)).is_empty());
        assert!(!t.is_down(0));
        assert!(!t.all_down());
    }

    #[test]
    fn outage_emits_down_then_up() {
        let plan = FaultPlan::new().outage(n(1), secs(10.0), secs(20.0));
        let mut t = FaultTracker::new(&plan, 3);
        assert_eq!(t.next_transition_at(), Some(secs(10.0)));
        assert!(t.poll(secs(5.0)).is_empty());
        let due = t.poll(secs(10.0));
        assert_eq!(
            due,
            vec![FaultTransition::Down {
                node: n(1),
                at: secs(10.0)
            }]
        );
        assert!(t.is_down(1));
        assert_eq!(t.down_nodes(), vec![1]);
        let due = t.poll(secs(25.0));
        assert_eq!(
            due,
            vec![FaultTransition::Up {
                node: n(1),
                at: secs(20.0)
            }]
        );
        assert!(!t.is_down(1));
        assert_eq!(t.next_transition_at(), None);
    }

    #[test]
    fn crash_never_recovers() {
        let plan = FaultPlan::new().crash(n(0), secs(30.0));
        let mut t = FaultTracker::new(&plan, 2);
        let due = t.poll(secs(1e12));
        assert_eq!(due.len(), 1, "a crash emits Down only: {due:?}");
        assert!(t.is_down(0));
        assert_eq!(t.next_transition_at(), None);
    }

    #[test]
    fn overlapping_faults_merge_into_one_down_window() {
        // Outage [10, 20) with a crash at 15 inside it: one Down at 10,
        // no Up ever.
        let plan = FaultPlan::new()
            .outage(n(0), secs(10.0), secs(20.0))
            .crash(n(0), secs(15.0));
        let mut t = FaultTracker::new(&plan, 1);
        let due = t.poll(secs(1e12));
        assert_eq!(
            due,
            vec![FaultTransition::Down {
                node: n(0),
                at: secs(10.0)
            }]
        );
        assert!(t.all_down());
    }

    #[test]
    fn slowdowns_do_not_count_as_down() {
        let plan = FaultPlan::new().slowdown(n(0), secs(0.0), secs(100.0), 0.1);
        let mut t = FaultTracker::new(&plan, 2);
        assert!(t.poll(secs(50.0)).is_empty());
        assert!(!t.is_down(0));
    }

    #[test]
    fn mask_rates_zeroes_down_nodes_only() {
        let plan = FaultPlan::new().crash(n(1), secs(1.0));
        let mut t = FaultTracker::new(&plan, 3);
        t.poll(secs(2.0));
        let mut rates = vec![1.0, 0.8, 0.5];
        t.mask_rates(&mut rates);
        assert_eq!(rates, vec![1.0, 0.0, 0.5]);
    }
}
