//! Arrival processes: how input items enter a pipeline over time.
//!
//! Backend-independent workload description — the simulator materialises
//! the schedule as events, a wall-clock backend can pace its source
//! thread off the same schedule.

use adapipe_gridsim::rng::exp_at;
use adapipe_gridsim::time::SimTime;

/// How input items enter the pipeline.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// The whole stream is available at `t = 0` (closed workload).
    AllAtOnce,
    /// One item every `1/rate` seconds.
    Uniform {
        /// Items per second.
        rate: f64,
    },
    /// Poisson arrivals with the given mean rate, deterministic per seed.
    Poisson {
        /// Mean items per second.
        rate: f64,
        /// Stream seed.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// Materialises the arrival time of every item.
    pub fn schedule(&self, items: u64) -> Vec<SimTime> {
        match *self {
            ArrivalProcess::AllAtOnce => vec![SimTime::ZERO; items as usize],
            ArrivalProcess::Uniform { rate } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                (0..items)
                    .map(|i| SimTime::from_secs_f64(i as f64 / rate))
                    .collect()
            }
            ArrivalProcess::Poisson { rate, seed } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                let mut t = 0.0f64;
                (0..items)
                    .map(|i| {
                        t += exp_at(seed, i, 1.0 / rate);
                        SimTime::from_secs_f64(t)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_at_once_lands_at_zero() {
        let s = ArrivalProcess::AllAtOnce.schedule(3);
        assert_eq!(s, vec![SimTime::ZERO; 3]);
    }

    #[test]
    fn uniform_spacing_matches_rate() {
        let s = ArrivalProcess::Uniform { rate: 2.0 }.schedule(4);
        let secs: Vec<f64> = s.iter().map(|t| t.as_secs_f64()).collect();
        assert_eq!(secs, vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn poisson_is_deterministic_and_monotone() {
        let a = ArrivalProcess::Poisson { rate: 1.0, seed: 9 }.schedule(50);
        let b = ArrivalProcess::Poisson { rate: 1.0, seed: 9 }.schedule(50);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival ≈ 1 s over 50 draws — loose sanity bound.
        let span = a.last().unwrap().as_secs_f64();
        assert!(span > 20.0 && span < 100.0, "span={span}");
    }
}
