//! Ablation A2 — which stability mechanism pays at which migration cost?
//!
//! Under load oscillating near the control period, aliased forecasts
//! hallucinate large gains and the cost/benefit rule alone cannot stop
//! the controller from chasing them. The sweep below raises the fixed
//! migration overhead from free to crippling and compares:
//!
//! * `chase` — default stack (hysteresis + warm-up + guard, confirm 1);
//! * `confirm` — the same plus 2-tick verdict confirmation;
//! * `bare` — hysteresis only (guard and warm-up disabled).
//!
//! Expected: with cheap migrations `chase` is best (tracking the wave is
//! profitable and reverting is nearly free); as overhead grows, `chase`
//! pays for every hallucinated move and `confirm` takes over; `bare` is
//! dominated everywhere it differs.

use adapipe_bench::{banner, Table};
use adapipe_core::prelude::*;
use adapipe_core::simengine::run as sim_run;
use adapipe_gridsim::prelude::*;
use adapipe_mapper::prelude::Mapping;

fn wave_grid() -> GridSpec {
    let period = SimDuration::from_secs(10); // 2× the adaptation interval
    let nodes = (0..4)
        .map(|i| {
            let load = match i {
                1 => LoadModel::square_wave(1.0, 0.1, period, 0.5, SimDuration::ZERO),
                3 => LoadModel::square_wave(1.0, 0.1, period, 0.5, period.mul_f64(0.5)),
                _ => LoadModel::free(),
            };
            Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), load)
        })
        .collect();
    GridSpec::new(nodes, Topology::uniform(4, LinkSpec::lan()))
}

fn main() {
    banner(
        "A2 (ablation)",
        "stability mechanisms vs migration overhead, oscillating load",
        "cheap migrations: chasing wins; expensive migrations: 2-tick \
         confirmation wins by refusing hallucinated gains; the bare \
         controller is never better than both",
    );

    let spec = PipelineSpec::balanced(4, 1.0, 10_000);
    let mapping = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    let items = 400u64;

    let static_r = sim_run(
        &wave_grid(),
        &spec,
        &SimConfig {
            items,
            initial_mapping: Some(mapping.clone()),
            ..SimConfig::default()
        },
    );
    println!("static baseline: {:.1}s\n", static_r.makespan.as_secs_f64());

    let mut table = Table::new(&[
        "overhead(s)",
        "chase(s)",
        "chase remaps",
        "confirm(s)",
        "confirm remaps",
        "bare(s)",
        "bare remaps",
    ]);
    for overhead_ms in [0u64, 100, 1_000, 5_000, 20_000] {
        let run = |confirm: u32, guard: bool| {
            let mut cfg = SimConfig {
                items,
                policy: Policy::Periodic {
                    interval: SimDuration::from_secs(5),
                },
                initial_mapping: Some(mapping.clone()),
                ..SimConfig::default()
            };
            cfg.controller.remap_overhead = SimDuration::from_millis(overhead_ms);
            cfg.controller.confirm_ticks = confirm;
            if !guard {
                cfg.controller.guard_bad_ticks = 0;
                cfg.controller.warmup_ticks = 0;
            }
            sim_run(&wave_grid(), &spec, &cfg)
        };
        let chase = run(1, true);
        let confirm = run(2, true);
        let bare = run(1, false);
        table.row(vec![
            format!("{:.1}", overhead_ms as f64 / 1000.0),
            format!("{:.1}", chase.makespan.as_secs_f64()),
            chase.adaptation_count().to_string(),
            format!("{:.1}", confirm.makespan.as_secs_f64()),
            confirm.adaptation_count().to_string(),
            format!("{:.1}", bare.makespan.as_secs_f64()),
            bare.adaptation_count().to_string(),
        ]);
    }
    table.print();
    println!(
        "reference: static {:.1}s — the best column should track it within \
         ~10% at every overhead",
        static_r.makespan.as_secs_f64()
    );
}
