//! Streaming-session overhead: the live `spawn`/`push`/`drain` path
//! must deliver throughput within a few percent of batch `run()` —
//! batch is now sugar over the session, so this pair bounds the cost of
//! the session surface itself (per-push credit checks, the output
//! channel, resequencing) at 1k and 10k items on both backends.
//!
//! Reading the pairs: `threads_session_push` vs `threads_batch_run` is
//! the apples-to-apples comparison (identical work, different driving
//! surface). The `sim_session_push` leg does strictly *more* than its
//! batch twin — a session executes the real stage functions on every
//! pushed item and materialises typed outputs, which the metadata-only
//! sim batch path never did — so a modest gap there is the price of
//! the new capability, not session-surface tax.
//!
//! `cargo bench -p adapipe-bench --bench streaming`
//!
//! Regenerate the committed baseline with:
//! `ADAPIPE_BENCH_JSON=$PWD/BENCH_streaming.json \
//!     cargo bench -p adapipe-bench --bench streaming`

use adapipe::api::{Backend, Pipeline, PipelineBuilder, RunConfig};
use adapipe_core::spec::PipelineSpec;
use adapipe_engine::vnode::VNodeSpec;
use adapipe_gridsim::grid::testbed_small3;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// A trivial 2-stage pipeline: the work is the plumbing, so the session
/// tax shows up loudest.
fn threads_pipeline() -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage("inc", |x: u64| x + 1)
        .stage("double", |x: u64| x * 2)
        .feed(|i| i)
        .build()
        .expect("valid pipeline")
}

fn vnodes() -> Vec<VNodeSpec> {
    vec![VNodeSpec::free("v0"), VNodeSpec::free("v1")]
}

fn cfg(items: u64) -> RunConfig {
    RunConfig {
        items,
        ..RunConfig::default()
    }
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for items in [1_000u64, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("threads_batch_run", items),
            &items,
            |b, &items| {
                b.iter(|| {
                    threads_pipeline()
                        .run(Backend::Threads(vnodes()), cfg(items))
                        .expect("batch run")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("threads_session_push", items),
            &items,
            |b, &items| {
                b.iter(|| {
                    let mut session = threads_pipeline()
                        .spawn(Backend::Threads(vnodes()), cfg(items))
                        .expect("spawn");
                    for i in 0..items {
                        session.push(i).unwrap();
                    }
                    session.drain()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sim_batch_run", items),
            &items,
            |b, &items| {
                let grid = testbed_small3();
                b.iter(|| {
                    PipelineBuilder::from_spec(PipelineSpec::balanced(3, 1.0, 10_000))
                        .build()
                        .expect("valid pipeline")
                        .run(Backend::Sim(&grid), cfg(items))
                        .expect("sim run")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sim_session_push", items),
            &items,
            |b, &items| {
                let grid = testbed_small3();
                b.iter(|| {
                    let mut session =
                        PipelineBuilder::from_spec(PipelineSpec::balanced(3, 1.0, 10_000))
                            .build()
                            .expect("valid pipeline")
                            .spawn(Backend::Sim(&grid), cfg(items))
                            .expect("spawn");
                    for i in 0..items {
                        session.push(i).unwrap();
                    }
                    session.drain()
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
