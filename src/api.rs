//! The unified `Pipeline` API: one typed, backend-agnostic entry point
//! for every execution backend.
//!
//! The paper presents *one* adaptive pipeline skeleton that hides
//! placement and re-mapping behind a single programming surface.
//! Historically this repo exposed two divergent entry points —
//! `sim_run(&grid, &spec, &SimConfig)` for the discrete-event backend
//! and `run_pipeline(pipeline, items, &EngineConfig)` for the threaded
//! backend — so every scenario was written twice. This module is the
//! single surface both now sit behind:
//!
//! ```
//! use adapipe::prelude::*;
//!
//! let pipeline = Pipeline::<u64>::builder()
//!     .stage("inc", |x: u64| x + 1)
//!     .stage_replicated("double", |x: u64| x * 2, 4)
//!     .policy(Policy::periodic_default())
//!     .feed(|i| i)
//!     .build()
//!     .expect("valid pipeline");
//!
//! // The same program runs on any backend.
//! let grid = testbed_small3();
//! let handle = pipeline
//!     .run(Backend::Sim(&grid), RunConfig { items: 50, ..RunConfig::default() })
//!     .expect("compatible backend");
//! assert_eq!(handle.report.completed, 50);
//! ```
//!
//! `build()` validates the declaration (non-empty, unique stage names,
//! legal replica bounds, policy/arrival compatibility) and returns a
//! typed [`BuildError`] instead of panicking mid-run; `run()`/`spawn()`
//! add the backend-dependent checks (input feed present, selection
//! supported). Stage state and replication properties are declared in
//! the API — [`PipelineBuilder::stage_replicated`] bounds how wide the
//! planner may legally farm a stage,
//! [`PipelineBuilder::stateful_stage`] pins a stage to width one — so
//! the runtime can replicate exactly what the programmer permitted.
//!
//! ## Streaming sessions
//!
//! Batch `run()` is sugar. The primary execution surface is the live
//! session: [`Pipeline::spawn`] starts the pipeline and hands back a
//! [`RunSession`] whose input side ([`RunSession::push`],
//! [`RunSession::close`]) and output side ([`RunSession::next`],
//! [`RunSession::try_next`]) the caller drives while adaptation runs
//! underneath:
//!
//! ```
//! use adapipe::prelude::*;
//!
//! let pipeline = Pipeline::<u64>::builder()
//!     .stage("inc", |x: u64| x + 1)
//!     .build()
//!     .expect("valid pipeline");
//! let mut session = pipeline
//!     .spawn(
//!         Backend::Threads(vec![VNodeSpec::free("v0")]),
//!         RunConfig { queue_capacity: Some(64), ..RunConfig::default() },
//!     )
//!     .expect("spawn");
//! for i in 0..10 {
//!     // Blocks only when the bounded queues are full; a closed or
//!     // evicted session returns a typed `RunError` instead.
//!     session.push(i).unwrap();
//! }
//! let handle = session.drain(); // graceful: every pushed item completes
//! assert_eq!(handle.outputs, (1..=10).collect::<Vec<_>>());
//! ```
//!
//! In-flight control rides on the session:
//! [`RunSession::pause_adaptation`] / [`RunSession::resume_adaptation`]
//! freeze and thaw re-mapping, [`RunSession::force_remap`] demands one
//! planning cycle now, [`RunSession::abort`] kills the run (vs. the
//! graceful [`RunSession::drain`]), and [`RunSession::events`]
//! subscribes to the live [`RunEvent`] stream (re-mappings, window
//! statistics, backpressure stalls) that generalises the one-callback
//! [`RunHooks`].
//!
//! The same session API runs on the simulator: the discrete-event world
//! advances cooperatively as the session is driven (`next()`/`drain()`
//! step it; virtual time never advances on its own), pushed items take
//! their arrival instants from the pipeline's declared
//! [`ArrivalProcess`], and stage functions are applied to pushed items
//! in push order — so one scenario written against [`RunSession`]
//! produces item-identical outputs on either backend.
//!
//! Live observation goes through [`RunConfig`]'s [`RunHooks`]
//! (`on_remap` fires at each committed re-mapping while the pipeline
//! runs) or the richer [`RunSession::events`] stream; post-run
//! observation through the [`RunHandle`].
//!
//! ## Multi-tenant clusters
//!
//! One node pool can serve many concurrent pipelines: [`Cluster::new`]
//! owns the pool once, [`Cluster::admit`] attaches any number of
//! sessions (heterogeneous stage graphs, each keeping this same typed
//! push/pull API) under per-tenant [`ShareQuota`]s, and
//! [`Cluster::evict`] / [`Cluster::evict_now`] remove tenants
//! gracefully or forcibly. See the `Cluster` docs for the capacity
//! arbitration and fairness semantics.

use adapipe_cluster::threads::ThreadCluster;
use adapipe_core::payload::Payload;
use adapipe_core::pipeline::Pipeline as CorePipeline;
use adapipe_core::simengine::{ItemFate, SimConfig, SimStepper};
use adapipe_core::spec::{Next, PipelineSpec, ResiliencePolicy, Segment, StageGraph, StageSpec};
use adapipe_core::stage::{
    clone_fn, fan_out_fn, AccumStage, BoxedItem, CloneFn, DynStage, FallibleFnStage, FanOutFn,
    FnStage, KeyFn, KeyedStage, MergeStage, SealedStage, SnapStage, StageError, StageTypeError,
    StatefulFnStage,
};
use adapipe_engine::exec::{self, EngineConfig, EngineSession};
use adapipe_engine::vnode::VNodeSpec;
use adapipe_gridsim::fault::FaultPlan;
use adapipe_gridsim::grid::GridSpec;
use adapipe_gridsim::node::NodeId;
use adapipe_gridsim::time::SimTime;
use adapipe_mapper::graph::GraphError;
use adapipe_runtime::arrivals::ArrivalStream;
use adapipe_runtime::metrics::StageStats;
use adapipe_runtime::policy::Policy;
use adapipe_runtime::report::{AdaptationEvent, RunReport};
use adapipe_runtime::routing::Selection;
use adapipe_runtime::session::{self, EventBus, Session, SessionControl};
use adapipe_state::StateCodec;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

pub use adapipe_mapper::share::ShareQuota;
pub use adapipe_runtime::session::{
    ArrivalProcess, BuildError, RunConfig, RunError, RunEvent, RunHooks, SessionId, TryNext,
};

/// Which execution backend a built [`Pipeline`] runs on.
pub enum Backend<'a> {
    /// Deterministic discrete-event execution on a simulated grid (the
    /// evaluation substrate). Stage *functions* are not invoked — the
    /// simulator executes the declared cost metadata — so the returned
    /// [`RunHandle::outputs`] is empty.
    Sim(&'a GridSpec),
    /// Real OS threads over the given virtual nodes, with synthetic
    /// heterogeneity. Stage functions process real inputs drawn from the
    /// pipeline's feed.
    Threads(Vec<VNodeSpec>),
}

impl Backend<'_> {
    /// Short backend name for errors and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sim(_) => "sim",
            Backend::Threads(_) => "threads",
        }
    }
}

/// The outcome of one run: typed outputs (threaded backend) plus the
/// backend-independent [`RunReport`] — a single shape for every
/// backend.
#[derive(Debug)]
pub struct RunHandle<O> {
    /// Pipeline outputs in item order (empty under [`Backend::Sim`]).
    pub outputs: Vec<O>,
    /// Run metrics, shape-identical across backends.
    pub report: RunReport,
    /// The run's fatal error, if one occurred (a stateful stage lost to
    /// a crashed node, every node down, a wrong-typed item). A failed
    /// run still returns its partial outputs and an honest, `truncated`
    /// report.
    pub error: Option<RunError>,
}

impl<O> RunHandle<O> {
    /// The run report.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Every re-mapping the controller committed, in order.
    pub fn adaptations(&self) -> &[AdaptationEvent] {
        &self.report.adaptations
    }

    /// Observed service statistics of one stage.
    pub fn stage_stats(&self, stage: usize) -> &StageStats {
        self.report.stage_metrics.stage(stage)
    }

    /// Splits the handle into outputs and report.
    pub fn into_parts(self) -> (Vec<O>, RunReport) {
        (self.outputs, self.report)
    }
}

/// A validated, backend-agnostic pipeline program: typed stage
/// functions, cost metadata, adaptation policy, and arrival process.
/// Built by [`PipelineBuilder`]; executed by [`Pipeline::run`] on any
/// [`Backend`].
pub struct Pipeline<I, O = I> {
    spec: PipelineSpec,
    stages: Vec<Box<dyn DynStage>>,
    /// One fan-out duplicator per parallel block of the spec's graph.
    fanouts: Vec<FanOutFn>,
    /// Per-stage routing-key extractors (`Some` for keyed stages only):
    /// the threaded backend routes each item to its key's shard owner.
    keys: Vec<Option<KeyFn>>,
    session: Session,
    feed: Option<Box<dyn Fn(u64) -> I + Send>>,
    faults: FaultPlan,
    _types: PhantomData<fn(I) -> O>,
}

impl<I, O> std::fmt::Debug for Pipeline<I, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("spec", &self.spec)
            .field("session", &self.session)
            .field("feed", &self.feed.as_ref().map(|_| "Fn"))
            .finish()
    }
}

impl<I: Send + 'static> Pipeline<I, I> {
    /// Starts a builder for a pipeline whose inputs have type `I`.
    pub fn builder() -> PipelineBuilder<I, I> {
        PipelineBuilder::new()
    }
}

impl<I: Clone + Send + 'static> Pipeline<I, I> {
    /// Starts a *DAG* builder for a pipeline whose inputs have type
    /// `I`: named stages wired with explicit [`DagBuilder::edge`] /
    /// [`DagBuilder::join`] calls instead of the linear /
    /// series-parallel chain sugar. The input must be `Clone` — a DAG
    /// may feed one item to several entry stages.
    pub fn dag() -> DagBuilder<I> {
        DagBuilder::new()
    }
}

impl<I: Send + 'static, O: Send + 'static> Pipeline<I, O> {
    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the pipeline has no stages (not constructible).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The planner-facing cost metadata.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The validated adaptation policy.
    pub fn policy(&self) -> Policy {
        self.session.policy()
    }

    /// The validated arrival process.
    pub fn arrivals(&self) -> ArrivalProcess {
        self.session.arrivals()
    }

    /// Shared `run()`/`spawn()` validation: the launch mapping must
    /// honour the declared stage properties (statefulness, replica
    /// bounds) and the backend's node set — otherwise the
    /// typed-validation contract would be silently bypassed by the one
    /// knob that places stages directly — a declared queue bound must
    /// be able to admit at least one item, and the (merged) fault plan
    /// may only name nodes the backend has.
    fn validate_run(&self, backend: &Backend<'_>, cfg: &RunConfig) -> Result<(), BuildError> {
        if cfg.queue_capacity == Some(0) {
            return Err(BuildError::ZeroQueueCapacity);
        }
        let node_count = match backend {
            Backend::Sim(grid) => grid.len(),
            Backend::Threads(vnodes) => vnodes.len(),
        };
        if let Some(mapping) = &cfg.initial_mapping {
            // "Stateless" to the validator means *replicable*: keyed and
            // accumulator stages legally run many live instances, with
            // the keyed width capped at the declared shard count.
            let stateless: Vec<bool> = self
                .spec
                .stages
                .iter()
                .map(|s| s.state.replicable())
                .collect();
            let replica_cap: Vec<usize> =
                self.spec.stages.iter().map(|s| s.replica_cap()).collect();
            session::validate_mapping(mapping, &stateless, &replica_cap, node_count)?;
        }
        session::validate_faults(&cfg.faults, node_count)?;
        if matches!(backend, Backend::Threads(_)) && cfg.selection == Selection::LeastLoaded {
            return Err(BuildError::UnsupportedSelection { backend: "threads" });
        }
        Ok(())
    }

    /// Starts the pipeline on `backend` and returns the live
    /// [`RunSession`]: push items, pull outputs, steer adaptation — all
    /// while the run is in flight. `cfg.items` only seeds the
    /// adaptation loop's remaining-work amortisation (the true stream
    /// length is whatever is pushed before [`RunSession::close`]).
    ///
    /// No input feed is required: the session's `push` supplies real
    /// items on every backend. Under [`Backend::Sim`] the pushed items
    /// take their simulated arrival instants from the pipeline's
    /// declared [`ArrivalProcess`], and the stage functions are applied
    /// in push order, so the session yields real outputs there too.
    pub fn spawn<'g>(
        self,
        backend: Backend<'g>,
        mut cfg: RunConfig,
    ) -> Result<RunSession<'g, I, O>, BuildError> {
        // The effective fault plan: whatever the pipeline declared at
        // build time, then the run's own faults on top.
        cfg.faults = self.faults.clone().merge(&cfg.faults);
        self.validate_run(&backend, &cfg)?;
        match backend {
            Backend::Sim(grid) => Ok(self.spawn_sim(grid, cfg, 1.0, SessionId(0), None)),
            Backend::Threads(vnodes) => {
                let control = cfg.control.clone();
                let bus = cfg.hooks.events.clone();
                let items = cfg.items;
                let engine_cfg = engine_config(&self.session, vnodes, cfg);
                let core =
                    CorePipeline::from_keyed_parts(self.spec, self.stages, self.fanouts, self.keys);
                Ok(RunSession {
                    inner: SessionInner::Threads(Box::new(exec::spawn(core, &engine_cfg, items))),
                    control,
                    bus,
                })
            }
        }
    }

    /// Shared constructor of the simulation-backend session: a
    /// standalone [`Pipeline::spawn`] owns the whole grid (`share =
    /// 1.0`, no registry) while [`Cluster::admit`] grants a static
    /// capacity share and enrols the session in the pool's merged
    /// event-clock registry. Validation has already happened.
    fn spawn_sim<'g>(
        self,
        grid: &'g GridSpec,
        cfg: RunConfig,
        share: f64,
        sid: SessionId,
        pool: Option<SimPool<'g>>,
    ) -> RunSession<'g, I, O> {
        let control = cfg.control.clone();
        let bus = cfg.hooks.events.clone();
        let defaults = SimConfig::default();
        let sim_cfg = SimConfig {
            items: cfg.items,
            arrivals: self.session.arrivals(),
            policy: self.session.policy(),
            controller: cfg.controller,
            initial_mapping: cfg.initial_mapping,
            selection: cfg.selection,
            observation_noise: cfg.observation_noise,
            noise_seed: cfg.noise_seed,
            timeline_bucket: cfg.timeline_bucket.unwrap_or(defaults.timeline_bucket),
            link_contention: cfg.link_contention,
            max_sim_time: cfg.max_sim_time,
            hooks: cfg.hooks,
            control: cfg.control,
            faults: cfg.faults,
            rate_scale: share,
            session: sid,
        };
        let arrivals = self.session.arrivals().stream();
        let graph = self.spec.graph.clone();
        let stage_specs = self.spec.stages.clone();
        let dag_exec =
            graph.as_segments().is_none() || stage_specs.iter().any(|s| !s.resilience.is_default());
        let stepper = Arc::new(Mutex::new(SimStepper::new(grid, self.spec, &sim_cfg)));
        let ctl = Arc::new(SimTenantCtl::default());
        if let Some(pool) = &pool {
            pool.lock()
                .expect("sim pool registry poisoned")
                .push(SimPoolEntry {
                    id: sid.0,
                    stepper: Arc::downgrade(&stepper),
                    ctl: ctl.clone(),
                    control: control.clone(),
                    share,
                });
        }
        RunSession {
            inner: SessionInner::Sim(Box::new(SimSession {
                stepper,
                pool,
                session: sid,
                ctl,
                closed: false,
                stages: self.stages,
                graph,
                fanouts: self.fanouts,
                stage_specs,
                dag_exec,
                arrivals,
                outputs: HashMap::new(),
                done_ordered: BTreeSet::new(),
                done_unordered: VecDeque::new(),
                next_seq: 0,
                preserve_order: cfg.preserve_order,
            })),
            control,
            bus,
        }
    }

    /// Runs the pipeline to completion on `backend` under `cfg` —
    /// batch sugar over [`Pipeline::spawn`]: spawn a session, feed
    /// `cfg.items` items on the declared arrival schedule, and
    /// [`RunSession::drain`].
    ///
    /// Backend-dependent validation happens here: the threaded backend
    /// needs an input [`PipelineBuilder::feed`] to synthesise the items
    /// (a live session pushes real items instead) and exposes no
    /// queue-depth probe for [`Selection::LeastLoaded`]. Under
    /// [`Backend::Sim`] the batch path feeds arrival *metadata* only —
    /// stage functions are not invoked and [`RunHandle::outputs`] stays
    /// empty, exactly as before the streaming API existed.
    pub fn run(
        mut self,
        backend: Backend<'_>,
        mut cfg: RunConfig,
    ) -> Result<RunHandle<O>, BuildError> {
        // The Sim branch merges the pipeline's fault plan and validates
        // inside spawn(); the Threads branch bypasses spawn (it
        // delegates to the engine's batch wrapper) and must do both
        // here — before the feed check, so declaration errors (bad
        // mapping, unsupported selection) surface with the same
        // precedence the pre-session API had.
        if matches!(backend, Backend::Threads(_)) {
            cfg.faults = self.faults.clone().merge(&cfg.faults);
            self.faults = FaultPlan::new(); // merged; spawn must not re-merge
            self.validate_run(&backend, &cfg)?;
        }
        let items = cfg.items;
        let feed = self.feed.take();
        match backend {
            Backend::Sim(grid) => {
                let mut session = self.spawn(Backend::Sim(grid), cfg)?;
                for _ in 0..items {
                    session.push_marker();
                }
                let handle = session.drain();
                Ok(RunHandle {
                    outputs: Vec::new(),
                    report: handle.report,
                    error: handle.error,
                })
            }
            Backend::Threads(vnodes) => {
                let feed = feed.ok_or(BuildError::MissingFeed { backend: "threads" })?;
                let control = cfg.control.clone();
                // `execute_fed` is itself spawn + arrival-paced pushes +
                // drain, so the batch wall-clock pacing logic lives in
                // exactly one place (the engine crate).
                let engine_cfg = engine_config(&self.session, vnodes, cfg);
                let core =
                    CorePipeline::from_keyed_parts(self.spec, self.stages, self.fanouts, self.keys);
                let outcome = exec::execute_fed(core, items, feed, &engine_cfg);
                Ok(RunHandle {
                    outputs: outcome.outputs,
                    report: outcome.report,
                    error: control.error(),
                })
            }
        }
    }
}

/// Translates the backend-independent [`RunConfig`] (plus the validated
/// session's policy/arrivals) into the threaded backend's config — the
/// one place `spawn()` and batch `run()` both go through.
fn engine_config(session: &Session, vnodes: Vec<VNodeSpec>, cfg: RunConfig) -> EngineConfig {
    let mut engine_cfg = EngineConfig::new(vnodes);
    engine_cfg.policy = session.policy();
    engine_cfg.controller = cfg.controller;
    engine_cfg.initial_mapping = cfg.initial_mapping;
    engine_cfg.preserve_order = cfg.preserve_order;
    engine_cfg.arrivals = session.arrivals();
    engine_cfg.topology = cfg.topology;
    engine_cfg.observation_noise = cfg.observation_noise;
    engine_cfg.noise_seed = cfg.noise_seed;
    if let Some(bucket) = cfg.timeline_bucket {
        engine_cfg.timeline_bucket = bucket;
    }
    engine_cfg.emulate_links = cfg.emulate_links;
    engine_cfg.hooks = cfg.hooks;
    engine_cfg.queue_capacity = cfg.queue_capacity;
    engine_cfg.batch_size = cfg.batch_size;
    engine_cfg.control = cfg.control;
    engine_cfg.faults = cfg.faults;
    engine_cfg
}

/// A live pipeline run: the streaming counterpart of [`RunHandle`].
/// Obtained from [`Pipeline::spawn`]; one session is one run.
///
/// * **Input side** — [`RunSession::push`] feeds items (blocking under
///   a bounded `queue_capacity` on the threaded backend);
///   [`RunSession::close`] declares the stream complete.
/// * **Output side** — [`RunSession::next`] blocks for the next output
///   (driving the simulated world forward under [`Backend::Sim`]);
///   [`RunSession::try_next`] polls without blocking.
/// * **Control** — pause/resume/force adaptation, graceful
///   [`RunSession::drain`] vs. immediate [`RunSession::abort`], and the
///   [`RunSession::events`] subscription stream.
pub struct RunSession<'g, I, O> {
    inner: SessionInner<'g, I, O>,
    control: SessionControl,
    bus: EventBus,
}

impl<I, O> std::fmt::Debug for RunSession<'_, I, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match &self.inner {
            SessionInner::Sim(_) => "sim",
            SessionInner::Threads(_) => "threads",
        };
        f.debug_struct("RunSession")
            .field("backend", &backend)
            .field("control", &self.control)
            .finish()
    }
}

enum SessionInner<'g, I, O> {
    /// Cooperative discrete-event session (boxed: the simulated world
    /// is much larger than the threaded handle).
    Sim(Box<SimSession<'g>>),
    /// Live threaded session (boxed: the pending input buffer and
    /// routing cache make the handle chunky too).
    Threads(Box<EngineSession<I, O>>),
}

/// Simulation-backend session state: the steppable world plus eager
/// stage execution. Stage functions run on the caller's thread at push
/// time, in push order — the canonical sequential semantics — and each
/// result is released when the simulated world completes that item.
struct SimSession<'g> {
    /// The steppable world. Shared (`Arc`) so a cluster's merged event
    /// clock can reach co-tenant worlds through weak registry handles;
    /// a standalone session is the sole owner.
    stepper: Arc<Mutex<SimStepper<'g>>>,
    /// The shared-pool registry when this session was admitted by a sim
    /// [`Cluster`]; `None` for standalone sessions.
    pool: Option<SimPool<'g>>,
    session: SessionId,
    /// Eviction flags shared with the owning cluster.
    ctl: Arc<SimTenantCtl>,
    /// Facade-level stream state: `true` after [`RunSession::close`],
    /// making further pushes a typed [`RunError::SessionClosed`].
    closed: bool,
    stages: Vec<Box<dyn DynStage>>,
    /// The stage graph driving push-time execution (fan-out runs each
    /// branch in branch order; the merge folds the branch outputs).
    graph: StageGraph,
    /// One duplicator per parallel block.
    fanouts: Vec<FanOutFn>,
    /// Per-stage cost/resilience metadata (name and
    /// [`ResiliencePolicy`]) for the push-time executor.
    stage_specs: Vec<StageSpec>,
    /// True when push-time execution must walk the general DAG executor
    /// ([`run_dag_at_push`]): the graph was wired explicitly, or some
    /// stage declares a non-default resilience policy. Sugar graphs
    /// with all-default policies keep the historical segment walk
    /// byte-identical.
    dag_exec: bool,
    arrivals: ArrivalStream,
    /// Outputs computed at push, keyed by sequence number; absent for
    /// marker pushes (the batch wrapper's metadata-only items).
    outputs: HashMap<u64, BoxedItem>,
    /// Completed-but-undelivered sequence numbers (`preserve_order`).
    done_ordered: BTreeSet<u64>,
    /// Completed-but-undelivered sequence numbers, completion order.
    done_unordered: VecDeque<u64>,
    next_seq: u64,
    preserve_order: bool,
}

impl SimSession<'_> {
    fn note_completion(&mut self, seq: u64) {
        if self.preserve_order {
            self.done_ordered.insert(seq);
        } else {
            self.done_unordered.push_back(seq);
        }
    }

    /// Takes the next deliverable output, if any completed item holds
    /// one (marker items complete without an output and are skipped).
    fn pop_ready(&mut self) -> Option<BoxedItem> {
        if self.preserve_order {
            while self.done_ordered.remove(&self.next_seq) {
                let out = self.outputs.remove(&self.next_seq);
                self.next_seq += 1;
                if let Some(out) = out {
                    return Some(out);
                }
            }
            None
        } else {
            while let Some(seq) = self.done_unordered.pop_front() {
                if let Some(out) = self.outputs.remove(&seq) {
                    return Some(out);
                }
            }
            None
        }
    }

    /// True when no output can ever be delivered again: the stream is
    /// closed and fully drained (or the world can never fire another
    /// event), and every completed output has been handed out. An idle
    /// *open* stream is `Pending`, not `Done` — the caller may still
    /// push.
    fn finished(&self) -> bool {
        let world_done = {
            let st = self.stepper.lock().expect("sim stepper poisoned");
            st.all_done() || st.is_exhausted()
        };
        (world_done || self.ctl.killed.load(Ordering::SeqCst))
            && self.done_ordered.is_empty()
            && self.done_unordered.is_empty()
    }

    /// Moves completions buffered in the world — possibly completed by
    /// a co-tenant's stepping of the merged clock — into the delivery
    /// queues, without advancing virtual time.
    fn drain_completions(&mut self) {
        let mut seqs = Vec::new();
        {
            let mut st = self.stepper.lock().expect("sim stepper poisoned");
            while let Some(seq) = st.pop_completion() {
                seqs.push(seq);
            }
        }
        for seq in seqs {
            self.note_completion(seq);
        }
    }

    /// True while some pushed item has not yet been accounted for —
    /// completed at the sink *or* diverted to the dead-letter channel —
    /// and the world can still make progress toward it.
    fn pending(&self) -> bool {
        let st = self.stepper.lock().expect("sim stepper poisoned");
        !st.is_exhausted() && st.accounted() < st.pushed()
    }

    /// Advances virtual time by one event: the session's own clock when
    /// standalone, the pool's merged clock (earliest event across all
    /// co-tenants) when cluster-admitted. Returns `false` when no world
    /// in scope can fire another event.
    fn advance(&mut self) -> bool {
        match &self.pool {
            None => self.stepper.lock().expect("sim stepper poisoned").step(),
            Some(pool) => step_earliest(pool),
        }
    }

    /// Recovers sole ownership of the stepper (a cluster registry holds
    /// only weak handles) and produces the final report, unregistering
    /// the tenant on the way out.
    fn into_report(self) -> RunReport {
        let SimSession {
            stepper,
            pool,
            session,
            ..
        } = self;
        if let Some(pool) = &pool {
            pool.lock()
                .expect("sim pool registry poisoned")
                .retain(|e| e.id != session.0);
        }
        Arc::try_unwrap(stepper)
            .ok()
            .expect("sim stepper uniquely owned at run end")
            .into_inner()
            .expect("sim stepper poisoned")
            .finish()
    }
}

/// Cross-thread eviction flags for a sim-cluster tenant, shared between
/// the tenant's [`RunSession`] and the owning [`Cluster`].
#[derive(Default)]
struct SimTenantCtl {
    /// Graceful eviction: no further pushes are admitted; in-flight
    /// items drain normally.
    evicting: AtomicBool,
    /// Forced eviction: the world no longer participates in the merged
    /// clock and the run unwinds with [`RunError::Evicted`].
    killed: AtomicBool,
}

/// One tenant's entry in a sim cluster's merged-clock registry.
struct SimPoolEntry<'g> {
    id: u64,
    stepper: Weak<Mutex<SimStepper<'g>>>,
    ctl: Arc<SimTenantCtl>,
    control: SessionControl,
    /// The static capacity share granted at admission (the tenant's
    /// quota ceiling).
    share: f64,
}

/// A sim cluster's tenant registry: weak stepper handles (each tenant's
/// `RunSession` keeps ownership) plus eviction flags and static shares.
type SimPool<'g> = Arc<Mutex<Vec<SimPoolEntry<'g>>>>;

/// One tick of a sim cluster's merged event clock: find the live
/// session whose next event is earliest — ties break toward the
/// earliest-admitted tenant — and step that session's world once.
/// Force-evicted, dropped, and exhausted worlds no longer participate.
/// Returns `false` when no world can fire another event.
fn step_earliest(pool: &SimPool<'_>) -> bool {
    let entries = pool.lock().expect("sim pool registry poisoned");
    let mut best: Option<(SimTime, Arc<Mutex<SimStepper<'_>>>)> = None;
    for entry in entries.iter() {
        if entry.ctl.killed.load(Ordering::SeqCst) {
            continue;
        }
        let Some(stepper) = entry.stepper.upgrade() else {
            continue;
        };
        let next = {
            let st = stepper.lock().expect("sim stepper poisoned");
            if st.is_exhausted() {
                None
            } else {
                st.next_event_at()
            }
        };
        if let Some(at) = next {
            if best.as_ref().is_none_or(|(bt, _)| at < *bt) {
                best = Some((at, stepper));
            }
        }
    }
    drop(entries);
    match best {
        Some((_, stepper)) => stepper.lock().expect("sim stepper poisoned").step(),
        None => false,
    }
}

impl<I: Send + 'static, O: Send + 'static> RunSession<'_, I, O> {
    /// Feeds one item into the pipeline, returning its sequence number.
    ///
    /// Threaded backend: the item arrives now; with a bounded
    /// `queue_capacity` the call blocks while the in-flight budget is
    /// exhausted (real backpressure) and emits
    /// [`RunEvent::BackpressureStall`]. Simulation backend: the item's
    /// arrival instant comes from the declared [`ArrivalProcess`]
    /// (clamped to the world's current virtual time), its stage
    /// functions run immediately in push order, and the output is
    /// withheld until the simulated world completes the item.
    ///
    /// # Errors
    /// [`RunError::SessionClosed`] after [`RunSession::close`] /
    /// [`RunSession::drain`] began, [`RunError::Evicted`] once a
    /// cluster evicted this session — on both backends.
    pub fn push(&mut self, item: I) -> Result<u64, RunError> {
        match &mut self.inner {
            SessionInner::Sim(sim) => {
                if sim.closed {
                    return Err(RunError::SessionClosed);
                }
                if sim.ctl.evicting.load(Ordering::SeqCst) || sim.ctl.killed.load(Ordering::SeqCst)
                {
                    return Err(RunError::Evicted {
                        session: sim.session,
                    });
                }
                // Run the stage functions *before* entering the item
                // into the world: the executor's observed outcome (the
                // [`ItemFate`] — per-stage retry counts, a possible
                // dead-letter diversion) rides in with the push so the
                // world can charge the extra attempts and divert the
                // item at the fated stage.
                let seq_hint = sim.stepper.lock().expect("sim stepper poisoned").pushed();
                let (out, fate) = {
                    let SimSession {
                        ref graph,
                        ref fanouts,
                        ref mut stages,
                        ref stage_specs,
                        dag_exec,
                        ..
                    } = **sim;
                    if dag_exec {
                        run_dag_at_push(
                            graph,
                            fanouts,
                            stages,
                            stage_specs,
                            &self.control,
                            seq_hint,
                            Payload::new(item),
                        )
                    } else {
                        let out = run_graph_at_push(
                            graph,
                            fanouts,
                            stages,
                            &self.control,
                            Payload::new(item),
                        );
                        (out, ItemFate::default())
                    }
                };
                let at = sim.arrivals.next().expect("arrival stream is infinite");
                let seq = sim
                    .stepper
                    .lock()
                    .expect("sim stepper poisoned")
                    .push_at_with_fate(at, fate);
                if let Some(out) = out {
                    sim.outputs.insert(seq, out);
                }
                Ok(seq)
            }
            SessionInner::Threads(engine) => engine.push(item),
        }
    }

    /// Feeds a whole batch of items, returning how many were pushed.
    ///
    /// On the threaded backend this feeds the batched envelope path
    /// directly: items coalesce into [`RunConfig::batch_size`]-sized
    /// envelopes as they are pushed and any remainder is flushed before
    /// the call returns, so the entire batch is in flight afterwards
    /// (the batch `run()` sugar goes through the same path). On the
    /// simulation backend it is equivalent to pushing each item in
    /// order.
    ///
    /// # Errors
    /// Same lifecycle errors as [`RunSession::push`]; items already
    /// admitted before the error stay in flight.
    pub fn push_batch(&mut self, items: impl IntoIterator<Item = I>) -> Result<u64, RunError> {
        if let SessionInner::Threads(engine) = &mut self.inner {
            return engine.push_batch(items);
        }
        let mut n = 0;
        for item in items {
            self.push(item)?;
            n += 1;
        }
        Ok(n)
    }

    /// Feeds arrival *metadata* only (simulation backend): the item
    /// enters the simulated world but no stage function runs and no
    /// output is produced. This is how the batch `run()` wrapper
    /// reproduces the historical metadata-driven simulation exactly.
    fn push_marker(&mut self) {
        match &mut self.inner {
            SessionInner::Sim(sim) => {
                let at = sim.arrivals.next().expect("arrival stream is infinite");
                sim.stepper
                    .lock()
                    .expect("sim stepper poisoned")
                    .push_at(at);
            }
            SessionInner::Threads(_) => unreachable!("markers are a simulation-only device"),
        }
    }

    /// Declares the input stream complete: no further pushes; `drain`
    /// and `next` now have a definite end.
    pub fn close(&mut self) {
        match &mut self.inner {
            SessionInner::Sim(sim) => {
                sim.closed = true;
                sim.stepper.lock().expect("sim stepper poisoned").close();
            }
            SessionInner::Threads(engine) => engine.close(),
        }
    }

    /// The session's cluster-wide identity. Standalone `spawn` sessions
    /// report `SessionId(0)`; cluster-admitted sessions carry the id
    /// tagged on every [`RunEvent`] they emit.
    pub fn session_id(&self) -> SessionId {
        match &self.inner {
            SessionInner::Sim(sim) => sim.session,
            SessionInner::Threads(engine) => engine.session_id(),
        }
    }

    /// Items pushed so far.
    pub fn pushed(&self) -> u64 {
        match &self.inner {
            SessionInner::Sim(sim) => sim.stepper.lock().expect("sim stepper poisoned").pushed(),
            SessionInner::Threads(engine) => engine.pushed(),
        }
    }

    /// Items that reached the sink so far.
    pub fn completed(&self) -> u64 {
        match &self.inner {
            SessionInner::Sim(sim) => sim
                .stepper
                .lock()
                .expect("sim stepper poisoned")
                .completed(),
            SessionInner::Threads(engine) => engine.completed(),
        }
    }

    /// Items currently between source and sink.
    pub fn in_flight(&self) -> u64 {
        self.pushed().saturating_sub(self.completed())
    }

    /// Non-blocking poll of the output side. Under [`Backend::Sim`]
    /// this never advances virtual time — it only surfaces outputs that
    /// earlier `next()`/`drain()` stepping already completed.
    pub fn try_next(&mut self) -> TryNext<O> {
        match &mut self.inner {
            SessionInner::Sim(sim) => {
                sim.drain_completions();
                if let Some(out) = sim.pop_ready() {
                    TryNext::Item(downcast_output(out))
                } else if sim.finished() {
                    TryNext::Done
                } else {
                    TryNext::Pending
                }
            }
            SessionInner::Threads(engine) => engine.try_next(),
        }
    }

    /// Freezes adaptation: sensing and window statistics continue, but
    /// no re-mapping (planner or regret guard) commits until resumed.
    pub fn pause_adaptation(&self) {
        self.control.pause_adaptation();
    }

    /// Lifts a [`RunSession::pause_adaptation`].
    pub fn resume_adaptation(&self) {
        self.control.resume_adaptation();
    }

    /// Requests one planning cycle at the next adaptation tick,
    /// bypassing warm-up gating, guard hold-downs, and the reactive
    /// trigger. No-op under [`Policy::Static`] (nothing ever ticks).
    pub fn force_remap(&self) {
        self.control.force_remap();
    }

    /// Subscribes to the live [`RunEvent`] stream (re-mappings, window
    /// statistics, backpressure stalls, node-down/up transitions, item
    /// replays). Events emitted before the subscription are not
    /// replayed — subscribe right after `spawn` to see everything.
    pub fn events(&self) -> Receiver<RunEvent> {
        self.bus.subscribe()
    }

    /// The run's fatal error, if one was recorded (a stateful stage
    /// lost to a crashed node, every node down, a wrong-typed item).
    /// The failed run unwinds cleanly — `next()` stops yielding and
    /// [`RunSession::drain`] returns a truncated report — and this (or
    /// [`RunHandle::error`]) says why.
    pub fn error(&self) -> Option<RunError> {
        self.control.error()
    }

    /// Graceful shutdown: closes the stream, waits until every pushed
    /// item has completed, and returns the remaining (un-pulled)
    /// outputs plus the standard report. Items already pulled via
    /// [`RunSession::next`] are not repeated.
    pub fn drain(mut self) -> RunHandle<O> {
        self.close();
        let error = self.control.error();
        match self.inner {
            SessionInner::Sim(mut sim) => {
                loop {
                    sim.drain_completions();
                    if sim.ctl.killed.load(Ordering::SeqCst) || !sim.pending() {
                        break;
                    }
                    if !sim.advance() {
                        break;
                    }
                }
                sim.drain_completions();
                let mut outputs = Vec::new();
                while let Some(out) = sim.pop_ready() {
                    outputs.push(downcast_output(out));
                }
                let control = self.control;
                RunHandle {
                    outputs,
                    report: sim.into_report(),
                    error: error.or_else(|| control.error()),
                }
            }
            SessionInner::Threads(engine) => {
                let outcome = engine.drain();
                let control = self.control;
                RunHandle {
                    outputs: outcome.outputs,
                    report: outcome.report,
                    error: error.or_else(|| control.error()),
                }
            }
        }
    }

    /// Immediate shutdown: in-flight items are dropped and the report
    /// comes back `truncated` if anything was lost.
    pub fn abort(self) -> RunReport {
        match self.inner {
            SessionInner::Sim(sim) => sim.into_report(),
            SessionInner::Threads(engine) => engine.abort(),
        }
    }
}

/// Blocking output iteration: `next()` waits until the next output is
/// available and yields `None` once no output can ever arrive again
/// (stream closed and fully delivered, run aborted, or — simulation
/// backend — the world starved or hit its horizon). Under
/// [`Backend::Sim`], "blocking" means driving the simulated world
/// forward; with nothing in flight it yields `None` rather than wait
/// for pushes that cannot happen (the session is single-threaded by
/// construction). With `preserve_order` outputs come in push order;
/// otherwise in completion order.
impl<I: Send + 'static, O: Send + 'static> Iterator for RunSession<'_, I, O> {
    type Item = O;

    fn next(&mut self) -> Option<O> {
        match &mut self.inner {
            SessionInner::Sim(sim) => loop {
                sim.drain_completions();
                if let Some(out) = sim.pop_ready() {
                    return Some(downcast_output(out));
                }
                if sim.ctl.killed.load(Ordering::SeqCst) || !sim.pending() {
                    return None;
                }
                if !sim.advance() {
                    return None;
                }
            },
            SessionInner::Threads(engine) => engine.next(),
        }
    }
}

fn downcast_output<O: 'static>(out: BoxedItem) -> O {
    out.downcast::<O>().expect("pipeline output type mismatch")
}

/// Push-time execution for simulation-backend sessions: one item runs
/// through the stage graph on the caller's thread, in push order — the
/// canonical sequential semantics. A parallel block fans the item out
/// (branch order), runs each branch to its end, and folds the branch
/// outputs through the merge stage, so a session produces the exact
/// outputs the threaded backend's join workers assemble. Returns `None`
/// on a type mismatch (the typed error lands on `control`; the item
/// completes in the simulated world as a marker).
fn run_graph_at_push(
    graph: &StageGraph,
    fanouts: &[FanOutFn],
    stages: &mut [Box<dyn DynStage>],
    control: &SessionControl,
    item: BoxedItem,
) -> Option<BoxedItem> {
    let fail = |control: &SessionControl, stage: String| {
        control.fail(RunError::StageTypeMismatch { stage });
    };
    let mut cur = item;
    let mut block = 0usize;
    for seg in graph.segments() {
        match seg {
            Segment::Chain { start, end } => {
                for stage in &mut stages[*start..*end] {
                    match stage.process(cur) {
                        Ok(out) => cur = out,
                        Err(type_err) => {
                            fail(control, type_err.stage);
                            return None;
                        }
                    }
                }
            }
            Segment::Parallel { branches, merge } => {
                let parts = match fanouts[block](cur) {
                    Ok(parts) => parts,
                    Err(type_err) => {
                        fail(control, type_err.stage);
                        return None;
                    }
                };
                let mut outs: Vec<BoxedItem> = Vec::with_capacity(parts.len());
                for (&(bs, be), part) in branches.iter().zip(parts) {
                    let mut p = part;
                    for stage in &mut stages[bs..be] {
                        match stage.process(p) {
                            Ok(out) => p = out,
                            Err(type_err) => {
                                fail(control, type_err.stage);
                                return None;
                            }
                        }
                    }
                    outs.push(p);
                }
                match stages[*merge].process(Payload::new(outs)) {
                    Ok(out) => cur = out,
                    Err(type_err) => {
                        fail(control, type_err.stage);
                        return None;
                    }
                }
                block += 1;
            }
        }
    }
    Some(cur)
}

/// Push-time execution over a *general* DAG, honouring per-stage
/// [`ResiliencePolicy`]s: the item's payloads travel the wired graph
/// (fan-out copies in edge order, join inputs assembled in slot order)
/// while every stage failure runs the policy's retry loop. Returns the
/// exit output (or `None` when the item dead-letters, or on a fatal
/// error already recorded on `control`) plus the [`ItemFate`] the
/// simulated world needs to charge the retries and divert the item at
/// the fated stage. `seq` is the sequence number the item is about to
/// be pushed under (used only in error payloads).
fn run_dag_at_push(
    graph: &StageGraph,
    fanouts: &[FanOutFn],
    stages: &mut [Box<dyn DynStage>],
    specs: &[StageSpec],
    control: &SessionControl,
    seq: u64,
    item: BoxedItem,
) -> (Option<BoxedItem>, ItemFate) {
    let mut fate = ItemFate::default();
    // Join assembly state: join block → per-slot deposits. One item in
    // flight, so the key is the block alone.
    let mut joins: HashMap<usize, Vec<Option<BoxedItem>>> = HashMap::new();
    // Payloads ready to be processed, FIFO over the acyclic graph.
    let mut ready: VecDeque<(usize, BoxedItem)> = VecDeque::new();

    let fail_type = |control: &SessionControl, stage: String| {
        control.fail(RunError::StageTypeMismatch { stage });
    };

    match graph.entry() {
        Next::Stage(s) => ready.push_back((s, item)),
        Next::FanOut { block } => {
            if let Err(type_err) = fan_to(graph, fanouts, block, item, &mut joins, &mut ready) {
                fail_type(control, type_err.stage);
                return (None, fate);
            }
        }
        Next::Done | Next::Join { .. } => {
            unreachable!("a pipeline entry is a stage or an input fan-out")
        }
    }

    while let Some((stage, payload)) = ready.pop_front() {
        let policy = &specs[stage].resilience;
        let mut attempt: u32 = 1;
        let mut cur = payload;
        let out = loop {
            match stages[stage].try_process(cur) {
                Ok(out) => break out,
                Err(StageError::Type(type_err)) => {
                    fail_type(control, type_err.stage);
                    return (None, fate);
                }
                Err(StageError::Item { reason, item }) => {
                    if attempt > policy.max_retries {
                        // Budget spent: `attempt - 1` retries happened.
                        if attempt > 1 {
                            fate.failed.push((stage, attempt - 1));
                        }
                        if policy.dead_letter {
                            fate.dead = Some((stage, reason));
                        } else {
                            control.fail(RunError::PoisonItem {
                                stage: specs[stage].name.clone(),
                                seq,
                                attempts: attempt,
                                reason,
                            });
                        }
                        return (None, fate);
                    }
                    cur = item;
                    attempt += 1;
                }
            }
        };
        if attempt > 1 {
            fate.failed.push((stage, attempt - 1));
        }
        match graph.after(stage) {
            Next::Done => return (Some(out), fate),
            Next::Stage(s) => ready.push_back((s, out)),
            Next::Join { block, branch } => {
                deposit_at_push(graph, block, branch, out, &mut joins, &mut ready);
            }
            Next::FanOut { block } => {
                if let Err(type_err) = fan_to(graph, fanouts, block, out, &mut joins, &mut ready) {
                    fail_type(control, type_err.stage);
                    return (None, fate);
                }
            }
        }
    }
    unreachable!("acyclic graph executor drained without reaching the exit")
}

/// Fans one payload through fan block `block`: plain targets queue
/// their copy for processing; slotted targets (a producer feeding one
/// input slot of a downstream join directly) deposit it instead.
fn fan_to(
    graph: &StageGraph,
    fanouts: &[FanOutFn],
    block: usize,
    payload: BoxedItem,
    joins: &mut HashMap<usize, Vec<Option<BoxedItem>>>,
    ready: &mut VecDeque<(usize, BoxedItem)>,
) -> Result<(), StageTypeError> {
    let parts = fanouts[block](payload)?;
    for (target, part) in graph.fan_targets(block).iter().zip(parts) {
        match target.slot {
            None => ready.push_back((target.stage, part)),
            Some(slot) => {
                let jblock = graph
                    .merge_block_of(target.stage)
                    .expect("slotted fan target joins");
                deposit_at_push(graph, jblock, slot, part, joins, ready);
            }
        }
    }
    Ok(())
}

/// Deposits one input into join `block`'s slot `slot`; when the set
/// completes, the assembled vector (slot order) queues for the joining
/// stage.
fn deposit_at_push(
    graph: &StageGraph,
    block: usize,
    slot: usize,
    part: BoxedItem,
    joins: &mut HashMap<usize, Vec<Option<BoxedItem>>>,
    ready: &mut VecDeque<(usize, BoxedItem)>,
) {
    let k = graph.branch_count(block);
    let slots = joins
        .entry(block)
        .or_insert_with(|| (0..k).map(|_| None).collect());
    slots[slot] = Some(part);
    if slots.iter().all(Option::is_some) {
        let parts: Vec<BoxedItem> = joins
            .remove(&block)
            .expect("slots just inserted")
            .into_iter()
            .map(|p| p.expect("all slots present"))
            .collect();
        ready.push_back((graph.merge_of(block), Payload::new(parts)));
    }
}

/// Cluster-level configuration: properties of the shared pool itself,
/// as opposed to any one tenant's [`SessionConfig`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Node churn of the shared pool. Outages hit every tenant at the
    /// same instants (it is one pool); per-session fault plans are
    /// rejected at [`Cluster::admit`] with
    /// [`BuildError::PerSessionFaults`].
    pub faults: FaultPlan,
    /// Arbitration window of the threaded backend's capacity arbiter
    /// (ignored by the simulation backend, whose shares are static).
    pub window: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            faults: FaultPlan::new(),
            window: Duration::from_millis(25),
        }
    }
}

/// Per-tenant admission configuration: the session's ordinary
/// [`RunConfig`] plus its capacity [`ShareQuota`].
#[derive(Default)]
pub struct SessionConfig {
    /// The tenant's run configuration. Per-session `faults` are
    /// rejected — churn belongs to the shared pool
    /// ([`ClusterConfig::faults`]).
    pub run: RunConfig,
    /// The tenant's capacity quota: `min_share` is a guaranteed floor
    /// while the tenant has demand, `max_share` a hard ceiling, and
    /// `weight` divides contended capacity. The default is a
    /// best-effort weight-1 tenant.
    pub quota: ShareQuota,
}

/// Many concurrent pipelines on one shared node pool.
///
/// A `Cluster` owns the pool once — [`Cluster::new`] launches it — and
/// [`Cluster::admit`] attaches any number of concurrent sessions:
/// heterogeneous stage graphs, each keeping the same typed
/// [`RunSession`] push/pull API a standalone [`Pipeline::spawn`]
/// returns. Capacity is divided by per-tenant [`ShareQuota`]s:
///
/// * **Threaded backend** — a single global arbitration loop senses
///   each tenant's progress and inbox backlog every
///   [`ClusterConfig::window`] and re-divides capacity by weighted
///   progressive filling under the quotas. Shares act twice: they
///   re-weight the pool inboxes' start-time-fair-queueing lanes (a
///   spiking tenant cannot starve the rest) and re-scale each tenant's
///   planner view of the pool (replicas migrate toward tenants that can
///   use them). Idle tenants release their grant — even the `min_share`
///   floor — after a short grace period.
/// * **Simulation backend** — deterministic: each tenant is granted a
///   *static* share equal to its quota ceiling at admission (the
///   ceilings may not oversubscribe the pool —
///   [`BuildError::PoolOversubscribed`]), and the tenants' worlds
///   interleave through one merged event clock, earliest event first.
///
/// Every [`RunEvent`] a tenant emits carries its [`SessionId`];
/// [`Cluster::events`] subscribes to the merged cluster-wide stream.
/// [`Cluster::evict`] begins graceful eviction (pushes fail typed,
/// in-flight items drain); [`Cluster::evict_now`] forcibly detaches the
/// tenant, failing its run with [`RunError::Evicted`].
pub struct Cluster<'g> {
    inner: ClusterInner<'g>,
    /// The cluster-wide merged event bus: every admitted session's
    /// hooks emit onto it.
    bus: EventBus,
}

enum ClusterInner<'g> {
    /// Deterministic shared-pool simulation: static shares plus the
    /// merged event-clock registry.
    Sim {
        grid: &'g GridSpec,
        faults: FaultPlan,
        pool: SimPool<'g>,
        next_id: u64,
    },
    /// Live threaded pool with the background capacity arbiter.
    Threads(ThreadCluster),
}

impl std::fmt::Debug for Cluster<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match &self.inner {
            ClusterInner::Sim { .. } => "sim",
            ClusterInner::Threads(_) => "threads",
        };
        f.debug_struct("Cluster")
            .field("backend", &backend)
            .field("sessions", &self.sessions())
            .finish()
    }
}

impl<'g> Cluster<'g> {
    /// Launches the shared node pool. The threaded backend starts its
    /// workers and the arbiter thread immediately; the simulation
    /// backend records the grid and fault plan for each admission.
    pub fn new(backend: Backend<'g>, cfg: ClusterConfig) -> Result<Cluster<'g>, BuildError> {
        let node_count = match &backend {
            Backend::Sim(grid) => grid.len(),
            Backend::Threads(vnodes) => vnodes.len(),
        };
        session::validate_faults(&cfg.faults, node_count)?;
        let inner = match backend {
            Backend::Sim(grid) => ClusterInner::Sim {
                grid,
                faults: cfg.faults,
                pool: Arc::new(Mutex::new(Vec::new())),
                next_id: 0,
            },
            Backend::Threads(vnodes) => {
                ClusterInner::Threads(ThreadCluster::launch(vnodes, cfg.faults, cfg.window))
            }
        };
        Ok(Cluster {
            inner,
            bus: EventBus::new(),
        })
    }

    /// Admits a pipeline as a new tenant and returns its live
    /// [`RunSession`] — same typed push/pull API as a standalone
    /// [`Pipeline::spawn`], but sharing this cluster's pool under the
    /// given quota.
    ///
    /// # Errors
    /// [`BuildError::PerSessionFaults`] if the pipeline or its run
    /// config declares faults (churn belongs to
    /// [`ClusterConfig::faults`]); [`BuildError::InvalidQuota`] for a
    /// malformed quota; [`BuildError::PoolOversubscribed`] (simulation
    /// backend) when the static share grants would exceed the pool;
    /// plus everything [`Pipeline::spawn`] validates.
    pub fn admit<I: Send + 'static, O: Send + 'static>(
        &mut self,
        pipeline: Pipeline<I, O>,
        mut cfg: SessionConfig,
    ) -> Result<RunSession<'g, I, O>, BuildError> {
        if !cfg.run.faults.is_empty() || !pipeline.faults.is_empty() {
            return Err(BuildError::PerSessionFaults);
        }
        if !cfg.quota.is_valid() {
            return Err(BuildError::InvalidQuota {
                detail: format!(
                    "min_share {}, max_share {}, weight {}",
                    cfg.quota.min_share, cfg.quota.max_share, cfg.quota.weight
                ),
            });
        }
        // Every tenant's events merge onto the cluster-wide bus (demux
        // by each event's `session` field); subscriptions made through
        // `RunSession::events` see the same merged stream.
        cfg.run.hooks.events = self.bus.clone();
        match &mut self.inner {
            ClusterInner::Sim {
                grid,
                faults,
                pool,
                next_id,
            } => {
                // No arbiter thread in the deterministic backend: the
                // tenant's share is granted statically at admission, at
                // its quota ceiling, and the granted ceilings may not
                // oversubscribe the pool.
                let share = cfg.quota.max_share;
                let taken: f64 = {
                    let mut entries = pool.lock().expect("sim pool registry poisoned");
                    entries.retain(|e| {
                        e.stepper.strong_count() > 0 && !e.ctl.killed.load(Ordering::SeqCst)
                    });
                    entries.iter().map(|e| e.share).sum()
                };
                if share > 1.0 - taken + 1e-9 {
                    return Err(BuildError::PoolOversubscribed {
                        requested: share,
                        available: (1.0 - taken).max(0.0),
                    });
                }
                cfg.run.faults = faults.clone();
                pipeline.validate_run(&Backend::Sim(grid), &cfg.run)?;
                let sid = SessionId(*next_id);
                *next_id += 1;
                Ok(pipeline.spawn_sim(grid, cfg.run, share, sid, Some(pool.clone())))
            }
            ClusterInner::Threads(tc) => {
                let vnodes = tc.pool().vnode_specs().to_vec();
                pipeline.validate_run(&Backend::Threads(vnodes.clone()), &cfg.run)?;
                let items = cfg.run.items;
                let control = cfg.run.control.clone();
                let engine_cfg = engine_config(&pipeline.session, vnodes, cfg.run);
                let core = CorePipeline::from_keyed_parts(
                    pipeline.spec,
                    pipeline.stages,
                    pipeline.fanouts,
                    pipeline.keys,
                );
                let engine = exec::attach(tc.pool(), core, &engine_cfg, items, false);
                tc.register(engine.tenant_handle(), cfg.quota);
                Ok(RunSession {
                    inner: SessionInner::Threads(Box::new(engine)),
                    control,
                    bus: self.bus.clone(),
                })
            }
        }
    }

    /// Begins graceful eviction of a tenant: its pushes start failing
    /// with [`RunError::Evicted`] while everything already in flight
    /// drains normally — `drain` on the tenant's session still returns
    /// a complete report. Returns `false` for an unknown session.
    pub fn evict(&self, id: SessionId) -> bool {
        match &self.inner {
            ClusterInner::Sim { pool, .. } => {
                let entries = pool.lock().expect("sim pool registry poisoned");
                match entries.iter().find(|e| e.id == id.0) {
                    Some(entry) => {
                        entry.ctl.evicting.store(true, Ordering::SeqCst);
                        true
                    }
                    None => false,
                }
            }
            ClusterInner::Threads(tc) => tc.evict(id),
        }
    }

    /// Forcibly detaches a tenant *now*: its run fails with
    /// [`RunError::Evicted`], in-flight items are dropped (the tenant's
    /// report comes back truncated), and its capacity share returns to
    /// the survivors. Returns `false` for an unknown session.
    pub fn evict_now(&mut self, id: SessionId) -> bool {
        match &mut self.inner {
            ClusterInner::Sim { pool, .. } => {
                let mut entries = pool.lock().expect("sim pool registry poisoned");
                let Some(idx) = entries.iter().position(|e| e.id == id.0) else {
                    return false;
                };
                let entry = entries.remove(idx);
                entry.ctl.evicting.store(true, Ordering::SeqCst);
                entry.ctl.killed.store(true, Ordering::SeqCst);
                entry.control.fail(RunError::Evicted { session: id });
                true
            }
            ClusterInner::Threads(tc) => tc.evict_now(id),
        }
    }

    /// The ids of the currently attached sessions, admission order.
    pub fn sessions(&self) -> Vec<SessionId> {
        match &self.inner {
            ClusterInner::Sim { pool, .. } => pool
                .lock()
                .expect("sim pool registry poisoned")
                .iter()
                .filter(|e| e.stepper.strong_count() > 0 && !e.ctl.killed.load(Ordering::SeqCst))
                .map(|e| SessionId(e.id))
                .collect(),
            ClusterInner::Threads(tc) => tc.sessions(),
        }
    }

    /// The capacity share currently granted to a session: its static
    /// grant on the simulation backend, the arbiter's latest decision
    /// on the threaded backend. `None` for an unknown session.
    pub fn share_of(&self, id: SessionId) -> Option<f64> {
        match &self.inner {
            ClusterInner::Sim { pool, .. } => pool
                .lock()
                .expect("sim pool registry poisoned")
                .iter()
                .find(|e| e.id == id.0)
                .map(|e| e.share),
            ClusterInner::Threads(tc) => tc.share_of(id),
        }
    }

    /// Number of nodes in the shared pool.
    pub fn node_count(&self) -> usize {
        match &self.inner {
            ClusterInner::Sim { grid, .. } => grid.len(),
            ClusterInner::Threads(tc) => tc.pool().node_count(),
        }
    }

    /// Subscribes to the merged cluster-wide [`RunEvent`] stream; every
    /// event carries the emitting tenant's [`SessionId`]. Events before
    /// the subscription are not replayed.
    pub fn events(&self) -> Receiver<RunEvent> {
        self.bus.subscribe()
    }

    /// Shuts the shared pool down. Threaded backend: stops the arbiter
    /// and joins the workers (attached sessions, if any remain, unwind
    /// with truncated reports). Simulation backend: drops the registry;
    /// outstanding sessions keep their own worlds and finish
    /// independently.
    pub fn shutdown(self) {
        match self.inner {
            ClusterInner::Sim { .. } => {}
            ClusterInner::Threads(tc) => tc.shutdown(),
        }
    }
}

/// Typed builder for the unified [`Pipeline`]; `Cur` is the item type
/// flowing out of the last stage added so far, so stage `i+1` must
/// accept exactly what stage `i` produces — checked at compile time.
/// Everything else is checked by [`PipelineBuilder::build`], which
/// returns a typed [`BuildError`] instead of panicking.
pub struct PipelineBuilder<In, Cur = In> {
    specs: Vec<StageSpec>,
    stages: Vec<Box<dyn DynStage>>,
    /// Per-stage routing-key extractors, in lockstep with `stages`
    /// (`Some` for keyed stages only).
    keys: Vec<Option<KeyFn>>,
    /// The declared series-parallel shape over `specs` (flattened
    /// order); compiled into a [`StageGraph`] at `build()`.
    shape: Vec<ShapeSeg>,
    /// One fan-out duplicator per parallel block declared so far.
    fanouts: Vec<FanOutFn>,
    /// First structural error of a `parallel()` declaration, surfaced
    /// as the typed `build()` result.
    graph_error: Option<BuildError>,
    input_bytes: u64,
    source: Option<NodeId>,
    sink: Option<NodeId>,
    policy: Policy,
    arrivals: ArrivalProcess,
    baseline: bool,
    feed: Option<Box<dyn Fn(u64) -> In + Send>>,
    faults: FaultPlan,
    _types: PhantomData<fn(In) -> Cur>,
}

/// One element of the builder's declared shape.
enum ShapeSeg {
    /// `k` series stages.
    Series(usize),
    /// A parallel block: branch stage counts (branch order); the merge
    /// stage follows implicitly.
    Block(Vec<usize>),
}

/// Converts an existing graph back into builder shape so stages can be
/// appended after `from_spec`/`from_pipeline`.
fn shape_of(graph: &StageGraph) -> Vec<ShapeSeg> {
    graph
        .segments()
        .iter()
        .map(|seg| match seg {
            Segment::Chain { start, end } => ShapeSeg::Series(end - start),
            Segment::Parallel { branches, .. } => {
                ShapeSeg::Block(branches.iter().map(|&(s, e)| e - s).collect())
            }
        })
        .collect()
}

impl<In: Send + 'static> PipelineBuilder<In, In> {
    /// Starts a pipeline whose inputs have type `In`.
    pub fn new() -> Self {
        PipelineBuilder {
            specs: Vec::new(),
            stages: Vec::new(),
            keys: Vec::new(),
            shape: Vec::new(),
            fanouts: Vec::new(),
            graph_error: None,
            input_bytes: 0,
            source: None,
            sink: None,
            policy: Policy::Static,
            arrivals: ArrivalProcess::AllAtOnce,
            baseline: false,
            feed: None,
            faults: FaultPlan::new(),
            _types: PhantomData,
        }
    }
}

impl<In: Send + 'static> Default for PipelineBuilder<In, In> {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineBuilder<u64, u64> {
    /// Builds from an engine-agnostic [`PipelineSpec`] alone: each stage
    /// becomes an identity function over `u64` (merge stages take their
    /// first branch's value), and the feed defaults to the item index.
    /// The simulation backend only consumes the metadata, so this is the
    /// natural entry point for simulation scenarios (and still runs —
    /// trivially — on the threaded backend). Branched specs (built via
    /// [`PipelineSpec::with_graph`]) keep their graph.
    pub fn from_spec(spec: PipelineSpec) -> Self {
        let graph = spec.graph.clone();
        let stages: Vec<Box<dyn DynStage>> = spec
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| -> Box<dyn DynStage> {
                if graph.merge_block_of(i).is_some() {
                    Box::new(MergeStage::new(s.name.clone(), |mut parts: Vec<u64>| {
                        parts.swap_remove(0)
                    }))
                } else if s.stateless {
                    Box::new(FnStage::new(s.name.clone(), |x: u64| x))
                } else {
                    Box::new(StatefulFnStage::new(s.name.clone(), |x: u64| x))
                }
            })
            .collect();
        let fanouts = (0..graph.blocks())
            .map(|b| fan_out_fn::<u64>(graph.branch_count(b)))
            .collect();
        let keys = vec![None; stages.len()];
        PipelineBuilder {
            input_bytes: spec.input_bytes,
            source: spec.source,
            sink: spec.sink,
            shape: shape_of(&graph),
            fanouts,
            graph_error: None,
            specs: spec.stages,
            stages,
            keys,
            policy: Policy::Static,
            arrivals: ArrivalProcess::AllAtOnce,
            baseline: false,
            feed: Some(Box::new(|i| i)),
            faults: FaultPlan::new(),
            _types: PhantomData,
        }
    }
}

impl<In: Send + 'static, Cur: Send + 'static> PipelineBuilder<In, Cur> {
    /// Adopts an already-built engine-level pipeline (e.g. the imaging
    /// or signal workloads), keeping its stages and cost metadata; the
    /// unified policy/arrivals/feed declarations still apply.
    pub fn from_pipeline(pipeline: CorePipeline<In, Cur>) -> Self {
        let (spec, stages, fanouts, keys) = pipeline.into_keyed_parts();
        PipelineBuilder {
            input_bytes: spec.input_bytes,
            source: spec.source,
            sink: spec.sink,
            shape: shape_of(&spec.graph),
            fanouts,
            graph_error: None,
            specs: spec.stages,
            stages,
            keys,
            policy: Policy::Static,
            arrivals: ArrivalProcess::AllAtOnce,
            baseline: false,
            feed: None,
            faults: FaultPlan::new(),
            _types: PhantomData,
        }
    }

    /// Declares how many bytes each input item carries into stage 0.
    pub fn input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes = bytes;
        self
    }

    /// Pins the input source to a grid node (inputs pay the transfer
    /// from there to stage 0's host).
    pub fn source(mut self, node: NodeId) -> Self {
        self.source = Some(node);
        self
    }

    /// Pins the output sink to a grid node.
    pub fn sink(mut self, node: NodeId) -> Self {
        self.sink = Some(node);
        self
    }

    /// Sets the adaptation policy (default [`Policy::Static`]).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the arrival process (default [`ArrivalProcess::AllAtOnce`]).
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Declares scheduled faults the run must survive: slowdowns and
    /// outages degrade the named nodes, outages and crashes take them
    /// *down* (routing exclusion, `RunEvent::NodeDown`, a forced
    /// committed re-map away from them, at-least-once replay of
    /// stranded items). Honoured identically by both backends; times
    /// are on the backend clock. Merged with (before) any plan the
    /// `RunConfig` carries. Validated against the backend's node set at
    /// `run()`/`spawn()`.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Acknowledges a *deliberate* baseline: waives the policy × arrival
    /// pairing rule (e.g. `Policy::Static` under a paced open stream,
    /// run to show what non-adaptive scheduling costs). Every other
    /// validation still applies.
    pub fn as_baseline(mut self) -> Self {
        self.baseline = true;
        self
    }

    /// Declares the input feed: item index → input. Backends that
    /// execute stage functions on real items (threads) require one; the
    /// simulator ignores it.
    pub fn feed(mut self, f: impl Fn(u64) -> In + Send + 'static) -> Self {
        self.feed = Some(Box::new(f));
        self
    }

    /// Appends a stateless stage with default cost metadata (1 work
    /// unit per item, no boundary bytes). The closure must be `Clone`
    /// so the runtime can replicate the stage across nodes.
    pub fn stage<Out, F>(self, name: impl Into<String>, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        self.stage_with(StageSpec::balanced(name, 1.0, 0), f)
    }

    /// Appends a stateless stage replicable up to `replicas` nodes —
    /// the declared replication property the planner may exploit. A
    /// bound of zero is rejected at [`PipelineBuilder::build`].
    pub fn stage_replicated<Out, F>(
        self,
        name: impl Into<String>,
        f: F,
        replicas: usize,
    ) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        self.stage_with(StageSpec::balanced(name, 1.0, 0).with_replicas(replicas), f)
    }

    /// Appends a stage with explicit cost metadata. A spec marked
    /// stateful produces a stateful (never-replicated) stage instance.
    pub fn stage_with<Out, F>(mut self, spec: StageSpec, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        let stage: Box<dyn DynStage> = if spec.stateless {
            Box::new(FnStage::new(spec.name.clone(), f))
        } else {
            Box::new(StatefulFnStage::new(spec.name.clone(), f))
        };
        self.stages.push(stage);
        self.keys.push(None);
        self.specs.push(spec);
        self.note_series_stage();
        self.retype()
    }

    /// Appends a stateful stage with *opaque* (undeclared) closure
    /// state: it will never be replicated, migrating it costs
    /// `spec.state_bytes` of transfer, and losing its node permanently
    /// fails the run with `RunError::StatefulStageLost` — the runtime
    /// cannot move state it cannot serialize. Prefer the declared
    /// patterns ([`PipelineBuilder::keyed_stage`],
    /// [`PipelineBuilder::accumulator_stage`],
    /// [`PipelineBuilder::exclusive_stage`]), which replicate and/or
    /// live-migrate instead. The closure needs no `Clone` bound.
    pub fn stateful_stage<Out, F>(mut self, spec: StageSpec, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + 'static,
    {
        let spec = if spec.stateless {
            spec.with_state(0)
        } else {
            spec
        };
        self.stages
            .push(Box::new(StatefulFnStage::new(spec.name.clone(), f)));
        self.keys.push(None);
        self.specs.push(spec);
        self.note_series_stage();
        self.retype()
    }

    /// Appends a *fallible* stateless stage: the closure may reject an
    /// item with an error string, and the stage's declared
    /// [`ResiliencePolicy`] (see [`PipelineBuilder::resilience`])
    /// decides what happens — retry with backoff, dead-letter
    /// diversion, or the default fail-fast [`RunError::PoisonItem`].
    /// The input must be `Clone` so a failed attempt hands the
    /// untouched item back for re-presentation.
    pub fn try_stage<Out, F>(self, name: impl Into<String>, f: F) -> PipelineBuilder<In, Out>
    where
        Cur: Clone,
        Out: Send + 'static,
        F: FnMut(Cur) -> Result<Out, String> + Send + Clone + 'static,
    {
        self.try_stage_with(StageSpec::balanced(name, 1.0, 0), f)
    }

    /// Appends a fallible stage with explicit cost metadata.
    pub fn try_stage_with<Out, F>(mut self, spec: StageSpec, f: F) -> PipelineBuilder<In, Out>
    where
        Cur: Clone,
        Out: Send + 'static,
        F: FnMut(Cur) -> Result<Out, String> + Send + Clone + 'static,
    {
        self.stages
            .push(Box::new(FallibleFnStage::new(spec.name.clone(), f)));
        self.keys.push(None);
        self.specs.push(spec);
        self.note_series_stage();
        self.retype()
    }

    /// Declares the failure-handling policy of the most recently
    /// appended stage: bounded retries with exponential backoff,
    /// per-attempt timeout accounting, dead-letter diversion, per-hop
    /// tracing — honoured identically by both backends. A call before
    /// any stage was appended is ignored.
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Self {
        if let Some(spec) = self.specs.last_mut() {
            spec.resilience = policy;
        }
        self
    }

    /// Appends a stage with *keyed* state: items hash to one of
    /// `shards` independent state slices via `key`, each first-seen key
    /// is seeded from `init`, and `f` folds the item into its key's
    /// state. The planner may replicate the stage up to `shards` ways
    /// (each replica owns a shard subset), and a shard whose owner dies
    /// is quiesced, snapshotted, and resumed on a live node — the run
    /// survives.
    ///
    /// ```
    /// use adapipe::prelude::*;
    ///
    /// let pipeline = Pipeline::<u64>::builder()
    ///     .keyed_stage("count", 4, |x: &u64| x % 7, || 0u64, |seen, x: u64| {
    ///         *seen += 1;
    ///         (x, *seen)
    ///     })
    ///     .build()
    ///     .expect("valid keyed pipeline");
    /// assert_eq!(pipeline.len(), 1);
    /// ```
    pub fn keyed_stage<Out, S, K, F>(
        self,
        name: impl Into<String>,
        shards: usize,
        key: K,
        init: impl Fn() -> S + Send + Sync + 'static,
        f: F,
    ) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        S: StateCodec + Send + 'static,
        K: Fn(&Cur) -> u64 + Send + Sync + 'static,
        F: FnMut(&mut S, Cur) -> Out + Send + Clone + 'static,
    {
        self.keyed_stage_with(
            StageSpec::balanced(name, 1.0, 0).with_keyed_state(shards, 0),
            key,
            init,
            f,
        )
    }

    /// [`PipelineBuilder::keyed_stage`] with explicit cost metadata;
    /// `spec` must declare keyed state ([`StageSpec::with_keyed_state`]).
    ///
    /// # Panics
    /// Panics if `spec` does not declare keyed state — the shard count
    /// is part of the declaration, not something the builder can guess.
    pub fn keyed_stage_with<Out, S, K, F>(
        mut self,
        spec: StageSpec,
        key: K,
        init: impl Fn() -> S + Send + Sync + 'static,
        f: F,
    ) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        S: StateCodec + Send + 'static,
        K: Fn(&Cur) -> u64 + Send + Sync + 'static,
        F: FnMut(&mut S, Cur) -> Out + Send + Clone + 'static,
    {
        assert!(
            spec.state.shards() > 0,
            "keyed_stage requires a spec with declared keyed state"
        );
        let stage = KeyedStage::<Cur, Out, S, K, F>::new(spec.name.clone(), key, init, f);
        self.keys.push(Some(stage.routing_key()));
        self.stages.push(Box::new(stage));
        self.specs.push(spec);
        self.note_series_stage();
        self.retype()
    }

    /// Appends a stage with *accumulator* state: one logical value with
    /// a commutative `merge`. Replicas keep partials seeded from
    /// `init`; a replica vacating a host (re-map or node death) hands
    /// its partial to a survivor through `merge`, so the run survives
    /// and no contribution is lost.
    pub fn accumulator_stage<Out, S, F, M>(
        self,
        name: impl Into<String>,
        init: impl Fn() -> S + Send + Sync + 'static,
        f: F,
        merge: M,
    ) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        S: StateCodec + Send + 'static,
        F: FnMut(&mut S, Cur) -> Out + Send + Clone + 'static,
        M: Fn(&mut S, S) + Send + Sync + 'static,
    {
        self.accumulator_stage_with(
            StageSpec::balanced(name, 1.0, 0).with_accumulator_state(0),
            init,
            f,
            merge,
        )
    }

    /// [`PipelineBuilder::accumulator_stage`] with explicit cost
    /// metadata (the accumulator declaration is applied if missing).
    pub fn accumulator_stage_with<Out, S, F, M>(
        mut self,
        spec: StageSpec,
        init: impl Fn() -> S + Send + Sync + 'static,
        f: F,
        merge: M,
    ) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        S: StateCodec + Send + 'static,
        F: FnMut(&mut S, Cur) -> Out + Send + Clone + 'static,
        M: Fn(&mut S, S) + Send + Sync + 'static,
    {
        let spec = if spec.state == adapipe_state::StateAccess::Accumulator {
            spec
        } else {
            let bytes = spec.state_bytes;
            spec.with_accumulator_state(bytes)
        };
        self.stages
            .push(Box::new(AccumStage::<Cur, Out, S, F, M>::new(
                spec.name.clone(),
                init,
                f,
                merge,
            )));
        self.keys.push(None);
        self.specs.push(spec);
        self.note_series_stage();
        self.retype()
    }

    /// Appends a stage with *exclusive* declared state: serializable
    /// but indivisible, seeded from `init`. Exactly one live instance
    /// ever runs, but unlike [`PipelineBuilder::stateful_stage`] the
    /// state can quiesce, snapshot, and resume on another host — a node
    /// death migrates it instead of aborting the run.
    pub fn exclusive_stage<Out, S, F>(
        self,
        name: impl Into<String>,
        init: impl Fn() -> S + Send + Sync + 'static,
        f: F,
    ) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        S: StateCodec + Send + 'static,
        F: FnMut(&mut S, Cur) -> Out + Send + Clone + 'static,
    {
        self.exclusive_stage_with(
            StageSpec::balanced(name, 1.0, 0).with_exclusive_state(0),
            init,
            f,
        )
    }

    /// [`PipelineBuilder::exclusive_stage`] with explicit cost metadata
    /// (the exclusive declaration is applied if missing).
    pub fn exclusive_stage_with<Out, S, F>(
        mut self,
        spec: StageSpec,
        init: impl Fn() -> S + Send + Sync + 'static,
        f: F,
    ) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        S: StateCodec + Send + 'static,
        F: FnMut(&mut S, Cur) -> Out + Send + Clone + 'static,
    {
        let spec = if spec.state == adapipe_state::StateAccess::Exclusive {
            spec
        } else {
            let bytes = spec.state_bytes;
            spec.with_exclusive_state(bytes)
        };
        self.stages.push(Box::new(SnapStage::<Cur, Out, S, F>::new(
            spec.name.clone(),
            init,
            f,
        )));
        self.keys.push(None);
        self.specs.push(spec);
        self.note_series_stage();
        self.retype()
    }

    /// Fans each item out to the given branch sub-pipelines — the
    /// series-parallel generalisation of the stage chain. Every branch
    /// receives its own clone of the item (hence `Cur: Clone`), the
    /// branches execute concurrently (on the threaded backend) over
    /// their own placements, and the block must be closed with
    /// [`ParallelBuilder::merge`] (or
    /// [`ParallelBuilder::merge_with`]), which folds the branch outputs
    /// — delivered in branch order — back into one item:
    ///
    /// ```
    /// use adapipe::prelude::*;
    ///
    /// let pipeline = Pipeline::<u64>::builder()
    ///     .stage("decode", |x: u64| x + 1)
    ///     .parallel(vec![
    ///         Branch::new().stage("analyze", |x: u64| x * 10),
    ///         Branch::new().stage("thumbnail", |x: u64| x + 100),
    ///     ])
    ///     .merge("combine", |outs: Vec<u64>| outs[0] + outs[1])
    ///     .build()
    ///     .expect("valid branched pipeline");
    /// assert_eq!(pipeline.len(), 4, "two branches + merge + decode");
    /// ```
    ///
    /// Structural rules (typed errors at `build()`): a block needs at
    /// least two branches ([`BuildError::TooFewBranches`]) and every
    /// branch at least one stage ([`BuildError::EmptyBranch`]).
    pub fn parallel<B>(mut self, branches: Vec<Branch<Cur, B>>) -> ParallelBuilder<In, B>
    where
        Cur: Clone,
        B: Send + 'static,
    {
        let block = self.fanouts.len();
        if branches.len() < 2 && self.graph_error.is_none() {
            self.graph_error = Some(BuildError::TooFewBranches { block });
        }
        if branches.iter().any(|b| b.specs.is_empty()) && self.graph_error.is_none() {
            self.graph_error = Some(BuildError::EmptyBranch { block });
        }
        let mut lens = Vec::with_capacity(branches.len());
        let n = branches.len();
        for branch in branches {
            let Branch {
                specs,
                stages,
                cap,
                _types,
            } = branch;
            lens.push(specs.len());
            for mut spec in specs {
                // The per-branch replication cap tightens each stateless
                // stage's own declared bound; stateful stages stay
                // pinned to width one by the usual rules.
                if spec.stateless {
                    spec.max_replicas = spec.max_replicas.min(cap);
                }
                self.specs.push(spec);
            }
            self.keys.extend((0..stages.len()).map(|_| None));
            self.stages.extend(stages);
        }
        self.fanouts.push(fan_out_fn::<Cur>(n));
        ParallelBuilder {
            builder: self.retype(),
            branch_lens: lens,
            _types: PhantomData,
        }
    }

    fn note_series_stage(&mut self) {
        if let Some(ShapeSeg::Series(k)) = self.shape.last_mut() {
            *k += 1;
        } else {
            self.shape.push(ShapeSeg::Series(1));
        }
    }

    fn retype<Out: Send + 'static>(self) -> PipelineBuilder<In, Out> {
        PipelineBuilder {
            specs: self.specs,
            stages: self.stages,
            keys: self.keys,
            shape: self.shape,
            fanouts: self.fanouts,
            graph_error: self.graph_error,
            input_bytes: self.input_bytes,
            source: self.source,
            sink: self.sink,
            policy: self.policy,
            arrivals: self.arrivals,
            baseline: self.baseline,
            feed: self.feed,
            faults: self.faults,
            _types: PhantomData,
        }
    }

    /// Validates and finalises the pipeline. See the module docs (and
    /// [`adapipe_runtime::session`]) for the full rule set; branched
    /// declarations additionally require at least two branches per
    /// parallel block and a non-empty stage list per branch.
    pub fn build(self) -> Result<Pipeline<In, Cur>, BuildError> {
        if let Some(err) = self.graph_error {
            return Err(err);
        }
        let names: Vec<&str> = self.specs.iter().map(|s| s.name.as_str()).collect();
        session::validate_stage_names(&names)?;
        for spec in &self.specs {
            session::validate_replicas(&spec.name, spec.state.replicable(), spec.max_replicas)?;
        }
        let session = if self.baseline {
            Session::baseline(self.policy, self.arrivals)?
        } else {
            Session::new(self.policy, self.arrivals)?
        };
        let mut graph = StageGraph::builder();
        for seg in &self.shape {
            graph = match seg {
                ShapeSeg::Series(k) => graph.stages(*k),
                ShapeSeg::Block(lens) => graph.split(lens),
            };
        }
        let mut spec = PipelineSpec::with_graph(self.specs, graph.build());
        spec.input_bytes = self.input_bytes;
        spec.source = self.source;
        spec.sink = self.sink;
        Ok(Pipeline {
            spec,
            stages: self.stages,
            keys: self.keys,
            fanouts: self.fanouts,
            session,
            feed: self.feed,
            faults: self.faults,
            _types: PhantomData,
        })
    }
}

/// A branch sub-pipeline of a [`PipelineBuilder::parallel`] block:
/// a typed chain of stages from the block's input type `I` to the
/// branch output `Cur`. All branches of one block must end in the same
/// output type (the merge receives `Vec` of it, in branch order).
pub struct Branch<I, Cur = I> {
    specs: Vec<StageSpec>,
    stages: Vec<Box<dyn DynStage>>,
    /// Per-branch replication cap, tightening each stage's own bound.
    cap: usize,
    _types: PhantomData<fn(I) -> Cur>,
}

impl<I: Send + 'static> Branch<I, I> {
    /// Starts a branch whose input (the fanned-out item) has type `I`.
    pub fn new() -> Self {
        Branch {
            specs: Vec::new(),
            stages: Vec::new(),
            cap: usize::MAX,
            _types: PhantomData,
        }
    }
}

impl<I: Send + 'static> Default for Branch<I, I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Send + 'static, Cur: Send + 'static> Branch<I, Cur> {
    /// Appends a stateless stage with default cost metadata.
    pub fn stage<Out, F>(self, name: impl Into<String>, f: F) -> Branch<I, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        self.stage_with(StageSpec::balanced(name, 1.0, 0), f)
    }

    /// Appends a stateless stage replicable up to `replicas` nodes.
    pub fn stage_replicated<Out, F>(
        self,
        name: impl Into<String>,
        f: F,
        replicas: usize,
    ) -> Branch<I, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        self.stage_with(StageSpec::balanced(name, 1.0, 0).with_replicas(replicas), f)
    }

    /// Appends a stage with explicit cost metadata (stateful specs
    /// produce never-replicated stage instances, as on the main
    /// builder).
    pub fn stage_with<Out, F>(mut self, spec: StageSpec, f: F) -> Branch<I, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        let stage: Box<dyn DynStage> = if spec.stateless {
            Box::new(FnStage::new(spec.name.clone(), f))
        } else {
            Box::new(StatefulFnStage::new(spec.name.clone(), f))
        };
        self.stages.push(stage);
        self.specs.push(spec);
        Branch {
            specs: self.specs,
            stages: self.stages,
            cap: self.cap,
            _types: PhantomData,
        }
    }

    /// Declares the branch-wide replication cap: no stage of this
    /// branch may be farmed wider, on top of each stage's own declared
    /// bound. A cap of zero is rejected at `build()` like any other
    /// zero replica bound.
    pub fn replicas(mut self, cap: usize) -> Self {
        self.cap = cap;
        self
    }
}

/// A [`PipelineBuilder`] whose last declaration was an open
/// [`PipelineBuilder::parallel`] block: the only way forward is
/// [`ParallelBuilder::merge`] / [`ParallelBuilder::merge_with`], so an
/// unmerged block is unrepresentable.
pub struct ParallelBuilder<In, B> {
    builder: PipelineBuilder<In, ()>,
    branch_lens: Vec<usize>,
    _types: PhantomData<fn() -> B>,
}

impl<In: Send + 'static, B: Send + 'static> ParallelBuilder<In, B> {
    /// Closes the parallel block with a merge stage of default cost
    /// metadata: `f` receives one output per branch, in branch order,
    /// and folds them into the block's single output.
    pub fn merge<Out, F>(self, name: impl Into<String>, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Vec<B>) -> Out + Send + Clone + 'static,
    {
        self.merge_with(StageSpec::balanced(name, 1.0, 0), f)
    }

    /// Closes the parallel block with a merge stage carrying explicit
    /// cost metadata. A spec marked stateful pins the merge to width
    /// one (it may accumulate across items).
    pub fn merge_with<Out, F>(self, spec: StageSpec, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Vec<B>) -> Out + Send + Clone + 'static,
    {
        let mut builder = self.builder;
        let stage: Box<dyn DynStage> = if spec.stateless {
            Box::new(MergeStage::new(spec.name.clone(), f))
        } else {
            Box::new(SealedStage::new(Box::new(MergeStage::new(
                spec.name.clone(),
                f,
            ))))
        };
        builder.stages.push(stage);
        builder.keys.push(None);
        builder.specs.push(spec);
        builder.shape.push(ShapeSeg::Block(self.branch_lens));
        builder.retype()
    }
}

/// Builds a [`FanOutFn`] from a producer's [`CloneFn`]: `n - 1` clones
/// plus the original, in edge order (every copy carries the same
/// value). A payload the clone function cannot read is the usual typed
/// mis-assembly error.
fn fan_out_from_clone(stage: String, clone: CloneFn, n: usize) -> FanOutFn {
    Arc::new(move |item: BoxedItem| {
        let mut parts: Vec<BoxedItem> = Vec::with_capacity(n);
        for _ in 1..n {
            parts.push(clone(&item).ok_or_else(|| StageTypeError {
                stage: stage.clone(),
                expected: "the producer's declared (cloneable) output type",
            })?);
        }
        parts.push(item);
        Ok(parts)
    })
}

/// Builder for a pipeline over a *general DAG* of named stages: declare
/// stages with [`DagBuilder::node`] / [`DagBuilder::try_node`] /
/// [`DagBuilder::join`], wire them with [`DagBuilder::edge`], and
/// [`DagBuilder::build`] validates the wiring into a typed result —
/// [`BuildError::GraphCycle`], [`BuildError::UnreachableStage`],
/// [`BuildError::UnknownStage`], [`BuildError::InvalidEdge`],
/// [`BuildError::DuplicateStage`] — instead of panicking mid-run.
///
/// A stage feeding several consumers fans copies out (its output type
/// must be `Clone`, which every `node` declaration requires); a stage
/// declared with `join` receives one `Vec` with the outputs of its
/// inputs, in declaration order. Cross-edge type agreement is checked
/// dynamically at run time (the same typed
/// [`RunError::StageTypeMismatch`] contract as the chain builder).
///
/// ```
/// use adapipe::prelude::*;
///
/// // fetch ─┬─ parse ─┐
/// //        └─ audit ─┴─ combine → sink
/// let pipeline = Pipeline::<u64>::dag()
///     .node("fetch", |x: u64| x + 1)
///     .node("parse", |x: u64| x * 2)
///     .node("audit", |x: u64| x * 10)
///     .edge("fetch", "parse")
///     .edge("fetch", "audit")
///     .join("combine", |outs: Vec<u64>| outs[0] + outs[1], &["parse", "audit"])
///     .node("sink", |x: u64| x)
///     .edge("combine", "sink")
///     .build::<u64>()
///     .expect("valid DAG");
/// assert_eq!(pipeline.len(), 5);
/// ```
pub struct DagBuilder<In> {
    names: Vec<String>,
    specs: Vec<StageSpec>,
    stages: Vec<Box<dyn DynStage>>,
    /// Per stage: duplicator of its *output* type, used to synthesize
    /// the fan-out of a multi-consumer stage.
    clones: Vec<CloneFn>,
    /// Declared edges, in declaration order (a join's input slots are
    /// its in-edges in this order).
    edges: Vec<(String, String)>,
    /// Duplicator of the pipeline input (several entry stages fan the
    /// input out).
    entry_clone: CloneFn,
    /// First structural error of the declaration, surfaced at `build()`.
    err: Option<BuildError>,
    input_bytes: u64,
    source: Option<NodeId>,
    sink: Option<NodeId>,
    policy: Policy,
    arrivals: ArrivalProcess,
    baseline: bool,
    feed: Option<Box<dyn Fn(u64) -> In + Send>>,
    faults: FaultPlan,
    _types: PhantomData<fn(In)>,
}

impl<In: Clone + Send + 'static> DagBuilder<In> {
    fn new() -> Self {
        DagBuilder {
            names: Vec::new(),
            specs: Vec::new(),
            stages: Vec::new(),
            clones: Vec::new(),
            edges: Vec::new(),
            entry_clone: clone_fn::<In>(),
            err: None,
            input_bytes: 0,
            source: None,
            sink: None,
            policy: Policy::Static,
            arrivals: ArrivalProcess::AllAtOnce,
            baseline: false,
            feed: None,
            faults: FaultPlan::new(),
            _types: PhantomData,
        }
    }

    /// Declares a named stateless stage with default cost metadata. Its
    /// output must be `Clone` (any DAG stage may feed several
    /// consumers); stages with no in-edge at `build()` are entry stages
    /// fed by the pipeline input.
    pub fn node<A, B, F>(self, name: impl Into<String>, f: F) -> Self
    where
        A: Send + 'static,
        B: Clone + Send + 'static,
        F: FnMut(A) -> B + Send + Clone + 'static,
    {
        self.node_with(StageSpec::balanced(name, 1.0, 0), f)
    }

    /// Declares a named stage with explicit cost metadata (a spec
    /// marked stateful produces a never-replicated stage instance).
    pub fn node_with<A, B, F>(mut self, spec: StageSpec, f: F) -> Self
    where
        A: Send + 'static,
        B: Clone + Send + 'static,
        F: FnMut(A) -> B + Send + Clone + 'static,
    {
        let stage: Box<dyn DynStage> = if spec.stateless {
            Box::new(FnStage::new(spec.name.clone(), f))
        } else {
            Box::new(StatefulFnStage::new(spec.name.clone(), f))
        };
        self.push_stage(spec, stage, clone_fn::<B>());
        self
    }

    /// Declares a named *fallible* stage: the closure may reject an
    /// item with an error string, handled per the stage's
    /// [`DagBuilder::resilience`] policy. The input must be `Clone` so
    /// a failed attempt can be re-presented.
    pub fn try_node<A, B, F>(self, name: impl Into<String>, f: F) -> Self
    where
        A: Clone + Send + 'static,
        B: Clone + Send + 'static,
        F: FnMut(A) -> Result<B, String> + Send + Clone + 'static,
    {
        self.try_node_with(StageSpec::balanced(name, 1.0, 0), f)
    }

    /// Declares a fallible stage with explicit cost metadata.
    pub fn try_node_with<A, B, F>(mut self, spec: StageSpec, f: F) -> Self
    where
        A: Clone + Send + 'static,
        B: Clone + Send + 'static,
        F: FnMut(A) -> Result<B, String> + Send + Clone + 'static,
    {
        let stage: Box<dyn DynStage> = Box::new(FallibleFnStage::new(spec.name.clone(), f));
        self.push_stage(spec, stage, clone_fn::<B>());
        self
    }

    /// Declares a named *joining* stage: it receives one `Vec` holding
    /// the outputs of `inputs` (in that order) per item, and the edges
    /// `inputs[i] → name` are wired implicitly. At least two inputs are
    /// required — a single-input consumer is an ordinary `node` plus an
    /// `edge`.
    pub fn join<B, Out, F>(self, name: impl Into<String>, f: F, inputs: &[&str]) -> Self
    where
        B: Send + 'static,
        Out: Clone + Send + 'static,
        F: FnMut(Vec<B>) -> Out + Send + Clone + 'static,
    {
        self.join_with(StageSpec::balanced(name, 1.0, 0), f, inputs)
    }

    /// Declares a joining stage with explicit cost metadata (a spec
    /// marked stateful pins the join to width one).
    pub fn join_with<B, Out, F>(mut self, spec: StageSpec, f: F, inputs: &[&str]) -> Self
    where
        B: Send + 'static,
        Out: Clone + Send + 'static,
        F: FnMut(Vec<B>) -> Out + Send + Clone + 'static,
    {
        if inputs.len() < 2 && self.err.is_none() {
            self.err = Some(BuildError::InvalidEdge {
                detail: format!(
                    "join '{}' declares {} input(s); a join needs at least two",
                    spec.name,
                    inputs.len()
                ),
            });
        }
        let name = spec.name.clone();
        let stage: Box<dyn DynStage> = if spec.stateless {
            Box::new(MergeStage::new(name.clone(), f))
        } else {
            Box::new(SealedStage::new(Box::new(MergeStage::new(name.clone(), f))))
        };
        self.push_stage(spec, stage, clone_fn::<Out>());
        for input in inputs {
            self.edges.push(((*input).to_string(), name.clone()));
        }
        self
    }

    fn push_stage(&mut self, spec: StageSpec, stage: Box<dyn DynStage>, clone: CloneFn) {
        self.names.push(spec.name.clone());
        self.specs.push(spec);
        self.stages.push(stage);
        self.clones.push(clone);
    }

    /// Wires stage `from`'s output into stage `to`'s input. Declaring
    /// several out-edges fans copies of `from`'s output to each
    /// consumer; several in-edges are only legal on a
    /// [`DagBuilder::join`] stage (which receives them as input slots,
    /// in edge order).
    pub fn edge(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.edges.push((from.into(), to.into()));
        self
    }

    /// Declares the failure-handling policy of the most recently
    /// declared stage (retries, backoff, timeout, dead-letter, trace) —
    /// honoured identically by both backends. A call before any stage
    /// was declared is ignored.
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Self {
        if let Some(spec) = self.specs.last_mut() {
            spec.resilience = policy;
        }
        self
    }

    /// Declares how many bytes each input item carries into the entry
    /// stages.
    pub fn input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes = bytes;
        self
    }

    /// Pins the input source to a grid node.
    pub fn source(mut self, node: NodeId) -> Self {
        self.source = Some(node);
        self
    }

    /// Pins the output sink to a grid node.
    pub fn sink(mut self, node: NodeId) -> Self {
        self.sink = Some(node);
        self
    }

    /// Sets the adaptation policy (default [`Policy::Static`]).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the arrival process (default [`ArrivalProcess::AllAtOnce`]).
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Acknowledges a deliberate baseline (waives the policy × arrival
    /// pairing rule), as on [`PipelineBuilder::as_baseline`].
    pub fn as_baseline(mut self) -> Self {
        self.baseline = true;
        self
    }

    /// Declares the input feed: item index → input.
    pub fn feed(mut self, f: impl Fn(u64) -> In + Send + 'static) -> Self {
        self.feed = Some(Box::new(f));
        self
    }

    /// Declares scheduled faults the run must survive (see
    /// [`PipelineBuilder::faults`]).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Validates the declared DAG and finalises the pipeline. `Out` is
    /// the output type of the exit stage (the unique stage with no
    /// consumer); it is checked dynamically at delivery, like every
    /// other cross-stage type agreement.
    pub fn build<Out: Send + 'static>(self) -> Result<Pipeline<In, Out>, BuildError> {
        if let Some(err) = self.err {
            return Err(err);
        }
        if self.specs.is_empty() {
            return Err(BuildError::EmptyPipeline);
        }
        let names: Vec<&str> = self.names.iter().map(String::as_str).collect();
        session::validate_stage_names(&names)?;
        for spec in &self.specs {
            session::validate_replicas(&spec.name, spec.state.replicable(), spec.max_replicas)?;
        }
        let session = if self.baseline {
            Session::baseline(self.policy, self.arrivals)?
        } else {
            Session::new(self.policy, self.arrivals)?
        };
        let index_of: HashMap<&str, usize> = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut dag = StageGraph::dag(self.specs.len());
        for (from, to) in &self.edges {
            let f = *index_of
                .get(from.as_str())
                .ok_or_else(|| BuildError::UnknownStage { name: from.clone() })?;
            let t = *index_of
                .get(to.as_str())
                .ok_or_else(|| BuildError::UnknownStage { name: to.clone() })?;
            dag = dag.edge(f, t);
        }
        let graph = dag.build().map_err(|e| graph_build_error(e, &self.names))?;
        let fanouts: Vec<FanOutFn> = (0..graph.blocks())
            .map(|b| {
                let n = graph.fan_targets(b).len();
                match graph.fan_source(b) {
                    Some(s) => fan_out_from_clone(self.names[s].clone(), self.clones[s].clone(), n),
                    None => fan_out_from_clone("input".to_string(), self.entry_clone.clone(), n),
                }
            })
            .collect();
        let keys = vec![None; self.stages.len()];
        let mut spec = PipelineSpec::with_graph(self.specs, graph);
        spec.input_bytes = self.input_bytes;
        spec.source = self.source;
        spec.sink = self.sink;
        Ok(Pipeline {
            spec,
            stages: self.stages,
            keys,
            fanouts,
            session,
            feed: self.feed,
            faults: self.faults,
            _types: PhantomData,
        })
    }
}

/// Maps the graph layer's structural [`GraphError`] (stage *ids*) to
/// the facade's typed [`BuildError`] (stage *names*).
fn graph_build_error(err: GraphError, names: &[String]) -> BuildError {
    match err {
        GraphError::Empty => BuildError::EmptyPipeline,
        GraphError::Cycle { stage } => BuildError::GraphCycle {
            stage: names[stage].clone(),
        },
        GraphError::Unreachable { stage } => BuildError::UnreachableStage {
            stage: names[stage].clone(),
        },
        GraphError::SelfEdge { stage } => BuildError::InvalidEdge {
            detail: format!("stage '{}' feeds itself", names[stage]),
        },
        GraphError::DuplicateEdge { from, to } => BuildError::InvalidEdge {
            detail: format!("edge '{}' → '{}' declared twice", names[from], names[to]),
        },
        GraphError::MultipleExits { exits } => BuildError::InvalidEdge {
            detail: format!(
                "several stages have no consumer: {:?} (a pipeline has one sink)",
                exits.iter().map(|&s| names[s].as_str()).collect::<Vec<_>>()
            ),
        },
        GraphError::StageOutOfRange { stage, stages } => BuildError::InvalidEdge {
            detail: format!("edge names stage {stage}, but only {stages} exist"),
        },
    }
}
