//! Criterion companion to Table 3: planner decision latency.
//!
//! `cargo bench -p adapipe-bench --bench decision`

use adapipe_gridsim::net::{LinkSpec, Topology};
use adapipe_gridsim::rng::unit_at;
use adapipe_mapper::model::PipelineProfile;
use adapipe_mapper::search::{plan, PlannerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &(ns, np) in &[(4usize, 4usize), (8, 8), (16, 16), (32, 32)] {
        let rates: Vec<f64> = (0..np).map(|i| 0.5 + 3.5 * unit_at(7, i as u64)).collect();
        let work: Vec<f64> = (0..ns).map(|s| 0.5 + unit_at(11, s as u64)).collect();
        let profile = PipelineProfile::uniform(work, 50_000);
        let topology = Topology::clustered(np, (np / 4).max(1), LinkSpec::lan(), LinkSpec::wan());
        let cfg = PlannerConfig::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ns}x{np}")),
            &(profile, rates, topology, cfg),
            |b, (profile, rates, topology, cfg)| {
                b.iter(|| plan(profile, rates, topology, cfg));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
