//! The erased item representation for the data plane.
//!
//! Historically items travelled as `Box<dyn Any + Send>`: one heap
//! allocation per item per hop, even for a `u64`. [`Payload`] keeps the
//! same downcast-checked surface but stores values of up to three words
//! (24 bytes on 64-bit, the size of a `String` or `Vec`) **inline** —
//! no allocation at all — and spills larger values to a block drawn
//! from a thread-local size-class pool, so even the spill path stops
//! touching the global allocator in steady state.
//!
//! Safety model: a `Payload` is a type-erased owned value. The static
//! vtable generated per concrete type records how to identify, drop,
//! and (for spilled values) free it; every constructor requires
//! `T: Send + 'static`, which is what makes the manual `Send` impl
//! sound. Spill blocks are sized by *class* (a pure function of the
//! value's layout), so a block may be freed on a different thread than
//! the one that allocated it — each thread's pool recycles whatever
//! lands on it.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::any::TypeId;
use std::cell::RefCell;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};
use std::ptr;

/// Number of machine words stored inline.
const INLINE_WORDS: usize = 3;
const INLINE_BYTES: usize = INLINE_WORDS * size_of::<usize>();

/// True when `T` fits the inline slot (size ≤ 3 words, word-aligned).
const fn fits_inline<T>() -> bool {
    size_of::<T>() <= INLINE_BYTES && align_of::<T>() <= align_of::<usize>()
}

union Repr {
    inline: [MaybeUninit<usize>; INLINE_WORDS],
    spill: *mut u8,
}

/// Per-type operations. One static instance exists per concrete `T`
/// (via const promotion in [`Payload::new`]); `Payload` carries a
/// `&'static` to it, so erased items cost no per-item metadata beyond
/// one pointer.
struct PayloadVtable {
    /// Monomorphised `TypeId::of::<T>` (not const-evaluable, so stored
    /// as a function rather than a value).
    tid: fn() -> TypeId,
    /// Monomorphised `type_name::<T>` for diagnostics.
    type_name: fn() -> &'static str,
    /// Drops the value in place; for spilled values also returns the
    /// block to the pool.
    drop_fn: unsafe fn(&mut Repr),
    /// The value's layout — drives spill-block class selection.
    size: usize,
    align: usize,
    /// True when the value lives in the inline slot.
    inline: bool,
}

struct VtOf<T>(std::marker::PhantomData<T>);

impl<T: Send + 'static> VtOf<T> {
    const VT: PayloadVtable = PayloadVtable {
        tid: TypeId::of::<T>,
        type_name: std::any::type_name::<T>,
        drop_fn: drop_value::<T>,
        size: size_of::<T>(),
        align: align_of::<T>(),
        inline: fits_inline::<T>(),
    };
}

/// Drops the `T` held in `repr`; monomorphisation resolves the branch
/// at compile time.
unsafe fn drop_value<T>(repr: &mut Repr) {
    unsafe {
        if fits_inline::<T>() {
            ptr::drop_in_place(repr.inline.as_mut_ptr() as *mut T);
        } else {
            let block = repr.spill;
            ptr::drop_in_place(block as *mut T);
            spill_dealloc(block, size_of::<T>(), align_of::<T>());
        }
    }
}

/// A type-erased owned value: the unit the data plane moves between
/// stages. Values of at most three words are stored inline (zero
/// allocations); larger values live in a pooled spill block. Construct
/// with [`Payload::new`], consume with [`Payload::downcast`].
pub struct Payload {
    repr: Repr,
    vt: &'static PayloadVtable,
}

// Sound because `Payload::new` requires `T: Send + 'static`: every
// value a Payload can hold is itself Send, and the vtable is a shared
// static.
unsafe impl Send for Payload {}

impl Payload {
    /// Erases `value`. Inline when `T` is at most three words;
    /// otherwise spilled to a pooled block.
    pub fn new<T: Send + 'static>(value: T) -> Payload {
        let vt: &'static PayloadVtable = &VtOf::<T>::VT;
        if fits_inline::<T>() {
            let mut repr = Repr {
                inline: [MaybeUninit::uninit(); INLINE_WORDS],
            };
            unsafe { ptr::write(repr.inline.as_mut_ptr() as *mut T, value) };
            Payload { repr, vt }
        } else {
            let block = spill_alloc(size_of::<T>(), align_of::<T>());
            unsafe { ptr::write(block as *mut T, value) };
            Payload {
                repr: Repr { spill: block },
                vt,
            }
        }
    }

    /// True when the held value is a `T`.
    #[inline]
    pub fn is<T: 'static>(&self) -> bool {
        (self.vt.tid)() == TypeId::of::<T>()
    }

    /// The held value's type name (diagnostics only — not stable).
    pub fn type_name(&self) -> &'static str {
        (self.vt.type_name)()
    }

    /// Takes the value out as a `T`, or hands the payload back intact
    /// if the held type differs. Unlike `Box<dyn Any>::downcast` this
    /// yields the value directly, not a box around it.
    #[inline]
    pub fn downcast<T: 'static>(self) -> Result<T, Payload> {
        if !self.is::<T>() {
            return Err(self);
        }
        let this = ManuallyDrop::new(self);
        unsafe {
            if this.vt.inline {
                Ok(ptr::read(this.repr.inline.as_ptr() as *const T))
            } else {
                let block = this.repr.spill;
                let value = ptr::read(block as *const T);
                spill_dealloc(block, this.vt.size, this.vt.align);
                Ok(value)
            }
        }
    }

    /// Borrows the value as a `T`, if that is what it holds.
    #[inline]
    pub fn downcast_ref<T: 'static>(&self) -> Option<&T> {
        if !self.is::<T>() {
            return None;
        }
        unsafe {
            Some(if self.vt.inline {
                &*(self.repr.inline.as_ptr() as *const T)
            } else {
                &*(self.repr.spill as *const T)
            })
        }
    }

    /// Mutably borrows the value as a `T`, if that is what it holds.
    #[inline]
    pub fn downcast_mut<T: 'static>(&mut self) -> Option<&mut T> {
        if !self.is::<T>() {
            return None;
        }
        unsafe {
            Some(if self.vt.inline {
                &mut *(self.repr.inline.as_mut_ptr() as *mut T)
            } else {
                &mut *(self.repr.spill as *mut T)
            })
        }
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        unsafe { (self.vt.drop_fn)(&mut self.repr) }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Payload")
            .field("type", &self.type_name())
            .field("inline", &self.vt.inline)
            .finish()
    }
}

// --- spill pool ---------------------------------------------------------
//
// Blocks are drawn from power-of-two size classes (32..=1024 bytes,
// 16-byte aligned) kept on capped thread-local free lists. The class —
// and therefore the alloc/dealloc layout — is a pure function of the
// value's layout, so a block may be freed on any thread: it simply
// joins that thread's list. Oversized or over-aligned values bypass the
// pool entirely.

const CLASS_MIN: usize = 32;
const CLASS_MAX: usize = 1024;
const CLASS_ALIGN: usize = 16;
const NUM_CLASSES: usize = 6; // 32, 64, 128, 256, 512, 1024
/// Retained blocks per class per thread (worst case 1024 B × 64 × 6
/// classes ≈ 400 KiB per thread, only if every class saturates).
const PER_CLASS_CAP: usize = 64;

/// The size class of a layout, or `None` when it must bypass the pool.
#[inline]
fn class_of(size: usize, align: usize) -> Option<usize> {
    if size > CLASS_MAX || align > CLASS_ALIGN {
        return None;
    }
    let rounded = size.max(CLASS_MIN).next_power_of_two();
    Some((rounded.trailing_zeros() - CLASS_MIN.trailing_zeros()) as usize)
}

#[inline]
fn class_layout(class: usize) -> Layout {
    // Class sizes/alignments are compile-time valid.
    unsafe { Layout::from_size_align_unchecked(CLASS_MIN << class, CLASS_ALIGN) }
}

struct SpillPool {
    classes: [Vec<*mut u8>; NUM_CLASSES],
}

impl Drop for SpillPool {
    fn drop(&mut self) {
        for (class, list) in self.classes.iter_mut().enumerate() {
            for block in list.drain(..) {
                unsafe { dealloc(block, class_layout(class)) };
            }
        }
    }
}

thread_local! {
    static SPILL_POOL: RefCell<SpillPool> = const {
        RefCell::new(SpillPool {
            classes: [const { Vec::new() }; NUM_CLASSES],
        })
    };
}

fn spill_alloc(size: usize, align: usize) -> *mut u8 {
    let (layout, pooled) = match class_of(size, align) {
        Some(class) => (class_layout(class), Some(class)),
        None => (
            Layout::from_size_align(size.max(1), align).expect("valid value layout"),
            None,
        ),
    };
    if let Some(class) = pooled {
        // `try_with` so a payload created during thread teardown (after
        // the pool's own destructor) still works — it just skips reuse.
        let reused = SPILL_POOL
            .try_with(|pool| pool.borrow_mut().classes[class].pop())
            .ok()
            .flatten();
        if let Some(block) = reused {
            return block;
        }
    }
    let block = unsafe { alloc(layout) };
    if block.is_null() {
        handle_alloc_error(layout);
    }
    block
}

unsafe fn spill_dealloc(block: *mut u8, size: usize, align: usize) {
    match class_of(size, align) {
        Some(class) => {
            let kept = SPILL_POOL
                .try_with(|pool| {
                    let list = &mut pool.borrow_mut().classes[class];
                    if list.len() < PER_CLASS_CAP {
                        list.push(block);
                        true
                    } else {
                        false
                    }
                })
                .unwrap_or(false);
            if !kept {
                unsafe { dealloc(block, class_layout(class)) };
            }
        }
        None => unsafe {
            dealloc(
                block,
                Layout::from_size_align(size.max(1), align).expect("valid value layout"),
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn small_values_round_trip_inline() {
        let p = Payload::new(42u64);
        assert!(p.vt.inline);
        assert!(p.is::<u64>());
        assert_eq!(p.downcast::<u64>().unwrap(), 42);

        let s = Payload::new(String::from("three words"));
        assert!(s.vt.inline, "String is exactly 3 words");
        assert_eq!(s.downcast::<String>().unwrap(), "three words");

        let v = Payload::new(vec![1u8, 2, 3]);
        assert!(v.vt.inline, "Vec is exactly 3 words");
        assert_eq!(v.downcast::<Vec<u8>>().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn large_values_spill_and_round_trip() {
        let big = [7u64; 16]; // 128 bytes — over the inline budget
        let p = Payload::new(big);
        assert!(!p.vt.inline);
        assert_eq!(p.downcast::<[u64; 16]>().unwrap(), big);
    }

    #[test]
    fn over_aligned_values_bypass_the_pool_but_round_trip() {
        #[repr(align(64))]
        #[derive(Clone, Copy, PartialEq, Debug)]
        struct Cacheline([u8; 64]);
        let v = Cacheline([9; 64]);
        let p = Payload::new(v);
        assert!(!p.vt.inline);
        assert_eq!(p.downcast::<Cacheline>().unwrap(), v);
    }

    #[test]
    fn wrong_type_downcast_returns_the_payload_intact() {
        let p = Payload::new(5i32);
        let p = p.downcast::<String>().unwrap_err();
        assert!(p.is::<i32>());
        assert_eq!(p.downcast::<i32>().unwrap(), 5);
    }

    #[test]
    fn refs_borrow_without_consuming() {
        let mut p = Payload::new(vec![1u64, 2]);
        assert_eq!(p.downcast_ref::<Vec<u64>>().unwrap().len(), 2);
        assert!(p.downcast_ref::<u64>().is_none());
        p.downcast_mut::<Vec<u64>>().unwrap().push(3);
        assert_eq!(p.downcast::<Vec<u64>>().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn drop_runs_for_inline_and_spilled_values() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        drop(Payload::new(Probe(Arc::clone(&drops)))); // inline (2 words)
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(Payload::new((Probe(Arc::clone(&drops)), [0u64; 8]))); // spilled
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn spill_blocks_recycle_within_a_thread() {
        // Exercise alloc→free→alloc through the pool; mostly checks for
        // layout mismatches under miri-like scrutiny and double frees.
        for _ in 0..3 {
            let blocks: Vec<Payload> = (0..8).map(|i| Payload::new([i as u64; 8])).collect();
            for (i, b) in blocks.into_iter().enumerate() {
                assert_eq!(b.downcast::<[u64; 8]>().unwrap()[0], i as u64);
            }
        }
    }

    #[test]
    fn payloads_cross_threads() {
        let p = Payload::new([3u64; 8]); // spilled on this thread
        let q = Payload::new(String::from("inline"));
        std::thread::spawn(move || {
            assert_eq!(p.downcast::<[u64; 8]>().unwrap()[0], 3);
            assert_eq!(q.downcast::<String>().unwrap(), "inline");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn debug_names_the_held_type() {
        let p = Payload::new(1u8);
        let s = format!("{p:?}");
        assert!(s.contains("u8"), "{s}");
    }

    #[test]
    fn class_selection_is_a_pure_function_of_layout() {
        assert_eq!(class_of(1, 1), Some(0));
        assert_eq!(class_of(32, 8), Some(0));
        assert_eq!(class_of(33, 8), Some(1));
        assert_eq!(class_of(1024, 16), Some(5));
        assert_eq!(class_of(1025, 8), None);
        assert_eq!(class_of(64, 32), None, "over-aligned bypasses the pool");
    }
}
