//! Ablation A1 — does the NWS ensemble earn its keep?
//!
//! The controller's forecaster is the only component standing between
//! raw availability samples and planning decisions. This ablation
//! re-runs a volatile-grid scenario with each predictor family driving
//! the same controller, measuring end-to-end makespan. The ensemble
//! should match the best individual family without knowing in advance
//! which one that is — that is precisely its job.

use adapipe_bench::{banner, Table};
use adapipe_core::prelude::*;
use adapipe_core::simengine::run as sim_run;
use adapipe_gridsim::prelude::*;
use adapipe_mapper::prelude::*;
use adapipe_monitor::sensor::ForecasterKind;

/// A grid mixing an abrupt step, a square wave, and a random walk — no
/// single predictor family is ideal for all three.
fn volatile_grid(seed: u64) -> GridSpec {
    let nodes = vec![
        Node::new(NodeSpec::new("steady", 1.0, 1), LoadModel::free()),
        Node::new(
            NodeSpec::new("stepper", 1.0, 1),
            LoadModel::step(1.0, 0.15, SimTime::from_secs_f64(60.0)),
        ),
        Node::new(
            NodeSpec::new("waver", 1.0, 1),
            LoadModel::square_wave(
                1.0,
                0.3,
                SimDuration::from_secs(80),
                0.5,
                SimDuration::from_secs(40),
            ),
        ),
        Node::new(
            NodeSpec::new("walker", 1.0, 1),
            LoadModel::random_walk(
                seed,
                0.8,
                0.08,
                SimDuration::from_secs(4),
                0.3,
                1.0,
                SimDuration::from_secs(600),
            ),
        ),
    ];
    GridSpec::new(nodes, Topology::uniform(4, LinkSpec::lan()))
}

fn main() {
    banner(
        "A1 (ablation)",
        "forecaster family driving the controller, volatile 4-node grid",
        "the NWS ensemble sits at or near the best family on every seed; \
         naive persistence over-reacts to the wave, running-mean \
         under-reacts to the step",
    );

    let spec = PipelineSpec::balanced(4, 1.0, 10_000);
    let mapping = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    let items = 500u64;
    let seeds = [3u64, 7, 11];

    let mut table = Table::new(&["forecaster", "seed3(s)", "seed7(s)", "seed11(s)", "mean(s)"]);
    let mut summary: Vec<(String, f64)> = Vec::new();
    for kind in ForecasterKind::all() {
        let mut cells = vec![kind.name().to_string()];
        let mut sum = 0.0;
        for &seed in &seeds {
            let mut cfg = SimConfig {
                items,
                policy: Policy::Periodic {
                    interval: SimDuration::from_secs(5),
                },
                initial_mapping: Some(mapping.clone()),
                ..SimConfig::default()
            };
            cfg.controller.forecaster = kind;
            let report = sim_run(&volatile_grid(seed), &spec, &cfg);
            let s = report.makespan.as_secs_f64();
            sum += s;
            cells.push(format!("{s:.1}"));
        }
        let mean = sum / seeds.len() as f64;
        cells.push(format!("{mean:.1}"));
        summary.push((kind.name().to_string(), mean));
        table.row(cells);
    }
    table.print();

    let best = summary
        .iter()
        .map(|&(_, m)| m)
        .fold(f64::INFINITY, f64::min);
    let ensemble = summary
        .iter()
        .find(|(n, _)| n == "nws_ensemble")
        .map(|&(_, m)| m)
        .expect("ensemble row present");
    println!(
        "ensemble mean {:.1}s vs best family {:.1}s ({:+.1}%)",
        ensemble,
        best,
        (ensemble / best - 1.0) * 100.0
    );
}
