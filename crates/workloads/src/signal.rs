//! A signal-processing pipeline: FIR filter chain over sample frames.
//!
//! The second domain workload: frames of `f64` samples pass through a
//! chain of finite-impulse-response filters, then a power detector.
//! All arithmetic is real; frames are deterministic per index.

use adapipe_core::pipeline::{Pipeline, PipelineBuilder};
use adapipe_core::spec::StageSpec;
use adapipe_gridsim::rng::{mix, unit_f64};

/// A frame of time-domain samples.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// The samples.
    pub samples: Vec<f64>,
}

impl Frame {
    /// Deterministic synthetic frame: two tones plus uniform noise.
    pub fn synthetic(len: usize, index: u64) -> Self {
        assert!(len > 0, "frame must be non-empty");
        let samples = (0..len)
            .map(|i| {
                let t = i as f64 / len as f64;
                let noise = unit_f64(mix(index, i as u64)) - 0.5;
                (std::f64::consts::TAU * 5.0 * t).sin()
                    + 0.5 * (std::f64::consts::TAU * 50.0 * t).sin()
                    + 0.1 * noise
            })
            .collect();
        Frame { samples }
    }

    /// Bytes occupied by the samples.
    pub fn byte_size(&self) -> u64 {
        (self.samples.len() * 8) as u64
    }

    /// Mean signal power.
    pub fn power(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s * s).sum::<f64>() / self.samples.len() as f64
    }
}

/// Applies a FIR filter (direct convolution, same-length output,
/// zero-padded history).
pub fn fir(frame: &Frame, taps: &[f64]) -> Frame {
    assert!(!taps.is_empty(), "filter needs at least one tap");
    let n = frame.samples.len();
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &tap) in taps.iter().enumerate() {
            if i >= k {
                acc += tap * frame.samples[i - k];
            }
        }
        *o = acc;
    }
    Frame { samples: out }
}

/// A windowed-sinc low-pass filter with `taps` coefficients and
/// normalised cutoff `fc ∈ (0, 0.5)`.
pub fn lowpass_taps(taps: usize, fc: f64) -> Vec<f64> {
    assert!(taps >= 3 && taps % 2 == 1, "need an odd tap count ≥ 3");
    assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5)");
    let m = (taps - 1) as f64;
    let mut h: Vec<f64> = (0..taps)
        .map(|i| {
            let x = i as f64 - m / 2.0;
            let sinc = if x == 0.0 {
                2.0 * fc
            } else {
                (std::f64::consts::TAU * fc * x).sin() / (std::f64::consts::PI * x)
            };
            // Hamming window.
            let w = 0.54 - 0.46 * (std::f64::consts::TAU * i as f64 / m).cos();
            sinc * w
        })
        .collect();
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

/// Builds the 4-stage signal pipeline for frames of `frame_len` samples:
/// low-pass → decimate ×2 → band emphasis → power detect.
pub fn signal_pipeline(frame_len: usize) -> Pipeline<Frame, f64> {
    let bytes = (frame_len * 8) as u64;
    let lp = lowpass_taps(63, 0.1);
    let hp: Vec<f64> = {
        // Spectral inversion of a low-pass = crude high-pass emphasis.
        let mut t = lowpass_taps(31, 0.2);
        for (i, v) in t.iter_mut().enumerate() {
            *v = -*v;
            if i == 15 {
                *v += 1.0;
            }
        }
        t
    };
    PipelineBuilder::<Frame>::new()
        .input_bytes(bytes)
        .stage(
            StageSpec::balanced("lowpass", 2.0, bytes),
            move |f: Frame| fir(&f, &lp),
        )
        .stage(
            StageSpec::balanced("decimate", 0.2, bytes / 2),
            |f: Frame| Frame {
                samples: f.samples.iter().step_by(2).copied().collect(),
            },
        )
        .stage(
            StageSpec::balanced("emphasis", 1.0, bytes / 2),
            move |f: Frame| fir(&f, &hp),
        )
        .stage(StageSpec::balanced("power", 0.1, 8), |f: Frame| f.power())
        .build()
}

/// Generates `n` synthetic frames of `len` samples.
pub fn frames(len: usize, n: u64) -> Vec<Frame> {
    (0..n).map(|i| Frame::synthetic(len, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_frames_are_deterministic() {
        assert_eq!(Frame::synthetic(64, 1), Frame::synthetic(64, 1));
        assert_ne!(Frame::synthetic(64, 1), Frame::synthetic(64, 2));
    }

    #[test]
    fn identity_filter_is_identity() {
        let f = Frame::synthetic(32, 0);
        let out = fir(&f, &[1.0]);
        assert_eq!(out, f);
    }

    #[test]
    fn lowpass_attenuates_high_frequency() {
        let taps = lowpass_taps(63, 0.05);
        // Pure high-frequency tone (period 4 samples).
        let hi = Frame {
            samples: (0..256)
                .map(|i| (std::f64::consts::TAU * i as f64 / 4.0).sin())
                .collect(),
        };
        // Pure low-frequency tone (period 128 samples).
        let lo = Frame {
            samples: (0..256)
                .map(|i| (std::f64::consts::TAU * i as f64 / 128.0).sin())
                .collect(),
        };
        let hi_out = fir(&hi, &taps).power();
        let lo_out = fir(&lo, &taps).power();
        assert!(
            hi_out < lo_out * 0.05,
            "high tone must be attenuated: hi={hi_out:.4}, lo={lo_out:.4}"
        );
    }

    #[test]
    fn lowpass_taps_sum_to_one() {
        let taps = lowpass_taps(31, 0.1);
        let sum: f64 = taps.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decimation_halves_length() {
        let p = signal_pipeline(128);
        let (_, mut stages) = p.into_parts();
        let mut item: adapipe_core::stage::BoxedItem =
            adapipe_core::payload::Payload::new(Frame::synthetic(128, 0));
        item = stages[0].process(item).expect("stages are type-aligned");
        item = stages[1].process(item).expect("stages are type-aligned");
        let decimated = item.downcast::<Frame>().unwrap();
        assert_eq!(decimated.samples.len(), 64);
    }

    #[test]
    fn pipeline_produces_finite_power() {
        let p = signal_pipeline(128);
        let (_, mut stages) = p.into_parts();
        let mut item: adapipe_core::stage::BoxedItem =
            adapipe_core::payload::Payload::new(Frame::synthetic(128, 3));
        for s in &mut stages {
            item = s.process(item).expect("stages are type-aligned");
        }
        let power = item.downcast::<f64>().unwrap();
        assert!(power.is_finite() && power >= 0.0);
    }

    #[test]
    fn power_of_silence_is_zero() {
        let f = Frame {
            samples: vec![0.0; 64],
        };
        assert_eq!(f.power(), 0.0);
    }

    #[test]
    #[should_panic(expected = "odd tap count")]
    fn even_tap_count_rejected() {
        let _ = lowpass_taps(32, 0.1);
    }
}
