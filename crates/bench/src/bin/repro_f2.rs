//! Figure 2 — completion time vs stream length.
//!
//! Closed streams of N items on the hetero8 testbed (random-walk
//! background load plus a mid-run slowdown of the fastest node).
//! Adaptation costs a fixed overhead per re-mapping, so its advantage
//! must *grow* with N as the cost amortises.

use adapipe_bench::{banner, Table};
use adapipe_core::prelude::*;
use adapipe_core::simengine::run as sim_run;
use adapipe_gridsim::prelude::*;

fn main() {
    banner(
        "F2",
        "completion time vs stream length N (hetero8, dynamic load)",
        "adaptive tracks oracle within a small factor and beats static by \
         a margin that grows with N",
    );

    let interval = SimDuration::from_secs(5);
    let seed = 9;
    let spec = PipelineSpec::balanced(4, 2.0, 100_000);

    let mk_grid = || {
        let mut grid = testbed_hetero8(seed);
        FaultPlan::new()
            .slowdown(
                NodeId(0),
                SimTime::from_secs_f64(50.0),
                SimTime::from_secs_f64(1e6),
                0.10,
            )
            .apply(&mut grid);
        grid
    };

    let mut table = Table::new(&[
        "N",
        "static(s)",
        "adaptive(s)",
        "oracle(s)",
        "adapt/static",
        "adapt/oracle",
        "remaps",
    ]);
    for n in [100u64, 200, 400, 800, 1600, 3200] {
        let run = |policy: Policy| {
            sim_run(
                &mk_grid(),
                &spec,
                &SimConfig {
                    items: n,
                    policy,
                    ..SimConfig::default()
                },
            )
        };
        let static_r = run(Policy::Static);
        let adaptive_r = run(Policy::Periodic { interval });
        let oracle_r = run(Policy::Oracle { interval });
        table.row(vec![
            n.to_string(),
            format!("{:.1}", static_r.makespan.as_secs_f64()),
            format!("{:.1}", adaptive_r.makespan.as_secs_f64()),
            format!("{:.1}", oracle_r.makespan.as_secs_f64()),
            format!(
                "{:.3}",
                adaptive_r.makespan.as_secs_f64() / static_r.makespan.as_secs_f64()
            ),
            format!(
                "{:.3}",
                adaptive_r.makespan.as_secs_f64() / oracle_r.makespan.as_secs_f64()
            ),
            adaptive_r.adaptation_count().to_string(),
        ]);
    }
    table.print();
}
