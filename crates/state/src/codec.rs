//! Dependency-free, deterministic state encoding.
//!
//! Stage state must cross a byte boundary to migrate, and the repo is
//! deliberately free of external crates, so this module is the codec:
//! fixed-width little-endian scalars, length-prefixed sequences, and
//! key-sorted maps. Determinism is a requirement, not a nicety — the
//! cross-backend parity tests compare snapshots produced on different
//! hosts, so the same logical state must always encode to the same
//! bytes (which is why map entries are sorted, never iteration-ordered).

use std::collections::HashMap;
use std::hash::Hash;

/// Byte encoding for migratable stage state.
///
/// `decode` consumes from `pos` and returns `None` on malformed input
/// (truncation, bad tags) rather than panicking: a corrupt snapshot
/// must surface as a failed restore, not a poisoned worker.
pub trait StateCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value starting at `pos`, advancing it past the bytes
    /// consumed.
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a buffer produced by [`StateCodec::to_bytes`], rejecting
    /// trailing garbage.
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0;
        let value = Self::decode(bytes, &mut pos)?;
        (pos == bytes.len()).then_some(value)
    }
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let end = pos.checked_add(n)?;
    let slice = bytes.get(*pos..end)?;
    *pos = end;
    Some(slice)
}

macro_rules! fixed_int {
    ($($t:ty),*) => {$(
        impl StateCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
                let raw = take(bytes, pos, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(raw.try_into().ok()?))
            }
        }
    )*};
}

fixed_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl StateCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        usize::try_from(u64::decode(bytes, pos)?).ok()
    }
}

impl StateCodec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        Some(f64::from_le_bytes(take(bytes, pos, 8)?.try_into().ok()?))
    }
}

impl StateCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        match take(bytes, pos, 1)?[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl StateCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let len = usize::decode(bytes, pos)?;
        String::from_utf8(take(bytes, pos, len)?.to_vec()).ok()
    }
}

impl<T: StateCodec> StateCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let len = usize::decode(bytes, pos)?;
        // Guard against a hostile length prefix before allocating.
        if len > bytes.len().saturating_sub(*pos) {
            return None;
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(bytes, pos)?);
        }
        Some(items)
    }
}

impl<T: StateCodec> StateCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        match take(bytes, pos, 1)?[0] {
            0 => Some(None),
            1 => Some(Some(T::decode(bytes, pos)?)),
            _ => None,
        }
    }
}

impl<K, V> StateCodec for HashMap<K, V>
where
    K: StateCodec + Eq + Hash + Ord + Clone,
    V: StateCodec,
{
    fn encode(&self, out: &mut Vec<u8>) {
        // Sorted by key: the same logical map always encodes to the
        // same bytes regardless of hasher seed or insertion order.
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        self.len().encode(out);
        for key in keys {
            key.encode(out);
            self[key].encode(out);
        }
    }
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let len = usize::decode(bytes, pos)?;
        if len > bytes.len().saturating_sub(*pos) {
            return None;
        }
        let mut map = HashMap::with_capacity(len);
        for _ in 0..len {
            let key = K::decode(bytes, pos)?;
            let value = V::decode(bytes, pos)?;
            map.insert(key, value);
        }
        Some(map)
    }
}

impl<A: StateCodec, B: StateCodec> StateCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        Some((A::decode(bytes, pos)?, B::decode(bytes, pos)?))
    }
}

impl<A: StateCodec, B: StateCodec, C: StateCodec> StateCodec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        Some((
            A::decode(bytes, pos)?,
            B::decode(bytes, pos)?,
            C::decode(bytes, pos)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: StateCodec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes), Some(value));
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(3.25f64);
        round_trip(true);
        round_trip(usize::MAX);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(String::from("session-äß"));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Some((7u64, String::from("x"))));
        round_trip(Option::<u64>::None);
        let mut map = HashMap::new();
        map.insert(9u64, (3u64, 1.5f64));
        map.insert(2u64, (1u64, -0.5f64));
        round_trip(map);
    }

    #[test]
    fn map_encoding_is_deterministic() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0..64u64 {
            a.insert(k, k * 3);
        }
        for k in (0..64u64).rev() {
            b.insert(k, k * 3);
        }
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = vec![5u64, 6].to_bytes();
        assert_eq!(Vec::<u64>::from_bytes(&bytes[..bytes.len() - 1]), None);
        // A hostile length prefix must not allocate or panic.
        let huge = u64::MAX.to_bytes();
        assert_eq!(Vec::<u64>::from_bytes(&huge), None);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = 7u64.to_bytes();
        bytes.push(0);
        assert_eq!(u64::from_bytes(&bytes), None);
    }
}
