//! Genuine contention demo: the pipeline shares the machine with a real
//! CPU-burning "other grid user", not a synthetic schedule.
//!
//! A background [`LoadInjector`] saturates cores halfway through the
//! run; the adaptive controller (which only sees its own measurements)
//! keeps the pipeline moving.
//!
//! Run with: `cargo run --release --example loaded_host`

use adapipe::prelude::*;
use std::time::Duration;

fn main() {
    let spec = synthetic_spec(3, CostShape::Balanced, 1.0, 0, 0.2, 42);
    let items = synth_items(&spec, 150, 0.004); // ~4 ms per stage per item
    let pipeline = PipelineBuilder::from_pipeline(synth_pipeline(&spec))
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(300),
        })
        .feed(move |i| items[i as usize].clone())
        .build()
        .expect("a valid pipeline");

    let vnodes = vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1"),
        VNodeSpec::free("v2"),
    ];

    println!("== 3-stage spin pipeline, 150 items, real CPU contention ==");
    println!("starting 2 burner threads at 80% duty after ~0.6s...\n");

    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(600));
        let injector = LoadInjector::start(2, 0.8);
        std::thread::sleep(Duration::from_secs(2));
        injector.stop();
    });

    let outcome = pipeline
        .run(
            Backend::Threads(vnodes),
            RunConfig {
                items: 150,
                ..RunConfig::default()
            },
        )
        .expect("a compatible backend");
    handle.join().expect("injector thread");

    let report = outcome.report();
    println!(
        "completed {} items in {:.2}s ({:.1} items/s)",
        report.completed,
        report.makespan.as_secs_f64(),
        report.mean_throughput(),
    );
    println!("re-mappings: {}", report.adaptation_count());
    println!("final mapping: {}", report.final_mapping);
    println!("\nthroughput timeline (500 ms buckets):");
    for (t, rate) in report.timeline.series() {
        let bar: String = std::iter::repeat_n('#', (rate / 4.0).round() as usize).collect();
        println!("  t={:>5.2}s {:>6.1} it/s |{bar}", t.as_secs_f64(), rate);
    }
    println!("\nNote: with real contention the OS scheduler spreads the pain");
    println!("across all vnodes (they share cores), so unlike the synthetic-");
    println!("schedule experiments the controller may correctly decide that");
    println!("no re-mapping helps — every node is equally slow.");
}
