//! Multi-tenant pool efficiency: four concurrent sessions sharing one
//! worker pool versus a single session owning it, at the same total
//! item count. Perfect multi-tenancy would make the 4-session aggregate
//! match the single-session rate (the pool is the bottleneck, not the
//! tenancy machinery); the CI gate asserts the aggregate keeps >= 0.8x
//! the single-session pool efficiency and reports the literal
//! 4-session/1-session throughput ratio.
//!
//! `cargo bench -p adapipe-bench --bench cluster`
//!
//! Regenerate the committed baseline with:
//! `ADAPIPE_BENCH_JSON=$PWD/BENCH_cluster.json \
//!     cargo bench -p adapipe-bench --bench cluster`

use adapipe::api::{
    Backend, Cluster, ClusterConfig, Pipeline, RunConfig, SessionConfig, ShareQuota,
};
use adapipe_engine::vnode::VNodeSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Total items per measured run, identical in both scenarios so the
/// mean times divide into a pool-efficiency ratio directly.
const TOTAL: u64 = 100_000;
const TENANTS: u64 = 4;

/// Trivial stages: all plumbing, no work, so the numbers isolate the
/// tenancy machinery (per-tenant lanes, arbiter, shared inboxes).
fn pipeline() -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage("inc", |x: u64| x + 1)
        .stage("double", |x: u64| x * 2)
        .build()
        .expect("valid pipeline")
}

fn vnodes() -> Vec<VNodeSpec> {
    vec![VNodeSpec::free("v0"), VNodeSpec::free("v1")]
}

fn cfg(items: u64) -> RunConfig {
    RunConfig {
        items,
        batch_size: 256,
        ..RunConfig::default()
    }
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    // Both scenarios run against a persistent, warm pool — the
    // cluster's reason to exist — so the measured cost is admission +
    // serving + drain, not worker-thread launch and teardown.
    for tenants in [1u64, TENANTS] {
        let name = if tenants == 1 {
            "threads_single_session"
        } else {
            "threads_quad_session"
        };
        group.bench_with_input(BenchmarkId::new(name, TOTAL), &TOTAL, |b, &total| {
            let mut cluster = Cluster::new(Backend::Threads(vnodes()), ClusterConfig::default())
                .expect("cluster launches");
            let per = total / tenants;
            b.iter(|| {
                let mut sessions: Vec<_> = (0..tenants)
                    .map(|_| {
                        cluster
                            .admit(
                                pipeline(),
                                SessionConfig {
                                    run: cfg(per),
                                    quota: ShareQuota::default(),
                                },
                            )
                            .expect("tenant admitted")
                    })
                    .collect();
                // Interleave tenant pushes in envelope-sized chunks so
                // the pool serves every tenant concurrently through the
                // weighted-fair lanes.
                let mut next = 0u64;
                while next < per {
                    let hi = (next + 4096).min(per);
                    for session in sessions.iter_mut() {
                        session.push_batch(next..hi).unwrap();
                    }
                    next = hi;
                }
                let handles: Vec<_> = sessions.into_iter().map(|s| s.drain()).collect();
                for handle in &handles {
                    assert_eq!(handle.report.completed, per, "tenant lost items");
                }
                handles
            });
            cluster.shutdown();
        });
    }

    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
