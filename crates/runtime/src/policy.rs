//! Adaptation policies: when the controller wakes up and what it may see.

use adapipe_gridsim::time::SimDuration;

/// When and how the pipeline adapts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// Never adapt: the launch-time mapping runs to completion. The
    /// baseline every grid scheduler without run-time support provides.
    Static,
    /// Re-plan every `interval` using *forecast* availability from the
    /// monitoring subsystem — the paper's adaptive pattern.
    Periodic {
        /// Time between adaptation checks.
        interval: SimDuration,
    },
    /// Sample every `interval`, but only re-plan when observed throughput
    /// drops below `degradation` × the model's expectation — saves
    /// planning work on calm grids.
    Reactive {
        /// Time between observation samples.
        interval: SimDuration,
        /// Re-plan when `observed < degradation × expected` (e.g. `0.8`).
        degradation: f64,
    },
    /// Re-plan every `interval` using the *true* mean availability over
    /// the next interval (simulation-only clairvoyance). Upper-bounds
    /// what any forecast-driven controller could achieve at the same
    /// adaptation granularity.
    Oracle {
        /// Time between adaptation checks.
        interval: SimDuration,
    },
}

impl Policy {
    /// The canonical adaptive policy with a 5 s period.
    pub fn periodic_default() -> Self {
        Policy::Periodic {
            interval: SimDuration::from_secs(5),
        }
    }

    /// The sampling interval, or `None` for [`Policy::Static`].
    pub fn interval(&self) -> Option<SimDuration> {
        match *self {
            Policy::Static => None,
            Policy::Periodic { interval }
            | Policy::Reactive { interval, .. }
            | Policy::Oracle { interval } => Some(interval),
        }
    }

    /// True if this policy may ever change the mapping.
    pub fn is_adaptive(&self) -> bool {
        !matches!(self, Policy::Static)
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Static => "static",
            Policy::Periodic { .. } => "adaptive",
            Policy::Reactive { .. } => "reactive",
            Policy::Oracle { .. } => "oracle",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_only_for_adaptive_policies() {
        assert_eq!(Policy::Static.interval(), None);
        assert_eq!(
            Policy::Periodic {
                interval: SimDuration::from_secs(3)
            }
            .interval(),
            Some(SimDuration::from_secs(3))
        );
        assert!(Policy::Oracle {
            interval: SimDuration::from_secs(1)
        }
        .interval()
        .is_some());
    }

    #[test]
    fn adaptivity_flags() {
        assert!(!Policy::Static.is_adaptive());
        assert!(Policy::periodic_default().is_adaptive());
        assert!(Policy::Reactive {
            interval: SimDuration::from_secs(1),
            degradation: 0.8
        }
        .is_adaptive());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Policy::Static.name(), "static");
        assert_eq!(Policy::periodic_default().name(), "adaptive");
        assert_eq!(
            Policy::Oracle {
                interval: SimDuration::from_secs(1)
            }
            .name(),
            "oracle"
        );
    }
}
