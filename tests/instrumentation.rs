//! Integration tests for self-instrumentation: the skeleton's measured
//! service times must agree with the physics it simulates — the property
//! that makes "plan from your own measurements" sound at all.

use adapipe::core::pipeline::PipelineBuilder;
use adapipe::core::simengine::run as sim_run;
use adapipe::engine::exec::execute as run_pipeline;
use adapipe::prelude::*;

#[test]
fn measured_service_times_match_configuration() {
    // Stage works 1, 2, 3 on unit-speed free nodes: mean service must be
    // 1 s, 2 s, 3 s.
    let grid = testbed_small3();
    let spec = PipelineSpec::new(vec![
        StageSpec::balanced("s0", 1.0, 0),
        StageSpec::balanced("s1", 2.0, 0),
        StageSpec::balanced("s2", 3.0, 0),
    ]);
    let report = sim_run(
        &grid,
        &spec,
        &SimConfig {
            items: 100,
            initial_mapping: Some(Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)])),
            ..SimConfig::default()
        },
    );
    for (s, want) in [(0usize, 1.0f64), (1, 2.0), (2, 3.0)] {
        let stats = report.stage_metrics.stage(s);
        assert_eq!(stats.count(), 100);
        let mean = stats.mean_service().unwrap().as_secs_f64();
        assert!(
            (mean - want).abs() < 1e-6,
            "stage {s}: measured {mean}, expected {want}"
        );
    }
    assert_eq!(report.stage_metrics.bottleneck_stage(), Some(2));
}

#[test]
fn measured_effective_rate_reflects_background_load() {
    // One stage on a node at 40 % availability: effective rate must be
    // measured as ≈ 0.4 work units per busy second.
    let mut grid = testbed_small3();
    grid.set_load(NodeId(0), LoadModel::constant(0.4));
    let spec = PipelineSpec::balanced(1, 1.0, 0);
    let report = sim_run(
        &grid,
        &spec,
        &SimConfig {
            items: 50,
            initial_mapping: Some(Mapping::from_assignment(&[NodeId(0)])),
            ..SimConfig::default()
        },
    );
    let rate = report.stage_metrics.stage(0).effective_rate().unwrap();
    assert!((rate - 0.4).abs() < 1e-6, "measured rate {rate}");
}

#[test]
fn threaded_engine_reports_stage_metrics() {
    let pipeline = PipelineBuilder::<u64>::new()
        .stage(StageSpec::balanced("spin", 0.004, 8), |x: u64| {
            spin_for(std::time::Duration::from_millis(4));
            x
        })
        .build();
    let cfg = EngineConfig::new(vec![VNodeSpec::free("v0")]);
    let outcome = run_pipeline(pipeline, (0..30).collect(), &cfg);
    let stats = outcome.report.stage_metrics.stage(0);
    assert_eq!(stats.count(), 30);
    let mean_ms = stats.mean_service().unwrap().as_secs_f64() * 1e3;
    assert!(
        (4.0..50.0).contains(&mean_ms),
        "wall service {mean_ms:.1} ms for a 4 ms spin"
    );
}

#[test]
fn slowdown_is_visible_in_measured_service() {
    // Same 3 ms spin on a free vs a 25 %-speed vnode: the measured mean
    // service time must reflect the compensating sleep.
    let mk = || {
        PipelineBuilder::<u64>::new()
            .stage(StageSpec::balanced("spin", 0.003, 8), |x: u64| {
                spin_for(std::time::Duration::from_millis(3));
                x
            })
            .build()
    };
    let fast_cfg = EngineConfig::new(vec![VNodeSpec::free("fast")]);
    let slow_cfg = EngineConfig::new(vec![VNodeSpec::with_speed("slow", 0.25)]);
    let fast = run_pipeline(mk(), (0..20).collect(), &fast_cfg);
    let slow = run_pipeline(mk(), (0..20).collect(), &slow_cfg);
    let fast_mean = fast.report.stage_metrics.stage(0).mean_service().unwrap();
    let slow_mean = slow.report.stage_metrics.stage(0).mean_service().unwrap();
    let ratio = slow_mean.as_secs_f64() / fast_mean.as_secs_f64();
    assert!(
        ratio > 2.5,
        "quarter speed should inflate service ~4x, measured {ratio:.2}x"
    );
}
