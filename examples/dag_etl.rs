//! DAG ETL: a diamond topology with per-stage resilience.
//!
//! The pipeline is a general DAG, not a chain:
//!
//! ```text
//! fetch ─┬─ parse ─┐
//!        └─ audit ─┴─ combine → sink
//! ```
//!
//! `parse` is deliberately unreliable: some records glitch *once* and
//! succeed when re-presented (a transient fault, absorbed by the retry
//! budget), and a few are structurally malformed and fail every attempt
//! (poison, diverted to the dead-letter channel instead of failing the
//! run). The stage's [`ResiliencePolicy`] declares both behaviours —
//! two retries with exponential backoff, dead-letter diversion, and
//! per-hop tracing — and the run report accounts for every retry and
//! diversion.
//!
//! Run with: `cargo run --release --example dag_etl`

use adapipe::prelude::*;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

const ITEMS: u64 = 120;

fn main() {
    // Records glitch transiently when their payload ends in 4 (12 of
    // 120), and are malformed beyond repair when payload % 40 == 7
    // (3 of 120). The sets are disjoint.
    let glitched: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let pipeline = Pipeline::<u64>::dag()
        .node("fetch", |x: u64| x + 1)
        .try_node("parse", move |v: u64| {
            if v % 40 == 7 {
                return Err(format!("malformed record {v}"));
            }
            if v % 10 == 4 && glitched.lock().unwrap().insert(v) {
                return Err(format!("transient glitch on record {v}"));
            }
            Ok(v * 10)
        })
        .resilience(
            ResiliencePolicy::new()
                .retries(2)
                .backoff(SimDuration::from_millis(1), 2.0)
                .dead_letter()
                .trace(),
        )
        .node("audit", |v: u64| v + 100)
        .edge("fetch", "parse")
        .edge("fetch", "audit")
        .join(
            "combine",
            |outs: Vec<u64>| outs[0] + outs[1],
            &["parse", "audit"],
        )
        .node("sink", |x: u64| x)
        .edge("combine", "sink")
        .build::<u64>()
        .expect("the diamond is a valid DAG");

    let vnodes = (0..3).map(|i| VNodeSpec::free(format!("v{i}"))).collect();
    let mut session = pipeline
        .spawn(
            Backend::Threads(vnodes),
            RunConfig {
                items: ITEMS,
                ..RunConfig::default()
            },
        )
        .expect("spawn");
    let events = session.events();
    for i in 0..ITEMS {
        session.push(i).unwrap();
    }
    let handle = session.drain();
    let report = &handle.report;

    // 3 poison records diverted; everything else delivered exactly once,
    // in order, with both branches merged.
    let expected: Vec<u64> = (0..ITEMS)
        .map(|x| x + 1)
        .filter(|v| v % 40 != 7)
        .map(|v| v * 10 + v + 100)
        .collect();
    assert!(handle.error.is_none(), "run failed: {:?}", handle.error);
    assert_eq!(report.completed, ITEMS - 3);
    assert_eq!(handle.outputs, expected, "healthy records must survive");
    assert_eq!(report.dead_letters, 3, "3 malformed records diverted");
    // 12 transient glitches × 1 recovery retry + 3 poison × 2 retries.
    assert_eq!(report.retries, 12 + 6, "every retry is accounted");
    for dead in &report.dead_letter_log {
        assert_eq!(dead.stage, 1, "only parse gives up on items");
        assert_eq!(dead.attempts, 3, "first try + two retries");
        assert!(dead.reason.contains("malformed"), "reason: {}", dead.reason);
    }

    // The trace policy emitted one ItemTrace per settled parse hop;
    // recovered items show their extra attempts.
    let mut traced = 0u64;
    let mut recovered = 0u64;
    let mut diverted = 0u64;
    for event in events.try_iter() {
        match event {
            RunEvent::ItemTrace {
                stage: 1, attempts, ..
            } => {
                traced += 1;
                if attempts > 1 {
                    recovered += 1;
                }
            }
            RunEvent::ItemDeadLettered { .. } => diverted += 1,
            _ => {}
        }
    }
    assert_eq!(traced, ITEMS - 3, "one trace per successful parse");
    assert_eq!(recovered, 12, "every transient glitch recovered");
    assert_eq!(diverted, 3, "every poison record announced");

    println!("== DAG ETL: diamond topology with a flaky parse stage ==\n");
    println!("records pushed        {ITEMS}");
    println!("records delivered     {}", report.completed);
    println!(
        "transient recoveries  {recovered} (via {} retries)",
        report.retries
    );
    println!("dead-lettered         {}", report.dead_letters);
    for dead in &report.dead_letter_log {
        println!(
            "  seq {:>3}  after {} attempts: {}",
            dead.seq, dead.attempts, dead.reason
        );
    }
    println!(
        "\nThe dead-letter channel keeps poison out of the output stream\n\
         without failing the run; the retry budget absorbs transient\n\
         faults entirely — and the report accounts for every attempt."
    );
}
