//! Table 3 — adaptation overhead: what one planning cycle costs.
//!
//! Wall-times the full planner (model + search + replication pass) over
//! instance sizes from 4×4 to 32×32 (stages × processors), reporting the
//! strategy chosen and mean decision time. The claim to validate:
//! decisions are *orders of magnitude* cheaper than the adaptation
//! period (seconds), so adaptation overhead is negligible.

use adapipe_bench::{banner, fmt_secs, time_mean, Table};
use adapipe_gridsim::prelude::*;
use adapipe_gridsim::rng::unit_at;
use adapipe_mapper::prelude::*;

fn main() {
    banner(
        "T3",
        "planner decision cost vs instance size",
        "sub-millisecond for exhaustive instances and well below the 5 s \
         adaptation period through 16x16; the 32x32 corner approaches \
         period scale, motivating longer periods on very large grids",
    );

    let mut table = Table::new(&[
        "Ns",
        "Np",
        "assignments",
        "strategy",
        "mean decision",
        "per period %",
    ]);
    let period_s = 5.0;

    for &ns in &[4usize, 8, 16, 32] {
        for &np in &[4usize, 8, 16, 32] {
            // Heterogeneous rates + mild work skew for realism.
            let rates: Vec<f64> = (0..np).map(|i| 0.5 + 3.5 * unit_at(7, i as u64)).collect();
            let work: Vec<f64> = (0..ns).map(|s| 0.5 + unit_at(11, s as u64)).collect();
            let profile = PipelineProfile::uniform(work, 50_000);
            let topology =
                Topology::clustered(np, (np / 4).max(1), LinkSpec::lan(), LinkSpec::wan());
            let cfg = PlannerConfig::default();

            // Warm-up + strategy probe.
            let probe = plan(&profile, &rates, &topology, &cfg);
            let iters = if probe.strategy == Strategy::Exhaustive {
                20
            } else {
                5
            };
            let mean = time_mean(iters, || {
                std::hint::black_box(plan(&profile, &rates, &topology, &cfg));
            });

            let count = assignment_count(ns, np)
                .map(|c| c.to_string())
                .unwrap_or_else(|| ">u64".to_string());
            table.row(vec![
                ns.to_string(),
                np.to_string(),
                count,
                format!("{:?}", probe.strategy),
                fmt_secs(mean),
                format!("{:.3}", mean / period_s * 100.0),
            ]);
        }
    }
    table.print();
    println!("`per period %` = decision time as a share of a 5 s adaptation period");
}
