//! Quickstart: the adaptive pipeline in 60 lines, on the unified API.
//!
//! Simulates a 4-stage pipeline on the heterogeneous 8-node testbed,
//! injects a load spike on one of the hosts mid-run, and compares the
//! static mapping (chosen once at launch) against the adaptive pattern.
//!
//! Run with: `cargo run --release --example quickstart`

use adapipe::prelude::*;

fn main() {
    // A grid of 8 heterogeneous nodes (speeds 0.5×–3×), two LAN clusters
    // joined by a WAN link, with background load on the odd nodes.
    let mut grid = testbed_hetero8(7);

    // Worsen things mid-run: node 0 (the fastest) drops to 10 %
    // availability at t = 60 s — "another grid user's job arrived".
    FaultPlan::new()
        .slowdown(
            NodeId(0),
            SimTime::from_secs_f64(60.0),
            SimTime::from_secs_f64(100_000.0),
            0.10,
        )
        .apply(&mut grid);

    // A 4-stage pipeline: every stage costs ~2 work units per item and
    // forwards 64 KiB to its successor. One program, built per policy,
    // validated at build() time, run on the simulation backend.
    let run_with = |policy: Policy| {
        PipelineBuilder::from_spec(PipelineSpec::balanced(4, 2.0, 64 << 10))
            .policy(policy)
            .build()
            .expect("a valid pipeline")
            .run(
                Backend::Sim(&grid),
                RunConfig {
                    items: 500,
                    ..RunConfig::default()
                },
            )
            .expect("a compatible backend")
            .report
    };

    let static_report = run_with(Policy::Static);
    let adaptive_report = run_with(Policy::Periodic {
        interval: SimDuration::from_secs(5),
    });

    println!("== adapipe quickstart: 500 items, load spike at t=60s ==\n");
    for (name, report) in [("static", &static_report), ("adaptive", &adaptive_report)] {
        println!(
            "{name:>8}: makespan {:>8.1}s | mean throughput {:>5.2} items/s | re-mappings {}",
            report.makespan.as_secs_f64(),
            report.mean_throughput(),
            report.adaptation_count(),
        );
    }
    for event in &adaptive_report.adaptations {
        println!(
            "\nadaptation at t={:.0}s: {} -> {} (predicted speedup {:.2}x, cost {:.2}s)",
            event.at.as_secs_f64(),
            event.from,
            event.to,
            event.predicted_speedup,
            event.migration_cost.as_secs_f64(),
        );
    }
    let gain = static_report.makespan.as_secs_f64() / adaptive_report.makespan.as_secs_f64();
    println!("\nadaptive finished {gain:.2}x faster than static");
}
