//! The typed pipeline builder — the user-facing skeleton API.
//!
//! ```
//! use adapipe_core::pipeline::PipelineBuilder;
//! use adapipe_core::spec::StageSpec;
//!
//! let pipeline = PipelineBuilder::<u32>::new()
//!     .stage(StageSpec::balanced("square", 1.0, 8), |x: u32| x * x)
//!     .stage(StageSpec::balanced("format", 0.5, 16), |x: u32| format!("{x}"))
//!     .build();
//! assert_eq!(pipeline.len(), 2);
//! ```
//!
//! The builder tracks the current item type at compile time: stage `i+1`
//! must accept exactly what stage `i` produces. `build` yields a
//! [`Pipeline`] bundling the erased stage functions with the
//! [`PipelineSpec`] metadata the planner needs.

use crate::spec::{PipelineSpec, StageSpec};
use crate::stage::{DynStage, FanOutFn, FnStage, StatefulFnStage};
use adapipe_gridsim::node::NodeId;
use std::marker::PhantomData;

/// A fully built, type-checked pipeline: erased stage functions plus the
/// cost metadata, and — when the spec's stage graph has parallel
/// blocks — one fan-out duplicator per block (in block order).
pub struct Pipeline<I, O> {
    spec: PipelineSpec,
    stages: Vec<Box<dyn DynStage>>,
    fanouts: Vec<FanOutFn>,
    _types: PhantomData<fn(I) -> O>,
}

impl<I, O> Pipeline<I, O> {
    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the pipeline has no stages (unbuildable via the builder).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The planner-facing metadata.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Splits a *linear* pipeline into its spec and stage functions —
    /// engines take ownership of both.
    ///
    /// # Panics
    /// Panics if the stage graph has parallel blocks (their fan-out
    /// duplicators would be lost); use [`Pipeline::into_graph_parts`].
    pub fn into_parts(self) -> (PipelineSpec, Vec<Box<dyn DynStage>>) {
        assert!(
            self.spec.graph.is_linear(),
            "branched pipelines split via into_graph_parts()"
        );
        (self.spec, self.stages)
    }

    /// Splits the pipeline into spec, stage functions, and the per-block
    /// fan-out duplicators (empty for linear pipelines).
    pub fn into_graph_parts(self) -> (PipelineSpec, Vec<Box<dyn DynStage>>, Vec<FanOutFn>) {
        (self.spec, self.stages, self.fanouts)
    }

    /// Reassembles a *linear* pipeline from a spec and matching stage
    /// functions.
    ///
    /// The caller asserts the type discipline the builder normally
    /// enforces: stage `0` accepts `I`, each stage feeds the next, and
    /// the last produces `O`. The unified `adapipe::api` builder uses
    /// this to hand its (already type-checked) stages to an engine.
    ///
    /// # Panics
    /// Panics if `stages` is empty, its length disagrees with `spec`,
    /// or the spec's graph has parallel blocks (those need fan-out
    /// duplicators; use [`Pipeline::from_graph_parts`]).
    pub fn from_parts(spec: PipelineSpec, stages: Vec<Box<dyn DynStage>>) -> Self {
        assert!(
            spec.graph.is_linear(),
            "branched pipelines assemble via from_graph_parts()"
        );
        Self::from_graph_parts(spec, stages, Vec::new())
    }

    /// Reassembles a pipeline from a spec, matching stage functions, and
    /// one fan-out duplicator per parallel block of the spec's graph.
    /// The caller asserts the same type discipline as
    /// [`Pipeline::from_parts`], plus: each merge stage accepts the
    /// joined `Vec` of its branch outputs, and each fan-out duplicates
    /// the item type entering its block.
    ///
    /// # Panics
    /// Panics if `stages` is empty, its length disagrees with `spec`,
    /// or `fanouts` does not cover the graph's parallel blocks.
    pub fn from_graph_parts(
        spec: PipelineSpec,
        stages: Vec<Box<dyn DynStage>>,
        fanouts: Vec<FanOutFn>,
    ) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        assert_eq!(spec.len(), stages.len(), "spec must cover every stage");
        assert_eq!(
            spec.graph.blocks(),
            fanouts.len(),
            "need one fan-out per parallel block"
        );
        Pipeline {
            spec,
            stages,
            fanouts,
            _types: PhantomData,
        }
    }
}

/// Builder for [`Pipeline`]; `Cur` is the item type flowing out of the
/// last stage added so far.
pub struct PipelineBuilder<In, Cur = In> {
    spec_stages: Vec<StageSpec>,
    stages: Vec<Box<dyn DynStage>>,
    input_bytes: u64,
    source: Option<NodeId>,
    sink: Option<NodeId>,
    _types: PhantomData<fn(In) -> Cur>,
}

impl<In: Send + 'static> PipelineBuilder<In, In> {
    /// Starts a pipeline whose inputs have type `In`.
    pub fn new() -> Self {
        PipelineBuilder {
            spec_stages: Vec::new(),
            stages: Vec::new(),
            input_bytes: 0,
            source: None,
            sink: None,
            _types: PhantomData,
        }
    }
}

impl<In: Send + 'static> Default for PipelineBuilder<In, In> {
    fn default() -> Self {
        Self::new()
    }
}

impl<In: Send + 'static, Cur: Send + 'static> PipelineBuilder<In, Cur> {
    /// Declares how many bytes each input item carries into stage 0.
    pub fn input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes = bytes;
        self
    }

    /// Pins the input source to a grid node (inputs pay the transfer
    /// from there to stage 0's host).
    pub fn source(mut self, node: NodeId) -> Self {
        self.source = Some(node);
        self
    }

    /// Pins the output sink to a grid node.
    pub fn sink(mut self, node: NodeId) -> Self {
        self.sink = Some(node);
        self
    }

    /// Appends a stateless stage. The closure must be `Clone` so the
    /// runtime can replicate the stage across nodes.
    ///
    /// # Panics
    /// Panics if `spec` is marked stateful — use
    /// [`PipelineBuilder::stateful_stage`] for stateful stages.
    pub fn stage<Out, F>(mut self, spec: StageSpec, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        assert!(
            spec.stateless,
            "stage '{}' is declared stateful; use stateful_stage()",
            spec.name
        );
        self.stages
            .push(Box::new(FnStage::new(spec.name.clone(), f)));
        self.spec_stages.push(spec);
        PipelineBuilder {
            spec_stages: self.spec_stages,
            stages: self.stages,
            input_bytes: self.input_bytes,
            source: self.source,
            sink: self.sink,
            _types: PhantomData,
        }
    }

    /// Appends a stateful stage: it will never be replicated, and
    /// migrating it costs `spec.state_bytes` of transfer.
    pub fn stateful_stage<Out, F>(mut self, spec: StageSpec, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + 'static,
    {
        let spec = if spec.stateless {
            spec.with_state(0)
        } else {
            spec
        };
        self.stages
            .push(Box::new(StatefulFnStage::new(spec.name.clone(), f)));
        self.spec_stages.push(spec);
        PipelineBuilder {
            spec_stages: self.spec_stages,
            stages: self.stages,
            input_bytes: self.input_bytes,
            source: self.source,
            sink: self.sink,
            _types: PhantomData,
        }
    }

    /// Finalises the pipeline.
    ///
    /// # Panics
    /// Panics if no stage was added.
    pub fn build(self) -> Pipeline<In, Cur> {
        assert!(!self.stages.is_empty(), "pipeline needs at least one stage");
        let mut spec = PipelineSpec::new(self.spec_stages);
        spec.input_bytes = self.input_bytes;
        spec.source = self.source;
        spec.sink = self.sink;
        Pipeline {
            spec,
            stages: self.stages,
            fanouts: Vec::new(),
            _types: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_types() {
        let p = PipelineBuilder::<u32>::new()
            .stage(StageSpec::balanced("inc", 1.0, 4), |x: u32| x + 1)
            .stage(StageSpec::balanced("to_str", 1.0, 16), |x: u32| {
                x.to_string()
            })
            .stage(StageSpec::balanced("len", 1.0, 8), |s: String| s.len())
            .build();
        assert_eq!(p.len(), 3);
        assert_eq!(p.spec().names(), vec!["inc", "to_str", "len"]);
    }

    #[test]
    fn stages_execute_in_order_when_driven_manually() {
        let p = PipelineBuilder::<u32>::new()
            .stage(StageSpec::balanced("inc", 1.0, 4), |x: u32| x + 1)
            .stage(StageSpec::balanced("double", 1.0, 4), |x: u32| x * 2)
            .build();
        let (_, mut stages) = p.into_parts();
        let mut item: crate::stage::BoxedItem = Box::new(5u32);
        for s in &mut stages {
            item = s.process(item).expect("stages are type-aligned");
        }
        assert_eq!(*item.downcast::<u32>().unwrap(), 12);
    }

    #[test]
    fn stateful_stage_keeps_state_and_refuses_replication() {
        let p = PipelineBuilder::<u64>::new()
            .stateful_stage(StageSpec::balanced("sum", 1.0, 8).with_state(8), {
                let mut acc = 0u64;
                move |x: u64| {
                    acc += x;
                    acc
                }
            })
            .build();
        assert_eq!(p.spec().profile().stateless, vec![false]);
        let (_, mut stages) = p.into_parts();
        assert!(stages[0].replicate().is_none());
        assert_eq!(
            *stages[0]
                .process(Box::new(2u64))
                .expect("typed item")
                .downcast::<u64>()
                .unwrap(),
            2
        );
        assert_eq!(
            *stages[0]
                .process(Box::new(3u64))
                .expect("typed item")
                .downcast::<u64>()
                .unwrap(),
            5
        );
    }

    #[test]
    fn builder_records_source_sink_and_input_bytes() {
        let p = PipelineBuilder::<u8>::new()
            .input_bytes(1024)
            .source(NodeId(0))
            .sink(NodeId(2))
            .stage(StageSpec::balanced("id", 1.0, 512), |x: u8| x)
            .build();
        let spec = p.spec();
        assert_eq!(spec.input_bytes, 1024);
        assert_eq!(spec.source, Some(NodeId(0)));
        assert_eq!(spec.sink, Some(NodeId(2)));
        let profile = spec.profile();
        assert_eq!(profile.boundary_bytes, vec![1024, 512]);
    }

    #[test]
    #[should_panic(expected = "stateful")]
    fn stateless_api_rejects_stateful_spec() {
        let _ = PipelineBuilder::<u8>::new()
            .stage(StageSpec::balanced("x", 1.0, 0).with_state(64), |x: u8| x);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_build_panics() {
        let _ = PipelineBuilder::<u8>::new().build();
    }
}
