//! # adapipe-runtime
//!
//! The backend-agnostic half of adaptive pipeline execution — the part
//! of the pattern that is *the same* no matter what actually runs the
//! stages. The paper's contribution is a single adaptive skeleton
//! (instrument → forecast → plan → re-map); this crate is that skeleton,
//! factored out so every execution backend shares one implementation:
//!
//! * [`backend`] — the [`backend::ExecutionBackend`] trait: the five
//!   things a backend must expose to be adapted (time source,
//!   availability probe, completion counter, oracle rates, physical
//!   re-map commit);
//! * [`routing`] — the [`routing::RoutingTable`]: live stage→replica-set
//!   routing with round-robin or least-loaded selection, swappable under
//!   a running pipeline;
//! * [`adapt`] — the [`adapt::AdaptationLoop`]: windowed sensing,
//!   warm-up, policy dispatch, and the realized-throughput regret guard,
//!   driving the [`controller::Controller`] identically for every
//!   backend;
//! * [`controller`] — monitor → plan → decide, with hysteresis and
//!   migration-cost accounting;
//! * [`fault`] — the [`fault::FaultTracker`] node-health state machine:
//!   down/up transitions derived from a fault plan, driving routing
//!   exclusion, forced recovery re-maps, and item replay identically on
//!   every backend;
//! * [`policy`] — when the controller wakes up and what it may see;
//! * [`report`] — [`report::RunReport`] and the shared
//!   [`report::ReportBuilder`] so every backend's report has an
//!   identical shape;
//! * [`metrics`] — per-stage service instrumentation;
//! * [`session`] — the backend-agnostic half of the unified `Pipeline`
//!   API: typed [`session::BuildError`] validation, the shared
//!   [`session::RunConfig`], and live [`session::RunHooks`].
//!
//! Concrete backends live elsewhere: the discrete-event simulation
//! backend in `adapipe-core::simengine`, the threaded vnode backend in
//! `adapipe-engine::exec`. Both are thin: they own item transport and
//! implement [`backend::ExecutionBackend`]; everything adaptive lives
//! here.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapt;
pub mod arrivals;
pub mod backend;
pub mod controller;
pub mod fault;
pub mod metrics;
pub mod policy;
pub mod report;
pub mod routing;
pub mod session;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::adapt::{AdaptationLoop, FaultOutcome, RuntimeConfig};
    pub use crate::arrivals::ArrivalProcess;
    pub use crate::backend::{ExecutionBackend, RemapPlan};
    pub use crate::controller::{Controller, ControllerConfig};
    pub use crate::fault::{FaultTracker, FaultTransition};
    pub use crate::metrics::{StageMetrics, StageStats};
    pub use crate::policy::Policy;
    pub use crate::report::{AdaptationEvent, DeadLetter, ReportBuilder, RunReport};
    pub use crate::routing::{RoutingTable, Selection};
    pub use crate::session::{
        BuildError, ResiliencePolicy, RunConfig, RunError, RunHooks, Session, SessionId,
    };
    pub use adapipe_gridsim::fault::{Fault, FaultPlan};
}

pub use prelude::*;
