//! The shared adaptation loop: instrument → forecast → plan → re-map.
//!
//! Historically each engine re-implemented this cycle (the simulator in
//! its `on_sample`/`on_tick` event handlers, the threaded engine in a
//! dedicated controller thread), and the two copies drifted — the
//! threaded engine, for instance, never gained the regret guard. The
//! [`AdaptationLoop`] is the single implementation both drive now:
//!
//! * **sensing** ([`AdaptationLoop::sample`]) — windowed mean
//!   availability per node, perturbed by observation noise, several
//!   times per adaptation interval (point samples alias against load
//!   oscillating near the sensing frequency);
//! * **deciding** ([`AdaptationLoop::tick`]) — once per interval:
//!   realized-throughput regret guard, warm-up and hold-down gating,
//!   policy-specific rate selection, then one
//!   [`Controller::consider`] cycle; accepted mappings are swapped into
//!   the [`RoutingTable`] and handed to the backend as a
//!   [`RemapPlan`] to commit physically.
//!
//! Backends only choose *when* to call these (the simulator schedules
//! events, the engine sleeps on a wall clock) — never *what* happens.

use crate::backend::{ExecutionBackend, RemapPlan};
use crate::controller::{Controller, ControllerConfig};
use crate::fault::{FaultTracker, FaultTransition};
use crate::policy::Policy;
use crate::report::AdaptationEvent;
use crate::routing::RoutingTable;
use crate::session::{RunError, RunEvent};
use adapipe_gridsim::fault::FaultPlan;
use adapipe_gridsim::net::Topology;
use adapipe_gridsim::time::{SimDuration, SimTime};
use adapipe_mapper::mapping::Mapping;
use adapipe_mapper::model::{evaluate, PipelineProfile};
use adapipe_monitor::sensor::NoisyChannel;
use adapipe_state::{owner_of, StateAccess};
use std::sync::RwLock;

/// Everything the shared runtime needs to adapt one pipeline run,
/// independent of which backend executes it.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Adaptation policy.
    pub policy: Policy,
    /// Controller tunables (planner, hysteresis, monitoring window).
    pub controller: ControllerConfig,
    /// The mapper's view of the pipeline.
    pub profile: PipelineProfile,
    /// Planning topology.
    pub topology: Topology,
    /// Nominal node speeds (forecast rates = speed × predicted
    /// availability).
    pub speeds: Vec<f64>,
    /// Migratable state per stage, in bytes.
    pub state_bytes: Vec<u64>,
    /// Replicability per stage (`StateAccess::replicable`): replicable
    /// stages re-deal their stranded items at-least-once when a node
    /// goes down, and finite outages park-and-recover.
    pub stateless: Vec<bool>,
    /// Declared state-access pattern per stage. Only a stage with
    /// *opaque* (undeclared) state pinned to a permanently lost node is
    /// a fatal [`RunError::StatefulStageLost`]; declared state (keyed,
    /// accumulator, exclusive) is snapshottable, so the loop forces a
    /// recovery re-map and the backend live-migrates the state instead.
    /// Backends that predate declarations leave this empty: a missing
    /// entry on a non-replicable stage is treated as opaque.
    pub state_access: Vec<StateAccess>,
    /// Scheduled faults of this run. The backend applies the physics
    /// (degraded load schedules) itself; the loop owns the control
    /// plane — down/up transitions, routing exclusion, forced re-maps,
    /// and replay orchestration — identically for every backend.
    pub faults: FaultPlan,
    /// Stream length (drives remaining-work amortisation).
    pub total_items: u64,
    /// Relative magnitude of availability observation noise (0 = clean).
    pub observation_noise: f64,
    /// Seed for the observation noise stream.
    pub noise_seed: u64,
    /// Live observation callbacks (invoked as the run progresses).
    pub hooks: crate::session::RunHooks,
    /// In-flight steering flags a live session may flip (pause/resume
    /// adaptation, force a planning cycle). Checked here — not in the
    /// backends — so every backend honours them identically.
    pub control: crate::session::SessionControl,
    /// The session this loop adapts, stamped onto every emitted
    /// [`RunEvent`] so a multi-tenant cluster can merge many loops'
    /// streams onto one bus. `SessionId(0)` for standalone runs.
    pub session: crate::session::SessionId,
}

impl RuntimeConfig {
    fn noise(&self) -> NoisyChannel {
        if self.observation_noise > 0.0 {
            NoisyChannel::new(self.noise_seed, self.observation_noise)
        } else {
            NoisyChannel::clean()
        }
    }
}

/// The adaptation state machine shared by every backend.
pub struct AdaptationLoop {
    cfg: RuntimeConfig,
    controller: Controller,
    noise: NoisyChannel,
    /// Model-predicted throughput of the mapping currently in force.
    expected_tput: f64,
    last_tick_completed: u64,
    ticks_seen: u32,
    /// Mapping to revert to if the regret guard trips, with the tick the
    /// current mapping was adopted.
    guard_prev: Option<(Mapping, u32)>,
    guard_bad: u32,
    hold_until_tick: u32,
    /// Node-health state machine for the run's fault plan.
    tracker: FaultTracker,
    /// A node went down and the mapping still touches a down node: keep
    /// forcing planning cycles until a committed re-map excludes every
    /// down node.
    fault_remap_pending: bool,
    /// Latched once a fault transition proved the run unrecoverable
    /// (see [`FaultOutcome::fatal`]). Distinct from the session's error
    /// slot, which may carry non-fatal errors (e.g. the simulator's
    /// marker-semantics type mismatch).
    fatal: bool,
    /// State migrations implied by committed re-maps (shard, partial,
    /// or whole-instance moves), counted centrally from mapping diffs
    /// so both backends report identical totals.
    migrations: u64,
    /// Declared-state bytes those migrations shipped.
    state_bytes_moved: u64,
}

/// What [`AdaptationLoop::poll_faults`] did about the transitions due.
#[derive(Debug, Default)]
pub struct FaultOutcome {
    /// A fault-driven re-map committed by this poll, if any.
    pub committed: Option<RemapPlan>,
    /// True if the run can no longer proceed (stateful stage lost,
    /// every node down): the error is recorded on the session control
    /// and the backend should tear the run down.
    pub fatal: bool,
}

impl AdaptationLoop {
    /// Creates the loop for one run. `initial` is the launch mapping and
    /// `launch_rates` the effective rates it was planned against (they
    /// seed the expected-throughput baseline the regret guard and the
    /// reactive policy compare in).
    pub fn new(cfg: RuntimeConfig, initial: &Mapping, launch_rates: &[f64]) -> Self {
        let controller = Controller::new(cfg.speeds.len(), cfg.controller.clone());
        let expected_tput = evaluate(&cfg.profile, initial, launch_rates, &cfg.topology).throughput;
        let noise = cfg.noise();
        let tracker = FaultTracker::new(&cfg.faults, cfg.speeds.len());
        AdaptationLoop {
            controller,
            noise,
            expected_tput,
            last_tick_completed: 0,
            ticks_seen: 0,
            guard_prev: None,
            guard_bad: 0,
            hold_until_tick: 0,
            tracker,
            fault_remap_pending: false,
            fatal: false,
            migrations: 0,
            state_bytes_moved: 0,
            cfg,
        }
    }

    /// The declared access pattern of stage `s`. Backends that predate
    /// declarations leave `state_access` empty; a missing entry falls
    /// back to the replicability flag — replicable reads as stateless,
    /// non-replicable as opaque (the legacy "cannot move it" semantics).
    fn stage_access(&self, s: usize) -> StateAccess {
        self.cfg.state_access.get(s).copied().unwrap_or({
            if self.cfg.stateless.get(s).copied().unwrap_or(true) {
                StateAccess::Stateless
            } else {
                StateAccess::Opaque
            }
        })
    }

    /// True once a fault transition proved the run unrecoverable (the
    /// typed error is on the session control). Backends use this — not
    /// the session's error slot, which may carry non-fatal errors — to
    /// decide whether to stop the run.
    pub fn is_fatal(&self) -> bool {
        self.fatal
    }

    /// The adaptation interval, or `None` under [`Policy::Static`].
    pub fn interval(&self) -> Option<SimDuration> {
        self.cfg.policy.interval()
    }

    /// Sub-interval spacing of availability observations, or `None`
    /// under [`Policy::Static`] (nothing ever consumes the samples).
    pub fn sample_dt(&self) -> Option<SimDuration> {
        let interval = self.cfg.policy.interval()?;
        let divisions = self.cfg.controller.samples_per_interval.max(1);
        Some(SimDuration::from_nanos(
            (interval.as_nanos() / divisions as u64).max(1),
        ))
    }

    /// Observations per adaptation interval (≥ 1).
    pub fn samples_per_interval(&self) -> u32 {
        self.cfg.controller.samples_per_interval.max(1)
    }

    /// One availability observation on every node (the NWS stand-in).
    /// Like NWS's CPU sensor, the observation is the *mean* availability
    /// over the elapsed sample window, not a point sample: point-sampling
    /// a load oscillating near the sensing frequency aliases into
    /// forecast flapping and re-mapping churn.
    pub fn sample<B: ExecutionBackend>(&mut self, backend: &B) {
        let Some(dt) = self.sample_dt() else { return };
        let now = backend.now();
        let window_start = SimTime::from_nanos(now.as_nanos().saturating_sub(dt.as_nanos()));
        if window_start >= now {
            return; // no elapsed window yet (t = 0): nothing to observe
        }
        let t = now.as_secs_f64();
        for node in 0..backend.node_count() {
            let truth = backend.mean_availability(node, window_start, now);
            let observed = self.noise.perturb(truth).clamp(0.0, 1.0);
            self.controller.observe_availability(node, t, observed);
        }
    }

    /// The instant of the next unprocessed fault transition, if any —
    /// wall-clock backends use this to wake exactly when a fault is due
    /// (the simulator schedules an event per transition instead).
    pub fn next_fault_at(&self) -> Option<SimTime> {
        self.tracker.next_transition_at()
    }

    /// True if `node` is currently down per the processed fault plan.
    pub fn is_node_down(&self, node: usize) -> bool {
        self.tracker.is_down(node)
    }

    /// Processes every fault transition due at the backend's current
    /// time. For each node going **down**: mark it down in the routing
    /// table (all selection policies skip it from now on), emit
    /// [`RunEvent::NodeDown`], notify the backend
    /// ([`ExecutionBackend::on_node_down`] — the threaded engine
    /// evacuates the dead worker, the simulator arms replay
    /// accounting), fail fatally if a stage with *opaque* (undeclared)
    /// state was pinned to a permanently lost node (declared state
    /// live-migrates through the forced re-map below; a finite outage
    /// parks and recovers) or if every node is now down, and otherwise force a planning
    /// cycle that keeps retrying until a committed re-map excludes
    /// every down node. Nodes coming back **up** are re-admitted to
    /// routing and left for the regular adaptation cycle to re-adopt.
    ///
    /// Idempotent and cheap when nothing is due; called from every
    /// [`AdaptationLoop::tick`] and from the backends' fault wake-ups,
    /// so both backends run the identical recovery sequence.
    pub fn poll_faults<B: ExecutionBackend>(
        &mut self,
        backend: &mut B,
        routing: &RwLock<RoutingTable>,
    ) -> FaultOutcome {
        let now = backend.now();
        let mut outcome = FaultOutcome::default();
        let due = self.tracker.poll(now);
        if due.is_empty() && !self.fault_remap_pending {
            return outcome;
        }
        for transition in due {
            match transition {
                FaultTransition::Down { node, at } => {
                    let table = routing.read().expect("routing lock poisoned");
                    table.mark_down(node);
                    // Only *opaque* (undeclared) state dies with its
                    // host: declared state is snapshottable, so the
                    // recovery re-map below migrates it instead.
                    let lost_stateful = (0..table.len()).find(|&s| {
                        self.stage_access(s) == StateAccess::Opaque && table.contains(s, node)
                    });
                    drop(table);
                    self.cfg.hooks.events.emit(RunEvent::NodeDown {
                        session: self.cfg.session,
                        node: node.index(),
                        at,
                    });
                    backend.on_node_down(node.index(), at);
                    // State dies only with a *permanent* loss: a finite
                    // outage parks the stage's items and the node (and
                    // its state) comes back at the scheduled recovery.
                    if let Some(stage) = lost_stateful {
                        if self.tracker.is_permanently_down(node.index()) {
                            self.cfg.control.fail(RunError::StatefulStageLost {
                                stage,
                                node: node.index(),
                            });
                            outcome.fatal = true;
                        }
                    }
                    if self.tracker.all_down() {
                        self.cfg.control.fail(RunError::AllNodesDown);
                        outcome.fatal = true;
                    }
                    // A permanent loss of a hosting node under a policy
                    // that never re-maps can never be recovered: fail
                    // now instead of starving forever.
                    if self.cfg.policy.interval().is_none()
                        && self.tracker.is_permanently_down(node.index())
                        && routing
                            .read()
                            .expect("routing lock poisoned")
                            .mapping()
                            .nodes_used()
                            .contains(&node)
                    {
                        self.cfg
                            .control
                            .fail(RunError::NodeLostUnderStatic { node: node.index() });
                        outcome.fatal = true;
                    }
                    self.fault_remap_pending = true;
                }
                FaultTransition::Up { node, at } => {
                    routing.read().expect("routing lock poisoned").mark_up(node);
                    self.cfg.hooks.events.emit(RunEvent::NodeUp {
                        session: self.cfg.session,
                        node: node.index(),
                        at,
                    });
                    backend.on_node_up(node.index(), at);
                }
            }
        }
        if outcome.fatal {
            self.fatal = true;
            return outcome;
        }
        if self.fault_remap_pending {
            outcome.committed = self.fault_remap(backend, routing, now);
        }
        outcome
    }

    /// One forced planning cycle away from the down nodes. Bypasses
    /// warm-up (recovery cannot wait for observation history — forecast
    /// rates of down nodes are masked to zero, and the controller's
    /// dead-mapping bypass skips confirmation). Clears the pending flag
    /// only once the mapping in force excludes every down node.
    fn fault_remap<B: ExecutionBackend>(
        &mut self,
        backend: &mut B,
        routing: &RwLock<RoutingTable>,
        now: SimTime,
    ) -> Option<RemapPlan> {
        let current = routing
            .read()
            .expect("routing lock poisoned")
            .mapping()
            .clone();
        let touches_down = |m: &Mapping| {
            m.placements()
                .iter()
                .any(|p| p.hosts().iter().any(|h| self.tracker.is_down(h.index())))
        };
        if !touches_down(&current) {
            self.fault_remap_pending = false;
            return None;
        }
        // Static policy never re-maps, faults included: the run honours
        // the paper's baseline semantics and starves (the session
        // surfaces no progress; the simulator truncates).
        self.cfg.policy.interval()?;
        let mut rates = self.controller.forecast_rates(&self.cfg.speeds);
        self.tracker.mask_rates(&mut rates);
        // Stranded items guarantee work remains even when the
        // remaining-items hint has run out — never let the amortisation
        // veto crash recovery.
        let remaining = self
            .cfg
            .total_items
            .saturating_sub(backend.completed())
            .max(1);
        let accepted = self.controller.consider(
            now,
            &self.cfg.profile,
            &self.cfg.topology,
            &rates,
            &current,
            remaining,
            &self.cfg.state_bytes,
        );
        let new_mapping = accepted?;
        self.expected_tput =
            evaluate(&self.cfg.profile, &new_mapping, &rates, &self.cfg.topology).throughput;
        // Never arm the regret guard on a recovery mapping: a revert
        // would re-adopt the mapping that includes the dead node.
        self.guard_prev = None;
        self.guard_bad = 0;
        if !touches_down(&new_mapping) {
            self.fault_remap_pending = false;
        }
        Some(self.apply(backend, routing, new_mapping, now))
    }

    /// One adaptation tick: fault transitions, regret guard, warm-up
    /// gating, policy rate selection, plan/decide, and — on acceptance —
    /// the routing-table swap plus backend commit. Returns the committed
    /// [`RemapPlan`], if any (guard reverts and fault-driven recovery
    /// re-maps also surface here).
    pub fn tick<B: ExecutionBackend>(
        &mut self,
        backend: &mut B,
        routing: &RwLock<RoutingTable>,
    ) -> Option<RemapPlan> {
        let interval = self.cfg.policy.interval()?;
        let now = backend.now();
        let completed = backend.completed();

        // 0. Fault transitions due since the last look (and pending
        // recovery re-maps) are settled before anything else senses or
        // plans: the rest of the tick must see the post-fault world.
        let fault = self.poll_faults(backend, routing);
        if fault.fatal {
            return fault.committed;
        }

        // 1. Realized throughput over the elapsed tick: the one signal
        // immune to the forecast pathologies the guard exists for.
        self.ticks_seen += 1;
        let realized =
            completed.saturating_sub(self.last_tick_completed) as f64 / interval.as_secs_f64();
        self.last_tick_completed = completed;

        let paused = self.cfg.control.is_paused();
        if !self.cfg.hooks.events.is_idle() {
            self.cfg
                .hooks
                .events
                .emit(crate::session::RunEvent::WindowStats {
                    session: self.cfg.session,
                    at: now,
                    realized,
                    expected: self.expected_tput,
                    completed,
                    paused,
                });
        }
        // Paused: sensing and window reporting continue (above), but
        // nothing may commit — not the planner, not the regret guard. A
        // pending force request stays pending until resumed.
        if paused {
            return None;
        }
        let forced = self.cfg.control.take_force_remap();

        let mut committed: Option<RemapPlan> = fault.committed;

        // A guard revert must never re-adopt a mapping that touches a
        // node now known to be down.
        if let Some((prev, _)) = &self.guard_prev {
            if prev
                .placements()
                .iter()
                .any(|p| p.hosts().iter().any(|h| self.tracker.is_down(h.index())))
            {
                self.guard_prev = None;
                self.guard_bad = 0;
            }
        }

        // 2. Regret guard: compare what the adopted mapping delivers
        // against what the model promised; on sustained shortfall revert
        // and hold planning down.
        let guard_ticks = self.cfg.controller.guard_bad_ticks;
        if guard_ticks > 0 {
            if let Some((prev, adopted_tick)) = self.guard_prev.clone() {
                // Skip the adoption tick itself: migration transients
                // depress throughput legitimately.
                if self.ticks_seen > adopted_tick + 1 && self.expected_tput > 0.0 {
                    if realized < self.cfg.controller.guard_tolerance * self.expected_tput {
                        self.guard_bad += 1;
                    } else {
                        self.guard_bad = 0;
                        // The mapping has proven itself: stop guarding it.
                        if self.ticks_seen > adopted_tick + 3 {
                            self.guard_prev = None;
                        }
                    }
                    if self.guard_bad >= guard_ticks {
                        let rates = self.controller.forecast_rates(&self.cfg.speeds);
                        self.expected_tput =
                            evaluate(&self.cfg.profile, &prev, &rates, &self.cfg.topology)
                                .throughput;
                        committed = Some(self.apply(backend, routing, prev, now));
                        self.guard_prev = None;
                        self.guard_bad = 0;
                        self.hold_until_tick =
                            self.ticks_seen + self.cfg.controller.guard_hold_ticks;
                    }
                }
            }
        }

        // 3. Policy-specific planning — but never before the warm-up
        // observation history exists, and not during a guard hold-down.
        // A forced tick (SessionControl::force_remap) bypasses the
        // warm-up gate, any hold-down, and the reactive trigger: the
        // caller asked for one planning cycle *now*.
        let warmed_up = self.ticks_seen > self.cfg.controller.warmup_ticks
            && self.ticks_seen >= self.hold_until_tick;
        let remaining = self.cfg.total_items.saturating_sub(completed);
        let rates: Option<Vec<f64>> = match self.cfg.policy {
            _ if forced => match self.cfg.policy {
                Policy::Oracle { .. } => Some(backend.oracle_rates(now, now + interval)),
                _ => Some(self.controller.forecast_rates(&self.cfg.speeds)),
            },
            _ if !warmed_up => None,
            Policy::Static => None,
            Policy::Periodic { .. } => Some(self.controller.forecast_rates(&self.cfg.speeds)),
            Policy::Reactive { degradation, .. } => {
                if realized < degradation * self.expected_tput {
                    Some(self.controller.forecast_rates(&self.cfg.speeds))
                } else {
                    None
                }
            }
            Policy::Oracle { .. } => Some(backend.oracle_rates(now, now + interval)),
        };
        // No planning path may map work onto a node known to be down,
        // even before the forecast catches up with the failure.
        let rates = rates.map(|mut r| {
            self.tracker.mask_rates(&mut r);
            r
        });

        if let Some(rates) = rates {
            let current = routing
                .read()
                .expect("routing lock poisoned")
                .mapping()
                .clone();
            let accepted = self.controller.consider(
                now,
                &self.cfg.profile,
                &self.cfg.topology,
                &rates,
                &current,
                remaining,
                &self.cfg.state_bytes,
            );
            if let Some(new_mapping) = accepted {
                self.expected_tput =
                    evaluate(&self.cfg.profile, &new_mapping, &rates, &self.cfg.topology)
                        .throughput;
                self.guard_prev = Some((current, self.ticks_seen));
                self.guard_bad = 0;
                committed = Some(self.apply(backend, routing, new_mapping, now));
            }
        }
        committed
    }

    /// Swaps `new` into the routing table and hands the priced plan to
    /// the backend for physical commit.
    fn apply<B: ExecutionBackend>(
        &mut self,
        backend: &mut B,
        routing: &RwLock<RoutingTable>,
        new: Mapping,
        now: SimTime,
    ) -> RemapPlan {
        let mut table = routing.write().expect("routing lock poisoned");
        let from = table.mapping().clone();
        let migration_cost =
            self.controller
                .migration_cost(&from, &new, &self.cfg.state_bytes, &self.cfg.topology);
        self.count_migrations(&from, &new);
        let moved = table.install(new.clone());
        drop(table);
        let plan = RemapPlan {
            from,
            to: new,
            moved,
            migration_cost,
            at: now,
            ready_at: now + migration_cost,
        };
        backend.commit_remap(&plan);
        if let Some(hook) = &self.cfg.hooks.on_remap {
            hook(&plan);
        }
        if !self.cfg.hooks.events.is_idle() {
            self.cfg.hooks.events.emit(crate::session::RunEvent::Remap {
                session: self.cfg.session,
                plan: plan.clone(),
            });
        }
        plan
    }

    /// Tallies the state migrations a committed re-map implies, from
    /// the mapping diff alone — both backends physically move state
    /// through their own mechanisms, but the *accounting* lives here so
    /// `RunReport.migrations` agrees across backends for the same diff.
    fn count_migrations(&mut self, from: &Mapping, to: &Mapping) {
        for s in 0..from.len().min(to.len()) {
            let bytes = self.cfg.state_bytes.get(s).copied().unwrap_or(0);
            let old = from.placement(s).hosts();
            let new = to.placement(s).hosts();
            if old.is_empty() || new.is_empty() {
                continue;
            }
            match self.stage_access(s) {
                StateAccess::Stateless => {}
                // A shard moves when its owner (by the shared
                // `owner_of` rule over the placement width) changes
                // host; bytes are charged pro rata per shard.
                StateAccess::Keyed { shards } => {
                    let moved = (0..shards)
                        .filter(|&sh| old[owner_of(sh, old.len())] != new[owner_of(sh, new.len())])
                        .count() as u64;
                    self.migrations += moved;
                    self.state_bytes_moved += bytes * moved / shards.max(1) as u64;
                }
                // Each replica leaving the placement ships its partial
                // to be merged on a surviving host.
                StateAccess::Accumulator => {
                    let gone = old.iter().filter(|h| !new.contains(h)).count() as u64;
                    self.migrations += gone;
                    self.state_bytes_moved += gone * bytes;
                }
                // Single instance: one move when the primary changes.
                StateAccess::Exclusive | StateAccess::Opaque => {
                    if old[0] != new[0] {
                        self.migrations += 1;
                        self.state_bytes_moved += bytes;
                    }
                }
            }
        }
    }

    /// Total state migrations and bytes shipped so far — backends read
    /// this at teardown and settle it into the report via
    /// [`crate::report::ReportBuilder::set_migrations`].
    pub fn migration_totals(&self) -> (u64, u64) {
        (self.migrations, self.state_bytes_moved)
    }

    /// The wrapped controller (diagnostics).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Adaptation ticks seen so far.
    pub fn ticks_seen(&self) -> u32 {
        self.ticks_seen
    }

    /// Consumes the loop, returning the accepted re-mapping events and
    /// the number of planning cycles run — the report's adaptation
    /// fields, assembled identically for every backend.
    pub fn finish(self) -> (Vec<AdaptationEvent>, u64) {
        let cycles = self.controller.plans_evaluated();
        (self.controller.into_events(), cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_gridsim::net::LinkSpec;
    use adapipe_gridsim::node::NodeId;

    /// A minimal in-memory backend: constant availability per node,
    /// scripted completion counter, records committed plans.
    struct TestBackend {
        avail: Vec<f64>,
        now: SimTime,
        completed: u64,
        commits: Vec<RemapPlan>,
    }

    impl ExecutionBackend for TestBackend {
        fn node_count(&self) -> usize {
            self.avail.len()
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn mean_availability(&self, node: usize, _from: SimTime, _to: SimTime) -> f64 {
            self.avail[node]
        }
        fn completed(&self) -> u64 {
            self.completed
        }
        fn oracle_rates(&self, _from: SimTime, _to: SimTime) -> Vec<f64> {
            self.avail.clone()
        }
        fn commit_remap(&mut self, plan: &RemapPlan) {
            self.commits.push(plan.clone());
        }
    }

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    fn rig(policy: Policy, np: usize) -> (RuntimeConfig, Mapping) {
        let profile = PipelineProfile::uniform(vec![1.0; np.min(3)], 0);
        let mapping = Mapping::from_assignment(&(0..np.min(3)).map(n).collect::<Vec<_>>());
        let cfg = RuntimeConfig {
            policy,
            controller: ControllerConfig::default(),
            profile,
            topology: Topology::uniform(np, LinkSpec::lan()),
            speeds: vec![1.0; np],
            state_bytes: vec![0; np.min(3)],
            stateless: vec![true; np.min(3)],
            state_access: vec![],
            faults: FaultPlan::new(),
            total_items: 10_000,
            observation_noise: 0.0,
            noise_seed: 1,
            hooks: crate::session::RunHooks::default(),
            control: crate::session::SessionControl::default(),
            session: crate::session::SessionId(0),
        };
        (cfg, mapping)
    }

    #[test]
    fn static_policy_never_ticks() {
        let (cfg, mapping) = rig(Policy::Static, 3);
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::new(mapping));
        let mut backend = TestBackend {
            avail: vec![1.0; 3],
            now: SimTime::from_secs_f64(10.0),
            completed: 5,
            commits: vec![],
        };
        assert!(aloop.interval().is_none());
        assert!(aloop.sample_dt().is_none());
        assert!(aloop.tick(&mut backend, &routing).is_none());
        let (events, cycles) = aloop.finish();
        assert!(events.is_empty());
        assert_eq!(cycles, 0);
    }

    #[test]
    fn periodic_remaps_off_collapsed_node_after_warmup() {
        let (cfg, mapping) = rig(Policy::periodic_default(), 3);
        let warmup = cfg.controller.warmup_ticks;
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::new(mapping.clone()));
        let mut backend = TestBackend {
            avail: vec![1.0, 0.05, 1.0], // node 1 collapsed
            now: SimTime::ZERO,
            completed: 0,
            commits: vec![],
        };
        let mut committed = None;
        for k in 0..warmup + 4 {
            backend.now = SimTime::from_secs_f64((k + 1) as f64 * 5.0);
            aloop.sample(&backend);
            if let Some(plan) = aloop.tick(&mut backend, &routing) {
                assert!(k >= warmup, "acted during warm-up at tick {k}");
                committed = Some(plan);
                break;
            }
        }
        let plan = committed.expect("collapsed node must force a re-map");
        assert!(!plan.moved.is_empty());
        assert_eq!(backend.commits.len(), 1);
        // The routing table now points at the new mapping.
        let table = routing.read().unwrap();
        assert_eq!(table.mapping(), &plan.to);
        assert_ne!(table.mapping(), &mapping);
        let (events, cycles) = aloop.finish();
        assert_eq!(events.len(), 1);
        assert!(cycles >= 1);
    }

    #[test]
    fn remap_hook_fires_on_commit() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        let fired = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&fired);
        cfg.hooks = crate::session::RunHooks::on_remap(move |plan| {
            assert!(!plan.moved.is_empty());
            seen.fetch_add(1, Ordering::SeqCst);
        });
        let warmup = cfg.controller.warmup_ticks;
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::new(mapping));
        let mut backend = TestBackend {
            avail: vec![1.0, 0.05, 1.0],
            now: SimTime::ZERO,
            completed: 0,
            commits: vec![],
        };
        for k in 0..warmup + 4 {
            backend.now = SimTime::from_secs_f64((k + 1) as f64 * 5.0);
            aloop.sample(&backend);
            if aloop.tick(&mut backend, &routing).is_some() {
                break;
            }
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1, "hook must fire once");
    }

    #[test]
    fn paused_loop_senses_but_never_commits() {
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        let control = crate::session::SessionControl::new();
        cfg.control = control.clone();
        let events = cfg.hooks.events.subscribe();
        let warmup = cfg.controller.warmup_ticks;
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::new(mapping.clone()));
        let mut backend = TestBackend {
            avail: vec![1.0, 0.05, 1.0], // would force a re-map if live
            now: SimTime::ZERO,
            completed: 0,
            commits: vec![],
        };
        control.pause_adaptation();
        for k in 0..warmup + 4 {
            backend.now = SimTime::from_secs_f64((k + 1) as f64 * 5.0);
            aloop.sample(&backend);
            assert!(
                aloop.tick(&mut backend, &routing).is_none(),
                "paused loop committed at tick {k}"
            );
        }
        assert_eq!(routing.read().unwrap().mapping(), &mapping);
        // Window statistics kept flowing while paused.
        let stats: Vec<_> = events.try_iter().collect();
        assert_eq!(stats.len() as u32, warmup + 4);
        assert!(stats.iter().all(|e| matches!(
            e,
            crate::session::RunEvent::WindowStats { paused: true, .. }
        )));
        // Resuming lets the collapsed node force the usual re-map.
        control.resume_adaptation();
        let mut committed = false;
        for k in 0..4 {
            backend.now += SimDuration::from_secs(5);
            aloop.sample(&backend);
            if aloop.tick(&mut backend, &routing).is_some() {
                committed = true;
                break;
            }
            assert!(k < 3, "resume must re-enable planning");
        }
        assert!(committed);
    }

    #[test]
    fn forced_tick_bypasses_warmup_and_emits_remap_event() {
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        // Make acceptance easy so the forced cycle visibly commits.
        cfg.controller.decision = adapipe_mapper::decide::DecisionConfig {
            min_relative_gain: 0.0,
            cost_benefit_factor: 0.0,
        };
        let control = crate::session::SessionControl::new();
        cfg.control = control.clone();
        let events = cfg.hooks.events.subscribe();
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::new(mapping));
        let mut backend = TestBackend {
            avail: vec![1.0, 0.05, 1.0],
            now: SimTime::ZERO,
            completed: 0,
            commits: vec![],
        };
        // One observation, then a forced tick *inside* the warm-up
        // window: it must plan (and here commit) anyway.
        backend.now = SimTime::from_secs_f64(5.0);
        aloop.sample(&backend);
        control.force_remap();
        let plan = aloop
            .tick(&mut backend, &routing)
            .expect("forced tick must plan");
        assert!(!plan.moved.is_empty());
        let remaps: Vec<_> = events
            .try_iter()
            .filter(|e| matches!(e, crate::session::RunEvent::Remap { .. }))
            .collect();
        assert_eq!(remaps.len(), 1, "Remap event mirrors the commit");
    }

    #[test]
    fn reactive_plans_only_on_degradation() {
        let (cfg, mapping) = rig(
            Policy::Reactive {
                interval: SimDuration::from_secs(5),
                degradation: 0.7,
            },
            3,
        );
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::new(mapping));
        let mut backend = TestBackend {
            avail: vec![1.0, 0.05, 1.0],
            now: SimTime::ZERO,
            completed: 0,
            commits: vec![],
        };
        // Healthy throughput (≥ expected 1 item/s × 5 s per tick): the
        // forecast sees a collapsed node, but reactive never even plans.
        for k in 0..8u64 {
            backend.now = SimTime::from_secs_f64((k + 1) as f64 * 5.0);
            backend.completed = (k + 1) * 5;
            aloop.sample(&backend);
            assert!(aloop.tick(&mut backend, &routing).is_none());
        }
        let cycles_before = aloop.controller().plans_evaluated();
        assert_eq!(cycles_before, 0, "healthy reactive run must not plan");
        // Throughput collapses: now it must plan and re-map.
        let mut remapped = false;
        for k in 8..12u64 {
            backend.now = SimTime::from_secs_f64((k + 1) as f64 * 5.0);
            aloop.sample(&backend);
            if aloop.tick(&mut backend, &routing).is_some() {
                remapped = true;
                break;
            }
        }
        assert!(remapped, "degraded reactive run must re-map");
    }

    #[test]
    fn crash_forces_committed_remap_off_dead_node_before_warmup() {
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        cfg.faults = FaultPlan::new().crash(n(1), SimTime::from_secs_f64(2.0));
        let control = cfg.control.clone();
        let events = cfg.hooks.events.subscribe();
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::with_selection(
            mapping.clone(),
            crate::routing::Selection::RoundRobin,
            3,
        ));
        let mut backend = TestBackend {
            avail: vec![1.0; 3], // the forecast has not seen the crash
            now: SimTime::from_secs_f64(2.5),
            completed: 0,
            commits: vec![],
        };
        assert_eq!(aloop.next_fault_at(), Some(SimTime::from_secs_f64(2.0)));
        // Well inside warm-up, no samples at all: recovery still plans
        // and commits immediately.
        let outcome = aloop.poll_faults(&mut backend, &routing);
        assert!(!outcome.fatal);
        let plan = outcome.committed.expect("crash must force a re-map");
        assert!(
            !plan.to.nodes_used().contains(&n(1)),
            "recovery mapping still uses the dead node: {}",
            plan.to
        );
        assert!(aloop.is_node_down(1));
        assert!(routing.read().unwrap().is_down(n(1)));
        assert_eq!(control.error(), None);
        let kinds: Vec<_> = events.try_iter().collect();
        assert!(kinds
            .iter()
            .any(|e| matches!(e, crate::session::RunEvent::NodeDown { node: 1, .. })));
        assert!(kinds
            .iter()
            .any(|e| matches!(e, crate::session::RunEvent::Remap { .. })));
        // Idempotent: polling again does nothing further.
        let again = aloop.poll_faults(&mut backend, &routing);
        assert!(again.committed.is_none() && !again.fatal);
    }

    #[test]
    fn outage_marks_down_then_up_in_routing() {
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        cfg.faults = FaultPlan::new().outage(
            n(2),
            SimTime::from_secs_f64(1.0),
            SimTime::from_secs_f64(4.0),
        );
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::with_selection(
            mapping,
            crate::routing::Selection::RoundRobin,
            3,
        ));
        let mut backend = TestBackend {
            avail: vec![1.0; 3],
            now: SimTime::from_secs_f64(1.5),
            commits: vec![],
            completed: 0,
        };
        let _ = aloop.poll_faults(&mut backend, &routing);
        assert!(routing.read().unwrap().is_down(n(2)));
        backend.now = SimTime::from_secs_f64(4.5);
        let _ = aloop.poll_faults(&mut backend, &routing);
        assert!(!routing.read().unwrap().is_down(n(2)));
        assert_eq!(aloop.next_fault_at(), None);
    }

    #[test]
    fn stateful_stage_on_crashed_node_is_fatal() {
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        cfg.stateless = vec![true, false, true]; // stage 1 stateful on n1
        cfg.faults = FaultPlan::new().crash(n(1), SimTime::from_secs_f64(1.0));
        let control = cfg.control.clone();
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::with_selection(
            mapping,
            crate::routing::Selection::RoundRobin,
            3,
        ));
        let mut backend = TestBackend {
            avail: vec![1.0; 3],
            now: SimTime::from_secs_f64(1.5),
            commits: vec![],
            completed: 0,
        };
        let outcome = aloop.poll_faults(&mut backend, &routing);
        assert!(outcome.fatal);
        assert_eq!(
            control.error(),
            Some(crate::session::RunError::StatefulStageLost { stage: 1, node: 1 })
        );
    }

    #[test]
    fn declared_keyed_stage_on_crashed_node_migrates_instead_of_aborting() {
        // Same crash as `stateful_stage_on_crashed_node_is_fatal`, but
        // the stage *declares* its state: keyed shards are
        // snapshottable, so the loop forces a recovery re-map that
        // moves the shards — no typed abort.
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        cfg.stateless = vec![true, true, true]; // keyed is replicable
        cfg.state_access = vec![
            StateAccess::Stateless,
            StateAccess::Keyed { shards: 4 },
            StateAccess::Stateless,
        ];
        cfg.state_bytes = vec![0, 4096, 0];
        cfg.faults = FaultPlan::new().crash(n(1), SimTime::from_secs_f64(1.0));
        let control = cfg.control.clone();
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::with_selection(
            mapping,
            crate::routing::Selection::RoundRobin,
            3,
        ));
        let mut backend = TestBackend {
            avail: vec![1.0; 3],
            now: SimTime::from_secs_f64(1.5),
            commits: vec![],
            completed: 0,
        };
        let outcome = aloop.poll_faults(&mut backend, &routing);
        assert!(!outcome.fatal, "declared state must migrate, not abort");
        assert_eq!(control.error(), None);
        let plan = outcome.committed.expect("crash must force a re-map");
        assert!(!plan.to.nodes_used().contains(&n(1)));
        let (migrations, bytes) = aloop.migration_totals();
        assert!(migrations > 0, "shard moves must be counted");
        assert!(bytes > 0, "moved shards carry their bytes");
    }

    #[test]
    fn exclusive_state_migrates_as_one_unit_on_crash() {
        // Declared exclusive state on the crashed node: one
        // whole-instance migration, full byte charge, no abort.
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        cfg.stateless = vec![true, false, true];
        cfg.state_access = vec![
            StateAccess::Stateless,
            StateAccess::Exclusive,
            StateAccess::Stateless,
        ];
        cfg.state_bytes = vec![0, 1000, 0];
        cfg.faults = FaultPlan::new().crash(n(1), SimTime::from_secs_f64(1.0));
        let control = cfg.control.clone();
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::with_selection(
            mapping,
            crate::routing::Selection::RoundRobin,
            3,
        ));
        let mut backend = TestBackend {
            avail: vec![1.0; 3],
            now: SimTime::from_secs_f64(1.5),
            commits: vec![],
            completed: 0,
        };
        let outcome = aloop.poll_faults(&mut backend, &routing);
        assert!(!outcome.fatal);
        assert_eq!(control.error(), None);
        assert!(outcome.committed.is_some());
        let (migrations, bytes) = aloop.migration_totals();
        assert_eq!(migrations, 1, "exclusive state moves as one unit");
        assert_eq!(bytes, 1000);
    }

    #[test]
    fn stateful_stage_survives_a_finite_outage() {
        // An outage is recoverable: the stage's items park and the node
        // (with its state) comes back — no fatal error, unlike a crash.
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        cfg.stateless = vec![true, false, true]; // stage 1 stateful on n1
        cfg.faults = FaultPlan::new().outage(
            n(1),
            SimTime::from_secs_f64(1.0),
            SimTime::from_secs_f64(3.0),
        );
        let control = cfg.control.clone();
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::with_selection(
            mapping,
            crate::routing::Selection::RoundRobin,
            3,
        ));
        let mut backend = TestBackend {
            avail: vec![1.0; 3],
            now: SimTime::from_secs_f64(1.5),
            commits: vec![],
            completed: 0,
        };
        let outcome = aloop.poll_faults(&mut backend, &routing);
        assert!(!outcome.fatal, "a finite outage must not be fatal");
        assert!(!aloop.is_fatal());
        assert_eq!(control.error(), None);
        assert!(routing.read().unwrap().is_down(n(1)));
    }

    #[test]
    fn all_nodes_down_is_fatal() {
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        cfg.faults = FaultPlan::new()
            .crash(n(0), SimTime::from_secs_f64(1.0))
            .crash(n(1), SimTime::from_secs_f64(1.0))
            .crash(n(2), SimTime::from_secs_f64(1.0));
        let control = cfg.control.clone();
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::with_selection(
            mapping,
            crate::routing::Selection::RoundRobin,
            3,
        ));
        let mut backend = TestBackend {
            avail: vec![1.0; 3],
            now: SimTime::from_secs_f64(2.0),
            commits: vec![],
            completed: 0,
        };
        assert!(aloop.poll_faults(&mut backend, &routing).fatal);
        assert_eq!(
            control.error(),
            Some(crate::session::RunError::AllNodesDown)
        );
    }

    #[test]
    fn static_policy_marks_down_but_never_remaps_and_fails_on_permanent_loss() {
        let (mut cfg, mapping) = rig(Policy::Static, 3);
        cfg.faults = FaultPlan::new().crash(n(1), SimTime::from_secs_f64(1.0));
        let control = cfg.control.clone();
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::with_selection(
            mapping.clone(),
            crate::routing::Selection::RoundRobin,
            3,
        ));
        let mut backend = TestBackend {
            avail: vec![1.0; 3],
            now: SimTime::from_secs_f64(1.5),
            commits: vec![],
            completed: 0,
        };
        let outcome = aloop.poll_faults(&mut backend, &routing);
        assert!(outcome.committed.is_none(), "static must not re-map");
        assert!(routing.read().unwrap().is_down(n(1)));
        assert_eq!(routing.read().unwrap().mapping(), &mapping);
        // A permanent loss of a hosting node can never complete under
        // static: surfaced as the typed fatal error.
        assert!(outcome.fatal);
        assert_eq!(
            control.error(),
            Some(crate::session::RunError::NodeLostUnderStatic { node: 1 })
        );
    }

    #[test]
    fn regret_guard_reverts_underperforming_mapping() {
        let (mut cfg, mapping) = rig(Policy::periodic_default(), 3);
        // Make the planner remap-happy and the guard fast.
        cfg.controller.decision = adapipe_mapper::decide::DecisionConfig {
            min_relative_gain: 0.0,
            cost_benefit_factor: 0.0,
        };
        cfg.controller.guard_bad_ticks = 2;
        let guard_hold = cfg.controller.guard_hold_ticks;
        let mut aloop = AdaptationLoop::new(cfg, &mapping, &[1.0; 3]);
        let routing = RwLock::new(RoutingTable::new(mapping.clone()));
        let mut backend = TestBackend {
            avail: vec![1.0, 0.05, 1.0],
            now: SimTime::ZERO,
            completed: 0,
            commits: vec![],
        };
        // Drive until the forecast-led re-map happens…
        let mut tick = 0u64;
        loop {
            tick += 1;
            backend.now = SimTime::from_secs_f64(tick as f64 * 5.0);
            aloop.sample(&backend);
            if aloop.tick(&mut backend, &routing).is_some() {
                break;
            }
            assert!(tick < 20, "no initial re-map");
        }
        let adopted = routing.read().unwrap().mapping().clone();
        // …then starve realized throughput (completed never moves): the
        // guard must revert to the original mapping within a few ticks.
        let mut reverted = None;
        for _ in 0..4 {
            tick += 1;
            backend.now = SimTime::from_secs_f64(tick as f64 * 5.0);
            aloop.sample(&backend);
            if let Some(plan) = aloop.tick(&mut backend, &routing) {
                reverted = Some(plan);
                break;
            }
        }
        let plan = reverted.expect("guard must revert");
        assert_eq!(plan.from, adopted);
        assert_eq!(plan.to, mapping, "revert restores the guarded mapping");
        // Planning is held down afterwards.
        let held_until = aloop.ticks_seen() + guard_hold;
        for _ in aloop.ticks_seen()..held_until.saturating_sub(1) {
            tick += 1;
            backend.now = SimTime::from_secs_f64(tick as f64 * 5.0);
            aloop.sample(&backend);
            assert!(
                aloop.tick(&mut backend, &routing).is_none(),
                "hold-down violated"
            );
        }
    }
}
