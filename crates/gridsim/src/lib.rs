//! # adapipe-gridsim
//!
//! A deterministic discrete-event substrate standing in for the physical
//! computational grid of *An Adaptive Parallel Pipeline Pattern for Grids*
//! (Gonzalez-Velez & Cole, IPDPS 2008).
//!
//! The crate models exactly what the adaptive pipeline pattern observes
//! and exploits about a grid:
//!
//! * **Heterogeneous nodes** ([`node`]) with nominal speeds and
//!   time-varying *availability* — the fraction of the node usable by the
//!   application, the rest being consumed by other grid users;
//! * **Background load** ([`load`]) as pure, seeded functions of simulated
//!   time (steps, square waves, sinusoids, bounded random walks, Markov
//!   on/off processes, explicit traces), so work can be integrated across
//!   future load changes exactly and runs replay bit-for-bit;
//! * **Heterogeneous links** ([`net`]) as a latency + bandwidth matrix with
//!   optional per-link serialisation;
//! * **Event scheduling** ([`event`]) with deterministic tie-breaking;
//! * **Testbeds** ([`grid`]) — the three synthetic grids of experiment T1;
//! * **Fault injection** ([`fault`]) and **run recording** ([`trace`]).
//!
//! Higher layers (the pipeline engine in `adapipe-core`) drive the event
//! queue; this crate owns time, resources and their dynamics.
//!
//! ## Example
//!
//! ```
//! use adapipe_gridsim::prelude::*;
//!
//! // A 2× node that loses half its capacity at t = 10 s.
//! let node = Node::new(
//!     NodeSpec::new("edi-0", 2.0, 1),
//!     LoadModel::step(1.0, 0.5, SimTime::from_secs_f64(10.0)),
//! );
//! // 30 units of work started at t = 5 s: 10 done by t = 10, the
//! // remaining 20 at rate 1.0 finish at t = 30.
//! let done = node.completion_time(SimTime::from_secs_f64(5.0), 30.0);
//! assert!((done.as_secs_f64() - 30.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod fault;
pub mod grid;
pub mod load;
pub mod net;
pub mod node;
pub mod rng;
pub mod time;
pub mod trace;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::event::EventQueue;
    pub use crate::fault::{Fault, FaultPlan};
    pub use crate::grid::{testbed_grid32, testbed_hetero8, testbed_small3, GridSpec, Testbed};
    pub use crate::load::{LoadModel, OverlayWindow, PiecewiseConst};
    pub use crate::net::{LinkQueue, LinkSpec, Topology};
    pub use crate::node::{Node, NodeId, NodeSpec};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{ThroughputTimeline, TimeSeries, UtilisationMeter};
}

pub use prelude::*;
