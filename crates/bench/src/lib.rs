//! # adapipe-bench
//!
//! The experiment-reproduction harness: one `repro_*` binary per table
//! and figure of the (reconstructed) evaluation, plus criterion
//! micro-benchmarks for the timing-sensitive claims.
//!
//! Every binary prints a self-describing header, an aligned table for
//! humans, and machine-readable CSV lines prefixed with `csv,` so plots
//! can be regenerated with a one-line grep.
//!
//! | Binary | Experiment |
//! |---|---|
//! | `repro_t1` | Table 1 — testbed inventory |
//! | `repro_t2` | Table 2 — model-selected vs simulated-best mapping |
//! | `repro_f1` | Figure 1 — throughput timeline under a load step |
//! | `repro_f2` | Figure 2 — completion time vs stream length |
//! | `repro_f3` | Figure 3 — speedup vs processor count (replication on/off) |
//! | `repro_f4` | Figure 4 — adaptivity gain vs load volatility |
//! | `repro_t3` | Table 3 — adaptation decision cost |
//! | `repro_f5` | Figure 5 — monitoring/adaptation knob sensitivity |
//! | `repro_f6` | Figure 6 — threaded engine, one box, wall clock |
//! | `repro_t4` | Table 4 — forecaster accuracy per load class |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

/// An aligned text table that doubles as CSV.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the aligned table followed by `csv,`-prefixed lines.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            println!("  {}", joined.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
        println!();
        println!("csv,{}", self.headers.join(","));
        for row in &self.rows {
            println!("csv,{}", row.join(","));
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, expectation: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("expected shape: {expectation}");
    println!("==============================================================");
    println!();
}

/// Times `f` over `iters` runs, returning mean seconds per run.
pub fn time_mean<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Formats seconds adaptively (s / ms / µs).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_accepts_matching_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        t.print(); // must not panic
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn time_mean_is_positive() {
        let mean = time_mean(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(mean >= 0.0);
    }

    #[test]
    fn fmt_secs_picks_units() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000025), "2.5us");
    }
}
