//! Pipeline execution on the discrete-event grid simulator.
//!
//! Items flow through stage instances placed on grid nodes according to
//! the current [`Mapping`]. Each node is a `cores`-server FCFS queue:
//! coalesced stages time-share their host by queueing behind each other,
//! replicated stages receive items round-robin. Task durations integrate
//! the node's availability function exactly, so background load slows
//! service in precisely the way the pattern must detect and react to.
//!
//! Re-mapping semantics: in-flight tasks finish on their old host; queued
//! items of a moved stage re-home to the new host after the migration
//! cost (state transfer + drain overhead); items already in transit
//! towards an old host are forwarded on arrival. Stateful stages
//! additionally block their new instance until the state arrives.

use crate::controller::{Controller, ControllerConfig};
use crate::policy::Policy;
use crate::report::RunReport;
use crate::spec::PipelineSpec;
use adapipe_gridsim::event::EventQueue;
use adapipe_gridsim::grid::GridSpec;
use adapipe_gridsim::net::LinkQueue;
use adapipe_gridsim::node::NodeId;
use adapipe_gridsim::rng::{exp_at, mix, unit_f64};
use adapipe_gridsim::time::{SimDuration, SimTime};
use adapipe_gridsim::trace::ThroughputTimeline;
use adapipe_mapper::mapping::Mapping;
use adapipe_mapper::model::evaluate;
use adapipe_monitor::sensor::NoisyChannel;
use std::collections::{HashMap, VecDeque};

/// How input items enter the pipeline.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// The whole stream is available at `t = 0` (closed workload).
    AllAtOnce,
    /// One item every `1/rate` seconds.
    Uniform {
        /// Items per second.
        rate: f64,
    },
    /// Poisson arrivals with the given mean rate, deterministic per seed.
    Poisson {
        /// Mean items per second.
        rate: f64,
        /// Stream seed.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// Materialises the arrival time of every item.
    fn schedule(&self, items: u64) -> Vec<SimTime> {
        match *self {
            ArrivalProcess::AllAtOnce => vec![SimTime::ZERO; items as usize],
            ArrivalProcess::Uniform { rate } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                (0..items)
                    .map(|i| SimTime::from_secs_f64(i as f64 / rate))
                    .collect()
            }
            ArrivalProcess::Poisson { rate, seed } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                let mut t = 0.0f64;
                (0..items)
                    .map(|i| {
                        t += exp_at(seed, i, 1.0 / rate);
                        SimTime::from_secs_f64(t)
                    })
                    .collect()
            }
        }
    }
}

/// Simulation run configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Stream length.
    pub items: u64,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Adaptation policy.
    pub policy: Policy,
    /// Controller tunables (planner, hysteresis, monitoring window).
    pub controller: ControllerConfig,
    /// Launch mapping; `None` plans one from availability at `t = 0`.
    pub initial_mapping: Option<Mapping>,
    /// Relative magnitude of availability observation noise (0 = clean).
    pub observation_noise: f64,
    /// Seed for the observation noise stream.
    pub noise_seed: u64,
    /// Bucket width of the reported throughput timeline.
    pub timeline_bucket: SimDuration,
    /// Serialise per-direction link transfers (adds contention the
    /// analytic model ignores).
    pub link_contention: bool,
    /// Safety horizon: the run stops (truncated) past this time.
    pub max_sim_time: SimDuration,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            items: 1_000,
            arrivals: ArrivalProcess::AllAtOnce,
            policy: Policy::Static,
            controller: ControllerConfig::default(),
            initial_mapping: None,
            observation_noise: 0.0,
            noise_seed: 1,
            timeline_bucket: SimDuration::from_secs(5),
            link_contention: false,
            max_sim_time: SimDuration::from_secs(7 * 24 * 3600),
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// Item enters the system at the source.
    Arrive { item: u64 },
    /// Item lands at a stage instance (stage == Ns means "delivered").
    StageIn {
        item: u64,
        stage: usize,
        node: usize,
    },
    /// A task finished on a node core.
    Done {
        item: u64,
        stage: usize,
        node: usize,
        started: SimTime,
    },
    /// Planning tick.
    Tick,
    /// Availability observation (scheduled `samples_per_interval` times
    /// per planning tick).
    Sample,
    /// Wake a node whose instance became ready after migration.
    Retry { node: usize },
}

/// Runs `spec` on `grid` under `cfg` and reports the outcome.
pub fn run(grid: &GridSpec, spec: &PipelineSpec, cfg: &SimConfig) -> RunReport {
    Sim::new(grid, spec, cfg).run()
}

struct Sim<'a> {
    grid: &'a GridSpec,
    spec: &'a PipelineSpec,
    cfg: &'a SimConfig,
    profile: adapipe_mapper::model::PipelineProfile,
    speeds: Vec<f64>,
    state_bytes: Vec<u64>,
    ns: usize,

    events: EventQueue<Ev>,
    mapping: Mapping,
    queues: HashMap<(usize, usize), VecDeque<u64>>,
    ready_at: HashMap<(usize, usize), SimTime>,
    free_cores: Vec<u32>,
    rr_route: Vec<usize>,
    rr_exec: Vec<usize>,
    link_q: HashMap<(usize, usize), LinkQueue>,

    controller: Controller,
    noise: NoisyChannel,
    expected_tput: f64,
    last_tick_completed: u64,
    ticks_seen: u32,
    /// Mapping to revert to if the regret guard trips, with the tick the
    /// current mapping was adopted.
    guard_prev: Option<(Mapping, u32)>,
    guard_bad: u32,
    hold_until_tick: u32,

    horizon: SimTime,
    arrival_time: Vec<SimTime>,
    completed: u64,
    latency_sum: SimDuration,
    latencies: Vec<SimDuration>,
    last_completion: SimTime,
    node_busy: Vec<SimDuration>,
    timeline: ThroughputTimeline,
    stage_metrics: crate::metrics::StageMetrics,
}

impl<'a> Sim<'a> {
    fn new(grid: &'a GridSpec, spec: &'a PipelineSpec, cfg: &'a SimConfig) -> Self {
        let profile = spec.profile();
        profile.validate();
        let np = grid.len();
        let speeds: Vec<f64> = grid.node_ids().map(|id| grid.node(id).spec.speed).collect();
        let controller = Controller::new(np, cfg.controller.clone());

        // Launch mapping: supplied, or planned from availability at t=0
        // (what a launch-time scheduler with fresh information would do).
        let mapping = cfg.initial_mapping.clone().unwrap_or_else(|| {
            let rates = grid.rates_at(SimTime::ZERO);
            adapipe_mapper::search::plan(&profile, &rates, grid.topology(), &cfg.controller.planner)
                .mapping
        });
        assert_eq!(mapping.len(), spec.len(), "mapping must cover every stage");
        for node in mapping.nodes_used() {
            assert!(
                node.index() < np,
                "mapping uses node {node} outside the grid"
            );
        }

        let launch_rates = grid.rates_at(SimTime::ZERO);
        let expected_tput = evaluate(&profile, &mapping, &launch_rates, grid.topology()).throughput;

        Sim {
            ns: spec.len(),
            state_bytes: spec.stages.iter().map(|s| s.state_bytes).collect(),
            profile,
            speeds,
            grid,
            spec,
            cfg,
            events: EventQueue::new(),
            mapping,
            queues: HashMap::new(),
            ready_at: HashMap::new(),
            free_cores: grid.node_ids().map(|id| grid.node(id).spec.cores).collect(),
            rr_route: vec![0; spec.len()],
            rr_exec: vec![0; np],
            link_q: HashMap::new(),
            controller,
            noise: if cfg.observation_noise > 0.0 {
                NoisyChannel::new(cfg.noise_seed, cfg.observation_noise)
            } else {
                NoisyChannel::clean()
            },
            expected_tput,
            last_tick_completed: 0,
            ticks_seen: 0,
            guard_prev: None,
            guard_bad: 0,
            hold_until_tick: 0,
            horizon: SimTime::ZERO + cfg.max_sim_time,
            arrival_time: vec![SimTime::ZERO; cfg.items as usize],
            completed: 0,
            latency_sum: SimDuration::ZERO,
            latencies: Vec::with_capacity(cfg.items as usize),
            last_completion: SimTime::ZERO,
            node_busy: vec![SimDuration::ZERO; np],
            timeline: ThroughputTimeline::new(cfg.timeline_bucket),
            stage_metrics: crate::metrics::StageMetrics::new(spec.len()),
        }
    }

    fn run(mut self) -> RunReport {
        for (item, &at) in self
            .cfg
            .arrivals
            .schedule(self.cfg.items)
            .iter()
            .enumerate()
        {
            self.events.schedule(at, Ev::Arrive { item: item as u64 });
        }
        if let Some(interval) = self.cfg.policy.interval() {
            self.events.schedule(SimTime::ZERO + interval, Ev::Tick);
            let sample_dt = self.sample_dt(interval);
            self.events.schedule(SimTime::ZERO + sample_dt, Ev::Sample);
        }

        let horizon = self.horizon;
        let mut truncated = false;
        while self.completed < self.cfg.items {
            let Some((now, ev)) = self.events.pop() else {
                truncated = true;
                break;
            };
            if now > horizon {
                truncated = true;
                break;
            }
            match ev {
                Ev::Arrive { item } => self.on_arrive(item, now),
                Ev::StageIn { item, stage, node } => self.on_stage_in(item, stage, node, now),
                Ev::Done {
                    item,
                    stage,
                    node,
                    started,
                } => self.on_done(item, stage, node, started, now),
                Ev::Tick => self.on_tick(now),
                Ev::Sample => self.on_sample(now),
                Ev::Retry { node } => self.try_dispatch(node, now),
            }
        }

        let planning_cycles = self.controller.plans_evaluated();
        RunReport {
            completed: self.completed,
            makespan: self.last_completion,
            mean_latency: if self.completed > 0 {
                SimDuration::from_secs_f64(self.latency_sum.as_secs_f64() / self.completed as f64)
            } else {
                SimDuration::ZERO
            },
            latencies: self.latencies,
            timeline: self.timeline,
            adaptations: self.controller.into_events(),
            node_busy: self.node_busy,
            final_mapping: self.mapping,
            planning_cycles,
            stage_metrics: self.stage_metrics,
            truncated,
        }
    }

    // --- event handlers -------------------------------------------------

    fn on_arrive(&mut self, item: u64, now: SimTime) {
        self.arrival_time[item as usize] = now;
        let dest = self.choose_replica(0);
        let at = match self.spec.source {
            Some(src) => self.transfer(src.index(), dest, self.spec.input_bytes, now),
            None => now,
        };
        self.events.schedule(
            at,
            Ev::StageIn {
                item,
                stage: 0,
                node: dest,
            },
        );
    }

    fn on_stage_in(&mut self, item: u64, stage: usize, node: usize, now: SimTime) {
        if stage == self.ns {
            self.record_completion(item, now);
            return;
        }
        if !self.mapping.placement(stage).contains(NodeId(node)) {
            // The stage moved while this item was in transit: forward it.
            let dest = self.choose_replica(stage);
            let bytes = self.boundary_bytes_into(stage);
            let at = self.transfer(node, dest, bytes, now);
            self.events.schedule(
                at,
                Ev::StageIn {
                    item,
                    stage,
                    node: dest,
                },
            );
            return;
        }
        self.queues
            .entry((stage, node))
            .or_default()
            .push_back(item);
        self.try_dispatch(node, now);
    }

    fn on_done(&mut self, item: u64, stage: usize, node: usize, started: SimTime, now: SimTime) {
        self.free_cores[node] += 1;
        self.node_busy[node] = self.node_busy[node].saturating_add(now - started);
        self.stage_metrics
            .record(stage, now - started, self.spec.draw_work(stage, item));
        // Route onward.
        if stage + 1 == self.ns {
            match self.spec.sink {
                Some(sink) => {
                    let at =
                        self.transfer(node, sink.index(), self.spec.stages[stage].out_bytes, now);
                    self.events.schedule(
                        at,
                        Ev::StageIn {
                            item,
                            stage: self.ns,
                            node: sink.index(),
                        },
                    );
                }
                None => self.record_completion(item, now),
            }
        } else {
            let dest = self.choose_replica(stage + 1);
            let at = self.transfer(node, dest, self.spec.stages[stage].out_bytes, now);
            self.events.schedule(
                at,
                Ev::StageIn {
                    item,
                    stage: stage + 1,
                    node: dest,
                },
            );
        }
        self.try_dispatch(node, now);
    }

    /// Sub-interval spacing of availability observations.
    fn sample_dt(&self, interval: SimDuration) -> SimDuration {
        let divisions = self.cfg.controller.samples_per_interval.max(1);
        SimDuration::from_nanos((interval.as_nanos() / divisions as u64).max(1))
    }

    /// One availability observation on every node (the NWS stand-in).
    /// Like NWS's CPU sensor, the observation is the *mean* availability
    /// over the elapsed sample window, not a point sample: point-sampling
    /// a load oscillating near the sensing frequency aliases into
    /// forecast flapping and re-mapping churn.
    fn on_sample(&mut self, now: SimTime) {
        let interval = self.cfg.policy.interval().expect("sample implies interval");
        let sample_dt = self.sample_dt(interval);
        let now_secs = now.as_secs_f64();
        let window_start = SimTime::from_nanos(now.as_nanos().saturating_sub(sample_dt.as_nanos()));
        for i in 0..self.grid.len() {
            let load = &self.grid.node(NodeId(i)).load;
            let truth = if window_start < now {
                load.mean_availability(window_start, now)
            } else {
                load.availability(now)
            };
            let observed = self.noise.perturb(truth).clamp(0.0, 1.0);
            self.controller.observe_availability(i, now_secs, observed);
        }
        if self.completed < self.cfg.items {
            self.events.schedule(now + sample_dt, Ev::Sample);
        }
    }

    fn on_tick(&mut self, now: SimTime) {
        let interval = self.cfg.policy.interval().expect("tick implies interval");

        // 2. Realized-throughput regret guard: compare what the adopted
        // mapping delivers against what the model promised; on sustained
        // shortfall revert and hold. Measured throughput is immune to the
        // forecast pathologies that motivate this (see ControllerConfig).
        self.ticks_seen += 1;
        let realized = (self.completed - self.last_tick_completed) as f64 / interval.as_secs_f64();
        self.last_tick_completed = self.completed;
        let guard_cfg_ticks = self.cfg.controller.guard_bad_ticks;
        if guard_cfg_ticks > 0 {
            if let Some((prev, adopted_tick)) = self.guard_prev.clone() {
                // Skip the adoption tick itself: migration transients
                // depress throughput legitimately.
                if self.ticks_seen > adopted_tick + 1 && self.expected_tput > 0.0 {
                    if realized < self.cfg.controller.guard_tolerance * self.expected_tput {
                        self.guard_bad += 1;
                    } else {
                        self.guard_bad = 0;
                        // The mapping has proven itself: stop guarding it.
                        if self.ticks_seen > adopted_tick + 3 {
                            self.guard_prev = None;
                        }
                    }
                    if self.guard_bad >= guard_cfg_ticks {
                        // Revert and hold.
                        let rates = self.controller.forecast_rates(&self.speeds);
                        self.expected_tput =
                            evaluate(&self.profile, &prev, &rates, self.grid.topology()).throughput;
                        self.apply_remap(prev, now);
                        self.guard_prev = None;
                        self.guard_bad = 0;
                        self.hold_until_tick =
                            self.ticks_seen + self.cfg.controller.guard_hold_ticks;
                    }
                }
            }
        }

        // 3. Policy-specific planning — but never before the warm-up
        // observation history exists, and not during a guard hold-down.
        let warmed_up = self.ticks_seen > self.cfg.controller.warmup_ticks
            && self.ticks_seen >= self.hold_until_tick;
        let remaining = self.cfg.items - self.completed;
        let rates: Option<Vec<f64>> = match self.cfg.policy {
            _ if !warmed_up => None,
            Policy::Static => None,
            Policy::Periodic { .. } => Some(self.controller.forecast_rates(&self.speeds)),
            Policy::Reactive { degradation, .. } => {
                if realized < degradation * self.expected_tput {
                    Some(self.controller.forecast_rates(&self.speeds))
                } else {
                    None
                }
            }
            Policy::Oracle { .. } => {
                // True mean availability over the next interval.
                let to = now + interval;
                Some(
                    (0..self.grid.len())
                        .map(|i| {
                            self.speeds[i]
                                * self.grid.node(NodeId(i)).load.mean_availability(now, to)
                        })
                        .collect(),
                )
            }
        };

        if let Some(rates) = rates {
            let new = self.controller.consider(
                now,
                &self.profile,
                self.grid.topology(),
                &rates,
                &self.mapping,
                remaining,
                &self.state_bytes,
            );
            if let Some(new_mapping) = new {
                self.expected_tput =
                    evaluate(&self.profile, &new_mapping, &rates, self.grid.topology()).throughput;
                self.guard_prev = Some((self.mapping.clone(), self.ticks_seen));
                self.guard_bad = 0;
                self.apply_remap(new_mapping, now);
            }
        }

        // 4. Next tick (unless the stream is already finished).
        if self.completed < self.cfg.items {
            self.events.schedule(now + interval, Ev::Tick);
        }
    }

    // --- mechanics --------------------------------------------------------

    /// Chooses the replica host of `stage` for the next item (round-robin).
    fn choose_replica(&mut self, stage: usize) -> usize {
        let placement = self.mapping.placement(stage);
        let idx = self.rr_route[stage] % placement.width();
        self.rr_route[stage] += 1;
        placement.hosts()[idx].index()
    }

    /// Bytes entering `stage` (its upstream boundary).
    fn boundary_bytes_into(&self, stage: usize) -> u64 {
        if stage == 0 {
            self.spec.input_bytes
        } else {
            self.spec.stages[stage - 1].out_bytes
        }
    }

    /// Arrival time of `bytes` moved `from → to` starting at `now`.
    fn transfer(&mut self, from: usize, to: usize, bytes: u64, now: SimTime) -> SimTime {
        let d = self
            .grid
            .topology()
            .transfer_time(NodeId(from), NodeId(to), bytes);
        if self.cfg.link_contention && from != to {
            self.link_q.entry((from, to)).or_default().schedule(now, d)
        } else {
            now + d
        }
    }

    /// Starts as many queued tasks as the node has free cores.
    fn try_dispatch(&mut self, node: usize, now: SimTime) {
        while self.free_cores[node] > 0 {
            let Some(stage) = self.pick_ready_stage(node, now) else {
                break;
            };
            let item = self
                .queues
                .get_mut(&(stage, node))
                .expect("picked stage has a queue")
                .pop_front()
                .expect("picked stage queue is non-empty");
            let work = self.spec.draw_work(stage, item);
            let done_at = self.grid.node(NodeId(node)).completion_time(now, work);
            if done_at > self.horizon {
                // The node cannot finish this task within the run horizon
                // (it is dead or as good as dead): park the item; only a
                // re-mapping can rescue this queue.
                self.queues
                    .get_mut(&(stage, node))
                    .expect("queue exists")
                    .push_front(item);
                break;
            }
            self.free_cores[node] -= 1;
            self.events.schedule(
                done_at,
                Ev::Done {
                    item,
                    stage,
                    node,
                    started: now,
                },
            );
        }
    }

    /// The next stage hosted on `node` with a ready, non-empty queue,
    /// scanned round-robin for fairness among coalesced stages.
    fn pick_ready_stage(&mut self, node: usize, now: SimTime) -> Option<usize> {
        let ns = self.ns;
        let start = self.rr_exec[node];
        for off in 0..ns {
            let stage = (start + off) % ns;
            if !self.mapping.placement(stage).contains(NodeId(node)) {
                continue;
            }
            if self
                .ready_at
                .get(&(stage, node))
                .is_some_and(|&ready| ready > now)
            {
                continue;
            }
            if self
                .queues
                .get(&(stage, node))
                .is_some_and(|q| !q.is_empty())
            {
                self.rr_exec[node] = (stage + 1) % ns;
                return Some(stage);
            }
        }
        None
    }

    fn record_completion(&mut self, item: u64, now: SimTime) {
        self.completed += 1;
        self.timeline.record(now);
        self.last_completion = now;
        let latency = now.saturating_since(self.arrival_time[item as usize]);
        self.latency_sum = self.latency_sum.saturating_add(latency);
        self.latencies.push(latency);
    }

    /// Applies an accepted re-mapping: queued items of moved stages
    /// re-home to the new hosts after the migration cost; stateful stages
    /// block their new instance until state arrives.
    fn apply_remap(&mut self, new_mapping: Mapping, now: SimTime) {
        let moved = self.mapping.diff(&new_mapping);
        let cost = self.controller.migration_cost(
            &self.mapping,
            &new_mapping,
            &self.state_bytes,
            self.grid.topology(),
        );
        let ready = now + cost;
        for &stage in &moved {
            let old_hosts: Vec<usize> = self
                .mapping
                .placement(stage)
                .hosts()
                .iter()
                .map(|h| h.index())
                .collect();
            let new_placement = new_mapping.placement(stage).clone();
            // Drain queues on hosts that no longer serve this stage.
            let mut orphans: Vec<u64> = Vec::new();
            for &host in &old_hosts {
                if !new_placement.contains(NodeId(host)) {
                    if let Some(q) = self.queues.get_mut(&(stage, host)) {
                        orphans.extend(q.drain(..));
                    }
                }
            }
            // Re-home orphans round-robin over the new hosts; they arrive
            // once migration completes.
            for (k, item) in orphans.into_iter().enumerate() {
                let dest = new_placement.hosts()[k % new_placement.width()].index();
                self.events.schedule(
                    ready,
                    Ev::StageIn {
                        item,
                        stage,
                        node: dest,
                    },
                );
            }
            // Stateful stages cannot serve on the new hosts until their
            // state lands.
            if !self.spec.stages[stage].stateless {
                for &host in new_placement.hosts() {
                    self.ready_at.insert((stage, host.index()), ready);
                    self.events
                        .schedule(ready, Ev::Retry { node: host.index() });
                }
            }
            // Round-robin routing restarts deterministically.
            self.rr_route[stage] = 0;
        }
        self.mapping = new_mapping;
    }
}

/// Deterministic jitter helper exposed for workload crates: uniform in
/// `[0, 1)` for `(seed, index)` without materialising a stream.
pub fn jitter(seed: u64, index: u64) -> f64 {
    unit_f64(mix(seed, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_gridsim::fault::FaultPlan;
    use adapipe_gridsim::grid::{testbed_hetero8, testbed_small3, GridSpec};
    use adapipe_gridsim::load::LoadModel;
    use adapipe_gridsim::net::{LinkSpec, Topology};
    use adapipe_gridsim::node::{Node, NodeSpec};

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    /// 3 identical free nodes, 3 balanced unit-work stages, no bytes.
    fn balanced_setup() -> (GridSpec, PipelineSpec) {
        (testbed_small3(), PipelineSpec::balanced(3, 1.0, 0))
    }

    #[test]
    fn balanced_pipeline_achieves_model_throughput() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 200,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 200);
        assert!(!report.truncated);
        // Model: latency 3 s + 199 items at 1 item/s = 202 s.
        let makespan = report.makespan.as_secs_f64();
        assert!((makespan - 202.0).abs() < 2.0, "makespan={makespan}");
    }

    #[test]
    fn coalesced_mapping_halves_throughput() {
        let (grid, spec) = balanced_setup();
        let all_on_one = SimConfig {
            items: 100,
            initial_mapping: Some(Mapping::all_on(n(0), 3)),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &all_on_one);
        assert_eq!(report.completed, 100);
        // 3 units of work per item on one unit-speed node ⇒ ≈ 300 s.
        let makespan = report.makespan.as_secs_f64();
        assert!((makespan - 300.0).abs() < 3.0, "makespan={makespan}");
        assert!(report.node_utilisation(0) > 0.95);
    }

    #[test]
    fn simulation_is_deterministic() {
        let grid = testbed_hetero8(42);
        let spec = PipelineSpec::balanced(4, 1.0, 10_000);
        let cfg = SimConfig {
            items: 300,
            policy: Policy::periodic_default(),
            ..SimConfig::default()
        };
        let a = run(&grid, &spec, &cfg);
        let b = run(&grid, &spec, &cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.adaptations.len(), b.adaptations.len());
    }

    #[test]
    fn planned_launch_mapping_beats_all_on_slowest() {
        let grid = testbed_hetero8(1);
        let spec = PipelineSpec::balanced(4, 2.0, 1000);
        // Planned (None → planner) vs a deliberately bad launch mapping.
        let planned = run(
            &grid,
            &spec,
            &SimConfig {
                items: 200,
                ..SimConfig::default()
            },
        );
        let bad = run(
            &grid,
            &spec,
            &SimConfig {
                items: 200,
                initial_mapping: Some(Mapping::all_on(n(7), 4)), // slowest node
                ..SimConfig::default()
            },
        );
        assert!(planned.makespan < bad.makespan);
    }

    #[test]
    fn adaptive_recovers_from_load_step_static_does_not() {
        // Node 1 hosts a stage and collapses to 5 % at t = 50 s.
        let mut grid = testbed_small3();
        FaultPlan::new()
            .slowdown(n(1), secs(50.0), secs(100_000.0), 0.05)
            .apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1), n(2)]);

        let static_cfg = SimConfig {
            items: 500,
            initial_mapping: Some(mapping.clone()),
            policy: Policy::Static,
            ..SimConfig::default()
        };
        let adaptive_cfg = SimConfig {
            items: 500,
            initial_mapping: Some(mapping),
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            ..SimConfig::default()
        };
        let static_report = run(&grid, &spec, &static_cfg);
        let adaptive_report = run(&grid, &spec, &adaptive_cfg);

        assert_eq!(static_report.completed, 500);
        assert_eq!(adaptive_report.completed, 500);
        assert!(adaptive_report.adaptation_count() >= 1, "must re-map");
        // Static: post-step the bottleneck is 1/0.05 = 20 s/item.
        // Adaptive re-maps off node 1 (e.g. coalescing on the free nodes).
        assert!(
            adaptive_report.makespan.as_secs_f64() < 0.5 * static_report.makespan.as_secs_f64(),
            "adaptive {} vs static {}",
            adaptive_report.makespan,
            static_report.makespan
        );
    }

    #[test]
    fn oracle_is_at_least_as_good_as_adaptive() {
        let mut grid = testbed_small3();
        FaultPlan::new()
            .slowdown(n(1), secs(30.0), secs(100_000.0), 0.1)
            .apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let mk = |policy| SimConfig {
            items: 400,
            initial_mapping: Some(mapping.clone()),
            policy,
            ..SimConfig::default()
        };
        let adaptive = run(
            &grid,
            &spec,
            &mk(Policy::Periodic {
                interval: SimDuration::from_secs(5),
            }),
        );
        let oracle = run(
            &grid,
            &spec,
            &mk(Policy::Oracle {
                interval: SimDuration::from_secs(5),
            }),
        );
        // Allow a small tolerance: the oracle plans on interval means, so
        // pathological tie-breaks can cost it a hair.
        assert!(
            oracle.makespan.as_secs_f64() <= adaptive.makespan.as_secs_f64() * 1.05,
            "oracle {} vs adaptive {}",
            oracle.makespan,
            adaptive.makespan
        );
    }

    #[test]
    fn reactive_adapts_only_on_degradation() {
        let mut grid = testbed_small3();
        FaultPlan::new()
            .slowdown(n(1), secs(50.0), secs(100_000.0), 0.05)
            .apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let cfg = SimConfig {
            items: 400,
            initial_mapping: Some(mapping),
            policy: Policy::Reactive {
                interval: SimDuration::from_secs(5),
                degradation: 0.7,
            },
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 400);
        assert!(report.adaptation_count() >= 1);
        // The first adaptation happens after the fault, not before.
        assert!(report.adaptations[0].at >= secs(50.0));
    }

    #[test]
    fn replicated_stage_processes_all_items_exactly_once() {
        let grid = testbed_small3();
        let mut spec = PipelineSpec::balanced(2, 1.0, 0);
        spec.stages[0].work = Box::new(crate::spec::ConstantWork(2.0));
        let mapping = Mapping::new(vec![
            adapipe_mapper::mapping::Placement::replicated(vec![n(0), n(1)]),
            adapipe_mapper::mapping::Placement::single(n(2)),
        ]);
        let cfg = SimConfig {
            items: 100,
            initial_mapping: Some(mapping),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 100);
        // Hot stage is halved: bottleneck = max(2/2, 1) = 1 s/item.
        assert!((report.makespan.as_secs_f64() - 102.0).abs() < 3.0);
    }

    #[test]
    fn stateful_stage_blocks_until_state_arrives() {
        // Stage 1 is stateful with 100 MB of state: migration over a LAN
        // takes ≈ 0.8 s; the adaptive run must still complete correctly.
        let mut grid = testbed_small3();
        FaultPlan::new()
            .slowdown(n(1), secs(20.0), secs(100_000.0), 0.02)
            .apply(&mut grid);
        let mut spec = PipelineSpec::balanced(3, 1.0, 0);
        spec.stages[1] = crate::spec::StageSpec::balanced("stateful", 1.0, 0).with_state(100 << 20);
        let cfg = SimConfig {
            items: 300,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 300);
        assert!(report.adaptation_count() >= 1);
        let migration = report.adaptations[0].migration_cost;
        assert!(
            migration > SimDuration::from_millis(500),
            "state transfer must dominate migration cost, got {migration}"
        );
    }

    #[test]
    fn crash_under_static_policy_truncates_run() {
        let mut grid = testbed_small3();
        FaultPlan::new().crash(n(1), secs(10.0)).apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let cfg = SimConfig {
            items: 200,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            policy: Policy::Static,
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert!(report.truncated, "static run must starve after the crash");
        assert!(report.completed < 200);
    }

    #[test]
    fn crash_under_adaptive_policy_completes() {
        let mut grid = testbed_small3();
        FaultPlan::new().crash(n(1), secs(10.0)).apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let cfg = SimConfig {
            items: 200,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 200, "adaptive run must survive the crash");
        assert!(!report.truncated);
    }

    #[test]
    fn poisson_arrivals_spread_completions() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 100,
            arrivals: ArrivalProcess::Poisson { rate: 0.5, seed: 3 },
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 100);
        // Arrival-limited: makespan ≈ 100/0.5 = 200 s, definitely > 150.
        assert!(report.makespan.as_secs_f64() > 150.0);
    }

    #[test]
    fn uniform_arrivals_respect_rate() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 50,
            arrivals: ArrivalProcess::Uniform { rate: 0.25 },
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 50);
        // Last arrival at 49/0.25 = 196 s + ~3 s latency.
        assert!((report.makespan.as_secs_f64() - 199.0).abs() < 3.0);
    }

    #[test]
    fn mean_latency_matches_pipeline_depth() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 1,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        // One item: latency = 3 stages × 1 s (+ negligible LAN hops).
        assert!((report.mean_latency.as_secs_f64() - 3.0).abs() < 0.1);
    }

    #[test]
    fn link_contention_serialises_big_transfers() {
        // Two stages on different nodes with huge items: with contention
        // the link is the bottleneck and serialises strictly.
        let grid = testbed_small3();
        let mut spec = PipelineSpec::balanced(2, 0.01, 0);
        spec.stages[0].out_bytes = 125_000_00; // 12.5 MB over 1 Gbit/s LAN = 0.1 s
        let mapping = Mapping::from_assignment(&[n(0), n(1)]);
        let mk = |contention| SimConfig {
            items: 100,
            initial_mapping: Some(mapping.clone()),
            link_contention: contention,
            ..SimConfig::default()
        };
        let without = run(&grid, &spec, &mk(false));
        let with = run(&grid, &spec, &mk(true));
        assert!(with.makespan >= without.makespan);
        assert_eq!(with.completed, 100);
    }

    #[test]
    fn zero_items_complete_instantly() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 0,
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan, SimTime::ZERO);
        assert!(!report.truncated);
    }

    #[test]
    fn observation_noise_does_not_break_adaptation() {
        let mut grid = testbed_small3();
        FaultPlan::new()
            .slowdown(n(1), secs(40.0), secs(100_000.0), 0.05)
            .apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let cfg = SimConfig {
            items: 400,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            observation_noise: 0.10,
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 400);
        assert!(report.adaptation_count() >= 1);
    }

    #[test]
    fn regret_guard_reverts_underperforming_remap() {
        // A load pattern the NWS family mispredicts: square wave
        // phase-locked to the adaptation interval. Force a remap-prone
        // controller (no hysteresis) and verify the guard steps in:
        // the run must end within a modest factor of static.
        let period = SimDuration::from_secs(10);
        let nodes = (0..4)
            .map(|i| {
                let load = match i {
                    1 => LoadModel::square_wave(1.0, 0.1, period, 0.5, SimDuration::ZERO),
                    3 => LoadModel::square_wave(1.0, 0.1, period, 0.5, period.mul_f64(0.5)),
                    _ => LoadModel::free(),
                };
                Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), load)
            })
            .collect();
        let grid = GridSpec::new(nodes, Topology::uniform(4, LinkSpec::lan()));
        let spec = PipelineSpec::balanced(4, 1.0, 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1), n(2), n(3)]);

        let mut with_guard = SimConfig {
            items: 400,
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            initial_mapping: Some(mapping.clone()),
            ..SimConfig::default()
        };
        with_guard.controller.decision = adapipe_mapper::decide::DecisionConfig {
            min_relative_gain: 0.0,
            cost_benefit_factor: 0.0,
        };

        let mut without_guard = with_guard.clone();
        without_guard.controller.guard_bad_ticks = 0; // disable

        let static_cfg = SimConfig {
            items: 400,
            initial_mapping: Some(mapping),
            ..SimConfig::default()
        };

        let guarded = run(&grid, &spec, &with_guard);
        let unguarded = run(&grid, &spec, &without_guard);
        let static_r = run(&grid, &spec, &static_cfg);
        assert_eq!(guarded.completed, 400);
        assert_eq!(unguarded.completed, 400);
        // The guard must not make things worse than the unguarded
        // controller, and must keep the loss vs static bounded.
        assert!(
            guarded.makespan.as_secs_f64() <= unguarded.makespan.as_secs_f64() * 1.05,
            "guard hurt: {} vs {}",
            guarded.makespan,
            unguarded.makespan
        );
        assert!(
            guarded.makespan.as_secs_f64() <= static_r.makespan.as_secs_f64() * 1.30,
            "guarded adaptive lost too much to static: {} vs {}",
            guarded.makespan,
            static_r.makespan
        );
    }

    #[test]
    fn heavy_load_model_slows_service_exactly() {
        // Availability 0.5 constant: unit work takes 2 s.
        let mut grid = testbed_small3();
        grid.set_load(n(0), LoadModel::constant(0.5));
        let spec = PipelineSpec::balanced(1, 1.0, 0);
        let cfg = SimConfig {
            items: 10,
            initial_mapping: Some(Mapping::from_assignment(&[n(0)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert!((report.makespan.as_secs_f64() - 20.0).abs() < 0.5);
    }
}
