//! The unified `Pipeline` API: one typed, backend-agnostic entry point
//! for every execution backend.
//!
//! The paper presents *one* adaptive pipeline skeleton that hides
//! placement and re-mapping behind a single programming surface.
//! Historically this repo exposed two divergent entry points —
//! `sim_run(&grid, &spec, &SimConfig)` for the discrete-event backend
//! and `run_pipeline(pipeline, items, &EngineConfig)` for the threaded
//! backend — so every scenario was written twice. This module is the
//! single surface both now sit behind:
//!
//! ```
//! use adapipe::prelude::*;
//!
//! let pipeline = Pipeline::<u64>::builder()
//!     .stage("inc", |x: u64| x + 1)
//!     .stage_replicated("double", |x: u64| x * 2, 4)
//!     .policy(Policy::periodic_default())
//!     .feed(|i| i)
//!     .build()
//!     .expect("valid pipeline");
//!
//! // The same program runs on any backend.
//! let grid = testbed_small3();
//! let handle = pipeline
//!     .run(Backend::Sim(&grid), RunConfig { items: 50, ..RunConfig::default() })
//!     .expect("compatible backend");
//! assert_eq!(handle.report.completed, 50);
//! ```
//!
//! `build()` validates the declaration (non-empty, unique stage names,
//! legal replica bounds, policy/arrival compatibility) and returns a
//! typed [`BuildError`] instead of panicking mid-run; `run()` adds the
//! backend-dependent checks (input feed present, selection supported).
//! Stage state and replication properties are declared in the API —
//! [`PipelineBuilder::stage_replicated`] bounds how wide the planner may
//! legally farm a stage, [`PipelineBuilder::stateful_stage`] pins a
//! stage to width one — so the runtime can replicate exactly what the
//! programmer permitted.
//!
//! Live observation goes through [`RunConfig`]'s [`RunHooks`]
//! (`on_remap` fires at each committed re-mapping while the pipeline
//! runs); post-run observation through the [`RunHandle`].

use adapipe_core::pipeline::Pipeline as CorePipeline;
use adapipe_core::simengine::{self, SimConfig};
use adapipe_core::spec::{PipelineSpec, StageSpec};
use adapipe_core::stage::{DynStage, FnStage, StatefulFnStage};
use adapipe_engine::exec::{execute_fed, EngineConfig};
use adapipe_engine::vnode::VNodeSpec;
use adapipe_gridsim::grid::GridSpec;
use adapipe_gridsim::node::NodeId;
use adapipe_runtime::metrics::StageStats;
use adapipe_runtime::policy::Policy;
use adapipe_runtime::report::{AdaptationEvent, RunReport};
use adapipe_runtime::routing::Selection;
use adapipe_runtime::session::{self, Session};
use std::marker::PhantomData;

pub use adapipe_runtime::session::{ArrivalProcess, BuildError, RunConfig, RunHooks};

/// Which execution backend a built [`Pipeline`] runs on.
pub enum Backend<'a> {
    /// Deterministic discrete-event execution on a simulated grid (the
    /// evaluation substrate). Stage *functions* are not invoked — the
    /// simulator executes the declared cost metadata — so the returned
    /// [`RunHandle::outputs`] is empty.
    Sim(&'a GridSpec),
    /// Real OS threads over the given virtual nodes, with synthetic
    /// heterogeneity. Stage functions process real inputs drawn from the
    /// pipeline's feed.
    Threads(Vec<VNodeSpec>),
}

impl Backend<'_> {
    /// Short backend name for errors and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sim(_) => "sim",
            Backend::Threads(_) => "threads",
        }
    }
}

/// The outcome of one run: typed outputs (threaded backend) plus the
/// backend-independent [`RunReport`] — a single shape for every
/// backend.
#[derive(Debug)]
pub struct RunHandle<O> {
    /// Pipeline outputs in item order (empty under [`Backend::Sim`]).
    pub outputs: Vec<O>,
    /// Run metrics, shape-identical across backends.
    pub report: RunReport,
}

impl<O> RunHandle<O> {
    /// The run report.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Every re-mapping the controller committed, in order.
    pub fn adaptations(&self) -> &[AdaptationEvent] {
        &self.report.adaptations
    }

    /// Observed service statistics of one stage.
    pub fn stage_stats(&self, stage: usize) -> &StageStats {
        self.report.stage_metrics.stage(stage)
    }

    /// Splits the handle into outputs and report.
    pub fn into_parts(self) -> (Vec<O>, RunReport) {
        (self.outputs, self.report)
    }
}

/// A validated, backend-agnostic pipeline program: typed stage
/// functions, cost metadata, adaptation policy, and arrival process.
/// Built by [`PipelineBuilder`]; executed by [`Pipeline::run`] on any
/// [`Backend`].
pub struct Pipeline<I, O = I> {
    spec: PipelineSpec,
    stages: Vec<Box<dyn DynStage>>,
    session: Session,
    feed: Option<Box<dyn Fn(u64) -> I + Send>>,
    _types: PhantomData<fn(I) -> O>,
}

impl<I, O> std::fmt::Debug for Pipeline<I, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("spec", &self.spec)
            .field("session", &self.session)
            .field("feed", &self.feed.as_ref().map(|_| "Fn"))
            .finish()
    }
}

impl<I: Send + 'static> Pipeline<I, I> {
    /// Starts a builder for a pipeline whose inputs have type `I`.
    pub fn builder() -> PipelineBuilder<I, I> {
        PipelineBuilder::new()
    }
}

impl<I: Send + 'static, O: Send + 'static> Pipeline<I, O> {
    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the pipeline has no stages (not constructible).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The planner-facing cost metadata.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The validated adaptation policy.
    pub fn policy(&self) -> Policy {
        self.session.policy()
    }

    /// The validated arrival process.
    pub fn arrivals(&self) -> ArrivalProcess {
        self.session.arrivals()
    }

    /// Runs the pipeline on `backend` under `cfg`.
    ///
    /// Backend-dependent validation happens here: the threaded backend
    /// needs an input [`PipelineBuilder::feed`] (the simulator only
    /// consumes metadata) and exposes no queue-depth probe for
    /// [`Selection::LeastLoaded`].
    pub fn run(self, backend: Backend<'_>, cfg: RunConfig) -> Result<RunHandle<O>, BuildError> {
        // A supplied launch mapping must honour the declared stage
        // properties (statefulness, replica bounds) and the backend's
        // node set — otherwise the typed-validation contract would be
        // silently bypassed by the one knob that places stages directly.
        if let Some(mapping) = &cfg.initial_mapping {
            let node_count = match &backend {
                Backend::Sim(grid) => grid.len(),
                Backend::Threads(vnodes) => vnodes.len(),
            };
            let stateless: Vec<bool> = self.spec.stages.iter().map(|s| s.stateless).collect();
            let replica_cap: Vec<usize> = self.spec.stages.iter().map(|s| s.max_replicas).collect();
            session::validate_mapping(mapping, &stateless, &replica_cap, node_count)?;
        }
        match backend {
            Backend::Sim(grid) => {
                // `None` knobs defer to the backend's own defaults so
                // the unified path tracks them as they evolve.
                let defaults = SimConfig::default();
                let sim_cfg = SimConfig {
                    items: cfg.items,
                    arrivals: self.session.arrivals(),
                    policy: self.session.policy(),
                    controller: cfg.controller,
                    initial_mapping: cfg.initial_mapping,
                    selection: cfg.selection,
                    observation_noise: cfg.observation_noise,
                    noise_seed: cfg.noise_seed,
                    timeline_bucket: cfg.timeline_bucket.unwrap_or(defaults.timeline_bucket),
                    link_contention: cfg.link_contention,
                    max_sim_time: cfg.max_sim_time,
                    hooks: cfg.hooks,
                };
                let report = simengine::run(grid, &self.spec, &sim_cfg);
                Ok(RunHandle {
                    outputs: Vec::new(),
                    report,
                })
            }
            Backend::Threads(vnodes) => {
                if cfg.selection == Selection::LeastLoaded {
                    return Err(BuildError::UnsupportedSelection { backend: "threads" });
                }
                let feed = self
                    .feed
                    .ok_or(BuildError::MissingFeed { backend: "threads" })?;
                let mut engine_cfg = EngineConfig::new(vnodes);
                engine_cfg.policy = self.session.policy();
                engine_cfg.controller = cfg.controller;
                engine_cfg.initial_mapping = cfg.initial_mapping;
                engine_cfg.preserve_order = cfg.preserve_order;
                engine_cfg.arrivals = self.session.arrivals();
                engine_cfg.topology = cfg.topology;
                engine_cfg.observation_noise = cfg.observation_noise;
                engine_cfg.noise_seed = cfg.noise_seed;
                if let Some(bucket) = cfg.timeline_bucket {
                    engine_cfg.timeline_bucket = bucket;
                }
                engine_cfg.emulate_links = cfg.emulate_links;
                engine_cfg.hooks = cfg.hooks;
                let core = CorePipeline::from_parts(self.spec, self.stages);
                // Inputs are drawn lazily from the feed at their
                // scheduled arrival times — memory stays proportional
                // to the in-flight window, not the stream length.
                let outcome = execute_fed(core, cfg.items, feed, &engine_cfg);
                Ok(RunHandle {
                    outputs: outcome.outputs,
                    report: outcome.report,
                })
            }
        }
    }
}

/// Typed builder for the unified [`Pipeline`]; `Cur` is the item type
/// flowing out of the last stage added so far, so stage `i+1` must
/// accept exactly what stage `i` produces — checked at compile time.
/// Everything else is checked by [`PipelineBuilder::build`], which
/// returns a typed [`BuildError`] instead of panicking.
pub struct PipelineBuilder<In, Cur = In> {
    specs: Vec<StageSpec>,
    stages: Vec<Box<dyn DynStage>>,
    input_bytes: u64,
    source: Option<NodeId>,
    sink: Option<NodeId>,
    policy: Policy,
    arrivals: ArrivalProcess,
    baseline: bool,
    feed: Option<Box<dyn Fn(u64) -> In + Send>>,
    _types: PhantomData<fn(In) -> Cur>,
}

impl<In: Send + 'static> PipelineBuilder<In, In> {
    /// Starts a pipeline whose inputs have type `In`.
    pub fn new() -> Self {
        PipelineBuilder {
            specs: Vec::new(),
            stages: Vec::new(),
            input_bytes: 0,
            source: None,
            sink: None,
            policy: Policy::Static,
            arrivals: ArrivalProcess::AllAtOnce,
            baseline: false,
            feed: None,
            _types: PhantomData,
        }
    }
}

impl<In: Send + 'static> Default for PipelineBuilder<In, In> {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineBuilder<u64, u64> {
    /// Builds from an engine-agnostic [`PipelineSpec`] alone: each stage
    /// becomes an identity function over `u64`, and the feed defaults to
    /// the item index. The simulation backend only consumes the
    /// metadata, so this is the natural entry point for simulation
    /// scenarios (and still runs — trivially — on the threaded backend).
    pub fn from_spec(spec: PipelineSpec) -> Self {
        let stages: Vec<Box<dyn DynStage>> = spec
            .stages
            .iter()
            .map(|s| -> Box<dyn DynStage> {
                if s.stateless {
                    Box::new(FnStage::new(s.name.clone(), |x: u64| x))
                } else {
                    Box::new(StatefulFnStage::new(s.name.clone(), |x: u64| x))
                }
            })
            .collect();
        PipelineBuilder {
            input_bytes: spec.input_bytes,
            source: spec.source,
            sink: spec.sink,
            specs: spec.stages,
            stages,
            policy: Policy::Static,
            arrivals: ArrivalProcess::AllAtOnce,
            baseline: false,
            feed: Some(Box::new(|i| i)),
            _types: PhantomData,
        }
    }
}

impl<In: Send + 'static, Cur: Send + 'static> PipelineBuilder<In, Cur> {
    /// Adopts an already-built engine-level pipeline (e.g. the imaging
    /// or signal workloads), keeping its stages and cost metadata; the
    /// unified policy/arrivals/feed declarations still apply.
    pub fn from_pipeline(pipeline: CorePipeline<In, Cur>) -> Self {
        let (spec, stages) = pipeline.into_parts();
        PipelineBuilder {
            input_bytes: spec.input_bytes,
            source: spec.source,
            sink: spec.sink,
            specs: spec.stages,
            stages,
            policy: Policy::Static,
            arrivals: ArrivalProcess::AllAtOnce,
            baseline: false,
            feed: None,
            _types: PhantomData,
        }
    }

    /// Declares how many bytes each input item carries into stage 0.
    pub fn input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes = bytes;
        self
    }

    /// Pins the input source to a grid node (inputs pay the transfer
    /// from there to stage 0's host).
    pub fn source(mut self, node: NodeId) -> Self {
        self.source = Some(node);
        self
    }

    /// Pins the output sink to a grid node.
    pub fn sink(mut self, node: NodeId) -> Self {
        self.sink = Some(node);
        self
    }

    /// Sets the adaptation policy (default [`Policy::Static`]).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the arrival process (default [`ArrivalProcess::AllAtOnce`]).
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Acknowledges a *deliberate* baseline: waives the policy × arrival
    /// pairing rule (e.g. `Policy::Static` under a paced open stream,
    /// run to show what non-adaptive scheduling costs). Every other
    /// validation still applies.
    pub fn as_baseline(mut self) -> Self {
        self.baseline = true;
        self
    }

    /// Declares the input feed: item index → input. Backends that
    /// execute stage functions on real items (threads) require one; the
    /// simulator ignores it.
    pub fn feed(mut self, f: impl Fn(u64) -> In + Send + 'static) -> Self {
        self.feed = Some(Box::new(f));
        self
    }

    /// Appends a stateless stage with default cost metadata (1 work
    /// unit per item, no boundary bytes). The closure must be `Clone`
    /// so the runtime can replicate the stage across nodes.
    pub fn stage<Out, F>(self, name: impl Into<String>, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        self.stage_with(StageSpec::balanced(name, 1.0, 0), f)
    }

    /// Appends a stateless stage replicable up to `replicas` nodes —
    /// the declared replication property the planner may exploit. A
    /// bound of zero is rejected at [`PipelineBuilder::build`].
    pub fn stage_replicated<Out, F>(
        self,
        name: impl Into<String>,
        f: F,
        replicas: usize,
    ) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        self.stage_with(StageSpec::balanced(name, 1.0, 0).with_replicas(replicas), f)
    }

    /// Appends a stage with explicit cost metadata. A spec marked
    /// stateful produces a stateful (never-replicated) stage instance.
    pub fn stage_with<Out, F>(mut self, spec: StageSpec, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + Clone + 'static,
    {
        let stage: Box<dyn DynStage> = if spec.stateless {
            Box::new(FnStage::new(spec.name.clone(), f))
        } else {
            Box::new(StatefulFnStage::new(spec.name.clone(), f))
        };
        self.stages.push(stage);
        self.specs.push(spec);
        self.retype()
    }

    /// Appends a stateful stage: it will never be replicated, and
    /// migrating it costs `spec.state_bytes` of transfer. The closure
    /// needs no `Clone` bound.
    pub fn stateful_stage<Out, F>(mut self, spec: StageSpec, f: F) -> PipelineBuilder<In, Out>
    where
        Out: Send + 'static,
        F: FnMut(Cur) -> Out + Send + 'static,
    {
        let spec = if spec.stateless {
            spec.with_state(0)
        } else {
            spec
        };
        self.stages
            .push(Box::new(StatefulFnStage::new(spec.name.clone(), f)));
        self.specs.push(spec);
        self.retype()
    }

    fn retype<Out: Send + 'static>(self) -> PipelineBuilder<In, Out> {
        PipelineBuilder {
            specs: self.specs,
            stages: self.stages,
            input_bytes: self.input_bytes,
            source: self.source,
            sink: self.sink,
            policy: self.policy,
            arrivals: self.arrivals,
            baseline: self.baseline,
            feed: self.feed,
            _types: PhantomData,
        }
    }

    /// Validates and finalises the pipeline. See the module docs (and
    /// [`adapipe_runtime::session`]) for the full rule set.
    pub fn build(self) -> Result<Pipeline<In, Cur>, BuildError> {
        let names: Vec<&str> = self.specs.iter().map(|s| s.name.as_str()).collect();
        session::validate_stage_names(&names)?;
        for spec in &self.specs {
            session::validate_replicas(&spec.name, spec.stateless, spec.max_replicas)?;
        }
        let session = if self.baseline {
            Session::baseline(self.policy, self.arrivals)?
        } else {
            Session::new(self.policy, self.arrivals)?
        };
        let mut spec = PipelineSpec::new(self.specs);
        spec.input_bytes = self.input_bytes;
        spec.source = self.source;
        spec.sink = self.sink;
        Ok(Pipeline {
            spec,
            stages: self.stages,
            session,
            feed: self.feed,
            _types: PhantomData,
        })
    }
}
