//! Forecaster overhead: the controller feeds every node's availability
//! into an ensemble each tick, so observe+predict must be cheap.
//!
//! `cargo bench -p adapipe-bench --bench forecast`

use adapipe_monitor::forecast::{Ensemble, Ewma, Forecaster, LastValue, SlidingMedian};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_forecasters(c: &mut Criterion) {
    let mut group = c.benchmark_group("forecast_observe_predict");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));

    let series: Vec<f64> = (0..256)
        .map(|i| 0.5 + 0.4 * ((i as f64) * 0.1).sin())
        .collect();

    group.bench_function("last_value", |b| {
        b.iter(|| {
            let mut f = LastValue::new();
            for (i, &v) in series.iter().enumerate() {
                f.observe(i as f64, v);
                std::hint::black_box(f.predict());
            }
        })
    });
    group.bench_function("ewma", |b| {
        b.iter(|| {
            let mut f = Ewma::new(0.3);
            for (i, &v) in series.iter().enumerate() {
                f.observe(i as f64, v);
                std::hint::black_box(f.predict());
            }
        })
    });
    group.bench_function("sliding_median_16", |b| {
        b.iter(|| {
            let mut f = SlidingMedian::new(16);
            for (i, &v) in series.iter().enumerate() {
                f.observe(i as f64, v);
                std::hint::black_box(f.predict());
            }
        })
    });
    group.bench_function("nws_ensemble_16", |b| {
        b.iter(|| {
            let mut f = Ensemble::nws_default(16);
            for (i, &v) in series.iter().enumerate() {
                f.observe(i as f64, v);
                std::hint::black_box(f.predict());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forecasters);
criterion_main!(benches);
