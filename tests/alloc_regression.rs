//! Allocation regression gate for the threaded hot path.
//!
//! The data plane promises O(batches) — not O(items) — heap traffic in
//! steady state: payloads ≤ 3 words ride inline in `Payload`, envelope
//! and sink buffers recycle through pools, and the stride-sampled fast
//! path batches its bookkeeping. This test pins that property with a
//! counting global allocator: growing the stream by 100k items must add
//! far fewer than one allocation per item. It lives alone in this
//! binary so no concurrent test pollutes the counter.

use adapipe::api::{Backend, Pipeline, RunConfig};
use adapipe_engine::vnode::VNodeSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (and reallocation — a grow is new heap
/// traffic) while delegating to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// The hotpath bench shape: two trivial stages, batched envelopes.
fn run(items: u64) {
    let outcome = Pipeline::<u64>::builder()
        .stage("inc", |x: u64| x + 1)
        .stage("double", |x: u64| x * 2)
        .feed(|i| i)
        .build()
        .expect("valid pipeline")
        .run(
            Backend::Threads(vec![VNodeSpec::free("v0"), VNodeSpec::free("v1")]),
            RunConfig {
                items,
                batch_size: 256,
                ..RunConfig::default()
            },
        )
        .expect("batch run");
    assert_eq!(outcome.report.completed, items);
}

#[test]
fn steady_state_allocations_do_not_scale_per_item() {
    // Warm-up: fills the buffer pools, lazy statics, and thread-local
    // machinery so both measured runs start from the same steady state.
    run(20_000);

    let before_small = ALLOCS.load(Ordering::Relaxed);
    run(20_000);
    let small = ALLOCS.load(Ordering::Relaxed) - before_small;

    let before_large = ALLOCS.load(Ordering::Relaxed);
    run(120_000);
    let large = ALLOCS.load(Ordering::Relaxed) - before_large;

    // 100k extra items. Per-envelope machinery (256-item batches → ~390
    // extra envelopes), output-vector growth, and channel nodes are all
    // allowed; a per-item allocation anywhere would cost ≥ 100k.
    let delta = large.saturating_sub(small);
    assert!(
        delta < 25_000,
        "100k extra items cost {delta} extra allocations \
         (small run {small}, large run {large}) — something on the hot \
         path allocates per item"
    );
}
