//! Virtual nodes: synthetic heterogeneity on one machine.
//!
//! The paper evaluated on a grid of machines with different speeds and
//! fluctuating background load. On one box we reproduce both knobs per
//! *virtual node* (one worker thread each):
//!
//! * **speed** ∈ (0, 1] — a relative slowdown factor. After a stage runs
//!   for `d` wall seconds, the worker sleeps `d·(1/speed − 1)` extra, so
//!   the observable service time matches a proportionally slower machine.
//!   (Real compute cannot be accelerated, hence the ≤ 1 normalisation.)
//! * **load** — a wall-clock [`LoadModel`] schedule; the effective rate is
//!   `speed × availability(t)`, exactly as in the simulator.

use adapipe_gridsim::load::LoadModel;
use adapipe_gridsim::time::SimTime;
use std::time::{Duration, Instant};

/// Availability below this is clamped when computing slowdown sleeps: a
/// wall-clock engine cannot stall a task forever.
pub const MIN_WALL_AVAILABILITY: f64 = 0.02;

/// One virtual node of the threaded engine.
#[derive(Clone, Debug)]
pub struct VNodeSpec {
    /// Node name for reports.
    pub name: String,
    /// Relative speed in `(0, 1]`; 1.0 = full host speed.
    pub speed: f64,
    /// Background-load schedule against wall time since engine start.
    pub load: LoadModel,
}

impl VNodeSpec {
    /// A full-speed, unloaded virtual node.
    pub fn free(name: impl Into<String>) -> Self {
        VNodeSpec {
            name: name.into(),
            speed: 1.0,
            load: LoadModel::free(),
        }
    }

    /// A node at `speed` with no background load.
    ///
    /// # Panics
    /// Panics unless `0 < speed ≤ 1`.
    pub fn with_speed(name: impl Into<String>, speed: f64) -> Self {
        assert!(
            speed > 0.0 && speed <= 1.0,
            "vnode speed must be in (0,1], got {speed}"
        );
        VNodeSpec {
            name: name.into(),
            speed,
            load: LoadModel::free(),
        }
    }

    /// Attaches a background-load schedule.
    pub fn with_load(mut self, load: LoadModel) -> Self {
        self.load = load;
        self
    }

    /// True when this vnode can never throttle — full speed and a
    /// constant, fully-available load model — so
    /// [`VNodeSpec::slowdown_sleep`] is identically zero and the hot
    /// path may skip the per-item rate lookup entirely.
    pub fn never_throttles(&self) -> bool {
        self.speed >= 1.0 && matches!(self.load, LoadModel::Constant { level } if level >= 1.0)
    }

    /// Effective rate at wall-offset `t` (clamped availability).
    pub fn effective_rate(&self, t: SimTime) -> f64 {
        self.speed * self.load.availability(t).max(MIN_WALL_AVAILABILITY)
    }

    /// Extra sleep required after `busy` seconds of real compute started
    /// at wall-offset `t`, so the total service time matches this node's
    /// effective rate.
    pub fn slowdown_sleep(&self, busy: Duration, t: SimTime) -> Duration {
        let rate = self.effective_rate(t);
        debug_assert!(rate > 0.0);
        let factor = (1.0 / rate - 1.0).max(0.0);
        Duration::from_secs_f64(busy.as_secs_f64() * factor)
    }
}

/// Spins the CPU for `d` (busy-wait). The unit of synthetic work in the
/// threaded engine: deterministic duration, real CPU consumption.
pub fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// Measures how many spin-loop iterations per second this host sustains —
/// reported in experiment headers so runs on different machines can be
/// compared.
pub fn calibrate_host() -> f64 {
    let start = Instant::now();
    let mut iters: u64 = 0;
    while start.elapsed() < Duration::from_millis(20) {
        for _ in 0..1000 {
            std::hint::spin_loop();
        }
        iters += 1000;
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_node_never_sleeps() {
        let v = VNodeSpec::free("a");
        assert_eq!(
            v.slowdown_sleep(Duration::from_millis(100), SimTime::ZERO),
            Duration::ZERO
        );
        assert_eq!(v.effective_rate(SimTime::ZERO), 1.0);
    }

    #[test]
    fn half_speed_doubles_service_time() {
        let v = VNodeSpec::with_speed("slow", 0.5);
        let sleep = v.slowdown_sleep(Duration::from_millis(100), SimTime::ZERO);
        assert!((sleep.as_secs_f64() - 0.1).abs() < 1e-9, "sleep={sleep:?}");
    }

    #[test]
    fn load_schedule_compounds_with_speed() {
        let v = VNodeSpec::with_speed("busy", 0.5).with_load(LoadModel::constant(0.5));
        // rate = 0.25 → total time = 4 × busy → sleep = 3 × busy.
        let sleep = v.slowdown_sleep(Duration::from_millis(10), SimTime::ZERO);
        assert!((sleep.as_secs_f64() - 0.03).abs() < 1e-9);
    }

    #[test]
    fn zero_availability_is_clamped() {
        let v = VNodeSpec::free("dead").with_load(LoadModel::constant(0.0));
        let rate = v.effective_rate(SimTime::ZERO);
        assert!(rate >= MIN_WALL_AVAILABILITY);
        let sleep = v.slowdown_sleep(Duration::from_millis(1), SimTime::ZERO);
        assert!(sleep < Duration::from_secs(1));
    }

    #[test]
    fn spin_for_takes_at_least_requested_time() {
        let start = Instant::now();
        spin_for(Duration::from_millis(5));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn calibration_reports_positive_rate() {
        assert!(calibrate_host() > 0.0);
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn overspeed_rejected() {
        let _ = VNodeSpec::with_speed("x", 1.5);
    }
}
