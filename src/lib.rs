//! # adapipe — An Adaptive Parallel Pipeline Pattern for Grids
//!
//! A Rust reconstruction of the adaptive parallel pipeline *algorithmic
//! skeleton* of Gonzalez-Velez & Cole (IPDPS 2008): the programmer
//! supplies per-stage functions; the skeleton owns placement on a set of
//! heterogeneous, dynamically loaded processors and **re-maps the
//! running pipeline** as resource availability changes.
//!
//! This facade crate re-exports the whole workspace and adds the
//! unified, backend-agnostic [`api`]:
//!
//! | Crate | Role |
//! |---|---|
//! | [`gridsim`] | deterministic discrete-event grid substrate |
//! | [`monitor`] | NWS-style measurement + forecasting |
//! | [`mapper`] | series-parallel stage graphs, throughput model + mapping optimisers |
//! | [`state`] | state-access taxonomy, shard math, snapshot codec — how stateful stages declare, shard, and move their state |
//! | [`runtime`] | backend-agnostic adaptive runtime: routing table, adaptation loop, controller, policies, reports, sessions |
//! | [`core`] | the skeleton: stages, specs, stage graphs, and the simulation backend |
//! | [`engine`] | threaded backend with synthetic heterogeneity |
//! | [`workloads`] | cost models, imaging & signal pipelines, scenarios |
//!
//! Both execution backends sit under the shared [`runtime`] layer and
//! behind the one [`api::Pipeline`] surface (see `README.md` for the
//! diagram and a "writing a new backend" guide). The stage topology is
//! a first-class *general DAG*: linear chains are the degenerate case,
//! [`api::PipelineBuilder::parallel`] / [`api::ParallelBuilder::merge`]
//! declare series-parallel fan-out/fan-in sugar, and [`api::DagBuilder`]
//! (via `Pipeline::dag()`) wires arbitrary topologies edge-by-edge with
//! per-stage [`runtime::session::ResiliencePolicy`] (retry, timeout,
//! dead-letter, trace) —
//! all executed with item-identical outputs on both backends (see the
//! README's "Composing skeletons" and "General DAGs & resilience
//! policies").
//!
//! ## Quickstart
//!
//! One program, any backend: declare stages (with their replication
//! properties), a policy, and an arrival process; `build()` validates;
//! `run()` executes on the backend you hand it.
//!
//! ```
//! use adapipe::prelude::*;
//!
//! let grid = testbed_small3();
//! let pipeline = Pipeline::<u64>::builder()
//!     .stage("parse", |x: u64| x + 1)
//!     .stage_replicated("transform", |x: u64| x * 2, 2)
//!     .stage("emit", |x: u64| x)
//!     .policy(Policy::periodic_default())
//!     .feed(|i| i)
//!     .build()
//!     .expect("a valid pipeline");
//!
//! // Simulated on a 3-node grid…
//! let report = pipeline
//!     .run(Backend::Sim(&grid), RunConfig { items: 100, ..RunConfig::default() })
//!     .expect("sim run")
//!     .report;
//! assert_eq!(report.completed, 100);
//!
//! // …or for real, on threads (same program, same report shape):
//! let pipeline = Pipeline::<u64>::builder()
//!     .stage("parse", |x: u64| x + 1)
//!     .stage_replicated("transform", |x: u64| x * 2, 2)
//!     .stage("emit", |x: u64| x)
//!     .feed(|i| i)
//!     .build()
//!     .expect("a valid pipeline");
//! let handle = pipeline
//!     .run(
//!         Backend::Threads(vec![VNodeSpec::free("v0"), VNodeSpec::free("v1")]),
//!         RunConfig { items: 10, ..RunConfig::default() },
//!     )
//!     .expect("threaded run");
//! assert_eq!(handle.outputs, (0..10).map(|x| (x + 1) * 2).collect::<Vec<_>>());
//! ```
//!
//! Invalid declarations fail at `build()` with a typed error:
//!
//! ```
//! use adapipe::prelude::*;
//!
//! let err = Pipeline::<u64>::builder()
//!     .stage_replicated("hot", |x: u64| x, 0) // zero replicas
//!     .build()
//!     .unwrap_err();
//! assert!(matches!(err, BuildError::ZeroReplicas { .. }));
//! ```
//!
//! ## Streaming quickstart
//!
//! Batch `run()` is sugar over the live session API. `spawn()` starts
//! the pipeline and hands back a [`api::RunSession`]: push items while
//! the run is live, pull outputs as they complete, and steer adaptation
//! in flight. With a bounded `queue_capacity`, `push()` blocks under
//! real backpressure instead of queueing without limit:
//!
//! ```
//! use adapipe::prelude::*;
//!
//! let pipeline = Pipeline::<u64>::builder()
//!     .stage("parse", |x: u64| x + 1)
//!     .stage("emit", |x: u64| x * 2)
//!     .build()
//!     .expect("valid pipeline");
//!
//! let mut session = pipeline
//!     .spawn(
//!         Backend::Threads(vec![VNodeSpec::free("v0"), VNodeSpec::free("v1")]),
//!         RunConfig { queue_capacity: Some(8), ..RunConfig::default() },
//!     )
//!     .expect("spawn");
//!
//! let events = session.events(); // live remaps / window stats / stalls
//! let mut outputs = Vec::new();
//! for i in 0..20 {
//!     session.push(i).unwrap(); // blocks only when the bounded queues are full
//!     if let TryNext::Item(o) = session.try_next() {
//!         outputs.push(o); // consume while producing
//!     }
//! }
//! let handle = session.drain(); // graceful: every pushed item completes
//! outputs.extend(handle.outputs);
//! assert_eq!(outputs, (0..20).map(|x| (x + 1) * 2).collect::<Vec<_>>());
//! assert_eq!(handle.report.completed, 20);
//! drop(events);
//! ```
//!
//! The same session program runs under `Backend::Sim(&grid)`: the
//! simulated world advances as the session is driven, and stage
//! functions are applied to pushed items in push order, so outputs are
//! item-identical across backends.
//!
//! **Migrating from batch:** `run(backend, cfg)` ≡ `spawn(backend,
//! cfg)` + push `cfg.items` items on the declared arrival schedule +
//! `drain()`. Existing batch code needs no change; switch to `spawn`
//! when the item stream is open-ended, when outputs must be consumed
//! while producing, or when the run needs in-flight control
//! (`pause_adaptation`, `force_remap`, `abort`).
//!
//! See `examples/` (notably `examples/live_service.rs`) for runnable
//! programs and `crates/bench` for the experiment reproduction harness.

pub mod api;

pub use adapipe_core as core;
pub use adapipe_engine as engine;
pub use adapipe_gridsim as gridsim;
pub use adapipe_mapper as mapper;
pub use adapipe_monitor as monitor;
pub use adapipe_runtime as runtime;
pub use adapipe_state as state;
pub use adapipe_workloads as workloads;

/// One glob import for applications: brings in the preludes of every
/// sub-crate plus the unified [`api`] surface. The `Pipeline` and
/// `PipelineBuilder` names resolve to the unified API; the engine-level
/// builder remains at [`core::pipeline`].
pub mod prelude {
    pub use crate::api::{
        ArrivalProcess, Backend, Branch, BuildError, Cluster, ClusterConfig, DagBuilder,
        ParallelBuilder, Pipeline, PipelineBuilder, RunConfig, RunError, RunEvent, RunHandle,
        RunHooks, RunSession, SessionConfig, SessionId, ShareQuota, TryNext,
    };
    pub use adapipe_core::prelude::*;
    pub use adapipe_engine::prelude::*;
    pub use adapipe_gridsim::prelude::*;
    pub use adapipe_mapper::prelude::*;
    pub use adapipe_monitor::prelude::*;
    pub use adapipe_workloads::prelude::*;
}

// Compile-and-run the README's code blocks as doctests so the quickstart
// can never drift from the API again.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
