//! Multi-tenant serving: a steady interactive tenant and a bursty batch
//! tenant share one worker pool. The steady tenant holds a `min_share`
//! floor, so when its co-tenant spikes to 10x the traffic, the
//! weighted-fair inbox lanes keep serving it — its completion rate must
//! not collapse (the run asserts it keeps >= 75% of its uncontended
//! rate).
//!
//! `cargo run --release --example multi_tenant`

use adapipe::prelude::*;
use std::time::{Duration, Instant};

const STAGE: Duration = Duration::from_millis(1);
/// Steady tenant's pacing: one request every 5 ms.
const PACE: Duration = Duration::from_millis(5);
/// Measured phase length (uncontended, then contended).
const PHASE: Duration = Duration::from_millis(400);
/// The spike: 10x the steady tenant's per-phase volume, all at once.
const SPIKE_ITEMS: u64 = 800;

fn service(tag: &str) -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage_with(
            StageSpec::balanced(tag, STAGE.as_secs_f64(), 8),
            |x: u64| {
                spin_for(STAGE);
                x + 1
            },
        )
        .build()
        .expect("service builds")
}

/// Pushes paced steady traffic for one phase and returns the tenant's
/// completion rate (items/s) over it.
fn paced_phase(steady: &mut RunSession<'_, u64, u64>, pushed: &mut u64) -> f64 {
    let t0 = Instant::now();
    let c0 = steady.completed();
    while t0.elapsed() < PHASE {
        steady.push(*pushed).expect("steady push admitted");
        *pushed += 1;
        std::thread::sleep(PACE);
    }
    // Let the tail land before reading the counter.
    std::thread::sleep(Duration::from_millis(50));
    (steady.completed() - c0) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let vnodes: Vec<VNodeSpec> = (0..2).map(|i| VNodeSpec::free(format!("v{i}"))).collect();
    let mut cluster =
        Cluster::new(Backend::Threads(vnodes), ClusterConfig::default()).expect("cluster launches");

    // The interactive tenant is guaranteed half the pool while it has
    // demand; the batch tenant is best-effort.
    let mut steady = cluster
        .admit(
            service("serve"),
            SessionConfig {
                run: RunConfig {
                    items: 200,
                    ..RunConfig::default()
                },
                quota: ShareQuota {
                    min_share: 0.5,
                    max_share: 1.0,
                    weight: 1.0,
                },
            },
        )
        .expect("steady tenant admitted");
    let mut spiker = cluster
        .admit(
            service("crunch"),
            SessionConfig {
                run: RunConfig {
                    items: SPIKE_ITEMS,
                    ..RunConfig::default()
                },
                quota: ShareQuota::default(),
            },
        )
        .expect("spiking tenant admitted");

    println!(
        "pool: {} nodes | tenants: {:?}",
        cluster.node_count(),
        cluster.sessions()
    );

    let mut pushed = 0u64;
    let alone = paced_phase(&mut steady, &mut pushed);
    println!("steady tenant, uncontended : {alone:6.1} items/s");

    // The co-tenant spikes: 10x the steady volume, flooded at once.
    spiker.push_batch(0..SPIKE_ITEMS).expect("spike admitted");
    let contended = paced_phase(&mut steady, &mut pushed);
    let steady_share = cluster.share_of(steady.session_id()).unwrap_or(0.0);
    println!(
        "steady tenant, during spike: {contended:6.1} items/s (granted share {steady_share:.2})"
    );

    let ratio = contended / alone.max(1e-9);
    println!("steady rate kept through the spike: {:.0}%", ratio * 100.0);
    assert!(
        ratio >= 0.75,
        "steady tenant starved by the spiking co-tenant: kept only {:.0}% of its rate",
        ratio * 100.0
    );

    let steady_handle = steady.drain();
    let spiker_handle = spiker.drain();
    assert_eq!(steady_handle.report.completed, pushed);
    assert_eq!(spiker_handle.report.completed, SPIKE_ITEMS);
    println!(
        "drained: steady {} items, spiker {} items — no items lost",
        steady_handle.report.completed, spiker_handle.report.completed
    );
    cluster.shutdown();
}
