//! Cross-crate integration: the threaded engine runs the real domain
//! pipelines (imaging, signal) correctly, including under adaptation.

use adapipe::prelude::*;
use adapipe::workloads::{imaging, signal};

/// True if the host can actually run `k` threads in parallel. Wall-clock
/// speedup assertions are gated on this: on an undersized host the OS
/// time-shares the virtual nodes and parallel speedups are scheduler
/// noise, so only correctness (not timing) is asserted there.
fn multicore(k: usize) -> bool {
    std::thread::available_parallelism()
        .map(|p| p.get() >= k)
        .unwrap_or(false)
}

#[test]
fn imaging_pipeline_produces_identical_results_on_any_mapping() {
    // Ground truth: run the kernels sequentially in-process.
    let side = 32;
    let n = 20u64;
    let expected: Vec<u64> = imaging::frames(side, n)
        .into_iter()
        .map(|f| {
            let q = imaging::quantise(&imaging::sobel(&imaging::blur(&f)), 8);
            q.pixels.iter().map(|&p| p as u64).sum::<u64>()
        })
        .collect();

    // Spread mapping on 4 nodes.
    let mut cfg = EngineConfig::new((0..4).map(|i| VNodeSpec::free(format!("v{i}"))).collect());
    cfg.initial_mapping = Some(Mapping::from_assignment(&[
        NodeId(0),
        NodeId(1),
        NodeId(2),
        NodeId(3),
    ]));
    let spread = run_pipeline(imaging_pipeline(side), imaging::frames(side, n), &cfg);
    assert_eq!(spread.outputs, expected);

    // Fully coalesced mapping must give byte-identical answers.
    let mut cfg2 = EngineConfig::new(vec![VNodeSpec::free("solo")]);
    cfg2.initial_mapping = Some(Mapping::all_on(NodeId(0), 4));
    let coalesced = run_pipeline(imaging_pipeline(side), imaging::frames(side, n), &cfg2);
    assert_eq!(coalesced.outputs, expected);
}

#[test]
fn signal_pipeline_outputs_are_stable_under_remapping() {
    let frame_len = 512;
    let n = 40u64;
    // Ground truth, sequential.
    let expected: Vec<f64> = {
        let (_, mut stages) = signal_pipeline(frame_len).into_parts();
        signal::frames(frame_len, n)
            .into_iter()
            .map(|f| {
                let mut item: adapipe::core::stage::BoxedItem = Box::new(f);
                for s in &mut stages {
                    item = s.process(item);
                }
                *item.downcast::<f64>().unwrap()
            })
            .collect()
    };

    // Adaptive run with a mid-run load step.
    let vnodes = vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1").with_load(LoadModel::step(1.0, 0.05, SimTime::from_secs_f64(0.2))),
        VNodeSpec::free("v2"),
    ];
    let mut cfg = EngineConfig::new(vnodes);
    cfg.policy = Policy::Periodic {
        interval: SimDuration::from_millis(150),
    };
    cfg.initial_mapping = Some(Mapping::from_assignment(&[
        NodeId(0),
        NodeId(1),
        NodeId(2),
        NodeId(0),
    ]));
    let outcome = run_pipeline(
        signal_pipeline(frame_len),
        signal::frames(frame_len, n),
        &cfg,
    );
    assert_eq!(outcome.report.completed, n);
    // Stateless numeric kernels: results must be bit-identical regardless
    // of which node computed them or whether a migration happened.
    assert_eq!(outcome.outputs, expected);
}

#[test]
fn synthetic_twin_matches_sim_shape() {
    // The same middle-heavy spec, run (a) in simulation and (b) on the
    // threaded engine with spin items; the *shape* (which mapping class
    // wins) must agree: replication of the heavy stage helps both.
    let spec = synthetic_spec(3, CostShape::MiddleHeavy, 1.0, 0, 0.0, 5);

    // (a) simulation on 4 free nodes.
    let grid = {
        let nodes = (0..4)
            .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
            .collect();
        GridSpec::new(nodes, Topology::uniform(4, LinkSpec::lan()))
    };
    let narrow = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)]);
    let wide = Mapping::new(vec![
        Placement::single(NodeId(0)),
        Placement::replicated(vec![NodeId(1), NodeId(3)]),
        Placement::single(NodeId(2)),
    ]);
    let sim_narrow = sim_run(
        &grid,
        &spec,
        &SimConfig {
            items: 200,
            initial_mapping: Some(narrow.clone()),
            ..SimConfig::default()
        },
    );
    let sim_wide = sim_run(
        &grid,
        &spec,
        &SimConfig {
            items: 200,
            initial_mapping: Some(wide.clone()),
            ..SimConfig::default()
        },
    );
    assert!(
        sim_wide.makespan.as_secs_f64() < sim_narrow.makespan.as_secs_f64() * 0.75,
        "sim: replication must clearly win ({} vs {})",
        sim_wide.makespan,
        sim_narrow.makespan
    );

    // (b) threaded engine, 2 ms work units.
    let items = 120u64;
    let mk_cfg = |mapping: Mapping| {
        let mut cfg = EngineConfig::new((0..4).map(|i| VNodeSpec::free(format!("v{i}"))).collect());
        cfg.initial_mapping = Some(mapping);
        cfg
    };
    let eng_narrow = run_pipeline(
        synth_pipeline(&spec),
        synth_items(&spec, items, 0.002),
        &mk_cfg(narrow),
    );
    let eng_wide = run_pipeline(
        synth_pipeline(&spec),
        synth_items(&spec, items, 0.002),
        &mk_cfg(wide),
    );
    assert_eq!(eng_narrow.report.completed, items);
    assert_eq!(eng_wide.report.completed, items);
    if multicore(5) {
        assert!(
            eng_wide.report.makespan.as_secs_f64() < eng_narrow.report.makespan.as_secs_f64() * 0.9,
            "engine: replication must win ({} vs {})",
            eng_wide.report.makespan,
            eng_narrow.report.makespan
        );
    } else {
        eprintln!(
            "host has <5 cores: skipping wall-clock speedup assertion \
             (narrow {}, wide {})",
            eng_narrow.report.makespan, eng_wide.report.makespan
        );
    }
}
