//! Property-based tests for the grid substrate's core invariants.

use adapipe_gridsim::prelude::*;
use proptest::prelude::*;

/// An arbitrary load model drawn from every class.
fn arb_load_model() -> impl Strategy<Value = LoadModel> {
    prop_oneof![
        (0.0f64..=1.0).prop_map(LoadModel::constant),
        (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..1000.0)
            .prop_map(|(b, a, t)| { LoadModel::step(b, a, SimTime::from_secs_f64(t)) }),
        (0.0f64..=1.0, 0.0f64..=1.0, 1u64..300, 1u32..99).prop_map(|(hi, lo, p, duty)| {
            LoadModel::square_wave(
                hi,
                lo,
                SimDuration::from_secs(p),
                duty as f64 / 100.0,
                SimDuration::ZERO,
            )
        }),
        (0.0f64..=1.0, 0.0f64..=0.5, 2u64..600).prop_map(|(mean, amp, p)| {
            LoadModel::sinusoid(
                mean.min(1.0 - amp).max(amp),
                amp,
                SimDuration::from_secs(p),
                8,
            )
        }),
        (any::<u64>(), 1u64..60).prop_map(|(seed, dt)| {
            LoadModel::random_walk(
                seed,
                0.7,
                0.1,
                SimDuration::from_secs(dt),
                0.1,
                1.0,
                SimDuration::from_secs(600),
            )
        }),
        (any::<u64>(), 1u64..120, 1u64..120).prop_map(|(seed, up, down)| {
            LoadModel::markov_on_off(
                seed,
                SimDuration::from_secs(up),
                SimDuration::from_secs(down),
                0.3,
                SimDuration::from_secs(600),
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Availability is always within [0, 1], at any time, for any model.
    #[test]
    fn availability_is_always_a_fraction(
        model in arb_load_model(),
        t in 0.0f64..100_000.0,
    ) {
        let a = model.availability(SimTime::from_secs_f64(t));
        prop_assert!((0.0..=1.0).contains(&a), "a={a} at t={t}");
    }

    /// next_breakpoint is strictly in the future and availability is
    /// constant up to (just before) it.
    #[test]
    fn breakpoints_delimit_constant_segments(
        model in arb_load_model(),
        t in 0.0f64..10_000.0,
    ) {
        let t0 = SimTime::from_secs_f64(t);
        if let Some(bp) = model.next_breakpoint(t0) {
            prop_assert!(bp > t0, "breakpoint {bp} not after {t0}");
            let a0 = model.availability(t0);
            // Probe a midpoint strictly inside the segment.
            let mid = SimTime::from_nanos(
                t0.as_nanos() + (bp.as_nanos() - t0.as_nanos()) / 2,
            );
            if mid > t0 && mid < bp {
                prop_assert_eq!(model.availability(mid), a0);
            }
        }
    }

    /// Work integration: completion time is monotone in the amount of
    /// work, and never earlier than start.
    #[test]
    fn completion_time_is_monotone_in_work(
        model in arb_load_model(),
        start in 0.0f64..1_000.0,
        w1 in 0.0f64..100.0,
        extra in 0.0f64..100.0,
    ) {
        let node = Node::new(NodeSpec::new("p", 2.0, 1), model);
        let start = SimTime::from_secs_f64(start);
        let c1 = node.completion_time(start, w1);
        let c2 = node.completion_time(start, w1 + extra);
        prop_assert!(c1 >= start);
        prop_assert!(c2 >= c1, "more work finished earlier: {c2} < {c1}");
    }

    /// work_done inverts completion_time (up to float tolerance)
    /// whenever the work completes.
    #[test]
    fn work_done_inverts_completion_time(
        model in arb_load_model(),
        start in 0.0f64..500.0,
        work in 0.01f64..50.0,
    ) {
        let node = Node::new(NodeSpec::new("p", 1.5, 1), model);
        let start = SimTime::from_secs_f64(start);
        let done = node.completion_time(start, work);
        prop_assume!(done != SimTime::MAX);
        let measured = node.work_done(start, done);
        prop_assert!(
            (measured - work).abs() < 1e-6 * work.max(1.0),
            "measured {measured} vs {work}"
        );
    }

    /// Mean availability lies within the model's observed range.
    #[test]
    fn mean_availability_is_bounded(
        model in arb_load_model(),
        from in 0.0f64..1_000.0,
        span in 0.1f64..500.0,
    ) {
        let from = SimTime::from_secs_f64(from);
        let to = SimTime::from_secs_f64(from.as_secs_f64() + span);
        let mean = model.mean_availability(from, to);
        prop_assert!((0.0..=1.0).contains(&mean), "mean={mean}");
    }

    /// The event queue releases events in non-decreasing time order with
    /// FIFO tie-breaks, regardless of insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in prop::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(id > lid, "FIFO violated for ties");
                }
            }
            last = Some((at, id));
        }
    }

    /// Outage overlays force zero inside and preserve the base outside.
    #[test]
    fn outage_overlay_is_exact(
        model in arb_load_model(),
        from in 0.0f64..500.0,
        len in 0.1f64..100.0,
        probe in 0.0f64..1_000.0,
    ) {
        let from_t = SimTime::from_secs_f64(from);
        let to_t = SimTime::from_secs_f64(from + len);
        let overlaid = model.clone().with_outages(&[(from_t, to_t)]);
        let p = SimTime::from_secs_f64(probe);
        let expected = if p >= from_t && p < to_t {
            0.0
        } else {
            model.availability(p)
        };
        prop_assert_eq!(overlaid.availability(p), expected);
    }
}
