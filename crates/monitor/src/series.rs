//! Bounded observation windows.
//!
//! Monitoring keeps only a sliding window of recent measurements; the
//! window length is itself an experiment knob (figure F5 sweeps it).

use std::collections::VecDeque;

/// A bounded FIFO of `(timestamp, value)` observations; pushing beyond
/// capacity evicts the oldest entry.
///
/// Timestamps are seconds on whatever clock the producer uses (simulated
/// or wall); the monitor only requires them to be non-decreasing.
#[derive(Clone, Debug)]
pub struct ObservationWindow {
    capacity: usize,
    buf: VecDeque<(f64, f64)>,
}

impl ObservationWindow {
    /// Creates a window holding at most `capacity` observations.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        ObservationWindow {
            capacity,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends an observation, evicting the oldest if full.
    ///
    /// # Panics
    /// Panics if `t` precedes the latest recorded timestamp.
    pub fn push(&mut self, t: f64, value: f64) {
        if let Some(&(last, _)) = self.buf.back() {
            assert!(t >= last, "observations must arrive in time order");
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((t, value));
    }

    /// Maximum number of retained observations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of retained observations.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no observations are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Latest observation, if any.
    pub fn latest(&self) -> Option<(f64, f64)> {
        self.buf.back().copied()
    }

    /// Oldest retained observation, if any.
    pub fn oldest(&self) -> Option<(f64, f64)> {
        self.buf.front().copied()
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.buf.iter().copied()
    }

    /// Values only, oldest → newest.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().map(|&(_, v)| v)
    }

    /// Mean of retained values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        Some(self.values().sum::<f64>() / self.buf.len() as f64)
    }

    /// Discards all observations, keeping the capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_evicts_oldest_beyond_capacity() {
        let mut w = ObservationWindow::new(3);
        for i in 0..5 {
            w.push(i as f64, i as f64 * 10.0);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.oldest(), Some((2.0, 20.0)));
        assert_eq!(w.latest(), Some((4.0, 40.0)));
    }

    #[test]
    fn mean_covers_retained_window_only() {
        let mut w = ObservationWindow::new(2);
        w.push(0.0, 100.0); // will be evicted
        w.push(1.0, 1.0);
        w.push(2.0, 3.0);
        assert_eq!(w.mean(), Some(2.0));
    }

    #[test]
    fn empty_window_behaviour() {
        let w = ObservationWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.latest(), None);
        assert_eq!(w.mean(), None);
        assert_eq!(w.capacity(), 4);
    }

    #[test]
    fn iter_runs_oldest_to_newest() {
        let mut w = ObservationWindow::new(10);
        w.push(0.0, 1.0);
        w.push(1.0, 2.0);
        let vals: Vec<f64> = w.values().collect();
        assert_eq!(vals, vec![1.0, 2.0]);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut w = ObservationWindow::new(2);
        w.push(0.0, 1.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 2);
        // Time ordering restarts after clear.
        w.push(0.0, 5.0);
        assert_eq!(w.latest(), Some((0.0, 5.0)));
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut w = ObservationWindow::new(3);
        w.push(1.0, 1.0);
        w.push(1.0, 2.0);
        assert_eq!(w.len(), 2);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn backwards_time_panics() {
        let mut w = ObservationWindow::new(3);
        w.push(2.0, 1.0);
        w.push(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = ObservationWindow::new(0);
    }
}
