//! The signal-processing workload on the 32-node simulated grid:
//! static vs reactive vs adaptive vs oracle under Markov on/off load.
//!
//! Run with: `cargo run --release --example signal_grid`

use adapipe::prelude::*;

fn main() {
    let grid = testbed_grid32(11);
    // Use the signal pipeline's cost shape for the simulator: the spec's
    // work means and boundary sizes are what the planner sees.
    let pipeline = signal_pipeline(4096);
    let spec_profile = pipeline.spec().profile();
    println!(
        "== signal pipeline ({} stages, work {:?}) on grid32 ==\n",
        spec_profile.stages(),
        spec_profile
            .stage_work
            .iter()
            .map(|w| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
    );

    // Rebuild an equivalent sim spec (the sim needs only the metadata).
    let mut stages: Vec<StageSpec> = Vec::new();
    for (i, w) in spec_profile.stage_work.iter().enumerate() {
        stages.push(StageSpec::balanced(
            format!("sig{i}"),
            *w,
            spec_profile.boundary_bytes[i + 1],
        ));
    }
    let mut spec = PipelineSpec::new(stages);
    spec.input_bytes = spec_profile.boundary_bytes[0];

    let interval = SimDuration::from_secs(10);
    let policies = [
        Policy::Static,
        Policy::Reactive {
            interval,
            degradation: 0.75,
        },
        Policy::Periodic { interval },
        Policy::Oracle { interval },
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>8}",
        "policy", "makespan(s)", "tput(it/s)", "latency(s)", "remaps"
    );
    for policy in policies {
        let cfg = SimConfig {
            items: 2_000,
            policy,
            ..SimConfig::default()
        };
        let report = sim_run(&grid, &spec, &cfg);
        println!(
            "{:<10} {:>12.1} {:>12.2} {:>12.3} {:>8}",
            policy.name(),
            report.makespan.as_secs_f64(),
            report.mean_throughput(),
            report.mean_latency.as_secs_f64(),
            report.adaptation_count(),
        );
    }

    println!("\nExpected shape: oracle ≥ adaptive ≥ reactive ≥ static in");
    println!("throughput; reactive plans less often than adaptive.");
}
