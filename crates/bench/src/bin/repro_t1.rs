//! Table 1 — the synthetic grid testbeds.
//!
//! Prints the node inventory (name, nominal speed, load class) and link
//! classes of the three reference grids every other experiment names.

use adapipe_bench::{banner, Table};
use adapipe_gridsim::prelude::*;

fn load_class(model: &LoadModel) -> String {
    match model {
        LoadModel::Constant { level } if *level >= 1.0 => "free".to_string(),
        LoadModel::Constant { level } => format!("constant {level:.2}"),
        LoadModel::Step { after, at, .. } => {
            format!("step to {after:.2} @ {:.0}s", at.as_secs_f64())
        }
        LoadModel::SquareWave { lo, period, .. } => {
            format!("square lo={lo:.2} P={:.0}s", period.as_secs_f64())
        }
        LoadModel::Trace(trace) => format!("trace ({} segs)", trace.segment_count()),
        LoadModel::Overlay { .. } => "overlay".to_string(),
    }
}

fn main() {
    banner(
        "T1",
        "synthetic grid testbeds",
        "three grids spanning 1x-8x speed heterogeneity, LAN/WAN links, \
         and static/random-walk/Markov background load",
    );
    let seed = 42;
    for tb in Testbed::all() {
        let grid = tb.build(seed);
        println!(
            "testbed `{}` ({} nodes, seed {seed}):",
            tb.name(),
            grid.len()
        );
        let mut table = Table::new(&["node", "speed", "load class", "avail@0s", "avail@300s"]);
        for id in grid.node_ids() {
            let node = grid.node(id);
            table.row(vec![
                node.spec.name.clone(),
                format!("{:.2}", node.spec.speed),
                load_class(&node.load),
                format!("{:.2}", node.load.availability(SimTime::ZERO)),
                format!(
                    "{:.2}",
                    node.load.availability(SimTime::from_secs_f64(300.0))
                ),
            ]);
        }
        table.print();

        // Link classes: sample one intra- and one inter-cluster pair.
        let topo = grid.topology();
        let n0 = NodeId(0);
        let n1 = NodeId(1.min(grid.len() - 1));
        let far = NodeId(grid.len() - 1);
        println!(
            "  links: self {:?} | near {:?} | far {:?}",
            topo.link(n0, n0),
            topo.link(n0, n1),
            topo.link(n0, far),
        );
        println!();
    }
}
