//! Pipeline stages: the user-supplied computation units.
//!
//! Two views exist of a stage:
//!
//! * the **typed** view ([`FnStage`]) used when building a pipeline — the
//!   compiler checks that stage `i`'s output type feeds stage `i+1`;
//! * the **erased** view ([`DynStage`]) used by execution engines — items
//!   travel as [`Payload`]s so the runtime can re-wire stages across
//!   hosts without generic plumbing.
//!
//! Stage *functions* are `FnMut`: a stage may carry state (e.g. a running
//! histogram), in which case it must be declared stateful and will never
//! be replicated.

use crate::payload::Payload;
use adapipe_state::{StateCodec, StateSnapshot};
use std::collections::HashMap;
use std::sync::Arc;

/// A type-erased item flowing through the pipeline.
///
/// Historically this was `Box<dyn Any + Send>` — one heap allocation
/// per item per stage hop. It is now an alias for [`Payload`], which
/// stores values of up to three machine words (a `u64`, a `String`, a
/// `Vec`, …) **inline** with no allocation at all, and spills larger
/// values to a thread-local pooled block. The downcast-checked surface
/// is unchanged in spirit ([`Payload::downcast`] /
/// [`Payload::downcast_ref`]), but `downcast` yields the value itself
/// rather than a `Box` around it.
pub type BoxedItem = Payload;

/// Extracts the routing key hash from an erased item headed into a
/// keyed stage (`None` when the item is not the stage's input type —
/// the engine then falls back to sequence-number routing). Shared
/// behind an `Arc` so pipelines stay cloneable.
pub type KeyFn = Arc<dyn Fn(&BoxedItem) -> Option<u64> + Send + Sync>;

/// Builds the [`KeyFn`] for a keyed stage with input type `I`.
pub fn key_fn<I: Send + 'static>(key: impl Fn(&I) -> u64 + Send + Sync + 'static) -> KeyFn {
    Arc::new(move |item: &BoxedItem| item.downcast_ref::<I>().map(&key))
}

/// Clones one erased item into independent copies, one per branch of a
/// parallel block — the fan-out half of a series-parallel stage graph.
/// Built by [`fan_out_fn`] from the typed builder (which knows the item
/// type is `Clone`); shared behind an `Arc` so pipelines stay cloneable.
pub type FanOutFn = Arc<dyn Fn(BoxedItem) -> Result<Vec<BoxedItem>, StageTypeError> + Send + Sync>;

/// Builds the [`FanOutFn`] duplicating items of type `T` to `branches`
/// copies (in branch order).
pub fn fan_out_fn<T: Clone + Send + 'static>(branches: usize) -> FanOutFn {
    Arc::new(move |item: BoxedItem| {
        let item = item.downcast::<T>().map_err(|_| StageTypeError {
            stage: "fan-out".to_string(),
            expected: std::any::type_name::<T>(),
        })?;
        Ok((0..branches).map(|_| Payload::new(item.clone())).collect())
    })
}

/// A stage received an item whose dynamic type is not its declared
/// input — a pipeline assembled from mismatched erased parts. Surfaced
/// as a typed error so execution engines can fail the *session* (the
/// historical behaviour was a panic inside a worker thread, which
/// killed the run opaquely).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageTypeError {
    /// Name of the stage that rejected the item.
    pub stage: String,
    /// The input type the stage declared.
    pub expected: &'static str,
}

impl std::fmt::Display for StageTypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stage '{}' received an item that is not a {}",
            self.stage, self.expected
        )
    }
}

impl std::error::Error for StageTypeError {}

/// Clones one erased item of a known concrete type — `None` when the
/// item is not that type. The facade captures one per stage output so
/// engines can duplicate items to multiple DAG consumers (and re-present
/// timed-out items) without knowing the type. Shared behind an `Arc` so
/// pipelines stay cloneable.
pub type CloneFn = Arc<dyn Fn(&BoxedItem) -> Option<BoxedItem> + Send + Sync>;

/// Builds the [`CloneFn`] for items of type `T`.
pub fn clone_fn<T: Clone + Send + 'static>() -> CloneFn {
    Arc::new(|item: &BoxedItem| item.downcast_ref::<T>().map(|i| Payload::new(i.clone())))
}

/// A failed stage attempt, as seen through [`DynStage::try_process`].
///
/// `Type` is the historical mis-assembly error (fatal: retrying cannot
/// fix a wrong dynamic type). `Item` is a *processing* failure from a
/// fallible stage: the input comes back in the error, so an engine
/// honouring a [`adapipe_runtime::session::ResiliencePolicy`] can wait
/// out the backoff and re-present exactly the same item.
pub enum StageError {
    /// The item's dynamic type is not the stage's declared input.
    Type(StageTypeError),
    /// The stage's closure rejected this item; the input is returned
    /// for a possible retry.
    Item {
        /// The closure's error.
        reason: String,
        /// The unconsumed input item.
        item: BoxedItem,
    },
}

impl std::fmt::Debug for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::Type(e) => f.debug_tuple("Type").field(e).finish(),
            StageError::Item { reason, .. } => f
                .debug_struct("Item")
                .field("reason", reason)
                .finish_non_exhaustive(),
        }
    }
}

/// The execution engines' view of a stage.
pub trait DynStage: Send {
    /// Processes one item. Engines guarantee items of the declared
    /// input type when pipelines come from the typed builder; a
    /// mismatch (mis-assembled erased parts) surfaces as a typed
    /// [`StageTypeError`] the engine turns into a session-level run
    /// error instead of a worker-thread panic.
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError>;

    /// Processes one item, distinguishing *retryable* item failures from
    /// fatal type mismatches. Engines call this (not [`Self::process`])
    /// so stages built from fallible closures ([`FallibleFnStage`]) can
    /// hand the input back for a retry. The default forwards to
    /// `process`, so infallible stages need no change.
    fn try_process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageError> {
        self.process(item).map_err(StageError::Type)
    }

    /// Creates an independent instance for replication, or `None` if the
    /// stage cannot be replicated (it is stateful or its closure is not
    /// cloneable).
    fn replicate(&self) -> Option<Box<dyn DynStage>>;

    /// Stage name for logs and reports.
    fn name(&self) -> &str;

    /// An *empty shell* of the same stage type (state reset to init),
    /// regardless of whether the planner may replicate it — the target
    /// a migration restores a snapshot into. `None` for stages whose
    /// closure cannot be recreated (opaque state).
    fn fresh(&self) -> Option<Box<dyn DynStage>> {
        self.replicate()
    }

    /// Serializes this instance's state for a migration hand-off, or
    /// `None` for stages with no movable state (stateless or opaque).
    fn snapshot(&mut self) -> Option<StateSnapshot> {
        None
    }

    /// Replaces this instance's state from a snapshot. Returns `false`
    /// when the stage does not support restore or the bytes are
    /// malformed (the caller keeps the donor instance alive instead).
    fn restore(&mut self, _snap: StateSnapshot) -> bool {
        false
    }

    /// Merges a *partial* snapshot into this instance's state — the
    /// accumulator hand-off (a keyed stage absorbs disjoint key sets
    /// the same way). Returns `false` when unsupported or malformed.
    fn absorb(&mut self, _snap: StateSnapshot) -> bool {
        false
    }
}

/// A stage built from a closure `I -> O`.
pub struct FnStage<I, O, F>
where
    F: FnMut(I) -> O + Send,
{
    name: String,
    f: F,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F> FnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send,
{
    /// Wraps `f` as a named stage.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnStage {
            name: name.into(),
            f,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, O, F> DynStage for FnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send + Clone + 'static,
{
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        let input = item.downcast::<I>().map_err(|_| StageTypeError {
            stage: self.name.clone(),
            expected: std::any::type_name::<I>(),
        })?;
        Ok(Payload::new((self.f)(input)))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        Some(Box::new(FnStage {
            name: self.name.clone(),
            f: self.f.clone(),
            _types: std::marker::PhantomData,
        }))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A stage built from a *fallible* closure `I -> Result<O, String>`.
///
/// The input type must be `Clone`: the stage clones each item before
/// attempting it, so a failure hands the untouched original back through
/// [`StageError::Item`] and the engine's retry loop can re-present it
/// after the stage's declared backoff.
pub struct FallibleFnStage<I, O, F>
where
    F: FnMut(I) -> Result<O, String> + Send,
{
    name: String,
    f: F,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F> FallibleFnStage<I, O, F>
where
    I: Clone + Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> Result<O, String> + Send,
{
    /// Wraps `f` as a named fallible stage.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FallibleFnStage {
            name: name.into(),
            f,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, O, F> DynStage for FallibleFnStage<I, O, F>
where
    I: Clone + Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> Result<O, String> + Send + Clone + 'static,
{
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        // Compatibility shim for callers that have not migrated to
        // `try_process`; an item failure has no spelling here and
        // degrades to a stage-level error.
        match self.try_process(item) {
            Ok(out) => Ok(out),
            Err(StageError::Type(e)) => Err(e),
            Err(StageError::Item { .. }) => Err(StageTypeError {
                stage: self.name.clone(),
                expected: "an item this fallible stage accepts (use try_process)",
            }),
        }
    }

    fn try_process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageError> {
        let input = item.downcast::<I>().map_err(|_| {
            StageError::Type(StageTypeError {
                stage: self.name.clone(),
                expected: std::any::type_name::<I>(),
            })
        })?;
        match (self.f)(input.clone()) {
            Ok(out) => Ok(Payload::new(out)),
            Err(reason) => Err(StageError::Item {
                reason,
                item: Payload::new(input),
            }),
        }
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        Some(Box::new(FallibleFnStage {
            name: self.name.clone(),
            f: self.f.clone(),
            _types: std::marker::PhantomData,
        }))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A stage built from a stateful closure: never replicable, and the
/// closure needs no `Clone` bound.
pub struct StatefulFnStage<I, O, F>
where
    F: FnMut(I) -> O + Send,
{
    name: String,
    f: F,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F> StatefulFnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send,
{
    /// Wraps `f` as a named stateful stage.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        StatefulFnStage {
            name: name.into(),
            f,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, O, F> DynStage for StatefulFnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send + 'static,
{
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        let input = item.downcast::<I>().map_err(|_| StageTypeError {
            stage: self.name.clone(),
            expected: std::any::type_name::<I>(),
        })?;
        Ok(Payload::new((self.f)(input)))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        None
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The fan-in half of a parallel block: a stage whose input is the
/// `Vec` of branch outputs (in branch order) and whose closure folds
/// them into one item. Engines deliver the joined vector as a
/// `BoxedItem` wrapping `Vec<BoxedItem>`; each element must downcast to
/// the common branch output type `B`.
pub struct MergeStage<B, O, F>
where
    F: FnMut(Vec<B>) -> O + Send,
{
    name: String,
    f: F,
    _types: std::marker::PhantomData<fn(Vec<B>) -> O>,
}

impl<B, O, F> MergeStage<B, O, F>
where
    B: Send + 'static,
    O: Send + 'static,
    F: FnMut(Vec<B>) -> O + Send,
{
    /// Wraps `f` as a named merge stage.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        MergeStage {
            name: name.into(),
            f,
            _types: std::marker::PhantomData,
        }
    }
}

impl<B, O, F> DynStage for MergeStage<B, O, F>
where
    B: Send + 'static,
    O: Send + 'static,
    F: FnMut(Vec<B>) -> O + Send + Clone + 'static,
{
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        let parts = item
            .downcast::<Vec<BoxedItem>>()
            .map_err(|_| StageTypeError {
                stage: self.name.clone(),
                expected: "a joined Vec of branch outputs",
            })?;
        let mut typed = Vec::with_capacity(parts.len());
        for part in parts {
            typed.push(part.downcast::<B>().map_err(|_| StageTypeError {
                stage: self.name.clone(),
                expected: std::any::type_name::<B>(),
            })?);
        }
        Ok(Payload::new((self.f)(typed)))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        Some(Box::new(MergeStage {
            name: self.name.clone(),
            f: self.f.clone(),
            _types: std::marker::PhantomData,
        }))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A stage wrapper that refuses replication regardless of the closure —
/// used for stages declared stateful.
pub struct SealedStage {
    inner: Box<dyn DynStage>,
}

impl SealedStage {
    /// Seals `inner` against replication.
    pub fn new(inner: Box<dyn DynStage>) -> Self {
        SealedStage { inner }
    }
}

impl DynStage for SealedStage {
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        self.inner.process(item)
    }
    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        None
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// A stage with *keyed* state: per-key values of type `S`, partitioned
/// by key hash. Each live instance owns a disjoint slice of the key
/// space (the router guarantees a key always meets the same instance),
/// so instances replicate as empty shells and their contents migrate as
/// codec-encoded `HashMap<key-hash, S>` snapshots.
pub struct KeyedStage<I, O, S, K, F>
where
    K: Fn(&I) -> u64 + Send + Sync,
    F: FnMut(&mut S, I) -> O + Send,
{
    name: String,
    key: Arc<K>,
    init: Arc<dyn Fn() -> S + Send + Sync>,
    f: F,
    states: HashMap<u64, S>,
    version: u64,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, S, K, F> KeyedStage<I, O, S, K, F>
where
    I: Send + 'static,
    O: Send + 'static,
    S: StateCodec + Send + 'static,
    K: Fn(&I) -> u64 + Send + Sync + 'static,
    F: FnMut(&mut S, I) -> O + Send + Clone + 'static,
{
    /// Wraps `f` as a named keyed stage: `key` hashes an item to its
    /// state slice, `init` seeds the state of a first-seen key.
    pub fn new(
        name: impl Into<String>,
        key: K,
        init: impl Fn() -> S + Send + Sync + 'static,
        f: F,
    ) -> Self {
        KeyedStage {
            name: name.into(),
            key: Arc::new(key),
            init: Arc::new(init),
            f,
            states: HashMap::new(),
            version: 0,
            _types: std::marker::PhantomData,
        }
    }

    /// The erased key extractor the router uses to pick this stage's
    /// destination shard per item.
    pub fn routing_key(&self) -> KeyFn {
        let key = Arc::clone(&self.key);
        Arc::new(move |item: &BoxedItem| item.downcast_ref::<I>().map(|i| key(i)))
    }
}

impl<I, O, S, K, F> DynStage for KeyedStage<I, O, S, K, F>
where
    I: Send + 'static,
    O: Send + 'static,
    S: StateCodec + Send + 'static,
    K: Fn(&I) -> u64 + Send + Sync + 'static,
    F: FnMut(&mut S, I) -> O + Send + Clone + 'static,
{
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        let input = item.downcast::<I>().map_err(|_| StageTypeError {
            stage: self.name.clone(),
            expected: std::any::type_name::<I>(),
        })?;
        let hash = (self.key)(&input);
        let state = self.states.entry(hash).or_insert_with(|| (self.init)());
        Ok(Payload::new((self.f)(state, input)))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        // Replicas start empty: each one owns whichever keys the router
        // sends it, so fresh shells are the correct seed.
        Some(Box::new(KeyedStage {
            name: self.name.clone(),
            key: Arc::clone(&self.key),
            init: Arc::clone(&self.init),
            f: self.f.clone(),
            states: HashMap::new(),
            version: 0,
            _types: std::marker::PhantomData,
        }))
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn snapshot(&mut self) -> Option<StateSnapshot> {
        self.version += 1;
        Some(StateSnapshot::new(self.version, self.states.to_bytes()))
    }

    fn restore(&mut self, snap: StateSnapshot) -> bool {
        match HashMap::<u64, S>::from_bytes(&snap.bytes) {
            Some(states) if snap.version >= self.version => {
                self.states = states;
                self.version = snap.version;
                true
            }
            _ => false,
        }
    }

    fn absorb(&mut self, snap: StateSnapshot) -> bool {
        match HashMap::<u64, S>::from_bytes(&snap.bytes) {
            Some(states) => {
                // Key sets from different shards are disjoint; a repeat
                // of a key we already host keeps the absorbed (newer,
                // migrated-in) value.
                self.states.extend(states);
                self.version = self.version.max(snap.version);
                true
            }
            None => false,
        }
    }
}

/// A stage with *accumulator* state: one logical value with a
/// commutative merge. Every replica keeps a partial seeded from `init`;
/// a replica vacating a host snapshots its partial for a survivor to
/// [`DynStage::absorb`] via `merge`.
pub struct AccumStage<I, O, S, F, M>
where
    F: FnMut(&mut S, I) -> O + Send,
    M: Fn(&mut S, S) + Send + Sync,
{
    name: String,
    init: Arc<dyn Fn() -> S + Send + Sync>,
    f: F,
    merge: Arc<M>,
    state: S,
    version: u64,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, S, F, M> AccumStage<I, O, S, F, M>
where
    I: Send + 'static,
    O: Send + 'static,
    S: StateCodec + Send + 'static,
    F: FnMut(&mut S, I) -> O + Send + Clone + 'static,
    M: Fn(&mut S, S) + Send + Sync + 'static,
{
    /// Wraps `f` as a named accumulator stage with merge operator
    /// `merge` (folds the right partial into the left).
    pub fn new(
        name: impl Into<String>,
        init: impl Fn() -> S + Send + Sync + 'static,
        f: F,
        merge: M,
    ) -> Self {
        let init = Arc::new(init);
        let state = init();
        AccumStage {
            name: name.into(),
            init,
            f,
            merge: Arc::new(merge),
            state,
            version: 0,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, O, S, F, M> DynStage for AccumStage<I, O, S, F, M>
where
    I: Send + 'static,
    O: Send + 'static,
    S: StateCodec + Send + 'static,
    F: FnMut(&mut S, I) -> O + Send + Clone + 'static,
    M: Fn(&mut S, S) + Send + Sync + 'static,
{
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        let input = item.downcast::<I>().map_err(|_| StageTypeError {
            stage: self.name.clone(),
            expected: std::any::type_name::<I>(),
        })?;
        Ok(Payload::new((self.f)(&mut self.state, input)))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        Some(Box::new(AccumStage {
            name: self.name.clone(),
            init: Arc::clone(&self.init),
            f: self.f.clone(),
            merge: Arc::clone(&self.merge),
            state: (self.init)(),
            version: 0,
            _types: std::marker::PhantomData,
        }))
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn snapshot(&mut self) -> Option<StateSnapshot> {
        self.version += 1;
        Some(StateSnapshot::new(self.version, self.state.to_bytes()))
    }

    fn restore(&mut self, snap: StateSnapshot) -> bool {
        match S::from_bytes(&snap.bytes) {
            Some(state) if snap.version >= self.version => {
                self.state = state;
                self.version = snap.version;
                true
            }
            _ => false,
        }
    }

    fn absorb(&mut self, snap: StateSnapshot) -> bool {
        match S::from_bytes(&snap.bytes) {
            Some(partial) => {
                (self.merge)(&mut self.state, partial);
                self.version = self.version.max(snap.version);
                true
            }
            None => false,
        }
    }
}

/// A stage with *exclusive* declared state: serializable but
/// indivisible. The planner never replicates it ([`DynStage::replicate`]
/// is `None`), but unlike opaque closure state it can quiesce,
/// snapshot, and resume on another host — so a node death migrates it
/// instead of aborting the run.
pub struct SnapStage<I, O, S, F>
where
    F: FnMut(&mut S, I) -> O + Send,
{
    name: String,
    init: Arc<dyn Fn() -> S + Send + Sync>,
    f: F,
    state: S,
    version: u64,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, S, F> SnapStage<I, O, S, F>
where
    I: Send + 'static,
    O: Send + 'static,
    S: StateCodec + Send + 'static,
    F: FnMut(&mut S, I) -> O + Send + Clone + 'static,
{
    /// Wraps `f` as a named exclusive-state stage seeded from `init`.
    pub fn new(
        name: impl Into<String>,
        init: impl Fn() -> S + Send + Sync + 'static,
        f: F,
    ) -> Self {
        let init = Arc::new(init);
        let state = init();
        SnapStage {
            name: name.into(),
            init,
            f,
            state,
            version: 0,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, O, S, F> DynStage for SnapStage<I, O, S, F>
where
    I: Send + 'static,
    O: Send + 'static,
    S: StateCodec + Send + 'static,
    F: FnMut(&mut S, I) -> O + Send + Clone + 'static,
{
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        let input = item.downcast::<I>().map_err(|_| StageTypeError {
            stage: self.name.clone(),
            expected: std::any::type_name::<I>(),
        })?;
        Ok(Payload::new((self.f)(&mut self.state, input)))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        None
    }

    fn fresh(&self) -> Option<Box<dyn DynStage>> {
        Some(Box::new(SnapStage {
            name: self.name.clone(),
            init: Arc::clone(&self.init),
            f: self.f.clone(),
            state: (self.init)(),
            version: 0,
            _types: std::marker::PhantomData,
        }))
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn snapshot(&mut self) -> Option<StateSnapshot> {
        self.version += 1;
        Some(StateSnapshot::new(self.version, self.state.to_bytes()))
    }

    fn restore(&mut self, snap: StateSnapshot) -> bool {
        match S::from_bytes(&snap.bytes) {
            Some(state) if snap.version >= self.version => {
                self.state = state;
                self.version = snap.version;
                true
            }
            _ => false,
        }
    }
}

/// Moves a quiescent instance's state through the byte boundary: a
/// snapshot restored into a fresh shell of the same stage type. This is
/// what a migration deposits on the receiving side, proving the state
/// really serializes (an instance whose state cannot make the round
/// trip — opaque closures, malformed bytes — moves as the live box
/// instead, which is only sound within one process).
pub fn quiesce(mut inst: Box<dyn DynStage>) -> (Box<dyn DynStage>, usize) {
    let Some(snap) = inst.snapshot() else {
        return (inst, 0);
    };
    let moved = snap.len();
    if let Some(mut shell) = inst.fresh() {
        if shell.restore(snap) {
            return (shell, moved);
        }
    }
    (inst, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_stage_processes_typed_items() {
        let mut s = FnStage::new("double", |x: i64| x * 2);
        let out = s.process(Payload::new(21i64)).expect("typed item");
        assert_eq!(out.downcast::<i64>().unwrap(), 42);
        assert_eq!(s.name(), "double");
    }

    #[test]
    fn fn_stage_may_change_type() {
        let mut s = FnStage::new("fmt", |x: u32| format!("{x}!"));
        let out = s.process(Payload::new(7u32)).expect("typed item");
        assert_eq!(out.downcast::<String>().unwrap(), "7!");
    }

    #[test]
    fn replicas_are_independent() {
        let counter_stage = FnStage::new("count", {
            let mut seen = 0u64;
            move |x: u64| {
                seen += 1;
                x + seen
            }
        });
        let mut a: Box<dyn DynStage> = Box::new(counter_stage);
        let mut b = a.replicate().expect("cloneable");
        let run = |s: &mut Box<dyn DynStage>| {
            s.process(Payload::new(0u64))
                .expect("typed item")
                .downcast::<u64>()
                .unwrap()
        };
        // Each replica keeps its own `seen` counter.
        assert_eq!(run(&mut a), 1);
        assert_eq!(run(&mut a), 2);
        assert_eq!(run(&mut b), 1);
    }

    #[test]
    fn sealed_stage_refuses_replication() {
        let s = SealedStage::new(Box::new(FnStage::new("st", |x: i32| x)));
        assert!(s.replicate().is_none());
        assert_eq!(s.name(), "st");
    }

    #[test]
    fn fan_out_clones_and_merge_folds() {
        let split = fan_out_fn::<u64>(3);
        let parts = split(Payload::new(7u64)).expect("typed item splits");
        assert_eq!(parts.len(), 3);
        let mut m = MergeStage::new("sum", |xs: Vec<u64>| xs.iter().sum::<u64>());
        let joined: BoxedItem = Payload::new(parts);
        let out = m.process(joined).expect("typed parts merge");
        assert_eq!(out.downcast::<u64>().unwrap(), 21);
        assert!(m.replicate().is_some(), "stateless merges replicate");
    }

    #[test]
    fn fan_out_and_merge_report_type_mismatches() {
        let split = fan_out_fn::<u64>(2);
        let err = split(Payload::new("nope")).unwrap_err();
        assert_eq!(err.stage, "fan-out");
        let mut m = MergeStage::new("j", |xs: Vec<u64>| xs[0]);
        // Not a joined vector at all.
        assert!(m.process(Payload::new(1u64)).is_err());
        // A joined vector of the wrong element type.
        let bad: Vec<BoxedItem> = vec![Payload::new("x"), Payload::new("y")];
        assert_eq!(m.process(Payload::new(bad)).unwrap_err().stage, "j");
    }

    #[test]
    fn keyed_stage_state_survives_the_byte_round_trip() {
        let mut a = KeyedStage::new(
            "count",
            |k: &u64| *k,
            || 0u64,
            |n: &mut u64, _k: u64| {
                *n += 1;
                *n
            },
        );
        let run = |s: &mut dyn DynStage, k: u64| {
            s.process(Payload::new(k))
                .expect("typed")
                .downcast::<u64>()
                .unwrap()
        };
        assert_eq!(run(&mut a, 7), 1);
        assert_eq!(run(&mut a, 7), 2);
        assert_eq!(run(&mut a, 9), 1);
        // Quiesce: snapshot → fresh shell → restore, through real bytes.
        let (mut b, moved) = quiesce(Box::new(a));
        assert!(moved > 0, "keyed state must actually ship bytes");
        assert_eq!(run(b.as_mut(), 7), 3, "key 7 kept its count");
        assert_eq!(run(b.as_mut(), 9), 2);
        // Replicas are empty shells: keys start over.
        let mut c = b.replicate().expect("keyed stages replicate");
        assert_eq!(run(c.as_mut(), 7), 1);
    }

    #[test]
    fn keyed_stage_absorbs_disjoint_key_sets() {
        let make = || {
            KeyedStage::new(
                "m",
                |k: &u64| *k,
                || 0u64,
                |n: &mut u64, _k: u64| {
                    *n += 10;
                    *n
                },
            )
        };
        let mut left = make();
        let mut right = make();
        left.process(Payload::new(1u64)).unwrap();
        right.process(Payload::new(2u64)).unwrap();
        right.process(Payload::new(2u64)).unwrap();
        let snap = right.snapshot().expect("keyed snapshots");
        assert!(left.absorb(snap));
        let out = left.process(Payload::new(2u64)).unwrap();
        assert_eq!(out.downcast::<u64>().unwrap(), 30, "absorbed key 2 at 20");
    }

    #[test]
    fn accumulator_partials_merge() {
        let make = || {
            AccumStage::new(
                "sum",
                || 0u64,
                |acc: &mut u64, x: u64| {
                    *acc += x;
                    *acc
                },
                |acc: &mut u64, other: u64| *acc += other,
            )
        };
        let mut a = make();
        a.process(Payload::new(5u64)).unwrap();
        // A replica is an independent partial seeded from init.
        let mut b = a.replicate().expect("accumulators replicate");
        b.process(Payload::new(7u64)).unwrap();
        let snap = b.snapshot().expect("accumulators snapshot");
        assert!(a.absorb(snap), "partials merge");
        let out = a.process(Payload::new(0u64)).unwrap();
        assert_eq!(out.downcast::<u64>().unwrap(), 12);
    }

    #[test]
    fn exclusive_stage_migrates_but_never_replicates() {
        let mut s = SnapStage::new(
            "ledger",
            || 0i64,
            |acc: &mut i64, x: i64| {
                *acc += x;
                *acc
            },
        );
        s.process(Payload::new(40i64)).unwrap();
        assert!(s.replicate().is_none(), "exclusive state is one instance");
        let (mut moved, bytes) = quiesce(Box::new(s));
        assert_eq!(bytes, 8, "one i64 of state shipped");
        let out = moved.process(Payload::new(2i64)).unwrap();
        assert_eq!(out.downcast::<i64>().unwrap(), 42);
    }

    #[test]
    fn quiesce_falls_back_to_the_live_box_for_opaque_state() {
        let mut total = 0u64;
        let s = StatefulFnStage::new("opaque", move |x: u64| {
            total += x;
            total
        });
        let (mut back, bytes) = quiesce(Box::new(s));
        assert_eq!(bytes, 0, "opaque state cannot ship");
        let out = back.process(Payload::new(3u64)).unwrap();
        assert_eq!(out.downcast::<u64>().unwrap(), 3);
    }

    #[test]
    fn stale_snapshots_are_rejected() {
        let mut s = SnapStage::new(
            "v",
            || 0u64,
            |acc: &mut u64, x: u64| {
                *acc += x;
                *acc
            },
        );
        s.process(Payload::new(1u64)).unwrap();
        let old = s.snapshot().unwrap();
        s.process(Payload::new(1u64)).unwrap();
        let newer = s.snapshot().unwrap();
        assert!(newer.version > old.version);
        // A restore must never roll state back to an older snapshot.
        assert!(!s.restore(old));
        assert!(s.restore(newer));
    }

    #[test]
    fn key_fn_extracts_and_rejects() {
        let kf = key_fn(|s: &String| s.len() as u64);
        let item: BoxedItem = Payload::new(String::from("abcd"));
        assert_eq!(kf(&item), Some(4));
        let wrong: BoxedItem = Payload::new(17u8);
        assert_eq!(kf(&wrong), None);
    }

    #[test]
    fn fallible_stage_returns_the_item_for_retry() {
        let mut s = FallibleFnStage::new("flaky", |x: u64| {
            if x.is_multiple_of(2) {
                Ok(x * 10)
            } else {
                Err(format!("odd input {x}"))
            }
        });
        let out = s.try_process(Payload::new(4u64)).expect("even succeeds");
        assert_eq!(out.downcast::<u64>().unwrap(), 40);
        match s.try_process(Payload::new(3u64)) {
            Err(StageError::Item { reason, item }) => {
                assert_eq!(reason, "odd input 3");
                // The original item comes back unconsumed, re-presentable.
                assert_eq!(item.downcast::<u64>().unwrap(), 3);
            }
            other => panic!("expected an item failure, got {other:?}"),
        }
        // A wrong dynamic type is fatal, not retryable.
        assert!(matches!(
            s.try_process(Payload::new("nope")),
            Err(StageError::Type(_))
        ));
        assert!(s.replicate().is_some(), "fallible stages replicate");
    }

    #[test]
    fn try_process_defaults_to_process_for_infallible_stages() {
        let mut s = FnStage::new("double", |x: i64| x * 2);
        let out = s.try_process(Payload::new(5i64)).expect("typed");
        assert_eq!(out.downcast::<i64>().unwrap(), 10);
        assert!(matches!(
            s.try_process(Payload::new("x")),
            Err(StageError::Type(_))
        ));
    }

    #[test]
    fn clone_fn_duplicates_and_rejects() {
        let cf = clone_fn::<String>();
        let item: BoxedItem = Payload::new(String::from("dup"));
        let copy = cf(&item).expect("same type clones");
        assert_eq!(copy.downcast::<String>().unwrap(), "dup");
        // The original is untouched.
        assert_eq!(item.downcast::<String>().unwrap(), "dup");
        let wrong: BoxedItem = Payload::new(3u8);
        assert!(cf(&wrong).is_none());
    }

    #[test]
    fn type_mismatch_is_a_typed_error_not_a_panic() {
        let mut s = FnStage::new("typed", |x: i64| x);
        let err = s.process(Payload::new("not an i64")).unwrap_err();
        assert_eq!(err.stage, "typed");
        assert_eq!(err.expected, std::any::type_name::<i64>());
        assert!(err.to_string().contains("'typed'"));
        // Stateful stages report identically.
        let mut s = StatefulFnStage::new("acc", |x: u64| x);
        let err = s.process(Payload::new(1i8)).unwrap_err();
        assert_eq!(err.stage, "acc");
    }
}
