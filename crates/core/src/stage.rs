//! Pipeline stages: the user-supplied computation units.
//!
//! Two views exist of a stage:
//!
//! * the **typed** view ([`FnStage`]) used when building a pipeline — the
//!   compiler checks that stage `i`'s output type feeds stage `i+1`;
//! * the **erased** view ([`DynStage`]) used by execution engines — items
//!   travel as `Box<dyn Any + Send>` so the runtime can re-wire stages
//!   across hosts without generic plumbing.
//!
//! Stage *functions* are `FnMut`: a stage may carry state (e.g. a running
//! histogram), in which case it must be declared stateful and will never
//! be replicated.

use std::any::Any;
use std::sync::Arc;

/// A type-erased item flowing through the pipeline.
pub type BoxedItem = Box<dyn Any + Send>;

/// Clones one erased item into independent copies, one per branch of a
/// parallel block — the fan-out half of a series-parallel stage graph.
/// Built by [`fan_out_fn`] from the typed builder (which knows the item
/// type is `Clone`); shared behind an `Arc` so pipelines stay cloneable.
pub type FanOutFn = Arc<dyn Fn(BoxedItem) -> Result<Vec<BoxedItem>, StageTypeError> + Send + Sync>;

/// Builds the [`FanOutFn`] duplicating items of type `T` to `branches`
/// copies (in branch order).
pub fn fan_out_fn<T: Clone + Send + 'static>(branches: usize) -> FanOutFn {
    Arc::new(move |item: BoxedItem| {
        let item = item.downcast::<T>().map_err(|_| StageTypeError {
            stage: "fan-out".to_string(),
            expected: std::any::type_name::<T>(),
        })?;
        Ok((0..branches)
            .map(|_| Box::new((*item).clone()) as BoxedItem)
            .collect())
    })
}

/// A stage received an item whose dynamic type is not its declared
/// input — a pipeline assembled from mismatched erased parts. Surfaced
/// as a typed error so execution engines can fail the *session* (the
/// historical behaviour was a panic inside a worker thread, which
/// killed the run opaquely).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageTypeError {
    /// Name of the stage that rejected the item.
    pub stage: String,
    /// The input type the stage declared.
    pub expected: &'static str,
}

impl std::fmt::Display for StageTypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stage '{}' received an item that is not a {}",
            self.stage, self.expected
        )
    }
}

impl std::error::Error for StageTypeError {}

/// The execution engines' view of a stage.
pub trait DynStage: Send {
    /// Processes one item. Engines guarantee items of the declared
    /// input type when pipelines come from the typed builder; a
    /// mismatch (mis-assembled erased parts) surfaces as a typed
    /// [`StageTypeError`] the engine turns into a session-level run
    /// error instead of a worker-thread panic.
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError>;

    /// Creates an independent instance for replication, or `None` if the
    /// stage cannot be replicated (it is stateful or its closure is not
    /// cloneable).
    fn replicate(&self) -> Option<Box<dyn DynStage>>;

    /// Stage name for logs and reports.
    fn name(&self) -> &str;
}

/// A stage built from a closure `I -> O`.
pub struct FnStage<I, O, F>
where
    F: FnMut(I) -> O + Send,
{
    name: String,
    f: F,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F> FnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send,
{
    /// Wraps `f` as a named stage.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnStage {
            name: name.into(),
            f,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, O, F> DynStage for FnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send + Clone + 'static,
{
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        let input = item.downcast::<I>().map_err(|_| StageTypeError {
            stage: self.name.clone(),
            expected: std::any::type_name::<I>(),
        })?;
        Ok(Box::new((self.f)(*input)))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        Some(Box::new(FnStage {
            name: self.name.clone(),
            f: self.f.clone(),
            _types: std::marker::PhantomData,
        }))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A stage built from a stateful closure: never replicable, and the
/// closure needs no `Clone` bound.
pub struct StatefulFnStage<I, O, F>
where
    F: FnMut(I) -> O + Send,
{
    name: String,
    f: F,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F> StatefulFnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send,
{
    /// Wraps `f` as a named stateful stage.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        StatefulFnStage {
            name: name.into(),
            f,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, O, F> DynStage for StatefulFnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send + 'static,
{
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        let input = item.downcast::<I>().map_err(|_| StageTypeError {
            stage: self.name.clone(),
            expected: std::any::type_name::<I>(),
        })?;
        Ok(Box::new((self.f)(*input)))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        None
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The fan-in half of a parallel block: a stage whose input is the
/// `Vec` of branch outputs (in branch order) and whose closure folds
/// them into one item. Engines deliver the joined vector as a
/// `BoxedItem` wrapping `Vec<BoxedItem>`; each element must downcast to
/// the common branch output type `B`.
pub struct MergeStage<B, O, F>
where
    F: FnMut(Vec<B>) -> O + Send,
{
    name: String,
    f: F,
    _types: std::marker::PhantomData<fn(Vec<B>) -> O>,
}

impl<B, O, F> MergeStage<B, O, F>
where
    B: Send + 'static,
    O: Send + 'static,
    F: FnMut(Vec<B>) -> O + Send,
{
    /// Wraps `f` as a named merge stage.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        MergeStage {
            name: name.into(),
            f,
            _types: std::marker::PhantomData,
        }
    }
}

impl<B, O, F> DynStage for MergeStage<B, O, F>
where
    B: Send + 'static,
    O: Send + 'static,
    F: FnMut(Vec<B>) -> O + Send + Clone + 'static,
{
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        let parts = item
            .downcast::<Vec<BoxedItem>>()
            .map_err(|_| StageTypeError {
                stage: self.name.clone(),
                expected: "a joined Vec of branch outputs",
            })?;
        let mut typed = Vec::with_capacity(parts.len());
        for part in *parts {
            typed.push(*part.downcast::<B>().map_err(|_| StageTypeError {
                stage: self.name.clone(),
                expected: std::any::type_name::<B>(),
            })?);
        }
        Ok(Box::new((self.f)(typed)))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        Some(Box::new(MergeStage {
            name: self.name.clone(),
            f: self.f.clone(),
            _types: std::marker::PhantomData,
        }))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A stage wrapper that refuses replication regardless of the closure —
/// used for stages declared stateful.
pub struct SealedStage {
    inner: Box<dyn DynStage>,
}

impl SealedStage {
    /// Seals `inner` against replication.
    pub fn new(inner: Box<dyn DynStage>) -> Self {
        SealedStage { inner }
    }
}

impl DynStage for SealedStage {
    fn process(&mut self, item: BoxedItem) -> Result<BoxedItem, StageTypeError> {
        self.inner.process(item)
    }
    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        None
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_stage_processes_typed_items() {
        let mut s = FnStage::new("double", |x: i64| x * 2);
        let out = s.process(Box::new(21i64)).expect("typed item");
        assert_eq!(*out.downcast::<i64>().unwrap(), 42);
        assert_eq!(s.name(), "double");
    }

    #[test]
    fn fn_stage_may_change_type() {
        let mut s = FnStage::new("fmt", |x: u32| format!("{x}!"));
        let out = s.process(Box::new(7u32)).expect("typed item");
        assert_eq!(*out.downcast::<String>().unwrap(), "7!");
    }

    #[test]
    fn replicas_are_independent() {
        let counter_stage = FnStage::new("count", {
            let mut seen = 0u64;
            move |x: u64| {
                seen += 1;
                x + seen
            }
        });
        let mut a: Box<dyn DynStage> = Box::new(counter_stage);
        let mut b = a.replicate().expect("cloneable");
        let run = |s: &mut Box<dyn DynStage>| {
            *s.process(Box::new(0u64))
                .expect("typed item")
                .downcast::<u64>()
                .unwrap()
        };
        // Each replica keeps its own `seen` counter.
        assert_eq!(run(&mut a), 1);
        assert_eq!(run(&mut a), 2);
        assert_eq!(run(&mut b), 1);
    }

    #[test]
    fn sealed_stage_refuses_replication() {
        let s = SealedStage::new(Box::new(FnStage::new("st", |x: i32| x)));
        assert!(s.replicate().is_none());
        assert_eq!(s.name(), "st");
    }

    #[test]
    fn fan_out_clones_and_merge_folds() {
        let split = fan_out_fn::<u64>(3);
        let parts = split(Box::new(7u64)).expect("typed item splits");
        assert_eq!(parts.len(), 3);
        let mut m = MergeStage::new("sum", |xs: Vec<u64>| xs.iter().sum::<u64>());
        let joined: BoxedItem = Box::new(parts);
        let out = m.process(joined).expect("typed parts merge");
        assert_eq!(*out.downcast::<u64>().unwrap(), 21);
        assert!(m.replicate().is_some(), "stateless merges replicate");
    }

    #[test]
    fn fan_out_and_merge_report_type_mismatches() {
        let split = fan_out_fn::<u64>(2);
        let err = split(Box::new("nope")).unwrap_err();
        assert_eq!(err.stage, "fan-out");
        let mut m = MergeStage::new("j", |xs: Vec<u64>| xs[0]);
        // Not a joined vector at all.
        assert!(m.process(Box::new(1u64)).is_err());
        // A joined vector of the wrong element type.
        let bad: Vec<BoxedItem> = vec![Box::new("x"), Box::new("y")];
        assert_eq!(m.process(Box::new(bad)).unwrap_err().stage, "j");
    }

    #[test]
    fn type_mismatch_is_a_typed_error_not_a_panic() {
        let mut s = FnStage::new("typed", |x: i64| x);
        let err = s.process(Box::new("not an i64")).unwrap_err();
        assert_eq!(err.stage, "typed");
        assert_eq!(err.expected, std::any::type_name::<i64>());
        assert!(err.to_string().contains("'typed'"));
        // Stateful stages report identically.
        let mut s = StatefulFnStage::new("acc", |x: u64| x);
        let err = s.process(Box::new(1i8)).unwrap_err();
        assert_eq!(err.stage, "acc");
    }
}
