//! Builder-validation suite for the unified API: every declaration
//! error surfaces at `build()` (or `run()`, for backend-dependent
//! rules) as a typed [`BuildError`] variant — no panics, no silent
//! mis-configuration.

use adapipe::prelude::*;

#[test]
fn empty_pipeline_is_rejected() {
    let err = Pipeline::<u64>::builder().build().unwrap_err();
    assert_eq!(err, BuildError::EmptyPipeline);
}

#[test]
fn duplicate_stage_names_are_rejected() {
    let err = Pipeline::<u64>::builder()
        .stage("blur", |x: u64| x + 1)
        .stage("sobel", |x: u64| x * 2)
        .stage("blur", |x: u64| x - 1)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::DuplicateStage {
            name: "blur".into()
        }
    );
}

#[test]
fn zero_replicas_are_rejected() {
    let err = Pipeline::<u64>::builder()
        .stage_replicated("hot", |x: u64| x, 0)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::ZeroReplicas {
            stage: "hot".into()
        }
    );
}

#[test]
fn replicated_stateful_stage_is_rejected() {
    let err = Pipeline::<u64>::builder()
        .stateful_stage(
            StageSpec::balanced("sum", 1.0, 8)
                .with_state(8)
                .with_replicas(4),
            {
                let mut acc = 0u64;
                move |x: u64| {
                    acc += x;
                    acc
                }
            },
        )
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::StatefulReplicated {
            stage: "sum".into()
        }
    );
}

#[test]
fn static_policy_with_paced_arrivals_is_rejected() {
    // A rate-paced open stream declares a live workload; Policy::Static
    // declares a fixed launch mapping. The combination is the classic
    // mis-specified baseline and fails the build with a typed error.
    let err = Pipeline::<u64>::builder()
        .stage("work", |x: u64| x)
        .policy(Policy::Static)
        .arrivals(ArrivalProcess::Uniform { rate: 2.0 })
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        BuildError::PolicyArrivalsMismatch {
            policy: "static",
            ..
        }
    ));
}

#[test]
fn reactive_policy_with_paced_arrivals_is_rejected() {
    // Reactive's degradation trigger compares realized throughput with
    // the saturated-capacity model; an arrival-limited stream misfires
    // it every interval.
    let err = Pipeline::<u64>::builder()
        .stage("work", |x: u64| x)
        .policy(Policy::Reactive {
            interval: SimDuration::from_secs(5),
            degradation: 0.8,
        })
        .arrivals(ArrivalProcess::Poisson { rate: 1.0, seed: 3 })
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::PolicyArrivalsMismatch { .. }));
}

#[test]
fn adaptive_policies_accept_paced_arrivals() {
    let built = Pipeline::<u64>::builder()
        .stage("work", |x: u64| x)
        .policy(Policy::periodic_default())
        .arrivals(ArrivalProcess::Poisson { rate: 1.0, seed: 3 })
        .build();
    assert!(built.is_ok());
}

#[test]
fn invalid_arrival_rates_are_rejected() {
    let err = Pipeline::<u64>::builder()
        .stage("work", |x: u64| x)
        .policy(Policy::periodic_default())
        .arrivals(ArrivalProcess::Uniform { rate: 0.0 })
        .build()
        .unwrap_err();
    assert_eq!(err, BuildError::InvalidArrivalRate { rate: 0.0 });
}

#[test]
fn zero_adaptation_interval_is_rejected() {
    let err = Pipeline::<u64>::builder()
        .stage("work", |x: u64| x)
        .policy(Policy::Periodic {
            interval: SimDuration::ZERO,
        })
        .build()
        .unwrap_err();
    assert_eq!(err, BuildError::NonPositiveInterval { policy: "adaptive" });
}

#[test]
fn degradation_out_of_range_is_rejected() {
    for degradation in [0.0, -0.5, 1.5] {
        let err = Pipeline::<u64>::builder()
            .stage("work", |x: u64| x)
            .policy(Policy::Reactive {
                interval: SimDuration::from_secs(5),
                degradation,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::DegradationOutOfRange { degradation });
    }
}

#[test]
fn threads_backend_requires_a_feed() {
    let pipeline = Pipeline::<u64>::builder()
        .stage("work", |x: u64| x)
        .build()
        .expect("valid pipeline");
    let err = pipeline
        .run(
            Backend::Threads(vec![VNodeSpec::free("v0")]),
            RunConfig {
                items: 5,
                ..RunConfig::default()
            },
        )
        .unwrap_err();
    assert_eq!(err, BuildError::MissingFeed { backend: "threads" });
}

#[test]
fn threads_backend_rejects_least_loaded_selection() {
    let pipeline = Pipeline::<u64>::builder()
        .stage("work", |x: u64| x)
        .feed(|i| i)
        .build()
        .expect("valid pipeline");
    let err = pipeline
        .run(
            Backend::Threads(vec![VNodeSpec::free("v0")]),
            RunConfig {
                items: 5,
                selection: Selection::LeastLoaded,
                ..RunConfig::default()
            },
        )
        .unwrap_err();
    assert_eq!(err, BuildError::UnsupportedSelection { backend: "threads" });
}

#[test]
fn sim_backend_supports_least_loaded_selection() {
    let grid = testbed_small3();
    let handle = PipelineBuilder::from_spec(PipelineSpec::balanced(1, 1.0, 0))
        .policy(Policy::periodic_default())
        .build()
        .expect("valid pipeline")
        .run(
            Backend::Sim(&grid),
            RunConfig {
                items: 20,
                selection: Selection::LeastLoaded,
                ..RunConfig::default()
            },
        )
        .expect("sim supports least-loaded");
    assert_eq!(handle.report.completed, 20);
}

#[test]
fn declared_replica_bound_caps_the_planner() {
    // A hot stage on a 3-node free grid: unbounded, the planner farms
    // it over all nodes; bounded to 1, it must stay singular — the
    // declared replication property is enforced end to end.
    let grid = testbed_small3();
    let run_with_bound = |bound: usize| {
        Pipeline::<u64>::builder()
            .stage_replicated("hot", |x: u64| x + 1, bound)
            .policy(Policy::periodic_default())
            .feed(|i| i)
            .build()
            .expect("valid pipeline")
            .run(
                Backend::Sim(&grid),
                RunConfig {
                    items: 300,
                    ..RunConfig::default()
                },
            )
            .expect("sim run")
            .report
    };
    let narrow = run_with_bound(1);
    assert_eq!(
        narrow.final_mapping.placement(0).width(),
        1,
        "bound 1 must pin the stage to one node"
    );
    let wide = run_with_bound(3);
    assert!(
        wide.final_mapping.placement(0).width() >= 2,
        "bound 3 must let the planner farm the hot stage: {}",
        wide.final_mapping
    );
}

#[test]
fn initial_mapping_must_honor_declared_properties() {
    let grid = testbed_small3();
    // A stateful stage given a replicated launch mapping would fork its
    // state: rejected with a typed error instead of running wrong.
    let stateful = || {
        Pipeline::<u64>::builder()
            .stateful_stage(StageSpec::balanced("sum", 1.0, 8).with_state(8), {
                let mut acc = 0u64;
                move |x: u64| {
                    acc += x;
                    acc
                }
            })
            .build()
            .expect("valid pipeline")
    };
    let err = stateful()
        .run(
            Backend::Sim(&grid),
            RunConfig {
                items: 5,
                initial_mapping: Some(Mapping::new(vec![Placement::replicated(vec![
                    NodeId(0),
                    NodeId(1),
                ])])),
                ..RunConfig::default()
            },
        )
        .unwrap_err();
    assert!(matches!(err, BuildError::InvalidMapping { .. }), "{err}");

    // Wrong arity and out-of-range hosts are typed errors too.
    let err = stateful()
        .run(
            Backend::Sim(&grid),
            RunConfig {
                items: 5,
                initial_mapping: Some(Mapping::from_assignment(&[NodeId(0), NodeId(1)])),
                ..RunConfig::default()
            },
        )
        .unwrap_err();
    assert!(matches!(err, BuildError::InvalidMapping { .. }), "{err}");
    let err = stateful()
        .run(
            Backend::Threads(vec![VNodeSpec::free("v0")]),
            RunConfig {
                items: 5,
                initial_mapping: Some(Mapping::from_assignment(&[NodeId(3)])),
                ..RunConfig::default()
            },
        )
        .unwrap_err();
    assert!(matches!(err, BuildError::InvalidMapping { .. }), "{err}");
}

#[test]
fn acknowledged_baseline_permits_static_open_stream() {
    let grid = testbed_small3();
    let handle = PipelineBuilder::from_spec(PipelineSpec::balanced(2, 1.0, 0))
        .policy(Policy::Static)
        .arrivals(ArrivalProcess::Uniform { rate: 2.0 })
        .as_baseline()
        .build()
        .expect("acknowledged baseline builds")
        .run(
            Backend::Sim(&grid),
            RunConfig {
                items: 20,
                ..RunConfig::default()
            },
        )
        .expect("sim run");
    assert_eq!(handle.report.completed, 20);
}

#[test]
fn build_errors_format_for_humans() {
    let err = Pipeline::<u64>::builder()
        .stage_replicated("hot", |x: u64| x, 0)
        .build()
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("hot") && msg.contains("zero"), "msg: {msg}");
}
