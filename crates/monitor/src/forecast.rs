//! NWS-style time-series forecasters.
//!
//! The Network Weather Service (Wolski et al., FGCS 1999) popularised a
//! simple but effective scheme for grid resource prediction: run a family
//! of cheap predictors in parallel, track each one's recent error, and
//! answer queries with the currently most accurate member. This module
//! reproduces that design: individual predictors implement
//! [`Forecaster`]; [`Ensemble`] performs the dynamic selection.

use crate::series::ObservationWindow;
use crate::stats::median;

/// A single-quantity time-series predictor.
///
/// `observe` feeds one measurement; `predict` returns the forecast for
/// the next measurement, or `None` before any data has been seen.
pub trait Forecaster: Send {
    /// Feeds one observation taken at time `t` (seconds, non-decreasing).
    fn observe(&mut self, t: f64, value: f64);

    /// Forecast for the next observation, if any data has been seen.
    fn predict(&self) -> Option<f64>;

    /// A short stable name for reports.
    fn name(&self) -> &'static str;

    /// Discards all learned state.
    fn reset(&mut self);
}

/// Predicts the most recent observation (a.k.a. naive or persistence
/// forecast). Hard to beat on slowly-varying series.
#[derive(Clone, Debug, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for LastValue {
    fn observe(&mut self, _t: f64, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
    fn name(&self) -> &'static str {
        "last_value"
    }
    fn reset(&mut self) {
        self.last = None;
    }
}

/// Predicts the mean of all observations so far.
#[derive(Clone, Debug, Default)]
pub struct RunningMean {
    n: u64,
    sum: f64,
}

impl RunningMean {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for RunningMean {
    fn observe(&mut self, _t: f64, value: f64) {
        self.n += 1;
        self.sum += value;
    }
    fn predict(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
    fn name(&self) -> &'static str {
        "running_mean"
    }
    fn reset(&mut self) {
        self.n = 0;
        self.sum = 0.0;
    }
}

/// Predicts the mean of the last `w` observations.
#[derive(Clone, Debug)]
pub struct SlidingMean {
    window: ObservationWindow,
}

impl SlidingMean {
    /// Creates a predictor over a window of `w` observations.
    pub fn new(w: usize) -> Self {
        SlidingMean {
            window: ObservationWindow::new(w),
        }
    }
}

impl Forecaster for SlidingMean {
    fn observe(&mut self, t: f64, value: f64) {
        self.window.push(t, value);
    }
    fn predict(&self) -> Option<f64> {
        self.window.mean()
    }
    fn name(&self) -> &'static str {
        "sliding_mean"
    }
    fn reset(&mut self) {
        self.window.clear();
    }
}

/// Predicts the median of the last `w` observations — robust to the
/// availability spikes grid hosts exhibit.
#[derive(Clone, Debug)]
pub struct SlidingMedian {
    window: ObservationWindow,
}

impl SlidingMedian {
    /// Creates a predictor over a window of `w` observations.
    pub fn new(w: usize) -> Self {
        SlidingMedian {
            window: ObservationWindow::new(w),
        }
    }
}

impl Forecaster for SlidingMedian {
    fn observe(&mut self, t: f64, value: f64) {
        self.window.push(t, value);
    }
    fn predict(&self) -> Option<f64> {
        let vals: Vec<f64> = self.window.values().collect();
        median(&vals)
    }
    fn name(&self) -> &'static str {
        "sliding_median"
    }
    fn reset(&mut self) {
        self.window.clear();
    }
}

/// Exponentially weighted moving average with gain `alpha`.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with gain `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is out of range.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, state: None }
    }

    /// The configured gain.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Forecaster for Ewma {
    fn observe(&mut self, _t: f64, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => s + self.alpha * (value - s),
        });
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
    fn name(&self) -> &'static str {
        "ewma"
    }
    fn reset(&mut self) {
        self.state = None;
    }
}

/// EWMA whose gain adapts to the prediction error trend: on large errors
/// the gain rises (track fast changes); on small errors it decays
/// (smooth noise). A cheap stand-in for NWS's gradient predictors.
#[derive(Clone, Debug)]
pub struct AdaptiveEwma {
    state: Option<f64>,
    alpha: f64,
    min_alpha: f64,
    max_alpha: f64,
    /// Smoothed absolute error scale used to normalise new errors.
    err_scale: f64,
}

impl AdaptiveEwma {
    /// Creates an adaptive EWMA with gain bounded to `[min_alpha, max_alpha]`.
    ///
    /// # Panics
    /// Panics unless `0 < min_alpha ≤ max_alpha ≤ 1`.
    pub fn new(min_alpha: f64, max_alpha: f64) -> Self {
        assert!(
            min_alpha > 0.0 && min_alpha <= max_alpha && max_alpha <= 1.0,
            "need 0 < min_alpha ≤ max_alpha ≤ 1"
        );
        AdaptiveEwma {
            state: None,
            alpha: (min_alpha + max_alpha) / 2.0,
            min_alpha,
            max_alpha,
            err_scale: 0.0,
        }
    }

    /// Current (adapted) gain.
    pub fn current_alpha(&self) -> f64 {
        self.alpha
    }
}

impl Forecaster for AdaptiveEwma {
    fn observe(&mut self, _t: f64, value: f64) {
        match self.state {
            None => {
                self.state = Some(value);
                self.err_scale = value.abs().max(1e-12);
            }
            Some(s) => {
                let err = (value - s).abs();
                self.err_scale = 0.9 * self.err_scale + 0.1 * err.max(1e-12);
                // Normalised error ≥ 1 means "much larger than usual".
                let ratio = err / self.err_scale;
                if ratio > 1.5 {
                    self.alpha = (self.alpha * 1.5).min(self.max_alpha);
                } else {
                    self.alpha = (self.alpha * 0.95).max(self.min_alpha);
                }
                self.state = Some(s + self.alpha * (value - s));
            }
        }
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
    fn name(&self) -> &'static str {
        "adaptive_ewma"
    }
    fn reset(&mut self) {
        self.state = None;
        self.err_scale = 0.0;
        self.alpha = (self.min_alpha + self.max_alpha) / 2.0;
    }
}

/// NWS-style dynamic predictor selection: runs every member on each
/// observation, tracks each member's trailing mean absolute error over a
/// bounded horizon, and predicts with the current best member.
pub struct Ensemble {
    members: Vec<Box<dyn Forecaster>>,
    /// Trailing absolute errors per member (bounded FIFO).
    errors: Vec<ObservationWindow>,
    horizon: usize,
}

impl Ensemble {
    /// Builds an ensemble over `members`, scoring them by trailing MAE
    /// over the last `horizon` predictions.
    ///
    /// # Panics
    /// Panics if `members` is empty or `horizon` is zero.
    pub fn new(members: Vec<Box<dyn Forecaster>>, horizon: usize) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert!(horizon > 0, "error horizon must be positive");
        let errors = members
            .iter()
            .map(|_| ObservationWindow::new(horizon))
            .collect();
        Ensemble {
            members,
            errors,
            horizon,
        }
    }

    /// The default NWS-like family: persistence, running mean, sliding
    /// mean/median over `window`, and two EWMAs.
    pub fn nws_default(window: usize) -> Self {
        Ensemble::new(
            vec![
                Box::new(LastValue::new()),
                Box::new(RunningMean::new()),
                Box::new(SlidingMean::new(window)),
                Box::new(SlidingMedian::new(window)),
                Box::new(Ewma::new(0.3)),
                Box::new(Ewma::new(0.05)),
                Box::new(AdaptiveEwma::new(0.05, 0.9)),
            ],
            window,
        )
    }

    /// Index and name of the member that currently scores best, or `None`
    /// before any prediction has been scored.
    pub fn best_member(&self) -> Option<(usize, &'static str)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, errs) in self.errors.iter().enumerate() {
            let Some(mae) = errs.mean() else { continue };
            if best.is_none_or(|(_, b)| mae < b) {
                best = Some((i, mae));
            }
        }
        best.map(|(i, _)| (i, self.members[i].name()))
    }

    /// Trailing MAE of each member, `None` for unscored members.
    pub fn member_maes(&self) -> Vec<(&'static str, Option<f64>)> {
        self.members
            .iter()
            .zip(&self.errors)
            .map(|(m, e)| (m.name(), e.mean()))
            .collect()
    }

    /// The scoring horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

impl Forecaster for Ensemble {
    fn observe(&mut self, t: f64, value: f64) {
        // Score the members' previous predictions against this value
        // before updating them (one-step-ahead evaluation).
        for (member, errs) in self.members.iter().zip(self.errors.iter_mut()) {
            if let Some(pred) = member.predict() {
                errs.push(t, (pred - value).abs());
            }
        }
        for member in &mut self.members {
            member.observe(t, value);
        }
    }

    fn predict(&self) -> Option<f64> {
        match self.best_member() {
            Some((i, _)) => self.members[i].predict(),
            // No member scored yet: fall back to the first member that
            // can predict at all (typically after one observation).
            None => self.members.iter().find_map(|m| m.predict()),
        }
    }

    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn reset(&mut self) {
        for m in &mut self.members {
            m.reset();
        }
        for e in &mut self.errors {
            e.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(f: &mut dyn Forecaster, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            f.observe(i as f64, v);
        }
    }

    #[test]
    fn last_value_is_persistence() {
        let mut f = LastValue::new();
        assert_eq!(f.predict(), None);
        feed(&mut f, &[1.0, 2.0, 7.0]);
        assert_eq!(f.predict(), Some(7.0));
        f.reset();
        assert_eq!(f.predict(), None);
    }

    #[test]
    fn running_mean_averages_everything() {
        let mut f = RunningMean::new();
        feed(&mut f, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.predict(), Some(2.5));
    }

    #[test]
    fn sliding_mean_forgets_old_samples() {
        let mut f = SlidingMean::new(2);
        feed(&mut f, &[100.0, 1.0, 3.0]);
        assert_eq!(f.predict(), Some(2.0));
    }

    #[test]
    fn sliding_median_resists_outliers() {
        let mut f = SlidingMedian::new(5);
        feed(&mut f, &[1.0, 1.0, 1.0, 1.0, 100.0]);
        assert_eq!(f.predict(), Some(1.0));
    }

    #[test]
    fn ewma_converges_geometrically() {
        let mut f = Ewma::new(0.5);
        feed(&mut f, &[0.0, 1.0, 1.0]);
        // 0 → 0.5 → 0.75
        assert!((f.predict().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn adaptive_ewma_raises_alpha_on_step() {
        let mut f = AdaptiveEwma::new(0.05, 0.9);
        // Long stable phase drives alpha to the floor.
        for i in 0..200 {
            f.observe(i as f64, 1.0);
        }
        let low = f.current_alpha();
        assert!(low <= 0.06, "alpha should decay, got {low}");
        // A large step drives alpha back up.
        for i in 200..210 {
            f.observe(i as f64, 0.1);
        }
        assert!(f.current_alpha() > low, "alpha should rise after a step");
        // And the forecast tracks the new level quickly.
        assert!((f.predict().unwrap() - 0.1).abs() < 0.2);
    }

    #[test]
    fn ensemble_picks_persistence_on_trends_and_median_on_noise() {
        // Slow ramp: persistence (last_value) has the lowest one-step error.
        let mut e = Ensemble::nws_default(8);
        for i in 0..100 {
            e.observe(i as f64, i as f64 * 0.01);
        }
        let (_, name) = e.best_member().expect("scored");
        assert_eq!(name, "last_value");

        // Frequent spikes (every 4th sample, so the 8-sample scoring
        // window always contains some): the median is robust;
        // persistence pays twice per spike.
        let mut e2 = Ensemble::nws_default(8);
        for i in 0..100 {
            let v = if i % 4 == 0 { 10.0 } else { 1.0 };
            e2.observe(i as f64, v);
        }
        let maes = e2.member_maes();
        let get = |n: &str| {
            maes.iter()
                .find(|(name, _)| *name == n)
                .and_then(|(_, m)| *m)
                .expect("mae")
        };
        assert!(get("sliding_median") < get("last_value"));
    }

    #[test]
    fn ensemble_predicts_before_scoring() {
        let mut e = Ensemble::nws_default(4);
        assert_eq!(e.predict(), None);
        e.observe(0.0, 5.0);
        // One observation: members can predict, none scored yet.
        assert_eq!(e.predict(), Some(5.0));
    }

    #[test]
    fn ensemble_reset_clears_scores() {
        let mut e = Ensemble::nws_default(4);
        for i in 0..10 {
            e.observe(i as f64, 1.0);
        }
        assert!(e.best_member().is_some());
        e.reset();
        assert_eq!(e.best_member(), None);
        assert_eq!(e.predict(), None);
    }

    #[test]
    fn ensemble_tracks_constant_series_exactly() {
        let mut e = Ensemble::nws_default(8);
        for i in 0..50 {
            e.observe(i as f64, 0.7);
        }
        assert!((e.predict().unwrap() - 0.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        let _ = Ensemble::new(vec![], 4);
    }
}
