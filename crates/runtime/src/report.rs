//! Run reports: everything an experiment needs to print its table row.

use crate::metrics::StageMetrics;
use adapipe_gridsim::time::{SimDuration, SimTime};
use adapipe_gridsim::trace::ThroughputTimeline;
use adapipe_mapper::mapping::Mapping;

/// One adaptation the controller performed.
#[derive(Clone, Debug)]
pub struct AdaptationEvent {
    /// When the re-mapping was triggered.
    pub at: SimTime,
    /// Mapping before.
    pub from: Mapping,
    /// Mapping after.
    pub to: Mapping,
    /// Stages whose placement changed.
    pub migrated_stages: Vec<usize>,
    /// Predicted throughput ratio (candidate / current) that justified
    /// the move.
    pub predicted_speedup: f64,
    /// Migration cost charged (state transfer + drain overhead).
    pub migration_cost: SimDuration,
}

/// Summary of one pipeline run (simulated or wall-clock).
#[derive(Debug)]
pub struct RunReport {
    /// Items that reached the sink.
    pub completed: u64,
    /// Time of the last completion (== makespan for closed streams).
    pub makespan: SimTime,
    /// Mean per-item latency (arrival → sink).
    pub mean_latency: SimDuration,
    /// Per-item latency samples (arrival → sink), unsorted. Use
    /// [`RunReport::latency_percentile`] for quantiles.
    pub latencies: Vec<SimDuration>,
    /// Completions bucketed over time.
    pub timeline: ThroughputTimeline,
    /// Every re-mapping performed.
    pub adaptations: Vec<AdaptationEvent>,
    /// Busy seconds per node.
    pub node_busy: Vec<SimDuration>,
    /// The mapping in force when the run ended.
    pub final_mapping: Mapping,
    /// Planning cycles the controller ran (accepted or not) — the
    /// adaptation-overhead denominator.
    pub planning_cycles: u64,
    /// Observed per-stage service statistics.
    pub stage_metrics: StageMetrics,
    /// True if the run hit its safety horizon before completing.
    pub truncated: bool,
}

impl RunReport {
    /// Mean throughput over the whole run, items per second.
    pub fn mean_throughput(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Number of re-mappings performed.
    pub fn adaptation_count(&self) -> usize {
        self.adaptations.len()
    }

    /// Total time charged to migrations.
    pub fn total_migration_cost(&self) -> SimDuration {
        self.adaptations.iter().fold(SimDuration::ZERO, |acc, e| {
            acc.saturating_add(e.migration_cost)
        })
    }

    /// Latency percentile `q ∈ [0, 1]`, or `None` if nothing completed.
    pub fn latency_percentile(&self, q: f64) -> Option<SimDuration> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.latencies.iter().map(|d| d.as_secs_f64()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        Some(SimDuration::from_secs_f64(
            adapipe_monitor::stats::quantile_sorted(&sorted, q),
        ))
    }

    /// Utilisation of node `i` over the makespan.
    pub fn node_utilisation(&self, i: usize) -> f64 {
        let horizon = self.makespan.as_secs_f64();
        if horizon <= 0.0 {
            return 0.0;
        }
        (self.node_busy[i].as_secs_f64() / horizon).clamp(0.0, 1.0)
    }
}

/// Accumulates per-completion observations and assembles the final
/// [`RunReport`] — the one place report shape is defined, so every
/// backend's report is identical in structure and derivation.
#[derive(Debug)]
pub struct ReportBuilder {
    expected_items: u64,
    completed: u64,
    latency_sum: SimDuration,
    latencies: Vec<SimDuration>,
    last_completion: SimTime,
    timeline: ThroughputTimeline,
}

impl ReportBuilder {
    /// Creates a builder for a stream of `expected_items`, bucketing the
    /// throughput timeline at `bucket`.
    pub fn new(bucket: SimDuration, expected_items: u64) -> Self {
        ReportBuilder {
            expected_items,
            completed: 0,
            latency_sum: SimDuration::ZERO,
            latencies: Vec::with_capacity(expected_items.min(1 << 20) as usize),
            last_completion: SimTime::ZERO,
            timeline: ThroughputTimeline::new(bucket),
        }
    }

    /// Records one item reaching the sink at `at` after `latency`.
    pub fn record_completion(&mut self, at: SimTime, latency: SimDuration) {
        self.completed += 1;
        self.timeline.record(at);
        if at > self.last_completion {
            self.last_completion = at;
        }
        self.latency_sum = self.latency_sum.saturating_add(latency);
        self.latencies.push(latency);
    }

    /// Completions recorded so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// True once every expected item has completed.
    pub fn all_done(&self) -> bool {
        self.completed >= self.expected_items
    }

    /// Assembles the final report from the accumulated completions plus
    /// the run's terminal state.
    pub fn finish(
        self,
        final_mapping: Mapping,
        adaptations: Vec<AdaptationEvent>,
        planning_cycles: u64,
        node_busy: Vec<SimDuration>,
        stage_metrics: StageMetrics,
    ) -> RunReport {
        let truncated = self.completed < self.expected_items;
        RunReport {
            completed: self.completed,
            makespan: self.last_completion,
            mean_latency: if self.completed > 0 {
                SimDuration::from_secs_f64(self.latency_sum.as_secs_f64() / self.completed as f64)
            } else {
                SimDuration::ZERO
            },
            latencies: self.latencies,
            timeline: self.timeline,
            adaptations,
            node_busy,
            final_mapping,
            planning_cycles,
            stage_metrics,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_gridsim::node::NodeId;

    fn report(completed: u64, makespan_s: f64) -> RunReport {
        RunReport {
            completed,
            makespan: SimTime::from_secs_f64(makespan_s),
            mean_latency: SimDuration::from_secs(1),
            latencies: vec![SimDuration::from_secs(1); completed as usize],
            timeline: ThroughputTimeline::new(SimDuration::from_secs(1)),
            adaptations: vec![],
            node_busy: vec![SimDuration::from_secs(5), SimDuration::ZERO],
            final_mapping: Mapping::from_assignment(&[NodeId(0)]),
            planning_cycles: 0,
            stage_metrics: StageMetrics::new(1),
            truncated: false,
        }
    }

    #[test]
    fn mean_throughput_divides_by_makespan() {
        let r = report(100, 50.0);
        assert!((r.mean_throughput() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_makespan_throughput_is_zero() {
        let r = report(0, 0.0);
        assert_eq!(r.mean_throughput(), 0.0);
        assert_eq!(r.node_utilisation(0), 0.0);
    }

    #[test]
    fn utilisation_clamps() {
        let r = report(10, 2.0);
        // 5 s busy over 2 s horizon clamps to 1.
        assert_eq!(r.node_utilisation(0), 1.0);
        assert_eq!(r.node_utilisation(1), 0.0);
    }

    #[test]
    fn latency_percentiles_interpolate() {
        let mut r = report(3, 10.0);
        r.latencies = vec![
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(9),
        ];
        assert_eq!(r.latency_percentile(0.0), Some(SimDuration::from_secs(1)));
        assert_eq!(r.latency_percentile(0.5), Some(SimDuration::from_secs(2)));
        assert_eq!(r.latency_percentile(1.0), Some(SimDuration::from_secs(9)));
        r.latencies.clear();
        assert_eq!(r.latency_percentile(0.5), None);
    }

    #[test]
    fn builder_assembles_report_identically_for_any_backend() {
        let mut b = ReportBuilder::new(SimDuration::from_secs(1), 3);
        b.record_completion(SimTime::from_secs_f64(1.0), SimDuration::from_secs(1));
        b.record_completion(SimTime::from_secs_f64(3.0), SimDuration::from_secs(3));
        assert_eq!(b.completed(), 2);
        assert!(!b.all_done());
        let r = b.finish(
            Mapping::from_assignment(&[NodeId(0)]),
            vec![],
            4,
            vec![SimDuration::from_secs(2)],
            StageMetrics::new(1),
        );
        assert_eq!(r.completed, 2);
        assert!(r.truncated, "2 of 3 expected items is a truncated run");
        assert_eq!(r.makespan, SimTime::from_secs_f64(3.0));
        assert_eq!(r.mean_latency, SimDuration::from_secs(2));
        assert_eq!(r.planning_cycles, 4);
    }

    #[test]
    fn builder_with_no_completions_reports_zeroes() {
        let b = ReportBuilder::new(SimDuration::from_secs(1), 0);
        assert!(b.all_done());
        let r = b.finish(
            Mapping::from_assignment(&[NodeId(0)]),
            vec![],
            0,
            vec![],
            StageMetrics::new(1),
        );
        assert_eq!(r.completed, 0);
        assert!(!r.truncated);
        assert_eq!(r.makespan, SimTime::ZERO);
        assert_eq!(r.mean_latency, SimDuration::ZERO);
    }

    #[test]
    fn migration_cost_sums_events() {
        let mut r = report(1, 1.0);
        let m = Mapping::from_assignment(&[NodeId(0)]);
        for _ in 0..2 {
            r.adaptations.push(AdaptationEvent {
                at: SimTime::ZERO,
                from: m.clone(),
                to: m.clone(),
                migrated_stages: vec![0],
                predicted_speedup: 1.5,
                migration_cost: SimDuration::from_millis(250),
            });
        }
        assert_eq!(r.adaptation_count(), 2);
        assert_eq!(r.total_migration_cost(), SimDuration::from_millis(500));
    }
}
