//! Pipeline stages: the user-supplied computation units.
//!
//! Two views exist of a stage:
//!
//! * the **typed** view ([`FnStage`]) used when building a pipeline — the
//!   compiler checks that stage `i`'s output type feeds stage `i+1`;
//! * the **erased** view ([`DynStage`]) used by execution engines — items
//!   travel as `Box<dyn Any + Send>` so the runtime can re-wire stages
//!   across hosts without generic plumbing.
//!
//! Stage *functions* are `FnMut`: a stage may carry state (e.g. a running
//! histogram), in which case it must be declared stateful and will never
//! be replicated.

use std::any::Any;

/// A type-erased item flowing through the pipeline.
pub type BoxedItem = Box<dyn Any + Send>;

/// The execution engines' view of a stage.
pub trait DynStage: Send {
    /// Processes one item. Engines guarantee items of the declared input
    /// type; implementations may panic on a type mismatch (it is a
    /// pipeline construction bug, not a runtime condition).
    fn process(&mut self, item: BoxedItem) -> BoxedItem;

    /// Creates an independent instance for replication, or `None` if the
    /// stage cannot be replicated (it is stateful or its closure is not
    /// cloneable).
    fn replicate(&self) -> Option<Box<dyn DynStage>>;

    /// Stage name for logs and reports.
    fn name(&self) -> &str;
}

/// A stage built from a closure `I -> O`.
pub struct FnStage<I, O, F>
where
    F: FnMut(I) -> O + Send,
{
    name: String,
    f: F,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F> FnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send,
{
    /// Wraps `f` as a named stage.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnStage {
            name: name.into(),
            f,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, O, F> DynStage for FnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send + Clone + 'static,
{
    fn process(&mut self, item: BoxedItem) -> BoxedItem {
        let input = item
            .downcast::<I>()
            .unwrap_or_else(|_| panic!("stage '{}' received an item of the wrong type", self.name));
        Box::new((self.f)(*input))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        Some(Box::new(FnStage {
            name: self.name.clone(),
            f: self.f.clone(),
            _types: std::marker::PhantomData,
        }))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A stage built from a stateful closure: never replicable, and the
/// closure needs no `Clone` bound.
pub struct StatefulFnStage<I, O, F>
where
    F: FnMut(I) -> O + Send,
{
    name: String,
    f: F,
    _types: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F> StatefulFnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send,
{
    /// Wraps `f` as a named stateful stage.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        StatefulFnStage {
            name: name.into(),
            f,
            _types: std::marker::PhantomData,
        }
    }
}

impl<I, O, F> DynStage for StatefulFnStage<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send + 'static,
{
    fn process(&mut self, item: BoxedItem) -> BoxedItem {
        let input = item
            .downcast::<I>()
            .unwrap_or_else(|_| panic!("stage '{}' received an item of the wrong type", self.name));
        Box::new((self.f)(*input))
    }

    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        None
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A stage wrapper that refuses replication regardless of the closure —
/// used for stages declared stateful.
pub struct SealedStage {
    inner: Box<dyn DynStage>,
}

impl SealedStage {
    /// Seals `inner` against replication.
    pub fn new(inner: Box<dyn DynStage>) -> Self {
        SealedStage { inner }
    }
}

impl DynStage for SealedStage {
    fn process(&mut self, item: BoxedItem) -> BoxedItem {
        self.inner.process(item)
    }
    fn replicate(&self) -> Option<Box<dyn DynStage>> {
        None
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_stage_processes_typed_items() {
        let mut s = FnStage::new("double", |x: i64| x * 2);
        let out = s.process(Box::new(21i64));
        assert_eq!(*out.downcast::<i64>().unwrap(), 42);
        assert_eq!(s.name(), "double");
    }

    #[test]
    fn fn_stage_may_change_type() {
        let mut s = FnStage::new("fmt", |x: u32| format!("{x}!"));
        let out = s.process(Box::new(7u32));
        assert_eq!(*out.downcast::<String>().unwrap(), "7!");
    }

    #[test]
    fn replicas_are_independent() {
        let counter_stage = FnStage::new("count", {
            let mut seen = 0u64;
            move |x: u64| {
                seen += 1;
                x + seen
            }
        });
        let mut a: Box<dyn DynStage> = Box::new(counter_stage);
        let mut b = a.replicate().expect("cloneable");
        // Each replica keeps its own `seen` counter.
        assert_eq!(*a.process(Box::new(0u64)).downcast::<u64>().unwrap(), 1);
        assert_eq!(*a.process(Box::new(0u64)).downcast::<u64>().unwrap(), 2);
        assert_eq!(*b.process(Box::new(0u64)).downcast::<u64>().unwrap(), 1);
    }

    #[test]
    fn sealed_stage_refuses_replication() {
        let s = SealedStage::new(Box::new(FnStage::new("st", |x: i32| x)));
        assert!(s.replicate().is_none());
        assert_eq!(s.name(), "st");
    }

    #[test]
    #[should_panic(expected = "wrong type")]
    fn type_mismatch_panics_with_stage_name() {
        let mut s = FnStage::new("typed", |x: i64| x);
        let _ = s.process(Box::new("not an i64"));
    }
}
