//! Analytic-model evaluation latency: `evaluate()` is the inner loop of
//! every optimiser, so its cost bounds planner scalability.
//!
//! `cargo bench -p adapipe-bench --bench model`

use adapipe_gridsim::net::{LinkSpec, Topology};
use adapipe_mapper::mapping::Mapping;
use adapipe_mapper::model::{evaluate, PipelineProfile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_evaluate");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    for &ns in &[4usize, 16, 64] {
        let np = ns;
        let profile = PipelineProfile::uniform(vec![1.0; ns], 100_000);
        let topology = Topology::uniform(np, LinkSpec::lan());
        let rates = vec![1.0; np];
        let mapping = Mapping::round_robin(ns, np);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ns}stages")),
            &(profile, mapping, rates, topology),
            |b, (profile, mapping, rates, topology)| {
                b.iter(|| evaluate(profile, mapping, rates, topology));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_evaluate);
criterion_main!(benches);
