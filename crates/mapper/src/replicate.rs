//! Greedy replication of replicable bottleneck stages.
//!
//! When the throughput bottleneck is a processor saturated by a
//! replicable stage, the pattern can *farm* that stage over several
//! nodes — the "pipeline of farms" composition from the skeleton
//! literature. This module widens stages greedily while the model
//! predicts improvement. "Replicable" covers truly stateless stages
//! and declared keyed/accumulator state (the runtime shards or merges
//! it; widening a keyed stage is executed as a shard rebalance).

use crate::mapping::Mapping;
use crate::model::{evaluate, Bottleneck, PipelineProfile, Prediction};
use adapipe_gridsim::net::Topology;
use adapipe_gridsim::node::NodeId;

/// Greedily adds replicas to stateless stages while doing so strictly
/// improves predicted throughput. Returns the improved mapping and its
/// prediction (which may be the input mapping unchanged).
///
/// The search is bounded: each iteration adds exactly one replica, and
/// stage width never exceeds `max_width` nor the stage's declared
/// [`PipelineProfile::replica_cap`], so it terminates after at most
/// `Ns · max_width` evaluations of the neighbourhood.
pub fn improve(
    profile: &PipelineProfile,
    mapping: Mapping,
    rates: &[f64],
    topology: &Topology,
    max_width: usize,
) -> (Mapping, Prediction) {
    let mut current = mapping;
    let mut current_pred = evaluate(profile, &current, rates, topology);
    loop {
        let Some((cand, pred)) =
            best_single_widening(profile, &current, &current_pred, rates, topology, max_width)
        else {
            return (current, current_pred);
        };
        current = cand;
        current_pred = pred;
    }
}

/// Tries every legal single-replica addition and returns the best one
/// that strictly beats `current_pred`, or `None`.
fn best_single_widening(
    profile: &PipelineProfile,
    current: &Mapping,
    current_pred: &Prediction,
    rates: &[f64],
    topology: &Topology,
    max_width: usize,
) -> Option<(Mapping, Prediction)> {
    // Prefer widening stages hosted on the bottleneck node, but consider
    // all stateless stages: the bottleneck may shift after one addition.
    let bottleneck_node = match current_pred.bottleneck {
        Bottleneck::Node(node) => Some(node),
        Bottleneck::Link(..) => None,
    };
    let np = rates.len();
    let mut best: Option<(Mapping, Prediction)> = None;
    for s in 0..current.len() {
        if !profile.stateless[s] {
            continue;
        }
        let placement = current.placement(s);
        if placement.width() >= max_width.min(profile.replica_cap[s]) {
            continue;
        }
        // Try the bottleneck-hosted stages first for a small constant
        // factor, but correctness only needs "try them all".
        let _ = bottleneck_node;
        for node in (0..np).map(NodeId) {
            if placement.contains(node) || rates[node.index()] <= 0.0 {
                continue;
            }
            let mut cand = current.clone();
            cand.placement_mut(s).add_host(node);
            let pred = evaluate(profile, &cand, rates, topology);
            let beats_current = pred.throughput > current_pred.throughput;
            let beats_best = best
                .as_ref()
                .is_none_or(|(_, b)| pred.throughput > b.throughput);
            if beats_current && beats_best {
                best = Some((cand, pred));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_gridsim::net::LinkSpec;
    use adapipe_gridsim::time::SimDuration;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    fn fast_net(np: usize) -> Topology {
        Topology::uniform(np, LinkSpec::new(SimDuration::from_nanos(1), 1e12))
    }

    #[test]
    fn widens_hot_stage_across_spare_nodes() {
        let profile = PipelineProfile::uniform(vec![4.0, 1.0], 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1)]);
        let rates = [1.0, 1.0, 1.0, 1.0];
        let (m, p) = improve(&profile, mapping, &rates, &fast_net(4), 4);
        // Hot stage spreads over the 3 free nodes (4/3 s) or similar;
        // throughput must rise well above the unreplicated 0.25.
        assert!(p.throughput > 0.5, "tput={}", p.throughput);
        assert!(m.placement(0).width() >= 2);
    }

    #[test]
    fn respects_stateful_stages() {
        let mut profile = PipelineProfile::uniform(vec![4.0, 1.0], 0);
        profile.stateless[0] = false;
        let mapping = Mapping::from_assignment(&[n(0), n(1)]);
        let rates = [1.0, 1.0, 1.0];
        let (m, p) = improve(&profile, mapping.clone(), &rates, &fast_net(3), 4);
        assert_eq!(m, mapping, "stateful stage must not be replicated");
        assert!((p.throughput - 0.25).abs() < 1e-9);
    }

    #[test]
    fn respects_max_width() {
        let profile = PipelineProfile::uniform(vec![8.0], 0);
        let mapping = Mapping::from_assignment(&[n(0)]);
        let rates = [1.0; 8];
        let (m, _) = improve(&profile, mapping, &rates, &fast_net(8), 2);
        assert!(m.placement(0).width() <= 2);
    }

    #[test]
    fn respects_per_stage_replica_cap() {
        // Same hot stage as `widens_hot_stage_across_spare_nodes`, but
        // the programmer declared at most 2 replicas for it: the greedy
        // pass must stop widening there even though the global
        // `max_width` would allow 4.
        let mut profile = PipelineProfile::uniform(vec![4.0, 1.0], 0);
        profile.replica_cap[0] = 2;
        let mapping = Mapping::from_assignment(&[n(0), n(1)]);
        let rates = [1.0, 1.0, 1.0, 1.0];
        let (m, _) = improve(&profile, mapping, &rates, &fast_net(4), 4);
        assert!(m.placement(0).width() <= 2, "cap violated: {m}");
    }

    #[test]
    fn stops_when_no_improvement_possible() {
        // Balanced pipeline on exactly-fitting nodes: replication cannot
        // help because every node is equally loaded.
        let profile = PipelineProfile::uniform(vec![1.0, 1.0], 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1)]);
        let rates = [1.0, 1.0];
        let (m, p) = improve(&profile, mapping.clone(), &rates, &fast_net(2), 4);
        assert_eq!(m, mapping);
        assert!((p.throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skips_dead_nodes() {
        let profile = PipelineProfile::uniform(vec![4.0, 1.0], 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1)]);
        let rates = [1.0, 1.0, 0.0];
        let (m, _) = improve(&profile, mapping, &rates, &fast_net(3), 4);
        assert!(
            !m.placement(0).contains(n(2)),
            "dead node must not receive replicas"
        );
    }

    #[test]
    fn replication_accounts_for_network_cost() {
        // Hot stage, but every extra node is behind a dreadful link and
        // input data is large: widening would make the link the
        // bottleneck, so the planner must decline.
        let mut profile = PipelineProfile::uniform(vec![1.0, 0.1], 10_000_000);
        profile.source = Some(n(0));
        let mut topo = fast_net(3);
        topo.set_symmetric(n(0), n(2), LinkSpec::new(SimDuration::from_secs(5), 1e6));
        topo.set_symmetric(n(1), n(2), LinkSpec::new(SimDuration::from_secs(5), 1e6));
        let mapping = Mapping::from_assignment(&[n(0), n(1)]);
        let rates = [1.0, 1.0, 1.0];
        let before = evaluate(&profile, &mapping, &rates, &topo);
        let (m, p) = improve(&profile, mapping, &rates, &topo, 4);
        assert!(p.throughput >= before.throughput);
        assert!(
            !m.placement(0).contains(n(2)),
            "widening across a 5 s link must be rejected, got {m}"
        );
    }
}
