//! The backend-agnostic half of the unified `Pipeline` API.
//!
//! The facade crate's `adapipe::api` module is the user-facing builder;
//! everything in it that does **not** depend on a concrete backend lives
//! here so the rules are defined — and testable — exactly once:
//!
//! * [`BuildError`] — the typed validation errors `build()` and `run()`
//!   return instead of panicking;
//! * [`Session`] — a validated (policy, arrivals) pair: constructing one
//!   enforces every policy/arrival compatibility rule;
//! * [`RunConfig`] — the single run-time knob set shared by all
//!   backends, replacing the per-backend halves of `SimConfig` and
//!   `EngineConfig`;
//! * [`RunHooks`] — live observation callbacks the adaptation loop
//!   invokes while the pipeline runs;
//! * [`RunEvent`] / [`EventBus`] — the broadcast generalisation of
//!   those callbacks: streaming sessions subscribe to re-mappings,
//!   window statistics, and backpressure stalls as they happen;
//! * [`SessionControl`] — in-flight steering (pause/resume adaptation,
//!   force a re-map) shared between a live session and the adaptation
//!   loop, honoured identically by every backend.
//!
//! ## Validation rules
//!
//! Stage rules: a pipeline needs at least one stage; stage names must be
//! unique (reports and hooks identify stages by name); a declared
//! replica bound of zero is contradictory (a stage that may never be
//! placed); a replica bound above one on a *stateful* stage declares
//! replication the runtime must refuse (state would fork).
//!
//! Policy/arrival rules: rate-based arrival processes need a positive,
//! finite rate; adaptive policies need a positive interval; the reactive
//! degradation threshold must sit in `(0, 1]`. Two combinations are
//! rejected outright:
//!
//! * [`Policy::Static`] with a rate-paced open stream — a paced stream
//!   declares a live, varying workload, a static policy declares a
//!   fixed launch mapping; in every scenario this repo has carried, the
//!   combination was a mis-specified baseline. A deliberate baseline
//!   is declared by constructing the session with
//!   [`Session::baseline`] (the builder's `as_baseline()`), which
//!   waives only this pairing rule.
//! * [`Policy::Reactive`] with a rate-paced open stream — the
//!   degradation trigger compares realized throughput against the
//!   model's *saturated-capacity* prediction; an arrival-limited stream
//!   keeps realized throughput at the arrival rate regardless of grid
//!   health, misfiring the trigger every interval.

use crate::backend::RemapPlan;
use crate::controller::ControllerConfig;
use crate::policy::Policy;
use crate::routing::Selection;
use adapipe_gridsim::fault::FaultPlan;
use adapipe_gridsim::net::Topology;
use adapipe_gridsim::time::{SimDuration, SimTime};
use adapipe_mapper::mapping::Mapping;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

pub use crate::arrivals::ArrivalProcess;

/// Typed validation failure from the unified builder's `build()` or
/// `run()` — every rule the old API enforced by panicking (or not at
/// all) surfaces here as a matchable variant.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// The pipeline has no stages.
    EmptyPipeline,
    /// Two stages declared the same name.
    DuplicateStage {
        /// The name declared twice.
        name: String,
    },
    /// A stage declared a replica bound of zero.
    ZeroReplicas {
        /// The offending stage.
        stage: String,
    },
    /// A stateful stage declared a replica bound above one.
    StatefulReplicated {
        /// The offending stage.
        stage: String,
    },
    /// A farm was built around a worker with *opaque* (undeclared) or
    /// *exclusive* state — a farm exists to be replicated, which such
    /// state forbids. Declared keyed or accumulator state builds: the
    /// farm then runs shard-per-worker (or merges partials).
    StatefulFarm {
        /// The offending stage.
        stage: String,
    },
    /// A parallel block declared fewer than two branches — fan-out to
    /// one branch is just a chain.
    TooFewBranches {
        /// Index of the offending parallel block (in graph order).
        block: usize,
    },
    /// A parallel block declared a branch with no stages.
    EmptyBranch {
        /// Index of the offending parallel block (in graph order).
        block: usize,
    },
    /// A rate-based arrival process declared a non-positive or
    /// non-finite rate.
    InvalidArrivalRate {
        /// The declared rate.
        rate: f64,
    },
    /// An adaptive policy declared a zero interval.
    NonPositiveInterval {
        /// `Policy::name()` of the offending policy.
        policy: &'static str,
    },
    /// A reactive policy declared a degradation threshold outside
    /// `(0, 1]`.
    DegradationOutOfRange {
        /// The declared threshold.
        degradation: f64,
    },
    /// The declared policy and arrival process contradict each other
    /// (see the module docs for the two rejected combinations).
    PolicyArrivalsMismatch {
        /// `Policy::name()` of the offending policy.
        policy: &'static str,
        /// Why the combination is rejected.
        reason: &'static str,
    },
    /// The chosen backend executes stage functions on real inputs, but
    /// the pipeline declared no input feed.
    MissingFeed {
        /// The backend that needed inputs.
        backend: &'static str,
    },
    /// The chosen backend cannot honour the requested replica-selection
    /// policy (e.g. least-loaded needs a queue-depth probe the threaded
    /// backend does not expose).
    UnsupportedSelection {
        /// The backend that lacks the probe.
        backend: &'static str,
    },
    /// The supplied launch mapping contradicts the pipeline declaration
    /// or the backend (wrong arity, stage wider than its legal replica
    /// bound, host outside the node set).
    InvalidMapping {
        /// What is wrong with the mapping.
        detail: String,
    },
    /// A bounded session declared a queue capacity of zero — it could
    /// never admit an item.
    ZeroQueueCapacity,
    /// The declared fault plan contradicts the backend (a fault names a
    /// node outside the backend's node set).
    InvalidFault {
        /// What is wrong with the plan.
        detail: String,
    },
    /// A session admitted to a multi-tenant cluster declared its own
    /// fault plan — node churn is a property of the shared pool
    /// (declare it on the cluster), not of one tenant.
    PerSessionFaults,
    /// The session's capacity quota is not internally consistent
    /// (shares outside `[0, 1]`, floor above cap, or a non-positive
    /// weight).
    InvalidQuota {
        /// What is wrong with the quota.
        detail: String,
    },
    /// Admitting this session to the deterministic simulation cluster
    /// would oversubscribe the pool: the static shares of the live
    /// sessions already cover the requested capacity.
    PoolOversubscribed {
        /// The share the new session asked for (`max_share`).
        requested: f64,
        /// The share still unclaimed by live sessions.
        available: f64,
    },
    /// The declared stage graph contains a cycle — a pipeline item
    /// could revisit a stage forever.
    GraphCycle {
        /// A stage on the cycle (by name).
        stage: String,
    },
    /// A declared stage is wired into no path from source to sink —
    /// items could never reach (or never leave) it.
    UnreachableStage {
        /// The orphaned stage (by name).
        stage: String,
    },
    /// An `edge(from, to)` call names a stage that was never declared
    /// with `node(...)`.
    UnknownStage {
        /// The undeclared name the edge referenced.
        name: String,
    },
    /// A declared edge is structurally invalid: a self-loop, a
    /// duplicate wire, or a graph whose edges leave more than one
    /// terminal stage (a pipeline has exactly one sink).
    InvalidEdge {
        /// What is wrong with the wiring.
        detail: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptyPipeline => write!(f, "pipeline needs at least one stage"),
            BuildError::DuplicateStage { name } => {
                write!(f, "duplicate stage name '{name}'")
            }
            BuildError::ZeroReplicas { stage } => {
                write!(f, "stage '{stage}' declares a replica bound of zero")
            }
            BuildError::StatefulReplicated { stage } => {
                write!(f, "stateful stage '{stage}' cannot be replicated")
            }
            BuildError::StatefulFarm { stage } => {
                write!(
                    f,
                    "farm worker '{stage}' is stateful; a farm exists to be replicated"
                )
            }
            BuildError::TooFewBranches { block } => {
                write!(f, "parallel block {block} needs at least two branches")
            }
            BuildError::EmptyBranch { block } => {
                write!(f, "parallel block {block} declares an empty branch")
            }
            BuildError::InvalidArrivalRate { rate } => {
                write!(f, "arrival rate must be positive and finite, got {rate}")
            }
            BuildError::NonPositiveInterval { policy } => {
                write!(f, "{policy} policy needs a positive adaptation interval")
            }
            BuildError::DegradationOutOfRange { degradation } => {
                write!(
                    f,
                    "reactive degradation threshold must be in (0, 1], got {degradation}"
                )
            }
            BuildError::PolicyArrivalsMismatch { policy, reason } => {
                write!(f, "{policy} policy incompatible with arrivals: {reason}")
            }
            BuildError::MissingFeed { backend } => {
                write!(
                    f,
                    "the {backend} backend runs stage functions on real inputs; \
                     declare an input feed on the builder"
                )
            }
            BuildError::UnsupportedSelection { backend } => {
                write!(
                    f,
                    "the {backend} backend exposes no queue-depth probe for \
                     least-loaded replica selection"
                )
            }
            BuildError::InvalidMapping { detail } => {
                write!(f, "invalid launch mapping: {detail}")
            }
            BuildError::ZeroQueueCapacity => {
                write!(
                    f,
                    "queue capacity must be at least 1 (a zero-capacity session \
                     could never admit an item); use None for unbounded queues"
                )
            }
            BuildError::InvalidFault { detail } => {
                write!(f, "invalid fault plan: {detail}")
            }
            BuildError::PerSessionFaults => {
                write!(
                    f,
                    "cluster sessions cannot declare their own fault plans; \
                     node churn belongs to the shared pool (ClusterConfig)"
                )
            }
            BuildError::InvalidQuota { detail } => {
                write!(f, "invalid session quota: {detail}")
            }
            BuildError::PoolOversubscribed {
                requested,
                available,
            } => {
                write!(
                    f,
                    "sim cluster pool oversubscribed: session asks for a \
                     {requested:.3} static share but only {available:.3} is unclaimed"
                )
            }
            BuildError::GraphCycle { stage } => {
                write!(f, "stage graph has a cycle through '{stage}'")
            }
            BuildError::UnreachableStage { stage } => {
                write!(
                    f,
                    "stage '{stage}' is on no source-to-sink path; wire it with edge()"
                )
            }
            BuildError::UnknownStage { name } => {
                write!(f, "edge references undeclared stage '{name}'")
            }
            BuildError::InvalidEdge { detail } => {
                write!(f, "invalid edge: {detail}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Per-stage failure handling, honoured identically by both backends.
///
/// The default policy is the historical behaviour: no retries, no
/// timeout accounting, no dead-letter diversion, no tracing — a stage
/// error fails the run. Each knob opts one stage into one recovery
/// behaviour:
///
/// * **retries** — a failed item is re-presented to the stage up to
///   `max_retries` more times, waiting `backoff × factor^(n-1)` before
///   the n-th retry (backend clock: simulated seconds, or a real
///   `thread::sleep` on the threaded engine);
/// * **timeout** — a single attempt whose service time exceeds the
///   bound counts in `RunReport::timeouts` (and, where the item can be
///   safely re-presented, is retried like a failure);
/// * **dead-letter** — an item that exhausts its retries is *diverted*
///   (with its originating stage, attempt count, and error) into the
///   report's dead-letter channel instead of failing the session;
/// * **trace** — every (item, stage) hop emits a
///   [`RunEvent::ItemTrace`].
#[derive(Clone, Debug, PartialEq)]
pub struct ResiliencePolicy {
    /// Additional attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub backoff: SimDuration,
    /// Multiplier applied to the delay for each further retry.
    pub backoff_factor: f64,
    /// Per-attempt service-time bound, if any.
    pub timeout: Option<SimDuration>,
    /// Divert exhausted items to the dead-letter channel instead of
    /// failing the run with [`RunError::PoisonItem`].
    pub dead_letter: bool,
    /// Emit a [`RunEvent::ItemTrace`] per (item, stage) hop.
    pub trace: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 0,
            backoff: SimDuration::ZERO,
            backoff_factor: 2.0,
            timeout: None,
            dead_letter: false,
            trace: false,
        }
    }
}

impl ResiliencePolicy {
    /// The historical no-recovery policy (all knobs off).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the retry budget: up to `n` re-presentations after the
    /// first failure.
    #[must_use]
    pub fn retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the exponential backoff schedule: `base` before the first
    /// retry, multiplied by `factor` for each further one.
    #[must_use]
    pub fn backoff(mut self, base: SimDuration, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "backoff factor must be finite and at least 1"
        );
        self.backoff = base;
        self.backoff_factor = factor;
        self
    }

    /// Sets the per-attempt service-time bound.
    #[must_use]
    pub fn timeout(mut self, bound: SimDuration) -> Self {
        self.timeout = Some(bound);
        self
    }

    /// Diverts exhausted items to the dead-letter channel instead of
    /// failing the run.
    #[must_use]
    pub fn dead_letter(mut self) -> Self {
        self.dead_letter = true;
        self
    }

    /// Emits a [`RunEvent::ItemTrace`] per (item, stage) hop.
    #[must_use]
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Delay before retry number `retry` (1-based): `backoff ×
    /// factor^(retry-1)`.
    pub fn backoff_delay(&self, retry: u32) -> SimDuration {
        if retry == 0 || self.backoff == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let scale = self.backoff_factor.powi(retry.saturating_sub(1) as i32);
        SimDuration::from_secs_f64(self.backoff.as_secs_f64() * scale)
    }

    /// True when every knob is at its default — the fast path both
    /// backends take for stages with no declared resilience.
    pub fn is_default(&self) -> bool {
        self.max_retries == 0 && self.timeout.is_none() && !self.dead_letter && !self.trace
    }
}

/// A shareable callback observing committed re-mappings.
pub type RemapHook = Arc<dyn Fn(&RemapPlan) + Send + Sync>;

/// One live occurrence inside a running pipeline, published to every
/// [`EventBus`] subscriber. Generalises the single `on_remap` callback:
/// a streaming session can watch re-mappings, per-interval window
/// statistics, and backpressure stalls while the run is in flight.
///
/// Every variant carries the [`SessionId`] of the run that produced it,
/// so a multi-tenant cluster can merge many sessions' streams onto one
/// bus and subscribers can still demultiplex. Standalone
/// (single-session) runs report `SessionId(0)`.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum RunEvent {
    /// The controller committed a re-mapping (including regret-guard
    /// reverts). Mirrors the `on_remap` hook exactly: both fire once
    /// per committed plan, in the same order.
    Remap {
        /// The session whose controller committed the plan.
        session: SessionId,
        /// The committed re-mapping.
        plan: RemapPlan,
    },
    /// One adaptation interval elapsed: what the loop observed.
    WindowStats {
        /// The session the interval belongs to.
        session: SessionId,
        /// Backend time of the tick.
        at: SimTime,
        /// Realized throughput over the elapsed interval (items/s).
        realized: f64,
        /// Model-predicted throughput of the mapping in force.
        expected: f64,
        /// Items completed so far.
        completed: u64,
        /// True while [`SessionControl::pause_adaptation`] is in force.
        paused: bool,
    },
    /// A `push()` blocked on a full bounded queue (threaded backend).
    BackpressureStall {
        /// The session whose push stalled.
        session: SessionId,
        /// Sequence number of the item whose push stalled.
        seq: u64,
        /// How long the push waited for a free slot.
        waited: SimDuration,
    },
    /// A node went down (outage start or crash) per the run's fault
    /// plan: it is now excluded from routing, and — under an adaptive
    /// policy — a committed re-map away from it is forced.
    NodeDown {
        /// The session whose fault plan (or pool) lost the node.
        session: SessionId,
        /// The failed node.
        node: usize,
        /// The scheduled instant of the failure, on the backend clock.
        at: SimTime,
    },
    /// A node recovered (outage end): routing may use it again, and the
    /// regular adaptation cycle is free to re-adopt it.
    NodeUp {
        /// The session observing the recovery.
        session: SessionId,
        /// The recovered node.
        node: usize,
        /// The scheduled instant of the recovery, on the backend clock.
        at: SimTime,
    },
    /// One (item, stage) hop on a stage whose [`ResiliencePolicy`]
    /// opted into tracing. Fires once per hop, after the stage settled
    /// the item (success, dead-letter, or poison failure), with the
    /// number of attempts the hop consumed.
    ItemTrace {
        /// The session the traced item belongs to.
        session: SessionId,
        /// Sequence number of the traced item.
        seq: u64,
        /// The stage the item passed through.
        stage: usize,
        /// Attempts the hop consumed (1 = clean first try).
        attempts: u32,
        /// When the hop settled, on the backend clock.
        at: SimTime,
    },
    /// An item exhausted a stage's retry budget and was diverted to the
    /// dead-letter channel (the stage's policy set `dead_letter`). The
    /// full record — stage, attempts, error — lands in
    /// `RunReport::dead_letter_log`.
    ItemDeadLettered {
        /// The session the poisoned item belongs to.
        session: SessionId,
        /// Sequence number of the diverted item.
        seq: u64,
        /// The stage that gave up on it.
        stage: usize,
        /// Total attempts consumed (first try + retries).
        attempts: u32,
    },
    /// An in-flight item stranded on a down node was re-dealt to a live
    /// host (at-least-once replay). Fires once per rescue; the total is
    /// reported in `RunReport::replays`.
    ItemReplayed {
        /// The session the replayed item belongs to.
        session: SessionId,
        /// Sequence number of the replayed item.
        seq: u64,
        /// The stage the item was waiting for.
        stage: usize,
        /// The down node it was rescued from.
        from: usize,
        /// The stage's position in the stage graph: `Some((block,
        /// branch))` for a stage inside a parallel block's branch,
        /// `None` for series stages (linear pipelines always report
        /// `None`).
        branch: Option<(usize, usize)>,
    },
}

/// A typed, non-panicking run failure surfaced on the session (via
/// `RunSession::error()` / `RunHandle::error`) instead of killing a
/// worker thread opaquely. A run with an error set still tears down
/// cleanly and reports what it completed (`truncated` when items were
/// lost).
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// A stage received an item of the wrong dynamic type — a pipeline
    /// assembled from mismatched erased parts (the typed builder cannot
    /// produce this).
    StageTypeMismatch {
        /// Name of the stage that rejected the item.
        stage: String,
    },
    /// A stage with *opaque* (undeclared) state was pinned to a node
    /// that went down permanently (a crash; a finite outage parks the
    /// stage's items and recovers instead). Opaque state cannot be
    /// snapshotted, so it dies with the node and at-least-once replay
    /// is impossible; the run fails instead of silently re-running the
    /// stage from forked or lost state. Stages that *declare* their
    /// state (keyed, accumulator, exclusive) never raise this: their
    /// snapshots live-migrate to a surviving host instead.
    StatefulStageLost {
        /// Index of the stateful stage.
        stage: usize,
        /// The crashed node it was pinned to.
        node: usize,
    },
    /// Every node of the backend is down: no mapping can make progress
    /// and no re-map can rescue the in-flight items.
    AllNodesDown,
    /// A node hosting pipeline stages crashed permanently under
    /// [`crate::policy::Policy::Static`]: a static policy never
    /// re-maps, so the stranded items could never complete — the run
    /// fails instead of starving forever.
    NodeLostUnderStatic {
        /// The crashed node.
        node: usize,
    },
    /// The session was closed (or aborted) and then pushed into. A
    /// closed stream's length is already settled, so late items have
    /// nowhere to go; `push`/`push_batch` return this instead of
    /// silently dropping the item or panicking.
    SessionClosed,
    /// The session was evicted from a shared cluster pool. Graceful
    /// eviction (`Cluster::evict`) rejects new pushes with this while
    /// in-flight items drain; forced eviction additionally fails the
    /// run with it, truncating whatever had not yet completed.
    Evicted {
        /// The evicted session.
        session: SessionId,
    },
    /// An item exhausted a stage's retry budget on a stage whose
    /// [`ResiliencePolicy`] did *not* opt into dead-lettering: the item
    /// has nowhere to go and the run fails. Enable `dead_letter()` on
    /// the stage to divert such items instead.
    PoisonItem {
        /// Name of the stage that exhausted its retries.
        stage: String,
        /// Sequence number of the poisoned item.
        seq: u64,
        /// Total attempts consumed (first try + retries).
        attempts: u32,
        /// The final attempt's error.
        reason: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::StageTypeMismatch { stage } => {
                write!(f, "stage '{stage}' received an item of the wrong type")
            }
            RunError::StatefulStageLost { stage, node } => {
                write!(
                    f,
                    "stateful stage {stage} was pinned to node {node}, which went \
                     down; its state is lost and cannot be replayed"
                )
            }
            RunError::AllNodesDown => {
                write!(f, "every node is down; the pipeline cannot make progress")
            }
            RunError::NodeLostUnderStatic { node } => {
                write!(
                    f,
                    "node {node} crashed permanently but the static policy never \
                     re-maps; the stranded items can never complete"
                )
            }
            RunError::SessionClosed => {
                write!(f, "cannot push into a closed session")
            }
            RunError::Evicted { session } => {
                write!(f, "session {session} was evicted from the cluster")
            }
            RunError::PoisonItem {
                stage,
                seq,
                attempts,
                reason,
            } => {
                write!(
                    f,
                    "item {seq} failed stage '{stage}' {attempts} times ({reason}); \
                     enable dead_letter() on the stage to divert poison items"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Identifies one tenant session admitted to a shared cluster pool.
/// Allocated by the pool at admission, unique for the pool's lifetime,
/// and carried on cluster-level event streams so heterogeneous tenants
/// can be told apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A broadcast channel for [`RunEvent`]s: any number of subscribers,
/// each receiving every event emitted after it subscribed. Cloning the
/// bus shares the subscriber list (it is a handle, not a copy).
/// Emission with no subscribers is a cheap no-op, so the bus rides in
/// [`RunHooks`] unconditionally.
#[derive(Clone, Default)]
pub struct EventBus {
    subs: Arc<Mutex<Vec<Sender<RunEvent>>>>,
}

impl EventBus {
    /// A bus with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscriber; events emitted from now on arrive on the
    /// returned channel. Dropping the receiver unsubscribes it.
    pub fn subscribe(&self) -> Receiver<RunEvent> {
        let (tx, rx) = channel();
        self.subs.lock().expect("event bus lock poisoned").push(tx);
        rx
    }

    /// True if nobody is listening (emission would be a no-op).
    pub fn is_idle(&self) -> bool {
        self.subs
            .lock()
            .expect("event bus lock poisoned")
            .is_empty()
    }

    /// Publishes `event` to every live subscriber, dropping subscribers
    /// whose receiver has gone away.
    pub fn emit(&self, event: RunEvent) {
        let mut subs = self.subs.lock().expect("event bus lock poisoned");
        subs.retain(|tx| tx.send(event.clone()).is_ok());
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field(
                "subscribers",
                &self.subs.lock().expect("event bus lock poisoned").len(),
            )
            .finish()
    }
}

/// In-flight steering shared between a live session and the adaptation
/// loop. Cloning shares the flags (it is a handle). Both backends
/// honour it identically because the checks live in the shared
/// [`crate::adapt::AdaptationLoop`], not in either engine.
#[derive(Clone, Debug, Default)]
pub struct SessionControl {
    flags: Arc<ControlFlags>,
}

#[derive(Debug, Default)]
struct ControlFlags {
    paused: AtomicBool,
    force_remap: AtomicBool,
    /// First fatal run error, surfaced to the session owner. Later
    /// errors are dropped: the first failure is the actionable one.
    error: Mutex<Option<RunError>>,
}

impl SessionControl {
    /// Fresh, unpaused control flags.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freezes adaptation: ticks keep sensing and reporting window
    /// statistics, but no re-mapping (planner or regret guard) commits
    /// until [`SessionControl::resume_adaptation`].
    pub fn pause_adaptation(&self) {
        self.flags.paused.store(true, Ordering::SeqCst);
    }

    /// Lifts a [`SessionControl::pause_adaptation`].
    pub fn resume_adaptation(&self) {
        self.flags.paused.store(false, Ordering::SeqCst);
    }

    /// True while adaptation is paused.
    pub fn is_paused(&self) -> bool {
        self.flags.paused.load(Ordering::SeqCst)
    }

    /// Requests one forced planning cycle at the next adaptation tick,
    /// bypassing warm-up gating, guard hold-downs, and the reactive
    /// policy's degradation trigger. No-op under `Policy::Static`
    /// (a static run has no adaptation ticks to force).
    pub fn force_remap(&self) {
        self.flags.force_remap.store(true, Ordering::SeqCst);
    }

    /// Consumes a pending force request (the adaptation loop's side).
    pub fn take_force_remap(&self) -> bool {
        self.flags.force_remap.swap(false, Ordering::SeqCst)
    }

    /// Records a fatal run error (runtime/backend side). The first
    /// error sticks; subsequent calls are no-ops.
    pub fn fail(&self, error: RunError) {
        let mut slot = self.flags.error.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(error);
        }
    }

    /// The run's fatal error, if one was recorded.
    pub fn error(&self) -> Option<RunError> {
        self.flags
            .error
            .lock()
            .expect("error slot poisoned")
            .clone()
    }
}

/// Live observation callbacks for a run. Cloned into the adaptation
/// loop; invoked on the thread (or at the simulated instant) the event
/// occurs, while the pipeline keeps running.
#[derive(Clone, Default)]
pub struct RunHooks {
    /// Called after every committed re-mapping (including regret-guard
    /// reverts) with the priced plan.
    pub on_remap: Option<RemapHook>,
    /// Broadcast stream of [`RunEvent`]s — the generalised, multi-
    /// subscriber form of the callbacks above. `RunSession::events()`
    /// subscribes to this bus.
    pub events: EventBus,
}

impl RunHooks {
    /// Hooks that observe committed re-mappings.
    pub fn on_remap(f: impl Fn(&RemapPlan) + Send + Sync + 'static) -> Self {
        RunHooks {
            on_remap: Some(Arc::new(f)),
            events: EventBus::default(),
        }
    }
}

impl std::fmt::Debug for RunHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHooks")
            .field("on_remap", &self.on_remap.as_ref().map(|_| "Fn"))
            .field("events", &self.events)
            .finish()
    }
}

/// Outcome of a non-blocking poll on a streaming session's output side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TryNext<O> {
    /// An output was ready.
    Item(O),
    /// Nothing ready *yet* — more outputs may still arrive.
    Pending,
    /// The stream is finished: every output has been delivered (or the
    /// run was aborted/starved) and no further item will ever arrive.
    Done,
}

/// Backend-independent run-time knobs for one pipeline run — the single
/// config every backend consumes. Fields a backend cannot honour are
/// documented as such and ignored there (they do not error: a scenario
/// parameterised by backend sets them once).
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Stream length for batch `run()`. A streaming session's true
    /// length is whatever gets pushed before `close()`; there `items`
    /// only seeds the adaptation loop's remaining-work amortisation.
    pub items: u64,
    /// Controller tunables (planner, hysteresis, monitoring window).
    pub controller: ControllerConfig,
    /// Launch mapping; `None` plans one from availability at start.
    pub initial_mapping: Option<Mapping>,
    /// How items are dealt among a replicated stage's hosts.
    /// Least-loaded needs a queue-depth probe and is rejected by the
    /// threaded backend.
    pub selection: Selection,
    /// Relative magnitude of availability observation noise (0 = clean).
    pub observation_noise: f64,
    /// Seed for the observation noise stream.
    pub noise_seed: u64,
    /// Bucket width of the reported throughput timeline; `None` uses
    /// the backend's native default (5 s simulated, 500 ms wall).
    pub timeline_bucket: Option<SimDuration>,
    /// Planning topology override. The simulation backend always plans
    /// on the grid's own topology; the threaded backend defaults to
    /// uniform local links.
    pub topology: Option<Topology>,
    /// Serialise per-direction link transfers (simulation backend only).
    pub link_contention: bool,
    /// Emulate network cost on cross-node boundaries (threaded backend
    /// only).
    pub emulate_links: bool,
    /// Resequence outputs by item index (threaded backend only).
    pub preserve_order: bool,
    /// Safety horizon: a simulated run stops (truncated) past this time.
    pub max_sim_time: SimDuration,
    /// Live observation callbacks.
    pub hooks: RunHooks,
    /// Per-stage-boundary queue bound for streaming sessions. `None`
    /// leaves queues unbounded (the legacy batch behaviour). With
    /// `Some(c)` the threaded backend caps the total in-flight item
    /// count at `c × (stages + 1)` — one bounded buffer per stage
    /// boundary, source and sink included — so `push()` blocks under
    /// real backpressure instead of queueing without limit. The bound
    /// is enforced end-to-end (a completion frees a slot) rather than
    /// per physical channel: with stages coalesced on one worker,
    /// per-channel blocking sends can deadlock (worker A full and
    /// blocked sending to full worker B, which is blocked sending back
    /// to A), while an end-to-end credit never blocks a worker and
    /// still bounds every inter-stage queue by the same total. The
    /// simulation backend models no wall-clock memory pressure and
    /// ignores the knob.
    pub queue_capacity: Option<usize>,
    /// Envelope batch granularity for the threaded backend: up to this
    /// many pushed items ship as one routed envelope, and stage exits
    /// batch their outputs the same way, amortising channel-send,
    /// routing, and credit overhead across the batch. `1` (the default)
    /// reproduces the per-item wire behaviour exactly; raise it (64–256
    /// is typical) for small-item high-rate streams where per-item
    /// overhead dominates. Buffered input flushes on `close()`, on any
    /// output-side call, and before blocking on the credit gate, so
    /// batching never deadlocks against `queue_capacity`; the credit
    /// gate still accounts per item. The simulation backend models no
    /// per-message overhead and ignores the knob.
    pub batch_size: usize,
    /// In-flight steering flags (pause/resume/force re-map) shared with
    /// the session that owns the run.
    pub control: SessionControl,
    /// Scheduled faults injected into the run, honoured by every
    /// backend: slowdowns and outages degrade the named nodes' load
    /// schedules (the simulator's availability windows; the threaded
    /// engine's vnode loads), and outages/crashes additionally take the
    /// node *down* — excluded from routing, `RunEvent::NodeDown`
    /// emitted, and (under an adaptive policy) a committed re-map away
    /// from it forced, replaying stranded items at-least-once. Times are
    /// on the backend clock: simulated seconds, or wall seconds since
    /// engine start. Merged after any plan the pipeline builder
    /// declared.
    pub faults: FaultPlan,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            items: 1_000,
            controller: ControllerConfig::default(),
            initial_mapping: None,
            selection: Selection::RoundRobin,
            observation_noise: 0.0,
            noise_seed: 1,
            timeline_bucket: None,
            topology: None,
            link_contention: false,
            emulate_links: false,
            preserve_order: true,
            max_sim_time: SimDuration::from_secs(7 * 24 * 3600),
            hooks: RunHooks::default(),
            queue_capacity: None,
            batch_size: 1,
            control: SessionControl::default(),
            faults: FaultPlan::new(),
        }
    }
}

/// A validated (policy, arrivals) pair — the part of a built pipeline
/// the runtime owns. Constructing one runs every policy/arrival rule in
/// the module docs, so holding a `Session` *is* the proof the
/// combination is legal.
#[derive(Clone, Debug)]
pub struct Session {
    policy: Policy,
    arrivals: ArrivalProcess,
}

impl Session {
    /// Validates the pair; see the module docs for the rules.
    pub fn new(policy: Policy, arrivals: ArrivalProcess) -> Result<Self, BuildError> {
        validate_policy(&policy)?;
        validate_arrivals(&arrivals)?;
        validate_policy_arrivals(&policy, &arrivals)?;
        Ok(Session { policy, arrivals })
    }

    /// Like [`Session::new`], but skips the policy × arrivals pairing
    /// rule — the acknowledged escape hatch for *deliberate* baselines
    /// (e.g. a static mapping under a paced open stream, run to show
    /// what non-adaptive scheduling costs). Policy and arrivals are
    /// still validated in isolation.
    pub fn baseline(policy: Policy, arrivals: ArrivalProcess) -> Result<Self, BuildError> {
        validate_policy(&policy)?;
        validate_arrivals(&arrivals)?;
        Ok(Session { policy, arrivals })
    }

    /// The adaptation policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The arrival process.
    pub fn arrivals(&self) -> ArrivalProcess {
        self.arrivals
    }
}

/// Validates a policy in isolation: adaptive intervals must be positive
/// and the reactive degradation threshold must sit in `(0, 1]`.
pub fn validate_policy(policy: &Policy) -> Result<(), BuildError> {
    if let Some(interval) = policy.interval() {
        if interval == SimDuration::ZERO {
            return Err(BuildError::NonPositiveInterval {
                policy: policy.name(),
            });
        }
    }
    if let Policy::Reactive { degradation, .. } = *policy {
        if !(degradation > 0.0 && degradation <= 1.0) {
            return Err(BuildError::DegradationOutOfRange { degradation });
        }
    }
    Ok(())
}

/// Validates an arrival process in isolation: rate-based processes need
/// a positive, finite rate (the legacy API asserts this at schedule
/// time — mid-run — instead of at build time).
pub fn validate_arrivals(arrivals: &ArrivalProcess) -> Result<(), BuildError> {
    match *arrivals {
        ArrivalProcess::AllAtOnce => Ok(()),
        ArrivalProcess::Uniform { rate } | ArrivalProcess::Poisson { rate, .. } => {
            if rate > 0.0 && rate.is_finite() {
                Ok(())
            } else {
                Err(BuildError::InvalidArrivalRate { rate })
            }
        }
    }
}

/// Validates the policy × arrivals combination; see the module docs for
/// why the two rejected pairings exist.
pub fn validate_policy_arrivals(
    policy: &Policy,
    arrivals: &ArrivalProcess,
) -> Result<(), BuildError> {
    let open_stream = !matches!(arrivals, ArrivalProcess::AllAtOnce);
    match *policy {
        Policy::Static if open_stream => Err(BuildError::PolicyArrivalsMismatch {
            policy: policy.name(),
            reason: "a rate-paced open stream declares a live workload; a static \
                     policy declares a fixed launch mapping — use an adaptive \
                     policy, or acknowledge a deliberate baseline with \
                     as_baseline()",
        }),
        Policy::Reactive { .. } if open_stream => Err(BuildError::PolicyArrivalsMismatch {
            policy: policy.name(),
            reason: "the reactive degradation trigger compares realized throughput \
                     against the saturated-capacity model; an arrival-limited \
                     stream misfires it every interval — acknowledge a deliberate \
                     baseline with as_baseline()",
        }),
        _ => Ok(()),
    }
}

/// Validates a supplied launch mapping against the declared stage
/// properties and the backend's node set: arity must match, no stage
/// may be mapped wider than its legal replica bound (non-replicable —
/// exclusive or opaque state — = 1, replicable = declared cap, which
/// for keyed stages is the shard count), and every host must exist. The backends
/// assert the same invariants — this turns the panic into a typed
/// [`BuildError::InvalidMapping`] at the unified surface.
pub fn validate_mapping(
    mapping: &Mapping,
    stateless: &[bool],
    replica_cap: &[usize],
    node_count: usize,
) -> Result<(), BuildError> {
    if mapping.len() != stateless.len() {
        return Err(BuildError::InvalidMapping {
            detail: format!(
                "mapping covers {} stages, pipeline declares {}",
                mapping.len(),
                stateless.len()
            ),
        });
    }
    for s in 0..mapping.len() {
        let placement = mapping.placement(s);
        let cap = if stateless[s] { replica_cap[s] } else { 1 };
        if placement.width() > cap {
            return Err(BuildError::InvalidMapping {
                detail: format!(
                    "stage {s} mapped at width {} above its legal replica bound {cap}",
                    placement.width()
                ),
            });
        }
        for host in placement.hosts() {
            if host.index() >= node_count {
                return Err(BuildError::InvalidMapping {
                    detail: format!(
                        "stage {s} mapped on node {host} outside the {node_count}-node backend"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Validates a fault plan against a backend's node set: every fault
/// must name a node the backend actually has.
pub fn validate_faults(plan: &FaultPlan, node_count: usize) -> Result<(), BuildError> {
    if let Some(node) = plan.max_node() {
        if node.index() >= node_count {
            return Err(BuildError::InvalidFault {
                detail: format!("fault targets node {node} outside the {node_count}-node backend"),
            });
        }
    }
    Ok(())
}

/// Validates the stage-name list: non-empty and duplicate-free.
pub fn validate_stage_names<S: AsRef<str>>(names: &[S]) -> Result<(), BuildError> {
    if names.is_empty() {
        return Err(BuildError::EmptyPipeline);
    }
    let mut seen = std::collections::HashSet::new();
    for name in names {
        if !seen.insert(name.as_ref()) {
            return Err(BuildError::DuplicateStage {
                name: name.as_ref().to_string(),
            });
        }
    }
    Ok(())
}

/// Validates one stage's declared replica bound against its
/// replicability (`stateless` here means "may run more than one live
/// instance" — declared keyed and accumulator state qualifies).
/// `usize::MAX` is the *unset* default ("planner decides") and is
/// always legal; an explicit bound above one on a non-replicable
/// stage declares replication the runtime must refuse.
pub fn validate_replicas(stage: &str, stateless: bool, bound: usize) -> Result<(), BuildError> {
    if bound == 0 {
        return Err(BuildError::ZeroReplicas {
            stage: stage.to_string(),
        });
    }
    if !stateless && bound > 1 && bound != usize::MAX {
        return Err(BuildError::StatefulReplicated {
            stage: stage.to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_gridsim::time::SimDuration;

    #[test]
    fn session_accepts_the_canonical_pairs() {
        for arrivals in [
            ArrivalProcess::AllAtOnce,
            ArrivalProcess::Uniform { rate: 2.0 },
            ArrivalProcess::Poisson { rate: 1.0, seed: 7 },
        ] {
            let s = Session::new(Policy::periodic_default(), arrivals).unwrap();
            assert_eq!(s.policy(), Policy::periodic_default());
        }
        assert!(Session::new(Policy::Static, ArrivalProcess::AllAtOnce).is_ok());
    }

    #[test]
    fn static_with_open_stream_is_rejected() {
        let err = Session::new(Policy::Static, ArrivalProcess::Uniform { rate: 1.0 }).unwrap_err();
        assert!(matches!(
            err,
            BuildError::PolicyArrivalsMismatch {
                policy: "static",
                ..
            }
        ));
    }

    #[test]
    fn reactive_with_open_stream_is_rejected() {
        let policy = Policy::Reactive {
            interval: SimDuration::from_secs(5),
            degradation: 0.8,
        };
        let err = Session::new(policy, ArrivalProcess::Poisson { rate: 1.0, seed: 1 }).unwrap_err();
        assert!(matches!(err, BuildError::PolicyArrivalsMismatch { .. }));
    }

    #[test]
    fn zero_interval_and_bad_degradation_are_typed_errors() {
        let zero = Policy::Periodic {
            interval: SimDuration::ZERO,
        };
        assert_eq!(
            validate_policy(&zero),
            Err(BuildError::NonPositiveInterval { policy: "adaptive" })
        );
        let bad = Policy::Reactive {
            interval: SimDuration::from_secs(1),
            degradation: 1.5,
        };
        assert_eq!(
            validate_policy(&bad),
            Err(BuildError::DegradationOutOfRange { degradation: 1.5 })
        );
    }

    #[test]
    fn arrival_rates_must_be_positive_and_finite() {
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = validate_arrivals(&ArrivalProcess::Uniform { rate }).unwrap_err();
            assert!(matches!(err, BuildError::InvalidArrivalRate { .. }));
        }
    }

    #[test]
    fn stage_name_rules() {
        assert_eq!(
            validate_stage_names::<&str>(&[]),
            Err(BuildError::EmptyPipeline)
        );
        assert!(validate_stage_names(&["a", "b"]).is_ok());
        assert_eq!(
            validate_stage_names(&["a", "b", "a"]),
            Err(BuildError::DuplicateStage { name: "a".into() })
        );
    }

    #[test]
    fn replica_rules() {
        assert!(validate_replicas("s", true, 4).is_ok());
        assert!(validate_replicas("s", false, 1).is_ok());
        // The unset default (usize::MAX) never trips the stateful check.
        assert!(validate_replicas("s", false, usize::MAX).is_ok());
        assert_eq!(
            validate_replicas("s", true, 0),
            Err(BuildError::ZeroReplicas { stage: "s".into() })
        );
        assert_eq!(
            validate_replicas("s", false, 2),
            Err(BuildError::StatefulReplicated { stage: "s".into() })
        );
    }

    #[test]
    fn baseline_session_skips_only_the_pairing_rule() {
        // The pairing rule is waived…
        let s = Session::baseline(Policy::Static, ArrivalProcess::Uniform { rate: 1.0 }).unwrap();
        assert_eq!(s.policy(), Policy::Static);
        // …but the isolated rules still apply.
        assert!(matches!(
            Session::baseline(Policy::Static, ArrivalProcess::Uniform { rate: 0.0 }),
            Err(BuildError::InvalidArrivalRate { .. })
        ));
    }

    #[test]
    fn mapping_rules() {
        use adapipe_gridsim::node::NodeId;
        use adapipe_mapper::mapping::Placement;
        let wide = Mapping::new(vec![Placement::replicated(vec![NodeId(0), NodeId(1)])]);
        // Stateless within cap and node set: fine.
        assert!(validate_mapping(&wide, &[true], &[2], 3).is_ok());
        // Stateful stage mapped wide: rejected.
        assert!(matches!(
            validate_mapping(&wide, &[false], &[1], 3),
            Err(BuildError::InvalidMapping { .. })
        ));
        // Width above the declared cap: rejected.
        assert!(matches!(
            validate_mapping(&wide, &[true], &[1], 3),
            Err(BuildError::InvalidMapping { .. })
        ));
        // Arity mismatch: rejected.
        assert!(matches!(
            validate_mapping(&wide, &[true, true], &[2, 2], 3),
            Err(BuildError::InvalidMapping { .. })
        ));
        // Host outside the backend: rejected.
        assert!(matches!(
            validate_mapping(&wide, &[true], &[2], 1),
            Err(BuildError::InvalidMapping { .. })
        ));
    }

    #[test]
    fn event_bus_broadcasts_to_every_subscriber() {
        let bus = EventBus::new();
        assert!(bus.is_idle());
        let a = bus.subscribe();
        let b = bus.subscribe();
        assert!(!bus.is_idle());
        bus.emit(RunEvent::BackpressureStall {
            session: SessionId(0),
            seq: 3,
            waited: SimDuration::from_millis(5),
        });
        for rx in [&a, &b] {
            match rx.try_recv().expect("event delivered") {
                RunEvent::BackpressureStall { seq, .. } => assert_eq!(seq, 3),
                other => panic!("unexpected event {other:?}"),
            }
        }
        // A dropped subscriber is pruned on the next emission.
        drop(a);
        bus.emit(RunEvent::WindowStats {
            session: SessionId(0),
            at: SimTime::ZERO,
            realized: 1.0,
            expected: 1.0,
            completed: 0,
            paused: false,
        });
        assert_eq!(bus.subs.lock().unwrap().len(), 1);
        assert_eq!(b.try_iter().count(), 1);
    }

    #[test]
    fn session_control_flags_round_trip() {
        let ctl = SessionControl::new();
        assert!(!ctl.is_paused());
        ctl.pause_adaptation();
        // A clone shares the flags — it is a handle, not a copy.
        let other = ctl.clone();
        assert!(other.is_paused());
        other.resume_adaptation();
        assert!(!ctl.is_paused());
        assert!(!ctl.take_force_remap());
        ctl.force_remap();
        assert!(other.take_force_remap(), "force flag is shared");
        assert!(!ctl.take_force_remap(), "force flag is one-shot");
    }

    #[test]
    fn run_config_defaults_to_unbounded_queues() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.queue_capacity, None);
        assert!(!cfg.control.is_paused());
        assert!(cfg.hooks.events.is_idle());
    }

    #[test]
    fn errors_display_usefully() {
        let e = BuildError::DuplicateStage {
            name: "blur".into(),
        };
        assert!(e.to_string().contains("blur"));
        let e = BuildError::MissingFeed { backend: "threads" };
        assert!(e.to_string().contains("threads"));
        let e = BuildError::InvalidFault {
            detail: "node 9".into(),
        };
        assert!(e.to_string().contains("node 9"));
    }

    #[test]
    fn fault_plans_validate_against_the_node_set() {
        use adapipe_gridsim::node::NodeId;
        let plan = FaultPlan::new().crash(NodeId(2), SimTime::from_secs_f64(1.0));
        assert!(validate_faults(&plan, 3).is_ok());
        assert!(matches!(
            validate_faults(&plan, 2),
            Err(BuildError::InvalidFault { .. })
        ));
        assert!(validate_faults(&FaultPlan::new(), 0).is_ok());
    }

    #[test]
    fn first_run_error_sticks() {
        let ctl = SessionControl::new();
        assert_eq!(ctl.error(), None);
        ctl.fail(RunError::AllNodesDown);
        // A clone shares the slot; later errors are dropped.
        let other = ctl.clone();
        other.fail(RunError::StageTypeMismatch { stage: "x".into() });
        assert_eq!(ctl.error(), Some(RunError::AllNodesDown));
        assert!(ctl.error().unwrap().to_string().contains("every node"));
    }

    #[test]
    fn resilience_policy_defaults_and_backoff_schedule() {
        let p = ResiliencePolicy::default();
        assert!(p.is_default());
        assert_eq!(p.backoff_delay(1), SimDuration::ZERO);
        let p = ResiliencePolicy::new()
            .retries(3)
            .backoff(SimDuration::from_secs(1), 2.0)
            .timeout(SimDuration::from_secs(10))
            .dead_letter()
            .trace();
        assert!(!p.is_default());
        assert_eq!(p.max_retries, 3);
        assert_eq!(p.timeout, Some(SimDuration::from_secs(10)));
        assert!(p.dead_letter && p.trace);
        // Exponential: 1 s, 2 s, 4 s before retries 1, 2, 3.
        assert_eq!(p.backoff_delay(1), SimDuration::from_secs(1));
        assert_eq!(p.backoff_delay(2), SimDuration::from_secs(2));
        assert_eq!(p.backoff_delay(3), SimDuration::from_secs(4));
        assert_eq!(p.backoff_delay(0), SimDuration::ZERO);
    }

    #[test]
    fn graph_build_errors_display_usefully() {
        let e = BuildError::GraphCycle { stage: "b".into() };
        assert!(e.to_string().contains("cycle"));
        let e = BuildError::UnreachableStage { stage: "c".into() };
        assert!(e.to_string().contains("'c'"));
        let e = BuildError::UnknownStage {
            name: "ghost".into(),
        };
        assert!(e.to_string().contains("ghost"));
        let e = BuildError::InvalidEdge {
            detail: "duplicate edge a -> b".into(),
        };
        assert!(e.to_string().contains("duplicate edge"));
    }

    #[test]
    fn poison_item_error_names_the_stage_and_fix() {
        let e = RunError::PoisonItem {
            stage: "parse".into(),
            seq: 7,
            attempts: 4,
            reason: "bad utf-8".into(),
        };
        let s = e.to_string();
        assert!(s.contains("parse") && s.contains("7") && s.contains("dead_letter"));
    }

    #[test]
    fn run_errors_display_usefully() {
        let e = RunError::StatefulStageLost { stage: 1, node: 2 };
        let s = e.to_string();
        assert!(s.contains("stateful stage 1") && s.contains("node 2"));
        let e = RunError::StageTypeMismatch {
            stage: "parse".into(),
        };
        assert!(e.to_string().contains("parse"));
    }
}
