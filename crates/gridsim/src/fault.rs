//! Fault injection: planned slowdowns, outages, and crashes.
//!
//! Faults are expressed as *transformations of load models*, keeping the
//! simulator's "availability is a pure function of time" invariant: the
//! fault plan is applied to a [`GridSpec`] (or any per-node set of
//! [`LoadModel`]s — the threaded engine rewrites its vnode loads through
//! [`FaultPlan::rewrite_load`]) before the run starts, and the run
//! itself stays deterministic.
//!
//! Beyond the physical degradation, a plan also answers two
//! control-plane questions the adaptive runtime asks:
//!
//! * [`FaultPlan::down_intervals`] — when is each node *down* (outage or
//!   crashed, as opposed to merely slowed)? The runtime turns these into
//!   `NodeDown`/`NodeUp` transitions, routing exclusions, and forced
//!   re-maps.
//! * [`FaultPlan::downtime`] — how much downtime did each node accrue
//!   over a run horizon? Reported per node in `RunReport`.

use crate::grid::GridSpec;
use crate::load::LoadModel;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// The stand-in for "never recovers": far enough that no run horizon
/// reaches it, small enough that arithmetic on it cannot overflow.
pub const FOREVER: SimTime = SimTime::from_nanos(u64::MAX / 2);

/// One planned fault on one node.
#[derive(Clone, Debug)]
pub enum Fault {
    /// The node's availability drops to `level` from `from` to `to`
    /// (another job occupies most of the machine).
    Slowdown {
        /// Affected node.
        node: NodeId,
        /// Start of the degradation.
        from: SimTime,
        /// End of the degradation.
        to: SimTime,
        /// Availability during the window, in `[0, 1)`.
        level: f64,
    },
    /// The node is completely unusable from `from` to `to`.
    Outage {
        /// Affected node.
        node: NodeId,
        /// Start of the outage.
        from: SimTime,
        /// End of the outage.
        to: SimTime,
    },
    /// The node never recovers after `at`.
    Crash {
        /// Affected node.
        node: NodeId,
        /// Instant of the crash.
        at: SimTime,
    },
}

impl Fault {
    /// The node this fault affects.
    pub fn node(&self) -> NodeId {
        match self {
            Fault::Slowdown { node, .. }
            | Fault::Outage { node, .. }
            | Fault::Crash { node, .. } => *node,
        }
    }
}

/// An ordered collection of faults applied to a grid before a run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a slowdown window.
    pub fn slowdown(mut self, node: NodeId, from: SimTime, to: SimTime, level: f64) -> Self {
        assert!(from < to, "fault window must be non-empty");
        assert!(
            (0.0..1.0).contains(&level),
            "slowdown level must be in [0,1)"
        );
        self.faults.push(Fault::Slowdown {
            node,
            from,
            to,
            level,
        });
        self
    }

    /// Adds a full outage window.
    pub fn outage(mut self, node: NodeId, from: SimTime, to: SimTime) -> Self {
        assert!(from < to, "fault window must be non-empty");
        self.faults.push(Fault::Outage { node, from, to });
        self
    }

    /// Adds a permanent crash.
    pub fn crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.faults.push(Fault::Crash { node, at });
        self
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True if the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Appends every fault of `other` after this plan's own (faults
    /// compose left to right).
    pub fn merge(mut self, other: &FaultPlan) -> Self {
        self.faults.extend(other.faults.iter().cloned());
        self
    }

    /// The highest node index any fault names, or `None` for an empty
    /// plan — validation against a backend's node count.
    pub fn max_node(&self) -> Option<NodeId> {
        self.faults.iter().map(|f| f.node()).max_by_key(|n| n.0)
    }

    /// Rewrites one node's load model through every fault of this plan
    /// that targets it — the single definition of fault physics, shared
    /// by the simulator ([`FaultPlan::apply`]) and the threaded engine
    /// (which feeds its vnode load schedules through here).
    pub fn rewrite_load(&self, node: NodeId, load: LoadModel) -> LoadModel {
        let mut load = load;
        for fault in &self.faults {
            if fault.node() != node {
                continue;
            }
            load = match *fault {
                Fault::Outage { from, to, .. } => load.with_outages(&[(from, to)]),
                // An outage that never ends: overlay zero availability
                // from `at` to effectively-forever.
                Fault::Crash { at, .. } => load.with_outages(&[(at, FOREVER)]),
                Fault::Slowdown {
                    from, to, level, ..
                } => load.with_cap_window(from, to, level),
            };
        }
        load
    }

    /// Applies every fault to `grid`, rewriting the affected nodes' load
    /// models. Faults compose left to right (each overlays the result of
    /// the previous one, combining via `min`).
    pub fn apply(&self, grid: &mut GridSpec) {
        for id in 0..grid.len() {
            let node = NodeId(id);
            let base = grid.node(node).load.clone();
            let rewritten = self.rewrite_load(node, base);
            grid.set_load(node, rewritten);
        }
    }

    /// The merged, disjoint *down* intervals of `node` — the union of
    /// its outage windows and crash tail. Slowdowns degrade but do not
    /// take a node down, so they contribute nothing here. A crash tail
    /// ends at [`FOREVER`]. Intervals are sorted by start.
    pub fn down_intervals(&self, node: NodeId) -> Vec<(SimTime, SimTime)> {
        let mut raw: Vec<(SimTime, SimTime)> = self
            .faults
            .iter()
            .filter(|f| f.node() == node)
            .filter_map(|f| match *f {
                Fault::Outage { from, to, .. } => Some((from, to)),
                Fault::Crash { at, .. } => Some((at, FOREVER)),
                Fault::Slowdown { .. } => None,
            })
            .collect();
        raw.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(raw.len());
        for (from, to) in raw {
            match merged.last_mut() {
                Some(last) if from <= last.1 => last.1 = last.1.max(to),
                _ => merged.push((from, to)),
            }
        }
        merged
    }

    /// Downtime each of `node_count` nodes accrues over `[0, horizon)`:
    /// the total measure of its down intervals clamped to the horizon.
    pub fn downtime(&self, node_count: usize, horizon: SimTime) -> Vec<SimDuration> {
        (0..node_count)
            .map(|i| {
                self.down_intervals(NodeId(i))
                    .iter()
                    .fold(SimDuration::ZERO, |acc, &(from, to)| {
                        let to = to.min(horizon);
                        if to > from {
                            acc.saturating_add(to - from)
                        } else {
                            acc
                        }
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::testbed_small3;
    use crate::load::LoadModel;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn slowdown_caps_availability_in_window_only() {
        let mut g = testbed_small3();
        FaultPlan::new()
            .slowdown(NodeId(0), secs(10.0), secs(20.0), 0.25)
            .apply(&mut g);
        let n = g.node(NodeId(0));
        assert_eq!(n.load.availability(secs(5.0)), 1.0);
        assert_eq!(n.load.availability(secs(15.0)), 0.25);
        assert_eq!(n.load.availability(secs(25.0)), 1.0);
        // Other nodes untouched.
        assert_eq!(g.node(NodeId(1)).load.availability(secs(15.0)), 1.0);
    }

    #[test]
    fn outage_zeroes_window() {
        let mut g = testbed_small3();
        FaultPlan::new()
            .outage(NodeId(2), secs(1.0), secs(2.0))
            .apply(&mut g);
        assert_eq!(g.node(NodeId(2)).load.availability(secs(1.5)), 0.0);
        assert_eq!(g.node(NodeId(2)).load.availability(secs(2.5)), 1.0);
    }

    #[test]
    fn crash_is_permanent() {
        let mut g = testbed_small3();
        FaultPlan::new().crash(NodeId(1), secs(30.0)).apply(&mut g);
        let n = g.node(NodeId(1));
        assert_eq!(n.load.availability(secs(29.0)), 1.0);
        assert_eq!(n.load.availability(secs(31.0)), 0.0);
        assert_eq!(n.load.availability(secs(1e6)), 0.0);
    }

    #[test]
    fn slowdown_respects_underlying_model() {
        // Base availability 0.1 is *below* the 0.5 cap: min() keeps 0.1.
        let mut g = testbed_small3();
        g.set_load(NodeId(0), LoadModel::constant(0.1));
        FaultPlan::new()
            .slowdown(NodeId(0), secs(0.0), secs(10.0), 0.5)
            .apply(&mut g);
        assert_eq!(g.node(NodeId(0)).load.availability(secs(5.0)), 0.1);
    }

    #[test]
    fn faults_compose() {
        let mut g = testbed_small3();
        FaultPlan::new()
            .slowdown(NodeId(0), secs(0.0), secs(10.0), 0.5)
            .outage(NodeId(0), secs(2.0), secs(4.0))
            .apply(&mut g);
        let n = g.node(NodeId(0));
        assert_eq!(n.load.availability(secs(1.0)), 0.5);
        assert_eq!(n.load.availability(secs(3.0)), 0.0);
        assert_eq!(n.load.availability(secs(5.0)), 0.5);
        assert_eq!(n.load.availability(secs(11.0)), 1.0);
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let mut g = testbed_small3();
        let before = g.node(NodeId(0)).load.availability(secs(1.0));
        FaultPlan::new().apply(&mut g);
        assert_eq!(g.node(NodeId(0)).load.availability(secs(1.0)), before);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_window_panics() {
        let _ = FaultPlan::new().outage(NodeId(0), secs(5.0), secs(1.0));
    }

    #[test]
    fn rewrite_load_matches_apply() {
        let plan = FaultPlan::new()
            .slowdown(NodeId(0), secs(0.0), secs(10.0), 0.5)
            .outage(NodeId(0), secs(2.0), secs(4.0));
        let mut g = testbed_small3();
        let direct = plan.rewrite_load(NodeId(0), g.node(NodeId(0)).load.clone());
        plan.apply(&mut g);
        for t in [1.0, 3.0, 5.0, 11.0] {
            assert_eq!(
                direct.availability(secs(t)),
                g.node(NodeId(0)).load.availability(secs(t))
            );
        }
        // Untargeted nodes pass through unchanged.
        let other = plan.rewrite_load(NodeId(1), LoadModel::constant(0.7));
        assert_eq!(other.availability(secs(3.0)), 0.7);
    }

    #[test]
    fn down_intervals_merge_and_ignore_slowdowns() {
        let plan = FaultPlan::new()
            .slowdown(NodeId(0), secs(0.0), secs(100.0), 0.1)
            .outage(NodeId(0), secs(10.0), secs(20.0))
            .outage(NodeId(0), secs(15.0), secs(25.0))
            .crash(NodeId(0), secs(50.0));
        let ivs = plan.down_intervals(NodeId(0));
        assert_eq!(ivs.len(), 2, "overlapping outages merge: {ivs:?}");
        assert_eq!(ivs[0], (secs(10.0), secs(25.0)));
        assert_eq!(ivs[1].0, secs(50.0));
        assert_eq!(ivs[1].1, FOREVER);
        assert!(plan.down_intervals(NodeId(1)).is_empty());
    }

    #[test]
    fn downtime_clamps_to_horizon() {
        let plan = FaultPlan::new()
            .outage(NodeId(1), secs(10.0), secs(20.0))
            .crash(NodeId(1), secs(30.0));
        let dt = plan.downtime(3, secs(40.0));
        assert_eq!(dt.len(), 3);
        assert_eq!(dt[0], SimDuration::ZERO);
        // 10 s of outage + 10 s of crash tail within the 40 s horizon.
        assert!((dt[1].as_secs_f64() - 20.0).abs() < 1e-9);
        assert_eq!(dt[2], SimDuration::ZERO);
        // A horizon before the first fault accrues nothing.
        assert_eq!(plan.downtime(3, secs(5.0))[1], SimDuration::ZERO);
    }

    #[test]
    fn merge_appends_in_order() {
        let a = FaultPlan::new().crash(NodeId(0), secs(1.0));
        let b = FaultPlan::new().outage(NodeId(1), secs(2.0), secs(3.0));
        let merged = a.merge(&b);
        assert_eq!(merged.faults().len(), 2);
        assert_eq!(merged.max_node(), Some(NodeId(1)));
        assert_eq!(FaultPlan::new().max_node(), None);
    }
}
