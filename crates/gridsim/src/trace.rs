//! Run recording: time series, throughput timelines, utilisation.
//!
//! Experiments consume these records to print the figure series; nothing
//! here affects simulation behaviour.

use crate::time::{SimDuration, SimTime};

/// An append-only `(time, value)` series.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample. Samples must be recorded in non-decreasing time
    /// order.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be recorded in order");
        }
        self.points.push((t, v));
    }

    /// The recorded samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Arithmetic mean of the values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Minimum value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min(v),
            })
        })
    }

    /// Maximum value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }
}

/// Buckets completion events into fixed windows and reports the rate per
/// window — the "throughput over time" series of figures F1/F6.
#[derive(Clone, Debug)]
pub struct ThroughputTimeline {
    window: SimDuration,
    counts: Vec<u64>,
}

impl ThroughputTimeline {
    /// Creates a timeline with the given bucket width.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "bucket width must be positive");
        ThroughputTimeline {
            window,
            counts: Vec::new(),
        }
    }

    /// Records one completion at `t`.
    pub fn record(&mut self, t: SimTime) {
        self.record_n(t, 1);
    }

    /// Records `n` completions at `t` with one bucket update — the
    /// batched form sinks use when a whole envelope of items lands in
    /// the same instant (the bucket index is computed once, not per
    /// item).
    pub fn record_n(&mut self, t: SimTime, n: u64) {
        let bucket = (t.as_nanos() / self.window.as_nanos()) as usize;
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += n;
    }

    /// The bucket width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Throughput per bucket as `(bucket_midpoint_time, items_per_second)`.
    pub fn series(&self) -> Vec<(SimTime, f64)> {
        let w = self.window.as_secs_f64();
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let mid = SimTime::from_nanos(
                    i as u64 * self.window.as_nanos() + self.window.as_nanos() / 2,
                );
                (mid, c as f64 / w)
            })
            .collect()
    }

    /// Total completions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Accumulates per-entity busy time to report utilisation.
#[derive(Clone, Debug, Default)]
pub struct UtilisationMeter {
    busy: SimDuration,
}

impl UtilisationMeter {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a busy interval.
    pub fn add_busy(&mut self, span: SimDuration) {
        self.busy = self.busy.saturating_add(span);
    }

    /// Total busy time.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Utilisation over a horizon: `busy / horizon`, clamped to `[0, 1]`.
    pub fn utilisation(&self, horizon: SimDuration) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        (self.busy.as_secs_f64() / horizon.as_secs_f64()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn series_tracks_stats() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(secs(0.0), 2.0);
        s.push(secs(1.0), 4.0);
        s.push(secs(2.0), 6.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
    }

    #[test]
    fn empty_series_has_no_stats() {
        let s = TimeSeries::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new();
        s.push(secs(2.0), 1.0);
        s.push(secs(1.0), 1.0);
    }

    #[test]
    fn throughput_buckets_completions() {
        let mut tl = ThroughputTimeline::new(SimDuration::from_secs(10));
        for t in [1.0, 2.0, 3.0, 11.0, 25.0] {
            tl.record(secs(t));
        }
        let series = tl.series();
        assert_eq!(series.len(), 3);
        assert!((series[0].1 - 0.3).abs() < 1e-12); // 3 items / 10 s
        assert!((series[1].1 - 0.1).abs() < 1e-12);
        assert!((series[2].1 - 0.1).abs() < 1e-12);
        assert_eq!(series[0].0, secs(5.0));
        assert_eq!(tl.total(), 5);
    }

    #[test]
    fn empty_timeline_has_empty_series() {
        let tl = ThroughputTimeline::new(SimDuration::from_secs(1));
        assert!(tl.series().is_empty());
        assert_eq!(tl.total(), 0);
    }

    #[test]
    fn utilisation_is_busy_over_horizon() {
        let mut u = UtilisationMeter::new();
        u.add_busy(SimDuration::from_secs(3));
        u.add_busy(SimDuration::from_secs(2));
        assert!((u.utilisation(SimDuration::from_secs(10)) - 0.5).abs() < 1e-12);
        assert_eq!(u.utilisation(SimDuration::ZERO), 0.0);
        assert_eq!(u.busy(), SimDuration::from_secs(5));
    }
}
