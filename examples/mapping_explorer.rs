//! Mapping explorer: how network quality and processor load move the
//! optimal stage-to-processor mapping.
//!
//! For a 3-stage pipeline on 3 processors this prints, for each grid
//! condition, the model-optimal mapping and its predicted throughput —
//! the decision table the adaptive pattern consults internally.
//!
//! Run with: `cargo run --release --example mapping_explorer`

use adapipe::prelude::*;

fn main() {
    // One work unit per stage; 1 MB items.
    let profile = PipelineProfile::uniform(vec![1.0, 1.0, 1.0], 1 << 20);

    struct Case {
        label: &'static str,
        link: LinkSpec,
        rates: [f64; 3],
    }
    let cases = [
        Case {
            label: "fast LAN, equal nodes",
            link: LinkSpec::lan(),
            rates: [1.0, 1.0, 1.0],
        },
        Case {
            label: "fast LAN, node 2 busy (25%)",
            link: LinkSpec::lan(),
            rates: [1.0, 1.0, 0.25],
        },
        Case {
            label: "WAN links, equal nodes",
            link: LinkSpec::wan(),
            rates: [1.0, 1.0, 1.0],
        },
        Case {
            label: "slow WAN, equal nodes",
            link: LinkSpec::slow_wan(),
            rates: [1.0, 1.0, 1.0],
        },
        Case {
            label: "slow WAN, node 2 is 4x faster",
            link: LinkSpec::slow_wan(),
            rates: [1.0, 1.0, 4.0],
        },
    ];

    println!("== optimal mapping of a 3-stage pipeline onto 3 processors ==\n");
    println!(
        "{:<32} {:>18} {:>12} {:>10}",
        "grid condition", "best mapping", "tput (it/s)", "groups"
    );
    for case in &cases {
        let topology = Topology::uniform(3, case.link);
        let best = plan(&profile, &case.rates, &topology, &PlannerConfig::default());
        println!(
            "{:<32} {:>18} {:>12.3} {:>10}",
            case.label,
            best.mapping.notation(),
            best.prediction.throughput,
            best.mapping.nodes_used().len(),
        );
    }

    println!("\nReading the table: on an even grid the planner spreads the");
    println!("stages (one per node). When a node loses capacity it farms the");
    println!("affected stage over the survivors ({{...}} sets), and when one");
    println!("node dominates in speed it concentrates and replicates work");
    println!("there — exactly the trade-offs the adaptive pattern");
    println!("re-evaluates every monitoring period.");
}
