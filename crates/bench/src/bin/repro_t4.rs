//! Table 4 — forecaster accuracy per background-load class.
//!
//! Every forecaster family observes availability samples (1 Hz) from
//! every load-model class and is scored on one-step-ahead mean absolute
//! error. The NWS-style ensemble should track the best member in every
//! class — that is the justification for using dynamic predictor
//! selection in the controller.

use adapipe_bench::{banner, Table};
use adapipe_gridsim::prelude::*;
use adapipe_monitor::prelude::*;

fn load_classes() -> Vec<(&'static str, LoadModel)> {
    vec![
        ("constant", LoadModel::constant(0.7)),
        (
            "step",
            LoadModel::step(1.0, 0.3, SimTime::from_secs_f64(300.0)),
        ),
        (
            "square60",
            LoadModel::square_wave(1.0, 0.2, SimDuration::from_secs(60), 0.5, SimDuration::ZERO),
        ),
        (
            "sinusoid",
            LoadModel::sinusoid(0.6, 0.35, SimDuration::from_secs(120), 32),
        ),
        (
            "walk",
            LoadModel::random_walk(
                5,
                0.8,
                0.05,
                SimDuration::from_secs(2),
                0.2,
                1.0,
                SimDuration::from_secs(600),
            ),
        ),
        (
            "markov",
            LoadModel::markov_on_off(
                9,
                SimDuration::from_secs(60),
                SimDuration::from_secs(20),
                0.25,
                SimDuration::from_secs(1200),
            ),
        ),
    ]
}

fn forecasters(window: usize) -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(LastValue::new()),
        Box::new(RunningMean::new()),
        Box::new(SlidingMean::new(window)),
        Box::new(SlidingMedian::new(window)),
        Box::new(Ewma::new(0.3)),
        Box::new(AdaptiveEwma::new(0.05, 0.9)),
        Box::new(Ensemble::nws_default(window)),
    ]
}

fn main() {
    banner(
        "T4",
        "one-step-ahead forecaster MAE by load class (1 Hz sampling, 600 s)",
        "persistence wins on slow dynamics, the median on spiky ones; the \
         NWS ensemble is at or near the best member in every class",
    );

    let window = 16;
    let names: Vec<&'static str> = forecasters(window).iter().map(|f| f.name()).collect();
    let mut headers = vec!["class"];
    headers.extend(names.iter().copied());
    let mut table = Table::new(&headers);

    for (class, model) in load_classes() {
        let mut row = vec![class.to_string()];
        let mut maes: Vec<f64> = Vec::new();
        for mut forecaster in forecasters(window) {
            let mut errors = ErrorStats::new();
            for step in 0..600u64 {
                let t = step as f64;
                let value = model.availability(SimTime::from_secs_f64(t));
                if let Some(pred) = forecaster.predict() {
                    errors.record(pred, value);
                }
                forecaster.observe(t, value);
            }
            maes.push(errors.mae().unwrap_or(f64::NAN));
        }
        let best = maes
            .iter()
            .take(maes.len() - 1) // exclude the ensemble itself
            .cloned()
            .fold(f64::INFINITY, f64::min);
        for (i, mae) in maes.iter().enumerate() {
            let marker = if *mae <= best + 1e-12 && i < maes.len() - 1 {
                "*"
            } else {
                ""
            };
            row.push(format!("{mae:.4}{marker}"));
        }
        table.row(row);
    }
    table.print();
    println!("* = best individual member; the ensemble column should sit close to it");
}
