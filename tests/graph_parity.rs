//! Stage-graph acceptance suite.
//!
//! Three contracts are pinned here:
//!
//! 1. **Strict generalisation** — a linear pipeline expressed through an
//!    explicit [`StageGraph::linear`] reproduces the pre-refactor
//!    planner decision and the pre-refactor `RunReport` exactly (the
//!    graph machinery must not perturb the chain case by a bit);
//! 2. **Cross-backend branch parity** — the same branched scenario run
//!    on `Backend::Sim` and `Backend::Threads` yields item-identical
//!    merged outputs, including under mid-stream loss of a node hosting
//!    one branch (zero lost items, forced re-map excluding the dead
//!    node, at-least-once replay with branch identity on the events);
//! 3. **General DAGs + resilience** — an explicitly wired diamond
//!    (`Pipeline::dag()`) produces item-identical outputs on both
//!    backends, per-stage retry/dead-letter policies are accounted
//!    identically in the `RunReport` (poison items diverted with the
//!    same attempt counts, transient faults absorbed with zero dead
//!    letters), and mis-wired declarations fail `build()` with typed
//!    errors instead of panicking mid-run.

use adapipe::prelude::*;
use std::time::Duration;

fn n(i: usize) -> NodeId {
    NodeId(i)
}

// --- 1. linear pipelines are the degenerate graph ----------------------

#[test]
fn linear_graph_reproduces_pre_refactor_planner_decision() {
    let stages = || {
        vec![
            StageSpec::balanced("a", 2.0, 20_000),
            StageSpec::balanced("b", 1.0, 5_000),
            StageSpec::balanced("c", 3.0, 20_000),
            StageSpec::balanced("d", 0.5, 1_000),
        ]
    };
    let implicit = PipelineSpec::new(stages());
    let explicit = PipelineSpec::with_graph(stages(), StageGraph::linear(4));

    let grid = testbed_hetero8(42);
    let rates = grid.rates_at(SimTime::ZERO);
    let cfg = PlannerConfig::default();
    let plan_implicit = plan(&implicit.profile(), &rates, grid.topology(), &cfg);
    let plan_explicit = plan(&explicit.profile(), &rates, grid.topology(), &cfg);
    assert_eq!(plan_implicit.mapping, plan_explicit.mapping);
    assert_eq!(
        plan_implicit.prediction.throughput.to_bits(),
        plan_explicit.prediction.throughput.to_bits()
    );
    assert_eq!(
        plan_implicit.prediction.latency.to_bits(),
        plan_explicit.prediction.latency.to_bits()
    );
    assert_eq!(plan_implicit.strategy, plan_explicit.strategy);
}

#[test]
fn linear_graph_reproduces_pre_refactor_run_report_on_fixed_seed() {
    use adapipe::core::simengine::{run, SimConfig};
    let stages = || {
        vec![
            StageSpec::balanced("a", 1.0, 10_000),
            StageSpec::balanced("b", 1.0, 10_000),
            StageSpec::balanced("c", 1.0, 10_000),
            StageSpec::balanced("d", 1.0, 10_000),
        ]
    };
    let mut implicit = PipelineSpec::new(stages());
    implicit.input_bytes = 10_000;
    let mut explicit = PipelineSpec::with_graph(stages(), StageGraph::linear(4));
    explicit.input_bytes = 10_000;

    let grid = testbed_hetero8(42);
    let cfg = SimConfig {
        items: 250,
        policy: Policy::periodic_default(),
        observation_noise: 0.05,
        noise_seed: 1234,
        ..SimConfig::default()
    };
    let a = run(&grid, &implicit, &cfg);
    let b = run(&grid, &explicit, &cfg);
    assert_eq!(a.completed, b.completed);
    assert_eq!(
        a.makespan, b.makespan,
        "graph machinery perturbed the chain"
    );
    assert_eq!(a.mean_latency, b.mean_latency);
    assert_eq!(a.final_mapping, b.final_mapping);
    assert_eq!(a.adaptations.len(), b.adaptations.len());
    assert_eq!(a.planning_cycles, b.planning_cycles);
    assert_eq!(a.replays, b.replays);
}

// --- 2. branched scenarios agree across backends ------------------------

/// Fast stages feed a deliberately slow thumbnail branch, so a backlog
/// piles up behind it (the fault test kills its host mid-backlog).
const FAST_SECS: f64 = 0.002;
const SLOW_SECS: f64 = 0.008;
const ITEMS: u64 = 150;

/// decode → (analyze ‖ thumbnail) → combine, with real per-item spin so
/// the threaded backend exercises genuine concurrency. Flattened stage
/// ids: decode=0, analyze=1, thumbnail=2, combine=3.
fn branched_scenario(policy: Policy) -> Pipeline<u64, u64> {
    let spin = |secs: f64, x: u64| {
        spin_for(Duration::from_secs_f64(secs));
        x
    };
    Pipeline::<u64>::builder()
        .stage_with(
            StageSpec::balanced("decode", FAST_SECS, 8),
            move |x: u64| spin(FAST_SECS, x) + 1,
        )
        .parallel(vec![
            Branch::new().stage_with(
                StageSpec::balanced("analyze", FAST_SECS, 8),
                move |x: u64| spin(FAST_SECS, x) * 10,
            ),
            Branch::new().stage_with(
                StageSpec::balanced("thumbnail", SLOW_SECS, 8),
                move |x: u64| spin(SLOW_SECS, x) + 100,
            ),
        ])
        .merge_with(
            StageSpec::balanced("combine", FAST_SECS, 8),
            |outs: Vec<u64>| outs[0] + outs[1],
        )
        .policy(policy)
        .build()
        .expect("branched scenario builds")
}

fn expected_outputs() -> Vec<u64> {
    (0..ITEMS).map(|x| (x + 1) * 10 + (x + 1) + 100).collect()
}

fn scenario_grid() -> GridSpec {
    let nodes = (0..3)
        .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
        .collect();
    GridSpec::new(nodes, Topology::uniform(3, LinkSpec::local()))
}

fn scenario_vnodes() -> Vec<VNodeSpec> {
    (0..3).map(|i| VNodeSpec::free(format!("v{i}"))).collect()
}

fn push_all_and_drain(
    pipeline: Pipeline<u64, u64>,
    backend: Backend<'_>,
    cfg: RunConfig,
) -> RunHandle<u64> {
    let mut session = pipeline.spawn(backend, cfg).expect("spawn");
    for i in 0..ITEMS {
        session.push(i).unwrap();
    }
    session.drain()
}

#[test]
fn branched_outputs_are_item_identical_across_backends() {
    let cfg = || RunConfig {
        items: ITEMS,
        ..RunConfig::default()
    };
    let grid = scenario_grid();
    let sim = push_all_and_drain(
        branched_scenario(Policy::Static),
        Backend::Sim(&grid),
        cfg(),
    );
    let threaded = push_all_and_drain(
        branched_scenario(Policy::Static),
        Backend::Threads(scenario_vnodes()),
        cfg(),
    );
    assert_eq!(sim.report.completed, ITEMS);
    assert_eq!(threaded.report.completed, ITEMS);
    assert!(sim.error.is_none() && threaded.error.is_none());
    assert_eq!(sim.outputs, expected_outputs(), "sim outputs drifted");
    assert_eq!(
        threaded.outputs, sim.outputs,
        "backends disagree on merged outputs"
    );
}

#[test]
fn losing_a_branch_host_mid_stream_is_survived_identically() {
    // Stage hosts: decode→n0, analyze→n0, thumbnail→n1, combine→n2;
    // n1 — the thumbnail branch's only host — dies at 0.15 s with a
    // deep backlog queued. Both backends must mark it down, force a
    // re-map excluding it, replay the stranded branch items, and lose
    // nothing.
    let mapping = Mapping::new(vec![
        Placement::single(n(0)),
        Placement::single(n(0)),
        Placement::single(n(1)),
        Placement::single(n(2)),
    ]);
    let faults = FaultPlan::new().crash(n(1), SimTime::from_secs_f64(0.15));
    let policy = Policy::Periodic {
        interval: SimDuration::from_millis(100),
    };
    let cfg = || RunConfig {
        items: ITEMS,
        initial_mapping: Some(mapping.clone()),
        faults: faults.clone(),
        ..RunConfig::default()
    };

    let grid = scenario_grid();
    let run_one = |backend: Backend<'_>| {
        let events = {
            let pipeline = branched_scenario(policy);
            let mut session = pipeline.spawn(backend, cfg()).expect("spawn");
            let events = session.events();
            for i in 0..ITEMS {
                session.push(i).unwrap();
            }
            (session.drain(), events)
        };
        events
    };
    let (sim, sim_events) = run_one(Backend::Sim(&grid));
    let (threaded, threaded_events) = run_one(Backend::Threads(scenario_vnodes()));

    for (tag, handle) in [("sim", &sim), ("threads", &threaded)] {
        assert_eq!(handle.report.completed, ITEMS, "{tag}: items lost");
        assert!(!handle.report.truncated, "{tag}: truncated");
        assert!(handle.error.is_none(), "{tag}: {:?}", handle.error);
        assert!(
            !handle.report.final_mapping.nodes_used().contains(&n(1)),
            "{tag}: dead node still mapped: {}",
            handle.report.final_mapping
        );
        assert!(handle.report.replays > 0, "{tag}: backlog must replay");
        assert!(
            handle.report.node_downtime[1] > SimDuration::ZERO,
            "{tag}: downtime unreported"
        );
    }
    assert_eq!(sim.outputs, expected_outputs());
    assert_eq!(
        threaded.outputs, sim.outputs,
        "backends disagree on merged outputs after the crash"
    );

    // Both event streams observed the death, and every replay of the
    // thumbnail stage carries its branch identity (block 0, branch 1).
    for (tag, events) in [("sim", sim_events), ("threads", threaded_events)] {
        let seen: Vec<_> = events.try_iter().collect();
        assert!(
            seen.iter()
                .any(|e| matches!(e, RunEvent::NodeDown { node: 1, .. })),
            "{tag}: NodeDown unseen"
        );
        let mut replayed_thumbnail = 0;
        for event in &seen {
            if let RunEvent::ItemReplayed { stage, branch, .. } = event {
                if *stage == 2 {
                    assert_eq!(
                        *branch,
                        Some((0, 1)),
                        "{tag}: replay lost its branch identity"
                    );
                    replayed_thumbnail += 1;
                }
            }
        }
        assert!(
            replayed_thumbnail > 0,
            "{tag}: no thumbnail-branch replays observed"
        );
    }
}

// --- 3. structural validation at build() --------------------------------

#[test]
fn parallel_block_structure_is_validated_typed() {
    let one_branch = Pipeline::<u64>::builder()
        .stage("pre", |x: u64| x)
        .parallel(vec![Branch::new().stage("only", |x: u64| x)])
        .merge("join", |outs: Vec<u64>| outs[0])
        .build();
    assert!(matches!(
        one_branch.unwrap_err(),
        BuildError::TooFewBranches { block: 0 }
    ));

    let empty_branch = Pipeline::<u64>::builder()
        .stage("pre", |x: u64| x)
        .parallel(vec![Branch::new().stage("a", |x: u64| x), Branch::new()])
        .merge("join", |outs: Vec<u64>| outs[0])
        .build();
    assert!(matches!(
        empty_branch.unwrap_err(),
        BuildError::EmptyBranch { block: 0 }
    ));

    // Duplicate names across branches are caught like any duplicate.
    let dup = Pipeline::<u64>::builder()
        .parallel(vec![
            Branch::new().stage("same", |x: u64| x),
            Branch::new().stage("same", |x: u64| x),
        ])
        .merge("join", |outs: Vec<u64>| outs[0])
        .build();
    assert!(matches!(
        dup.unwrap_err(),
        BuildError::DuplicateStage { .. }
    ));
}

// --- 4. general DAG topologies + per-stage resilience --------------------

/// The diamond from the README: fetch ─┬─ parse ─┐
///                                     └─ audit ─┴─ combine → sink
/// with real per-item spin, expressed through the explicit DAG builder
/// (named nodes + edges + a two-input join) rather than the
/// series-parallel sugar. Flattened ids: fetch=0, parse=1, audit=2,
/// combine=3, sink=4.
fn diamond_scenario() -> Pipeline<u64, u64> {
    let spin = |secs: f64, x: u64| {
        spin_for(Duration::from_secs_f64(secs));
        x
    };
    Pipeline::<u64>::dag()
        .node_with(StageSpec::balanced("fetch", FAST_SECS, 8), move |x: u64| {
            spin(FAST_SECS, x) + 1
        })
        .node_with(StageSpec::balanced("parse", FAST_SECS, 8), move |x: u64| {
            spin(FAST_SECS, x) * 10
        })
        .node_with(StageSpec::balanced("audit", SLOW_SECS, 8), move |x: u64| {
            spin(SLOW_SECS, x) + 100
        })
        .edge("fetch", "parse")
        .edge("fetch", "audit")
        .join_with(
            StageSpec::balanced("combine", FAST_SECS, 8),
            |outs: Vec<u64>| outs[0] + outs[1],
            &["parse", "audit"],
        )
        .node("sink", |x: u64| x)
        .edge("combine", "sink")
        .build::<u64>()
        .expect("diamond DAG builds")
}

#[test]
fn diamond_dag_outputs_are_item_identical_across_backends() {
    let cfg = || RunConfig {
        items: ITEMS,
        ..RunConfig::default()
    };
    let grid = scenario_grid();
    let sim = push_all_and_drain(diamond_scenario(), Backend::Sim(&grid), cfg());
    let threaded = push_all_and_drain(
        diamond_scenario(),
        Backend::Threads(scenario_vnodes()),
        cfg(),
    );
    assert_eq!(sim.report.completed, ITEMS);
    assert_eq!(threaded.report.completed, ITEMS);
    assert!(sim.error.is_none() && threaded.error.is_none());
    // Same arithmetic as the sugar-built branched scenario: the explicit
    // topology must not change what the items compute.
    assert_eq!(sim.outputs, expected_outputs(), "sim DAG outputs drifted");
    assert_eq!(
        threaded.outputs, sim.outputs,
        "backends disagree on DAG outputs"
    );
}

#[test]
fn dag_expressed_chain_matches_chain_builder_outputs() {
    let chain = Pipeline::<u64>::builder()
        .stage("a", |x: u64| x + 1)
        .stage("b", |x: u64| x * 3)
        .stage("c", |x: u64| x + 7)
        .build()
        .expect("chain builds");
    let dag = Pipeline::<u64>::dag()
        .node("a", |x: u64| x + 1)
        .node("b", |x: u64| x * 3)
        .node("c", |x: u64| x + 7)
        .edge("a", "b")
        .edge("b", "c")
        .build::<u64>()
        .expect("linear DAG builds");
    let grid = scenario_grid();
    let cfg = || RunConfig {
        items: 40,
        ..RunConfig::default()
    };
    let run = |p: Pipeline<u64, u64>| {
        let mut session = p.spawn(Backend::Sim(&grid), cfg()).expect("spawn");
        for i in 0..40 {
            session.push(i).unwrap();
        }
        session.drain()
    };
    let a = run(chain);
    let b = run(dag);
    assert_eq!(
        a.outputs,
        (0..40).map(|x| (x + 1) * 3 + 7).collect::<Vec<_>>()
    );
    assert_eq!(b.outputs, a.outputs, "DAG-expressed chain diverged");
}

const POISON_ITEMS: u64 = 50;

/// decode → fragile (rejects every value ending in 4, i.e. inputs
/// `x % 10 == 3`) → emit, with a retry budget of two and a dead-letter
/// channel. 5 of the 50 items are poison.
fn poison_scenario() -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage("decode", |x: u64| x + 1)
        .try_stage("fragile", |v: u64| {
            if v % 10 == 4 {
                Err(format!("indigestible payload {v}"))
            } else {
                Ok(v)
            }
        })
        .resilience(
            ResiliencePolicy::new()
                .retries(2)
                .backoff(SimDuration::from_millis(1), 2.0)
                .dead_letter(),
        )
        .stage("emit", |v: u64| v * 2)
        .build()
        .expect("poison scenario builds")
}

#[test]
fn poison_items_dead_letter_identically_across_backends() {
    let cfg = || RunConfig {
        items: POISON_ITEMS,
        ..RunConfig::default()
    };
    let run = |pipeline: Pipeline<u64, u64>, backend: Backend<'_>| {
        let mut session = pipeline.spawn(backend, cfg()).expect("spawn");
        for i in 0..POISON_ITEMS {
            session.push(i).unwrap();
        }
        session.drain()
    };
    let grid = scenario_grid();
    let sim = run(poison_scenario(), Backend::Sim(&grid));
    let threaded = run(poison_scenario(), Backend::Threads(scenario_vnodes()));

    let healthy: Vec<u64> = (0..POISON_ITEMS)
        .filter(|x| x % 10 != 3)
        .map(|x| (x + 1) * 2)
        .collect();
    for (tag, handle) in [("sim", &sim), ("threads", &threaded)] {
        let report = &handle.report;
        assert!(handle.error.is_none(), "{tag}: {:?}", handle.error);
        // Healthy items complete exactly once, in order; poison items
        // are diverted, not lost and not delivered.
        assert_eq!(report.completed, POISON_ITEMS - 5, "{tag}: completions");
        assert_eq!(handle.outputs, healthy, "{tag}: healthy outputs");
        assert_eq!(report.dead_letters, 5, "{tag}: dead-letter count");
        assert_eq!(report.retries, 10, "{tag}: 5 poison items × 2 retries");
        assert_eq!(report.dead_letter_log.len(), 5, "{tag}: log length");
        for dead in &report.dead_letter_log {
            assert_eq!(dead.stage, 1, "{tag}: wrong stage in {dead:?}");
            assert_eq!(dead.attempts, 3, "{tag}: first try + 2 retries");
            assert_eq!(dead.seq % 10, 3, "{tag}: wrong item diverted: {dead:?}");
            assert!(
                dead.reason.contains("indigestible"),
                "{tag}: reason lost: {dead:?}"
            );
        }
    }
    // The logs agree entry-for-entry once ordered by item.
    let sorted = |handle: &RunHandle<u64>| {
        let mut log = handle.report.dead_letter_log.clone();
        log.sort_by_key(|d| d.seq);
        log
    };
    assert_eq!(
        sorted(&sim),
        sorted(&threaded),
        "backends disagree on the dead-letter log"
    );
}

#[test]
fn diamond_with_dead_letters_agrees_across_backends() {
    // The diamond again, but parse is fallible: records whose payload
    // ends in 4 (5 of 50) fail every attempt and dead-letter after the
    // retry budget; their audit-branch copies must be purged from the
    // join on both backends, healthy items must come out exactly once,
    // and the resilience accounting must be identical.
    let scenario = || {
        Pipeline::<u64>::dag()
            .node("fetch", |x: u64| x + 1)
            .try_node("parse", |v: u64| {
                if v % 10 == 4 {
                    Err(format!("indigestible payload {v}"))
                } else {
                    Ok(v * 10)
                }
            })
            .resilience(
                ResiliencePolicy::new()
                    .retries(2)
                    .backoff(SimDuration::from_millis(1), 2.0)
                    .dead_letter(),
            )
            .node("audit", |v: u64| v + 100)
            .edge("fetch", "parse")
            .edge("fetch", "audit")
            .join(
                "combine",
                |outs: Vec<u64>| outs[0] + outs[1],
                &["parse", "audit"],
            )
            .node("sink", |x: u64| x)
            .edge("combine", "sink")
            .build::<u64>()
            .expect("fallible diamond builds")
    };
    let cfg = || RunConfig {
        items: POISON_ITEMS,
        ..RunConfig::default()
    };
    let run = |pipeline: Pipeline<u64, u64>, backend: Backend<'_>| {
        let mut session = pipeline.spawn(backend, cfg()).expect("spawn");
        for i in 0..POISON_ITEMS {
            session.push(i).unwrap();
        }
        session.drain()
    };
    let grid = scenario_grid();
    let sim = run(scenario(), Backend::Sim(&grid));
    let threaded = run(scenario(), Backend::Threads(scenario_vnodes()));

    let healthy: Vec<u64> = (0..POISON_ITEMS)
        .map(|x| x + 1)
        .filter(|v| v % 10 != 4)
        .map(|v| v * 10 + v + 100)
        .collect();
    for (tag, handle) in [("sim", &sim), ("threads", &threaded)] {
        let report = &handle.report;
        assert!(
            handle.error.is_none(),
            "{tag}: session must complete, not error: {:?}",
            handle.error
        );
        assert_eq!(report.completed, POISON_ITEMS - 5, "{tag}: completions");
        assert_eq!(handle.outputs, healthy, "{tag}: healthy merged outputs");
        assert_eq!(report.dead_letters, 5, "{tag}: dead-letter count");
        assert_eq!(report.retries, 10, "{tag}: 5 poison items × 2 retries");
        for dead in &report.dead_letter_log {
            assert_eq!(dead.stage, 1, "{tag}: only parse gives up");
            assert_eq!(dead.attempts, 3, "{tag}: first try + 2 retries");
        }
    }
    let sorted = |handle: &RunHandle<u64>| {
        let mut log = handle.report.dead_letter_log.clone();
        log.sort_by_key(|d| d.seq);
        log
    };
    assert_eq!(
        sorted(&sim),
        sorted(&threaded),
        "backends disagree on the diamond's dead-letter log"
    );
}

#[test]
fn transient_failures_recover_with_retries_and_zero_dead_letters() {
    use std::collections::HashSet;
    use std::sync::{Arc, Mutex};

    // Every value fails its first presentation and succeeds on retry —
    // a transient fault, fully absorbed by a one-retry budget.
    let scenario = || {
        let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
        Pipeline::<u64>::builder()
            .stage("pre", |x: u64| x + 1)
            .try_stage("flaky", move |v: u64| {
                if seen.lock().unwrap().insert(v) {
                    Err("transient glitch".to_string())
                } else {
                    Ok(v)
                }
            })
            .resilience(ResiliencePolicy::new().retries(1))
            .stage("post", |v: u64| v * 2)
            .build()
            .expect("transient scenario builds")
    };
    let cfg = || RunConfig {
        items: POISON_ITEMS,
        ..RunConfig::default()
    };
    let run = |pipeline: Pipeline<u64, u64>, backend: Backend<'_>| {
        let mut session = pipeline.spawn(backend, cfg()).expect("spawn");
        for i in 0..POISON_ITEMS {
            session.push(i).unwrap();
        }
        session.drain()
    };
    let grid = scenario_grid();
    let sim = run(scenario(), Backend::Sim(&grid));
    let threaded = run(scenario(), Backend::Threads(scenario_vnodes()));

    let expected: Vec<u64> = (0..POISON_ITEMS).map(|x| (x + 1) * 2).collect();
    for (tag, handle) in [("sim", &sim), ("threads", &threaded)] {
        assert!(handle.error.is_none(), "{tag}: {:?}", handle.error);
        assert_eq!(handle.report.completed, POISON_ITEMS, "{tag}: items lost");
        assert_eq!(handle.report.retries, POISON_ITEMS, "{tag}: one retry each");
        assert_eq!(handle.report.dead_letters, 0, "{tag}: nothing diverted");
        assert!(handle.report.dead_letter_log.is_empty(), "{tag}: log dirty");
        assert_eq!(handle.outputs, expected, "{tag}: outputs");
    }
}

#[test]
fn exhausted_retries_without_dead_letter_poison_the_run() {
    let pipeline = Pipeline::<u64>::builder()
        .stage("decode", |x: u64| x + 1)
        .try_stage("fragile", |v: u64| {
            if v == 3 {
                Err("unrecoverable".to_string())
            } else {
                Ok(v)
            }
        })
        .resilience(ResiliencePolicy::new().retries(1))
        .build()
        .expect("builds");
    let grid = scenario_grid();
    let mut session = pipeline
        .spawn(
            Backend::Sim(&grid),
            RunConfig {
                items: 10,
                ..RunConfig::default()
            },
        )
        .expect("spawn");
    for i in 0..10 {
        session.push(i).unwrap();
    }
    let handle = session.drain();
    match handle.error {
        Some(RunError::PoisonItem {
            ref stage,
            seq,
            attempts,
            ..
        }) => {
            assert_eq!(stage, "fragile");
            assert_eq!(seq, 2, "item 2 decodes to the poison value 3");
            assert_eq!(attempts, 2, "first try + one retry");
        }
        ref other => panic!("expected PoisonItem, got {other:?}"),
    }
}

#[test]
fn dag_wiring_errors_are_typed_at_build() {
    let unknown = Pipeline::<u64>::dag()
        .node("fetch", |x: u64| x)
        .edge("fetch", "nope")
        .build::<u64>();
    assert!(
        matches!(unknown.unwrap_err(), BuildError::UnknownStage { ref name } if name == "nope")
    );

    let cycle = Pipeline::<u64>::dag()
        .node("a", |x: u64| x)
        .node("b", |x: u64| x)
        .node("c", |x: u64| x)
        .node("d", |x: u64| x)
        .edge("a", "b")
        .edge("b", "c")
        .edge("c", "b")
        .edge("b", "d")
        .build::<u64>();
    assert!(matches!(
        cycle.unwrap_err(),
        BuildError::GraphCycle { ref stage } if stage == "b"
    ));

    let orphan = Pipeline::<u64>::dag()
        .node("a", |x: u64| x)
        .node("b", |x: u64| x)
        .node("orphan", |x: u64| x)
        .edge("a", "b")
        .build::<u64>();
    assert!(matches!(
        orphan.unwrap_err(),
        BuildError::UnreachableStage { ref stage } if stage == "orphan"
    ));

    let self_edge = Pipeline::<u64>::dag()
        .node("a", |x: u64| x)
        .node("b", |x: u64| x)
        .edge("a", "a")
        .edge("a", "b")
        .build::<u64>();
    assert!(matches!(
        self_edge.unwrap_err(),
        BuildError::InvalidEdge { .. }
    ));

    let duplicate_edge = Pipeline::<u64>::dag()
        .node("a", |x: u64| x)
        .node("b", |x: u64| x)
        .edge("a", "b")
        .edge("a", "b")
        .build::<u64>();
    assert!(matches!(
        duplicate_edge.unwrap_err(),
        BuildError::InvalidEdge { .. }
    ));

    let two_exits = Pipeline::<u64>::dag()
        .node("a", |x: u64| x)
        .node("b", |x: u64| x)
        .node("c", |x: u64| x)
        .edge("a", "b")
        .edge("a", "c")
        .build::<u64>();
    assert!(matches!(
        two_exits.unwrap_err(),
        BuildError::InvalidEdge { .. }
    ));

    let narrow_join = Pipeline::<u64>::dag()
        .node("a", |x: u64| x)
        .join("j", |outs: Vec<u64>| outs[0], &["a"])
        .build::<u64>();
    assert!(matches!(
        narrow_join.unwrap_err(),
        BuildError::InvalidEdge { .. }
    ));

    let dup_name = Pipeline::<u64>::dag()
        .node("same", |x: u64| x)
        .node("same", |x: u64| x)
        .edge("same", "same")
        .build::<u64>();
    assert!(matches!(
        dup_name.unwrap_err(),
        BuildError::DuplicateStage { .. }
    ));
}

#[test]
fn per_branch_replica_caps_flow_into_the_profile() {
    let pipeline = Pipeline::<u64>::builder()
        .parallel(vec![
            Branch::new()
                .stage_replicated("wide", |x: u64| x, 8)
                .replicas(2), // branch cap tightens the stage's own bound
            Branch::new().stage("free", |x: u64| x),
        ])
        .merge("join", |outs: Vec<u64>| outs[0])
        .build()
        .expect("valid");
    let profile = pipeline.spec().profile();
    assert_eq!(profile.replica_cap[0], 2, "branch cap must win");
    assert_eq!(profile.replica_cap[1], usize::MAX);
}
