//! Figure 5 — sensitivity to the monitoring and adaptation knobs.
//!
//! Re-runs the Figure-1 load-step scenario sweeping (a) the adaptation
//! interval and (b) the forecaster observation window, reporting
//! adaptive makespan for each setting. Expectations: very long
//! intervals react too slowly; very long windows dilute the step signal;
//! and there is a broad plateau of good settings in between (the pattern
//! is not fragile).

use adapipe_bench::{banner, Table};
use adapipe_core::prelude::*;
use adapipe_core::simengine::run as sim_run;
use adapipe_gridsim::prelude::*;
use adapipe_mapper::prelude::*;

fn scenario_grid() -> GridSpec {
    let nodes = (0..4)
        .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
        .collect();
    let mut grid = GridSpec::new(nodes, Topology::uniform(4, LinkSpec::lan()));
    FaultPlan::new()
        .slowdown(
            NodeId(1),
            SimTime::from_secs_f64(60.0),
            SimTime::from_secs_f64(1e6),
            0.15,
        )
        .apply(&mut grid);
    grid
}

fn main() {
    banner(
        "F5",
        "knob sensitivity: adaptation interval x observation window (10% sensor noise)",
        "a broad plateau of good settings: the NWS ensemble de-sensitises \
         the window choice (it switches to whatever member fits), and only \
         extreme intervals (>> step timescale) degrade",
    );

    let spec = PipelineSpec::balanced(4, 1.0, 10_000);
    let mapping = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    let items = 400u64;

    // Static baseline for reference.
    let static_r = sim_run(
        &scenario_grid(),
        &spec,
        &SimConfig {
            items,
            initial_mapping: Some(mapping.clone()),
            ..SimConfig::default()
        },
    );
    println!("static baseline: {:.1}s\n", static_r.makespan.as_secs_f64());

    let intervals = [1u64, 2, 5, 10, 30, 60];
    let windows = [2usize, 4, 8, 16, 64];

    let mut headers: Vec<String> = vec!["interval(s) \\ window".to_string()];
    headers.extend(windows.iter().map(|w| format!("w={w}")));
    let mut table = Table::new(&headers.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    for &interval_s in &intervals {
        let mut row = vec![interval_s.to_string()];
        for &window in &windows {
            let mut cfg = SimConfig {
                items,
                policy: Policy::Periodic {
                    interval: SimDuration::from_secs(interval_s),
                },
                initial_mapping: Some(mapping.clone()),
                observation_noise: 0.10,
                noise_seed: 7,
                ..SimConfig::default()
            };
            cfg.controller.monitor_window = window;
            let report = sim_run(&scenario_grid(), &spec, &cfg);
            row.push(format!("{:.1}", report.makespan.as_secs_f64()));
        }
        table.row(row);
    }
    table.print();
    println!("cells: adaptive makespan in seconds (lower is better)");
}
