//! Multi-tenant cluster semantics, cross-backend: many concurrent
//! sessions on one shared node pool must (1) keep per-tenant
//! exactly-once output isolation when a shared node dies mid-stream,
//! (2) surface the same typed lifecycle errors on both backends, and
//! (3) enforce admission rules (quota validity, per-session fault
//! rejection, sim-pool oversubscription).

use adapipe::prelude::*;
use std::time::Duration;

fn n(i: usize) -> NodeId {
    NodeId(i)
}

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

const STAGE_SECS: f64 = 0.004;
const ITEMS: u64 = 60;

fn grid3() -> GridSpec {
    testbed_small3()
}

fn vnodes3() -> Vec<VNodeSpec> {
    (0..3).map(|i| VNodeSpec::free(format!("v{i}"))).collect()
}

/// A two-stage spinning pipeline; `bump` differentiates tenants so each
/// session's outputs are distinguishable.
fn tenant_pipeline(bump: u64) -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("a", STAGE_SECS, 8), move |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + bump
        })
        .stage_with(StageSpec::balanced("b", STAGE_SECS, 8), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + 1
        })
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(100),
        })
        .build()
        .expect("tenant pipeline builds")
}

fn tenant_cfg() -> RunConfig {
    RunConfig {
        items: ITEMS,
        initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1)])),
        ..RunConfig::default()
    }
}

/// Node 1 crashes at t = 0.25 s — mid-stream on either clock — and the
/// pool-wide plan applies to every tenant at the same instants.
fn crash_plan() -> FaultPlan {
    FaultPlan::new().crash(n(1), secs(0.25))
}

/// Satellite: cross-tenant fault isolation. Three concurrent sessions
/// share the pool; a shared node dies mid-stream; every tenant must
/// independently replay its stranded items and keep exactly-once
/// observable output — no tenant loses items, no tenant sees another's.
fn assert_chaos_isolation(backend: Backend<'_>, tag: &str) {
    let mut cluster = Cluster::new(
        backend,
        ClusterConfig {
            faults: crash_plan(),
            ..ClusterConfig::default()
        },
    )
    .expect("cluster launches");
    let events = cluster.events();

    let quota = ShareQuota::bounded(0.0, 1.0 / 3.0);
    let mut sessions = Vec::new();
    for t in 0..3u64 {
        let session = cluster
            .admit(
                tenant_pipeline(10 * (t + 1)),
                SessionConfig {
                    run: tenant_cfg(),
                    quota,
                },
            )
            .expect("tenant admitted");
        sessions.push(session);
    }
    let ids: Vec<SessionId> = sessions.iter().map(|s| s.session_id()).collect();
    assert_eq!(cluster.sessions(), ids, "{tag}: admission order ids");

    // Interleave the tenants' pushes so the crash lands mid-stream for
    // all of them.
    for i in 0..ITEMS {
        for session in sessions.iter_mut() {
            session.push(i).unwrap();
        }
    }
    for (t, session) in sessions.into_iter().enumerate() {
        let bump = 10 * (t as u64 + 1) + 1;
        let handle = session.drain();
        assert_eq!(
            handle.report.completed, ITEMS,
            "{tag}: tenant {t} lost items to the shared crash"
        );
        assert!(!handle.report.truncated, "{tag}: tenant {t} truncated");
        assert_eq!(handle.error, None, "{tag}: tenant {t} errored");
        if matches!(handle.outputs.len(), 0) {
            // Sim backend yields real outputs too; both backends land here.
            panic!("{tag}: tenant {t} returned no outputs");
        }
        let expect: Vec<u64> = (0..ITEMS).map(|x| x + bump).collect();
        assert_eq!(
            handle.outputs, expect,
            "{tag}: tenant {t} outputs not exactly-once in order"
        );
    }

    // The merged event stream observed the shared outage, tagged per
    // tenant; replay events (if the crash stranded in-flight items) may
    // only name admitted sessions.
    let mut node_down = 0usize;
    for event in events.try_iter() {
        match event {
            RunEvent::NodeDown { node, session, .. } => {
                assert_eq!(node, 1, "{tag}: wrong node reported down");
                assert!(ids.contains(&session), "{tag}: unknown session in event");
                node_down += 1;
            }
            RunEvent::ItemReplayed { session, .. } => {
                assert!(ids.contains(&session), "{tag}: replay for unknown session");
            }
            _ => {}
        }
    }
    assert!(node_down > 0, "{tag}: shared crash never observed");
}

#[test]
fn shared_node_crash_keeps_every_tenant_exactly_once_sim() {
    let grid = grid3();
    assert_chaos_isolation(Backend::Sim(&grid), "sim");
}

#[test]
fn shared_node_crash_keeps_every_tenant_exactly_once_threads() {
    assert_chaos_isolation(Backend::Threads(vnodes3()), "threads");
}

/// Satellite: typed lifecycle errors. A closed session rejects pushes
/// with `RunError::SessionClosed` on both backends.
fn assert_closed_push_rejected(backend: Backend<'_>, tag: &str) {
    let mut session = tenant_pipeline(1)
        .spawn(backend, RunConfig::default())
        .expect("session spawns");
    session.push(0).unwrap();
    session.close();
    assert_eq!(
        session.push(1),
        Err(RunError::SessionClosed),
        "{tag}: push after close"
    );
    assert_eq!(
        session.push_batch(2..4),
        Err(RunError::SessionClosed),
        "{tag}: push_batch after close"
    );
    let handle = session.drain();
    assert_eq!(handle.report.completed, 1, "{tag}: admitted item lost");
}

#[test]
fn closed_session_rejects_pushes_typed_sim() {
    let grid = grid3();
    assert_closed_push_rejected(Backend::Sim(&grid), "sim");
}

#[test]
fn closed_session_rejects_pushes_typed_threads() {
    assert_closed_push_rejected(Backend::Threads(vnodes3()), "threads");
}

/// Graceful eviction: pushes fail typed while in-flight items drain to
/// a complete, untruncated report — on both backends.
fn assert_graceful_eviction(backend: Backend<'_>, tag: &str) {
    let mut cluster = Cluster::new(backend, ClusterConfig::default()).expect("cluster launches");
    let mut session = cluster
        .admit(
            tenant_pipeline(1),
            SessionConfig {
                run: RunConfig {
                    items: 10,
                    ..RunConfig::default()
                },
                quota: ShareQuota::default(),
            },
        )
        .expect("tenant admitted");
    let id = session.session_id();
    for i in 0..10 {
        session.push(i).unwrap();
    }
    assert!(cluster.evict(id), "{tag}: eviction of a live tenant");
    assert!(!cluster.evict(SessionId(999)), "{tag}: unknown id evicted");
    assert_eq!(
        session.push(10),
        Err(RunError::Evicted { session: id }),
        "{tag}: push after graceful evict"
    );
    let handle = session.drain();
    assert_eq!(handle.report.completed, 10, "{tag}: in-flight items lost");
    assert!(!handle.report.truncated, "{tag}: graceful evict truncated");
}

#[test]
fn graceful_eviction_drains_in_flight_items_sim() {
    let grid = grid3();
    assert_graceful_eviction(Backend::Sim(&grid), "sim");
}

#[test]
fn graceful_eviction_drains_in_flight_items_threads() {
    assert_graceful_eviction(Backend::Threads(vnodes3()), "threads");
}

/// Forced eviction: the run fails with the typed error and the report
/// comes back truncated — on both backends.
fn assert_forced_eviction(backend: Backend<'_>, tag: &str) {
    let mut cluster = Cluster::new(backend, ClusterConfig::default()).expect("cluster launches");
    let mut session = cluster
        .admit(
            tenant_pipeline(1),
            SessionConfig {
                run: RunConfig {
                    items: ITEMS,
                    ..RunConfig::default()
                },
                quota: ShareQuota::default(),
            },
        )
        .expect("tenant admitted");
    let id = session.session_id();
    for i in 0..ITEMS {
        session.push(i).unwrap();
    }
    assert!(cluster.evict_now(id), "{tag}: forced eviction");
    assert_eq!(
        session.error(),
        Some(RunError::Evicted { session: id }),
        "{tag}: forced eviction error"
    );
    assert!(
        !cluster.sessions().contains(&id),
        "{tag}: evicted tenant still listed"
    );
    let handle = session.drain();
    assert_eq!(
        handle.error,
        Some(RunError::Evicted { session: id }),
        "{tag}: drain after forced eviction"
    );
    assert!(
        handle.report.truncated || handle.report.completed == ITEMS,
        "{tag}: report neither truncated nor complete"
    );
}

#[test]
fn forced_eviction_fails_the_run_typed_sim() {
    let grid = grid3();
    assert_forced_eviction(Backend::Sim(&grid), "sim");
}

#[test]
fn forced_eviction_fails_the_run_typed_threads() {
    assert_forced_eviction(Backend::Threads(vnodes3()), "threads");
}

/// Admission rules: malformed quotas, per-session fault plans, and
/// (sim) oversubscribed static shares are rejected with typed errors.
#[test]
fn admission_rejects_bad_quota_faults_and_oversubscription() {
    let grid = grid3();
    let mut cluster = Cluster::new(Backend::Sim(&grid), ClusterConfig::default()).unwrap();

    let bad_quota = cluster.admit(
        tenant_pipeline(1),
        SessionConfig {
            run: RunConfig::default(),
            quota: ShareQuota {
                min_share: 0.8,
                max_share: 0.2,
                weight: 1.0,
            },
        },
    );
    assert!(matches!(bad_quota, Err(BuildError::InvalidQuota { .. })));

    let per_session_faults = cluster.admit(
        tenant_pipeline(1),
        SessionConfig {
            run: RunConfig {
                faults: crash_plan(),
                ..RunConfig::default()
            },
            quota: ShareQuota::default(),
        },
    );
    assert!(matches!(
        per_session_faults,
        Err(BuildError::PerSessionFaults)
    ));

    // Ceilings may not oversubscribe the sim pool: 0.7 + 0.5 > 1.
    let first = cluster
        .admit(
            tenant_pipeline(1),
            SessionConfig {
                run: RunConfig::default(),
                quota: ShareQuota::bounded(0.0, 0.7),
            },
        )
        .expect("first tenant fits");
    let over = cluster.admit(
        tenant_pipeline(2),
        SessionConfig {
            run: RunConfig::default(),
            quota: ShareQuota::bounded(0.0, 0.5),
        },
    );
    assert!(matches!(over, Err(BuildError::PoolOversubscribed { .. })));

    // Releasing the first tenant frees its grant.
    drop(first.abort());
    cluster
        .admit(
            tenant_pipeline(2),
            SessionConfig {
                run: RunConfig::default(),
                quota: ShareQuota::bounded(0.0, 0.5),
            },
        )
        .expect("share released after the first tenant ended");
}

/// Sim cluster capacity semantics: a tenant granted half the pool takes
/// about twice as long as one owning it, and two equal co-tenants
/// produce identical (deterministic) reports.
#[test]
fn sim_static_shares_stretch_service_deterministically() {
    let grid = grid3();

    let solo = tenant_pipeline(1)
        .run(
            Backend::Sim(&grid),
            RunConfig {
                items: ITEMS,
                ..RunConfig::default()
            },
        )
        .expect("solo run")
        .report;

    let mut cluster = Cluster::new(Backend::Sim(&grid), ClusterConfig::default()).unwrap();
    let mut tenants = Vec::new();
    for _ in 0..2 {
        let mut session = cluster
            .admit(
                tenant_pipeline(1),
                SessionConfig {
                    run: RunConfig {
                        items: ITEMS,
                        ..RunConfig::default()
                    },
                    quota: ShareQuota::bounded(0.5, 0.5),
                },
            )
            .expect("tenant admitted");
        for i in 0..ITEMS {
            session.push(i).unwrap();
        }
        tenants.push(session);
    }
    let reports: Vec<RunReport> = tenants.into_iter().map(|s| s.drain().report).collect();
    for (t, report) in reports.iter().enumerate() {
        assert_eq!(report.completed, ITEMS, "tenant {t} lost items");
        let ratio = report.makespan.as_secs_f64() / solo.makespan.as_secs_f64();
        assert!(
            (1.6..=2.4).contains(&ratio),
            "tenant {t}: half-share makespan ratio {ratio:.2} not ~2x solo"
        );
    }
    assert_eq!(
        reports[0].makespan, reports[1].makespan,
        "equal co-tenants diverged — sim cluster lost determinism"
    );
}
