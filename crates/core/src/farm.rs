//! The task-farm skeleton, expressed through the adaptive pipeline.
//!
//! Gonzalez-Velez & Cole's adaptive-structured-parallelism line treats
//! *pipeline* and *farm* as the two workhorse skeletons, and their
//! composition ("pipelines of farms") as the common application shape.
//! In this implementation a farm **is** a one-stage pipeline whose stage
//! is stateless — the planner's replication pass then spreads it over as
//! many nodes as pay off, and all of the adaptation machinery (monitor,
//! forecast, re-map, hysteresis) applies unchanged.
//!
//! This module provides the conveniences that make that composition
//! pleasant: farm construction from a worker function, and farm-stage
//! insertion into a longer pipeline.

use crate::pipeline::{Pipeline, PipelineBuilder};
use crate::spec::{PipelineSpec, StageSpec};
use adapipe_runtime::session::BuildError;
use adapipe_state::StateCodec;

/// Builds a task farm: a single stateless stage intended for replication
/// across grid nodes.
///
/// `spec` carries the cost metadata (work per item, output size); the
/// planner decides the replication width at run time, bounded by
/// `PlannerConfig::max_width`.
///
/// ```
/// use adapipe_core::farm::farm;
/// use adapipe_core::spec::StageSpec;
///
/// let f = farm(StageSpec::balanced("render", 4.0, 1 << 20), |scene: u64| scene * 2)
///     .expect("stateless worker");
/// assert_eq!(f.len(), 1);
/// ```
///
/// # Errors
/// Returns [`BuildError::StatefulFarm`] when `spec` carries state the
/// replication pass cannot split — *opaque* (undeclared) or *exclusive*
/// state. A spec with **declared keyed state** builds: the farm then
/// runs shard-per-worker through [`farm_keyed`]'s machinery, which is
/// the API to reach for when the worker actually needs the managed
/// per-key state. (Historically any statefulness was a
/// construction-time panic; it is now typed, consistent with the
/// unified builder's other validations.)
pub fn farm<I, O, F>(spec: StageSpec, worker: F) -> Result<Pipeline<I, O>, BuildError>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send + Clone + 'static,
{
    if !spec.state.replicable() {
        return Err(BuildError::StatefulFarm {
            stage: spec.name.clone(),
        });
    }
    if spec.stateless {
        Ok(PipelineBuilder::<I>::new().stage(spec, worker).build())
    } else {
        // Declared replicable state (keyed/accumulator) with a plain
        // worker function: the worker holds no managed state, but the
        // declaration legitimately bounds width and routing, so build
        // the stage as a replicable closure under the declared spec.
        let name = spec.name.clone();
        let stage = Box::new(crate::stage::FnStage::new(name, worker));
        Ok(PipelineBuilder::<I>::new()
            .erased_stage::<O>(spec, stage, None)
            .build())
    }
}

/// Builds a task farm over *declared keyed state*: items hash to shards
/// by `key`, each worker replica owns a shard set, and `f` processes an
/// item with mutable access to its key's state `S`. This is the
/// shard-per-worker farm: the planner replicates the stage up to the
/// declared shard count, and shards migrate with their owners.
///
/// # Errors
/// Returns [`BuildError::StatefulFarm`] when `spec` does not declare
/// keyed state (`with_keyed_state`): an undeclared-stateful farm worker
/// still cannot be replicated.
pub fn farm_keyed<I, O, S, K, F>(
    spec: StageSpec,
    key: K,
    init: impl Fn() -> S + Send + Sync + 'static,
    f: F,
) -> Result<Pipeline<I, O>, BuildError>
where
    I: Send + 'static,
    O: Send + 'static,
    S: StateCodec + Send + 'static,
    K: Fn(&I) -> u64 + Send + Sync + 'static,
    F: FnMut(&mut S, I) -> O + Send + Clone + 'static,
{
    if spec.state.shards() == 0 {
        return Err(BuildError::StatefulFarm {
            stage: spec.name.clone(),
        });
    }
    Ok(PipelineBuilder::<I>::new()
        .keyed_stage(spec, key, init, f)
        .build())
}

/// The simulation-side counterpart: a one-stage [`PipelineSpec`] with
/// the given per-item work and output size.
pub fn farm_spec(work: f64, bytes: u64) -> PipelineSpec {
    let mut spec = PipelineSpec::new(vec![StageSpec::balanced("farm", work, bytes)]);
    spec.input_bytes = bytes;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::simengine::{run, SimConfig};
    use adapipe_gridsim::grid::GridSpec;
    use adapipe_gridsim::load::LoadModel;
    use adapipe_gridsim::net::{LinkSpec, Topology};
    use adapipe_gridsim::node::{Node, NodeSpec};
    use adapipe_gridsim::time::SimDuration;

    fn uniform_grid(np: usize) -> GridSpec {
        let nodes = (0..np)
            .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
            .collect();
        GridSpec::new(nodes, Topology::uniform(np, LinkSpec::lan()))
    }

    #[test]
    fn farm_is_a_one_stage_pipeline() {
        let f = farm(StageSpec::balanced("w", 1.0, 8), |x: u32| x + 1).expect("stateless");
        assert_eq!(f.len(), 1);
        assert!(f.spec().profile().stateless[0]);
    }

    #[test]
    fn simulated_farm_scales_with_nodes() {
        // 1 unit of work per item; the planner may replicate up to 8 wide.
        let spec = farm_spec(1.0, 1_000);
        let items = 200u64;
        let mut makespans = Vec::new();
        for np in [1usize, 2, 4, 8] {
            let mut cfg = SimConfig {
                items,
                ..SimConfig::default()
            };
            cfg.controller.planner.max_width = 8;
            let report = run(&uniform_grid(np), &spec, &cfg);
            assert_eq!(report.completed, items);
            makespans.push(report.makespan.as_secs_f64());
        }
        // Farm throughput scales near-linearly: 8 nodes ≥ 6x faster than 1.
        let speedup = makespans[0] / makespans[3];
        assert!(speedup > 6.0, "8-node farm speedup {speedup:.2}");
        // And monotone in between.
        assert!(makespans.windows(2).all(|w| w[1] <= w[0] * 1.01));
    }

    #[test]
    fn adaptive_farm_survives_worker_loss() {
        use adapipe_gridsim::fault::FaultPlan;
        use adapipe_gridsim::node::NodeId;
        use adapipe_gridsim::time::SimTime;

        let mut grid = uniform_grid(4);
        FaultPlan::new()
            .crash(NodeId(2), SimTime::from_secs_f64(20.0))
            .apply(&mut grid);
        let spec = farm_spec(1.0, 0);
        let mut cfg = SimConfig {
            items: 300,
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            ..SimConfig::default()
        };
        cfg.controller.planner.max_width = 4;
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 300, "farm must re-spread after the crash");
        assert!(report.adaptation_count() >= 1);
        assert!(!report.final_mapping.placement(0).contains(NodeId(2)));
    }

    #[test]
    fn declared_keyed_farm_builds_shard_per_worker() {
        // Satellite of the state subsystem: a *declared* keyed spec is
        // replicable, so the farm builds instead of erroring.
        let f = farm::<u32, u32, _>(
            StageSpec::balanced("w", 1.0, 0).with_keyed_state(4, 256),
            |x| x + 1,
        )
        .expect("declared keyed state is farmable");
        let profile = f.spec().profile();
        assert!(profile.stateless[0], "keyed farms replicate");
        assert_eq!(profile.replica_cap, vec![4], "one shard per worker max");
    }

    #[test]
    fn keyed_farm_counts_per_key() {
        let f = farm_keyed(
            StageSpec::balanced("sessions", 1.0, 8).with_keyed_state(2, 64),
            |k: &u64| *k,
            || 0u64,
            |n: &mut u64, k: u64| {
                *n += 1;
                (k, *n)
            },
        )
        .expect("declared keyed farm builds");
        assert_eq!(f.len(), 1);
        assert!(f.keys()[0].is_some(), "keyed farm carries its router key");
        let (_, mut stages, _, _) = f.into_keyed_parts();
        let run = |s: &mut Box<dyn crate::stage::DynStage>, k: u64| {
            s.process(crate::payload::Payload::new(k))
                .expect("typed")
                .downcast::<(u64, u64)>()
                .unwrap()
        };
        assert_eq!(run(&mut stages[0], 5), (5, 1));
        assert_eq!(run(&mut stages[0], 5), (5, 2));
        assert_eq!(run(&mut stages[0], 6), (6, 1));
    }

    #[test]
    fn undeclared_keyed_farm_is_still_a_typed_error() {
        let err = match farm_keyed::<u64, u64, u64, _, _>(
            StageSpec::balanced("w", 1.0, 0).with_state(64),
            |k: &u64| *k,
            || 0u64,
            |_: &mut u64, k: u64| k,
        ) {
            Err(err) => err,
            Ok(_) => panic!("opaque state cannot farm"),
        };
        assert_eq!(err, BuildError::StatefulFarm { stage: "w".into() });
    }

    #[test]
    fn stateful_farm_worker_is_a_typed_error() {
        use adapipe_runtime::session::BuildError;
        let err = match farm::<u32, u32, _>(StageSpec::balanced("w", 1.0, 0).with_state(64), |x| x)
        {
            Err(err) => err,
            Ok(_) => panic!("stateful farm must be rejected"),
        };
        assert_eq!(err, BuildError::StatefulFarm { stage: "w".into() });
        assert!(err.to_string().contains("'w'"));
    }
}
