//! Stage graphs: the shape of a pipeline, as a general DAG.
//!
//! Historically the stage topology was implicit — a pipeline *was* a
//! `Vec` of stages, and every layer (model, planner, engines) hard-coded
//! the chain `0 → 1 → … → Ns−1`. PR 5 made the shape explicit as a
//! series of [`Segment`]s (chains and parallel blocks). A [`StageGraph`]
//! is now a **true directed acyclic graph** over flattened stage ids:
//! every stage has an ordered predecessor list (a stage with several
//! predecessors *joins* their outputs, one slot per input edge) and an
//! ordered successor list (a stage with several consumers *fans out* a
//! copy of its output to each). The chain and parallel-block builders
//! are sugar over the DAG: a graph built through them additionally
//! carries its series-parallel [`Segment`] view, and every navigation
//! query answers exactly what it answered before — linear and
//! series-parallel pipelines stay byte-identical.
//!
//! Two derived groupings drive the engines:
//!
//! * **fan blocks** — the fan-out points: the pipeline input when it
//!   feeds several entry stages, and every stage with two or more
//!   successors. Numbered with the entry fan-out first (when present),
//!   then by source stage id — which reproduces the parallel-block
//!   numbering exactly on sugar-built graphs, so the facade's one
//!   duplicator-per-block arrays index unchanged.
//! * **join blocks** — the stages with two or more predecessors, in id
//!   order. On sugar-built graphs these are precisely the merge stages
//!   in block order.
//!
//! The graph answers the questions the other layers ask:
//!
//! * the model: which directed edges carry data, and what is the
//!   latency-critical path ([`StageGraph::feed_of`],
//!   [`StageGraph::topo_order`]);
//! * the engines: where does an item go after finishing a stage
//!   ([`StageGraph::after`], [`StageGraph::entry`],
//!   [`StageGraph::fan_targets`]);
//! * observability: which branch a stage belongs to
//!   ([`StageGraph::branch_of`]), stage fan-in/fan-out degrees.
//!
//! Explicit DAGs are built with [`StageGraph::dag`] → [`DagGraphBuilder`]
//! and validated with typed [`GraphError`]s (cycles, unreachable stages,
//! mis-wired edges) instead of panics — the facade maps these onto its
//! `BuildError`s.

/// One series element of a series-parallel [`StageGraph`] view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Segment {
    /// Stages `start..end` in series.
    Chain {
        /// First stage of the run.
        start: usize,
        /// One past the last stage of the run.
        end: usize,
    },
    /// A parallel block: each item fans out to every branch (a
    /// contiguous stage span `start..end`), and the branch results fan
    /// back in at the `merge` stage, which follows the last branch
    /// directly in flattened order.
    Parallel {
        /// Branch stage spans `(start, end)`, in branch order.
        branches: Vec<(usize, usize)>,
        /// The merge stage combining one output per branch into one
        /// item.
        merge: usize,
    },
}

/// Where an item goes after finishing a stage (or entering the
/// pipeline).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Next {
    /// Forward to this stage.
    Stage(usize),
    /// Fan out: one copy to every target of fan block `block` (see
    /// [`StageGraph::fan_targets`]).
    FanOut {
        /// Index of the fan block (parallel block on sugar graphs).
        block: usize,
    },
    /// The finished stage feeds one input slot of a joining stage: its
    /// output waits for the join's other inputs.
    Join {
        /// Index of the join block (parallel block on sugar graphs).
        block: usize,
        /// Input slot within the join (branch index on sugar graphs).
        branch: usize,
    },
    /// The finished stage was the last: the item is a pipeline output.
    Done,
}

/// What feeds a stage its input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feed {
    /// The pipeline input (stage is an entry point).
    Source,
    /// The output of one upstream stage.
    Stage(usize),
    /// The joined outputs of several predecessors, in input-slot order
    /// (branch order on sugar graphs).
    Merge(Vec<usize>),
}

/// One target of a fan block: the consuming stage, plus the join input
/// slot when the consumer joins several inputs (a producer may feed one
/// slot of a downstream join directly).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FanTarget {
    /// The consuming stage.
    pub stage: usize,
    /// `Some(slot)` when the consumer is a joining stage and this copy
    /// fills input slot `slot`; `None` for a single-input consumer.
    pub slot: Option<usize>,
}

/// Typed validation errors of an explicitly wired DAG
/// ([`DagGraphBuilder::build`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no stages.
    Empty,
    /// An edge names a stage outside `0..stages`.
    StageOutOfRange {
        /// The offending stage id.
        stage: usize,
        /// The declared stage count.
        stages: usize,
    },
    /// An edge from a stage to itself.
    SelfEdge {
        /// The offending stage id.
        stage: usize,
    },
    /// The same edge was declared twice (a join takes each producer
    /// once; duplicate wiring is a mis-wire, not a wider join).
    DuplicateEdge {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
    },
    /// The edges contain a cycle through this stage.
    Cycle {
        /// A stage on the cycle.
        stage: usize,
    },
    /// A stage is not reachable from any entry stage.
    Unreachable {
        /// The unreachable stage.
        stage: usize,
    },
    /// More than one stage has no consumer; a pipeline has one output.
    MultipleExits {
        /// The stages with no outgoing edge.
        exits: Vec<usize>,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no stages"),
            GraphError::StageOutOfRange { stage, stages } => {
                write!(f, "edge names stage {stage}, but only {stages} exist")
            }
            GraphError::SelfEdge { stage } => write!(f, "stage {stage} feeds itself"),
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "edge {from} → {to} declared twice")
            }
            GraphError::Cycle { stage } => {
                write!(f, "edges form a cycle through stage {stage}")
            }
            GraphError::Unreachable { stage } => {
                write!(f, "stage {stage} is unreachable from the pipeline input")
            }
            GraphError::MultipleExits { exits } => {
                write!(f, "several stages have no consumer: {exits:?}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// One fan-out point of the graph.
#[derive(Clone, Debug, PartialEq, Eq)]
struct FanBlock {
    /// The producing stage; `None` for the pipeline-input fan-out.
    source: Option<usize>,
    /// The consumers, in edge order (branch order on sugar graphs).
    targets: Vec<FanTarget>,
}

/// The DAG shape of a pipeline over flattened stage ids `0..len()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageGraph {
    stages: usize,
    /// The series-parallel segment view — present exactly when the
    /// graph was built through the chain/parallel sugar, and the basis
    /// of every byte-identical legacy code path.
    segments: Option<Vec<Segment>>,
    /// Ordered predecessors per stage (join input slots).
    preds: Vec<Vec<usize>>,
    /// Ordered successors per stage (fan-out copies).
    succs: Vec<Vec<usize>>,
    /// A deterministic topological order of the stage ids (Kahn,
    /// smallest-id-first). The identity on sugar graphs.
    topo: Vec<usize>,
    /// Entry stages (no predecessor), in id order.
    entries: Vec<usize>,
    /// The single exit stage (no successor).
    exit: usize,
    /// Fan-out points: entry fan-out first (when the input feeds
    /// several entries), then multi-consumer stages by id.
    fan_blocks: Vec<FanBlock>,
    /// Per-stage fan block index (`Some` for multi-consumer stages).
    fan_block_of: Vec<Option<usize>>,
    /// Join stages (≥ 2 predecessors), in id order: join block → stage.
    join_stages: Vec<usize>,
    /// Per-stage join block index (`Some` for joining stages).
    join_block_of: Vec<Option<usize>>,
}

impl StageGraph {
    /// The degenerate graph: `ns` stages in one chain — exactly the
    /// historical linear pipeline.
    ///
    /// # Panics
    /// Panics if `ns` is zero.
    pub fn linear(ns: usize) -> Self {
        assert!(ns > 0, "pipeline needs at least one stage");
        StageGraph::from_segments(vec![Segment::Chain { start: 0, end: ns }], ns)
    }

    /// Starts a series-parallel [`StageGraphBuilder`] (sugar over the
    /// DAG).
    pub fn builder() -> StageGraphBuilder {
        StageGraphBuilder {
            segments: Vec::new(),
            cursor: 0,
        }
    }

    /// Starts an explicit [`DagGraphBuilder`] over `ns` stages wired by
    /// id-addressed edges.
    pub fn dag(ns: usize) -> DagGraphBuilder {
        DagGraphBuilder {
            stages: ns,
            edges: Vec::new(),
        }
    }

    /// Builds the canonical DAG arrays from a validated segment list.
    #[allow(clippy::needless_range_loop)] // `s` walks spans of `preds`, not one slice
    fn from_segments(segments: Vec<Segment>, stages: usize) -> Self {
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); stages];
        // `prev` = the stage whose output feeds the next series element.
        let mut prev: Option<usize> = None;
        for seg in &segments {
            match seg {
                Segment::Chain { start, end } => {
                    for s in *start..*end {
                        if s == *start {
                            if let Some(p) = prev {
                                preds[s].push(p);
                            }
                        } else {
                            preds[s].push(s - 1);
                        }
                    }
                    prev = Some(end - 1);
                }
                Segment::Parallel { branches, merge } => {
                    for &(bs, be) in branches {
                        for s in bs..be {
                            if s == bs {
                                if let Some(p) = prev {
                                    preds[s].push(p);
                                }
                            } else {
                                preds[s].push(s - 1);
                            }
                        }
                        preds[*merge].push(be - 1);
                    }
                    prev = Some(*merge);
                }
            }
        }
        StageGraph::from_preds(Some(segments), stages, preds)
            .expect("series-parallel segments always form a valid DAG")
    }

    /// Builds the canonical form from ordered predecessor lists; the
    /// shared tail of both builders. Successor order follows target-id
    /// order for the sugar path and edge-declaration order for the DAG
    /// path (the builder pre-sorts accordingly by feeding preds in that
    /// order — see `DagGraphBuilder::build`).
    fn from_preds(
        segments: Option<Vec<Segment>>,
        stages: usize,
        preds: Vec<Vec<usize>>,
    ) -> Result<Self, GraphError> {
        if stages == 0 {
            return Err(GraphError::Empty);
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); stages];
        for (s, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p].push(s);
            }
        }
        // Kahn topological order, smallest ready id first: deterministic
        // and the identity permutation on sugar-built graphs.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(s, _)| std::cmp::Reverse(s))
            .collect();
        let mut topo = Vec::with_capacity(stages);
        while let Some(std::cmp::Reverse(s)) = ready.pop() {
            topo.push(s);
            for &t in &succs[s] {
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    ready.push(std::cmp::Reverse(t));
                }
            }
        }
        if topo.len() != stages {
            let stage = indeg.iter().position(|&d| d > 0).unwrap_or(0);
            return Err(GraphError::Cycle { stage });
        }
        let entries: Vec<usize> = (0..stages).filter(|&s| preds[s].is_empty()).collect();
        // Reachability: entry stages seed everything (an unreachable
        // stage would itself be an entry, so with edges all-reachable
        // follows — but a disconnected component shows up as extra
        // entries feeding a second exit; catch the exit case below and
        // treat an isolated never-consuming, never-producing island as
        // unreachable only when it cannot reach the exit).
        let exits: Vec<usize> = (0..stages).filter(|&s| succs[s].is_empty()).collect();
        if exits.len() > 1 {
            // A stage with no edges at all is a declared-but-unwired
            // island: report it as unreachable (the more actionable
            // diagnosis) when the rest of the graph has a unique exit.
            let isolated: Vec<usize> = exits
                .iter()
                .copied()
                .filter(|&s| preds[s].is_empty() && succs[s].is_empty())
                .collect();
            if exits.len() - isolated.len() == 1 {
                return Err(GraphError::Unreachable { stage: isolated[0] });
            }
            return Err(GraphError::MultipleExits { exits });
        }
        let exit = exits[0];
        // Every stage must lie on some input→exit path; since each
        // non-entry stage has a predecessor and each non-exit stage a
        // successor, walking backwards from the exit covers exactly the
        // stages that can influence the output.
        let mut on_path = vec![false; stages];
        let mut stack = vec![exit];
        while let Some(s) = stack.pop() {
            if on_path[s] {
                continue;
            }
            on_path[s] = true;
            stack.extend(preds[s].iter().copied());
        }
        if let Some(stage) = (0..stages).find(|&s| !on_path[s]) {
            return Err(GraphError::Unreachable { stage });
        }
        // Fan blocks: entry fan-out first, then multi-consumer stages
        // by id — reproducing parallel-block order on sugar graphs.
        let join_stages: Vec<usize> = (0..stages).filter(|&s| preds[s].len() >= 2).collect();
        let mut join_block_of = vec![None; stages];
        for (b, &s) in join_stages.iter().enumerate() {
            join_block_of[s] = Some(b);
        }
        let slot_of = |from: usize, to: usize| -> Option<usize> {
            if preds[to].len() >= 2 {
                Some(
                    preds[to]
                        .iter()
                        .position(|&p| p == from)
                        .expect("succ edge mirrors a pred edge"),
                )
            } else {
                None
            }
        };
        let mut fan_blocks = Vec::new();
        let mut fan_block_of = vec![None; stages];
        if entries.len() >= 2 {
            fan_blocks.push(FanBlock {
                source: None,
                targets: entries
                    .iter()
                    .map(|&e| FanTarget {
                        stage: e,
                        slot: None, // an entry has no predecessors
                    })
                    .collect(),
            });
        }
        for s in 0..stages {
            if succs[s].len() >= 2 {
                fan_block_of[s] = Some(fan_blocks.len());
                fan_blocks.push(FanBlock {
                    source: Some(s),
                    targets: succs[s]
                        .iter()
                        .map(|&t| FanTarget {
                            stage: t,
                            slot: slot_of(s, t),
                        })
                        .collect(),
                });
            }
        }
        Ok(StageGraph {
            stages,
            segments,
            preds,
            succs,
            topo,
            entries,
            exit,
            fan_blocks,
            fan_block_of,
            join_stages,
            join_block_of,
        })
    }

    /// Number of stages (flattened, merge stages included).
    #[allow(clippy::len_without_is_empty)] // a graph is never empty
    pub fn len(&self) -> usize {
        self.stages
    }

    /// True if the graph is a single chain — the historical pipeline
    /// shape. Every layer short-circuits to its pre-graph code path on
    /// this, so linear pipelines behave byte-identically to before.
    pub fn is_linear(&self) -> bool {
        self.entries == [0] && (0..self.stages.saturating_sub(1)).all(|s| self.succs[s] == [s + 1])
    }

    /// The series-parallel segment view, when this graph was built
    /// through the chain/parallel sugar; `None` for explicitly wired
    /// DAGs.
    pub fn as_segments(&self) -> Option<&[Segment]> {
        self.segments.as_deref()
    }

    /// The series segments in order.
    ///
    /// # Panics
    /// Panics on an explicitly wired DAG, which has no segment view —
    /// use [`StageGraph::as_segments`] where a DAG may reach.
    pub fn segments(&self) -> &[Segment] {
        self.as_segments()
            .expect("explicitly wired DAG has no series-parallel segment view")
    }

    /// Number of fan blocks (parallel blocks on sugar graphs): one
    /// duplicator is needed per fan block.
    pub fn blocks(&self) -> usize {
        self.fan_blocks.len()
    }

    /// Number of join blocks (equal to [`StageGraph::blocks`] on sugar
    /// graphs, independent on explicit DAGs).
    pub fn join_blocks(&self) -> usize {
        self.join_stages.len()
    }

    /// The targets of fan block `block`, in edge order: each carries
    /// the consuming stage and, when that consumer joins several
    /// inputs, the slot this copy fills.
    pub fn fan_targets(&self, block: usize) -> &[FanTarget] {
        &self.fan_blocks[block].targets
    }

    /// The producing stage of fan block `block`; `None` for the
    /// pipeline-input fan-out (the input feeds several entry stages).
    pub fn fan_source(&self, block: usize) -> Option<usize> {
        self.fan_blocks[block].source
    }

    /// Entry stages of every target of fan block `block`, in edge order
    /// (branch order on sugar graphs).
    pub fn branch_entries(&self, block: usize) -> Vec<usize> {
        self.fan_blocks[block]
            .targets
            .iter()
            .map(|t| t.stage)
            .collect()
    }

    /// Fan-out width of fan block `block`.
    pub fn branch_count(&self, block: usize) -> usize {
        // On sugar graphs every fan block pairs with the same-index
        // join block, so "branch count" and "join width" coincide; the
        // historical callers mean the join width of block's merge.
        self.fan_in(self.join_stages[block])
    }

    /// The joining stage of join block `block` (the merge stage on
    /// sugar graphs).
    pub fn merge_of(&self, block: usize) -> usize {
        self.join_stages[block]
    }

    /// Number of input slots `stage` joins (1 for ordinary stages).
    pub fn fan_in(&self, stage: usize) -> usize {
        self.preds[stage].len().max(1)
    }

    /// Ordered predecessors of `stage` (its join input slots).
    pub fn preds(&self, stage: usize) -> &[usize] {
        &self.preds[stage]
    }

    /// Ordered successors of `stage` (its fan-out copies).
    pub fn succs(&self, stage: usize) -> &[usize] {
        &self.succs[stage]
    }

    /// A deterministic topological order of the stage ids — the
    /// identity permutation on sugar-built graphs, so planners seeded
    /// over it reproduce their historical stage walk exactly.
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// Entry stages (fed by the pipeline input), in id order.
    pub fn entries(&self) -> &[usize] {
        &self.entries
    }

    /// The single exit stage (the pipeline output).
    pub fn exit(&self) -> usize {
        self.exit
    }

    /// The `(block, branch)` containing `stage`, or `None` for series
    /// stages (merge stages included — a merge runs after the join and
    /// belongs to no single branch). Explicit DAGs have no branch
    /// notion; every stage reports `None`.
    pub fn branch_of(&self, stage: usize) -> Option<(usize, usize)> {
        let mut block = 0;
        for seg in self.segments.as_deref()? {
            if let Segment::Parallel { branches, .. } = seg {
                for (bi, &(start, end)) in branches.iter().enumerate() {
                    if (start..end).contains(&stage) {
                        return Some((block, bi));
                    }
                }
                block += 1;
            }
        }
        None
    }

    /// True if `stage` joins several inputs; returns its join block
    /// index (the parallel block on sugar graphs).
    pub fn merge_block_of(&self, stage: usize) -> Option<usize> {
        self.join_block_of[stage]
    }

    /// Where the pipeline input goes: the single entry stage, or fan
    /// block 0 when the input feeds several entries.
    pub fn entry(&self) -> Next {
        if self.entries.len() == 1 {
            Next::Stage(self.entries[0])
        } else {
            Next::FanOut { block: 0 }
        }
    }

    /// Where an item goes after finishing `stage`.
    ///
    /// # Panics
    /// Panics if `stage` is out of range.
    pub fn after(&self, stage: usize) -> Next {
        assert!(stage < self.stages, "stage {stage} out of range");
        match self.succs[stage].as_slice() {
            [] => Next::Done,
            &[t] => match self.join_block_of[t] {
                Some(block) => Next::Join {
                    block,
                    branch: self.preds[t]
                        .iter()
                        .position(|&p| p == stage)
                        .expect("succ edge mirrors a pred edge"),
                },
                None => Next::Stage(t),
            },
            _ => Next::FanOut {
                block: self.fan_block_of[stage].expect("multi-consumer stage has a fan block"),
            },
        }
    }

    /// What feeds `stage` its input.
    ///
    /// # Panics
    /// Panics if `stage` is out of range.
    pub fn feed_of(&self, stage: usize) -> Feed {
        assert!(stage < self.stages, "stage {stage} out of range");
        match self.preds[stage].as_slice() {
            [] => Feed::Source,
            &[p] => Feed::Stage(p),
            ps => Feed::Merge(ps.to_vec()),
        }
    }

    /// Bytes carried into `stage` per item, given the pipeline's
    /// boundary sizes (`boundary_bytes[0]` = input bytes,
    /// `boundary_bytes[s + 1]` = stage `s`'s output bytes). A joining
    /// stage's input is the largest predecessor output — the
    /// conservative size for forwarding a single in-transit payload.
    pub fn feed_bytes(&self, stage: usize, boundary_bytes: &[u64]) -> u64 {
        match self.feed_of(stage) {
            Feed::Source => boundary_bytes[0],
            Feed::Stage(p) => boundary_bytes[p + 1],
            Feed::Merge(lasts) => lasts
                .iter()
                .map(|&l| boundary_bytes[l + 1])
                .max()
                .unwrap_or(0),
        }
    }

    /// Every directed edge `(from, to)` of the graph, in target-slot
    /// order: the model walks these for edge-wise link costs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.stages).flat_map(move |s| self.preds[s].iter().map(move |&p| (p, s)))
    }

    /// Validates the graph against a stage count: the DAG invariants
    /// always hold by construction; this checks the count matches and —
    /// for sugar-built graphs — that the segments tile `0..ns` exactly
    /// in series order, preserving the historical error wording.
    ///
    /// # Panics
    /// Panics on any violation.
    pub fn validate(&self, ns: usize) {
        assert_eq!(
            self.stages, ns,
            "graph covers {} stages, need {ns}",
            self.stages
        );
        let Some(segments) = self.segments.as_deref() else {
            return;
        };
        assert!(!segments.is_empty(), "graph needs at least one segment");
        let mut cursor = 0usize;
        for seg in segments {
            match seg {
                Segment::Chain { start, end } => {
                    assert_eq!(*start, cursor, "chain must start at stage {cursor}");
                    assert!(end > start, "chain must be non-empty");
                    cursor = *end;
                }
                Segment::Parallel { branches, merge } => {
                    assert!(
                        branches.len() >= 2,
                        "a parallel block needs at least two branches"
                    );
                    for &(bs, be) in branches {
                        assert_eq!(bs, cursor, "branch must start at stage {cursor}");
                        assert!(be > bs, "branch must be non-empty");
                        cursor = be;
                    }
                    assert_eq!(*merge, cursor, "merge must follow the last branch");
                    cursor += 1;
                }
            }
        }
        assert_eq!(cursor, ns, "graph covers {cursor} stages, need {ns}");
    }
}

/// Incremental series-parallel [`StageGraph`] construction in flattened
/// stage order — sugar over the DAG.
///
/// ```
/// use adapipe_mapper::graph::StageGraph;
///
/// // decode → (analyze ‖ thumbnail) → merge → pack
/// let g = StageGraph::builder().stages(1).split(&[1, 1]).stages(1).build();
/// assert_eq!(g.len(), 5);
/// assert!(!g.is_linear());
/// assert_eq!(g.merge_of(0), 3);
/// ```
#[derive(Clone, Debug)]
pub struct StageGraphBuilder {
    segments: Vec<Segment>,
    cursor: usize,
}

impl StageGraphBuilder {
    /// Appends `k` series stages (coalesced into the previous chain
    /// segment when one is open).
    pub fn stages(mut self, k: usize) -> Self {
        if k == 0 {
            return self;
        }
        if let Some(Segment::Chain { end, .. }) = self.segments.last_mut() {
            *end += k;
        } else {
            self.segments.push(Segment::Chain {
                start: self.cursor,
                end: self.cursor + k,
            });
        }
        self.cursor += k;
        self
    }

    /// Appends a parallel block whose branches have the given stage
    /// counts, followed by its merge stage.
    ///
    /// # Panics
    /// Panics with fewer than two branches or an empty branch.
    pub fn split(mut self, branch_lens: &[usize]) -> Self {
        assert!(
            branch_lens.len() >= 2,
            "a parallel block needs at least two branches"
        );
        let mut branches = Vec::with_capacity(branch_lens.len());
        for &len in branch_lens {
            assert!(len > 0, "branch must be non-empty");
            branches.push((self.cursor, self.cursor + len));
            self.cursor += len;
        }
        let merge = self.cursor;
        self.cursor += 1;
        self.segments.push(Segment::Parallel { branches, merge });
        self
    }

    /// Finalises and validates the graph.
    ///
    /// # Panics
    /// Panics if no stage was added.
    pub fn build(self) -> StageGraph {
        assert!(self.cursor > 0, "graph needs at least one segment");
        let graph = StageGraph::from_segments(self.segments, self.cursor);
        graph.validate(graph.stages);
        graph
    }
}

/// Explicit DAG construction: `ns` stages wired by id-addressed edges.
/// A stage receiving several edges joins its inputs, one slot per edge
/// in declaration order; a stage feeding several edges fans a copy out
/// to each consumer. Name-addressed wiring (and duplicate-name
/// rejection) lives in the facade, which resolves names to ids before
/// reaching here.
///
/// ```
/// use adapipe_mapper::graph::StageGraph;
///
/// // fetch → {parse, audit} → join (a diamond)
/// let g = StageGraph::dag(4)
///     .edge(0, 1)
///     .edge(0, 2)
///     .edge(1, 3)
///     .edge(2, 3)
///     .build()
///     .unwrap();
/// assert_eq!(g.fan_in(3), 2);
/// assert_eq!(g.topo_order(), &[0, 1, 2, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct DagGraphBuilder {
    stages: usize,
    edges: Vec<(usize, usize)>,
}

impl DagGraphBuilder {
    /// Declares a data edge: `from`'s output feeds `to`. The slot order
    /// of a join follows edge declaration order.
    pub fn edge(mut self, from: usize, to: usize) -> Self {
        self.edges.push((from, to));
        self
    }

    /// Validates the wiring and builds the graph.
    ///
    /// # Errors
    /// Typed [`GraphError`]s: out-of-range or self-referential edges,
    /// duplicate edges, cycles, unreachable stages, several exits.
    pub fn build(self) -> Result<StageGraph, GraphError> {
        if self.stages == 0 {
            return Err(GraphError::Empty);
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.stages];
        for &(from, to) in &self.edges {
            for stage in [from, to] {
                if stage >= self.stages {
                    return Err(GraphError::StageOutOfRange {
                        stage,
                        stages: self.stages,
                    });
                }
            }
            if from == to {
                return Err(GraphError::SelfEdge { stage: from });
            }
            if preds[to].contains(&from) {
                return Err(GraphError::DuplicateEdge { from, to });
            }
            preds[to].push(from);
        }
        StageGraph::from_preds(None, self.stages, preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// pre → (a0 a1 ‖ b0) → merge → post  ⇒ ids 0 | 1 2 | 3 | 4 | 5
    fn sample() -> StageGraph {
        StageGraph::builder()
            .stages(1)
            .split(&[2, 1])
            .stages(1)
            .build()
    }

    #[test]
    fn linear_graph_is_the_degenerate_chain() {
        let g = StageGraph::linear(3);
        g.validate(3);
        assert!(g.is_linear());
        assert_eq!(g.len(), 3);
        assert_eq!(g.blocks(), 0);
        assert_eq!(g.entry(), Next::Stage(0));
        assert_eq!(g.after(0), Next::Stage(1));
        assert_eq!(g.after(2), Next::Done);
        assert_eq!(g.feed_of(0), Feed::Source);
        assert_eq!(g.feed_of(2), Feed::Stage(1));
        assert_eq!(g.branch_of(1), None);
        assert_eq!(g.topo_order(), &[0, 1, 2]);
        assert_eq!(g.exit(), 2);
    }

    #[test]
    fn sample_graph_flattens_and_navigates() {
        let g = sample();
        g.validate(6);
        assert!(!g.is_linear());
        assert_eq!(g.blocks(), 1);
        assert_eq!(g.branch_entries(0), vec![1, 3]);
        assert_eq!(g.branch_count(0), 2);
        assert_eq!(g.merge_of(0), 4);
        assert_eq!(g.merge_block_of(4), Some(0));
        assert_eq!(g.merge_block_of(1), None);

        assert_eq!(g.entry(), Next::Stage(0));
        assert_eq!(g.after(0), Next::FanOut { block: 0 });
        assert_eq!(g.after(1), Next::Stage(2));
        assert_eq!(
            g.after(2),
            Next::Join {
                block: 0,
                branch: 0
            }
        );
        assert_eq!(
            g.after(3),
            Next::Join {
                block: 0,
                branch: 1
            }
        );
        assert_eq!(g.after(4), Next::Stage(5));
        assert_eq!(g.after(5), Next::Done);

        assert_eq!(g.feed_of(1), Feed::Stage(0));
        assert_eq!(g.feed_of(2), Feed::Stage(1));
        assert_eq!(g.feed_of(3), Feed::Stage(0));
        assert_eq!(g.feed_of(4), Feed::Merge(vec![2, 3]));
        assert_eq!(g.feed_of(5), Feed::Stage(4));

        assert_eq!(g.branch_of(0), None);
        assert_eq!(g.branch_of(1), Some((0, 0)));
        assert_eq!(g.branch_of(2), Some((0, 0)));
        assert_eq!(g.branch_of(3), Some((0, 1)));
        assert_eq!(g.branch_of(4), None);

        // The DAG view mirrors the sugar exactly.
        assert_eq!(g.topo_order(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(g.preds(4), &[2, 3]);
        assert_eq!(g.succs(0), &[1, 3]);
        assert_eq!(
            g.fan_targets(0),
            &[
                FanTarget {
                    stage: 1,
                    slot: None
                },
                FanTarget {
                    stage: 3,
                    slot: None
                }
            ]
        );
    }

    #[test]
    fn graph_may_open_and_close_with_a_block() {
        // (a ‖ b) → merge : ids 0 | 1 | 2
        let g = StageGraph::builder().split(&[1, 1]).build();
        g.validate(3);
        assert_eq!(g.entry(), Next::FanOut { block: 0 });
        assert_eq!(g.feed_of(0), Feed::Source);
        assert_eq!(g.feed_of(1), Feed::Source);
        assert_eq!(g.after(2), Next::Done);
        assert_eq!(g.entries(), &[0, 1]);
    }

    #[test]
    fn consecutive_blocks_chain_through_their_merges() {
        // (a ‖ b) → m0 → (c ‖ d) → m1 : ids 0 1 | 2 | 3 4 | 5
        let g = StageGraph::builder().split(&[1, 1]).split(&[1, 1]).build();
        g.validate(6);
        assert_eq!(g.blocks(), 2);
        assert_eq!(g.after(2), Next::FanOut { block: 1 });
        assert_eq!(g.feed_of(3), Feed::Stage(2));
        assert_eq!(g.merge_of(1), 5);
        assert_eq!(g.branch_of(4), Some((1, 1)));
    }

    #[test]
    fn feed_bytes_follow_graph_edges() {
        let g = sample();
        // input 100; out bytes per stage: 10, 20, 30, 40, 50, 60.
        let boundary = [100, 10, 20, 30, 40, 50, 60];
        assert_eq!(g.feed_bytes(0, &boundary), 100);
        assert_eq!(
            g.feed_bytes(1, &boundary),
            10,
            "branch entry gets pre-stage bytes"
        );
        assert_eq!(
            g.feed_bytes(3, &boundary),
            10,
            "each branch gets the same feed"
        );
        assert_eq!(
            g.feed_bytes(4, &boundary),
            40,
            "merge: largest branch output"
        );
        assert_eq!(g.feed_bytes(5, &boundary), 50);
    }

    #[test]
    #[should_panic(expected = "at least two branches")]
    fn single_branch_split_panics() {
        let _ = StageGraph::builder().split(&[2]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_branch_panics() {
        let _ = StageGraph::builder().split(&[1, 0]);
    }

    #[test]
    fn validate_rejects_wrong_stage_count() {
        let g = sample();
        let result = std::panic::catch_unwind(|| g.validate(7));
        assert!(result.is_err());
    }

    /// fetch → {parse, audit} → join : ids 0, 1, 2, 3
    fn diamond() -> StageGraph {
        StageGraph::dag(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn diamond_dag_navigates_like_a_block() {
        let g = diamond();
        assert!(!g.is_linear());
        assert!(g.as_segments().is_none());
        assert_eq!(g.entry(), Next::Stage(0));
        assert_eq!(g.after(0), Next::FanOut { block: 0 });
        assert_eq!(
            g.after(1),
            Next::Join {
                block: 0,
                branch: 0
            }
        );
        assert_eq!(
            g.after(2),
            Next::Join {
                block: 0,
                branch: 1
            }
        );
        assert_eq!(g.after(3), Next::Done);
        assert_eq!(g.feed_of(3), Feed::Merge(vec![1, 2]));
        assert_eq!(g.merge_of(0), 3);
        assert_eq!(g.merge_block_of(3), Some(0));
        assert_eq!(g.branch_of(1), None, "explicit DAGs have no branches");
        assert_eq!(g.fan_in(3), 2);
        assert_eq!(g.exit(), 3);
    }

    #[test]
    fn shortcut_edge_feeds_a_join_slot_directly() {
        // a → {b, join}; b → join: the fan-out's second copy fills the
        // join's slot directly.
        let g = StageGraph::dag(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
            .unwrap();
        assert_eq!(g.after(0), Next::FanOut { block: 0 });
        assert_eq!(
            g.fan_targets(0),
            &[
                FanTarget {
                    stage: 1,
                    slot: None
                },
                FanTarget {
                    stage: 2,
                    slot: Some(1)
                }
            ]
        );
        assert_eq!(g.feed_of(2), Feed::Merge(vec![1, 0]));
        assert_eq!(g.topo_order(), &[0, 1, 2]);
    }

    #[test]
    fn dag_with_declared_but_unused_middle_stage_is_unreachable() {
        // 0 → 2, stage 1 exists but feeds/reads nothing.
        let err = StageGraph::dag(3).edge(0, 2).build().unwrap_err();
        assert_eq!(err, GraphError::Unreachable { stage: 1 });
    }

    #[test]
    fn dag_rejects_cycles_and_self_edges_and_duplicates() {
        assert!(matches!(
            StageGraph::dag(2)
                .edge(0, 1)
                .edge(1, 0)
                .build()
                .unwrap_err(),
            GraphError::Cycle { .. }
        ));
        assert_eq!(
            StageGraph::dag(2).edge(0, 0).build().unwrap_err(),
            GraphError::SelfEdge { stage: 0 }
        );
        assert_eq!(
            StageGraph::dag(2)
                .edge(0, 1)
                .edge(0, 1)
                .build()
                .unwrap_err(),
            GraphError::DuplicateEdge { from: 0, to: 1 }
        );
        assert_eq!(
            StageGraph::dag(2).edge(0, 3).build().unwrap_err(),
            GraphError::StageOutOfRange {
                stage: 3,
                stages: 2
            }
        );
    }

    #[test]
    fn dag_rejects_multiple_exits() {
        let err = StageGraph::dag(3)
            .edge(0, 1)
            .edge(0, 2)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::MultipleExits { exits: vec![1, 2] });
    }

    #[test]
    fn out_of_declaration_order_edges_still_topo_sort() {
        // 2 → 0 → 1: declaration order is not topological order.
        let g = StageGraph::dag(3).edge(2, 0).edge(0, 1).build().unwrap();
        assert_eq!(g.topo_order(), &[2, 0, 1]);
        assert_eq!(g.entries(), &[2]);
        assert_eq!(g.exit(), 1);
        assert_eq!(g.entry(), Next::Stage(2));
    }

    #[test]
    fn edges_enumerate_every_wire() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }
}
