//! Property-style tests for the grid substrate's core invariants.
//!
//! The workspace builds offline, so instead of a property-testing
//! framework these sweep each invariant over a deterministic fan of
//! seeded load models and probe times. Failures print the offending
//! case, which reproduces exactly.

use adapipe_gridsim::prelude::*;
use adapipe_gridsim::rng::Rng64;

/// One load model from every class, parameterised by a case seed.
fn load_models(case: u64) -> Vec<LoadModel> {
    let mut rng = Rng64::new(0x10AD + case);
    let frac = |rng: &mut Rng64| rng.next_unit();
    vec![
        LoadModel::constant(frac(&mut rng)),
        LoadModel::step(
            frac(&mut rng),
            frac(&mut rng),
            SimTime::from_secs_f64(1000.0 * frac(&mut rng)),
        ),
        {
            let (hi, lo) = (frac(&mut rng), frac(&mut rng));
            LoadModel::square_wave(
                hi,
                lo,
                SimDuration::from_secs(1 + rng.next_range(299) as u64),
                (1 + rng.next_range(98)) as f64 / 100.0,
                SimDuration::ZERO,
            )
        },
        {
            let amp = 0.5 * frac(&mut rng);
            let mean = frac(&mut rng).min(1.0 - amp).max(amp);
            LoadModel::sinusoid(
                mean,
                amp,
                SimDuration::from_secs(2 + rng.next_range(598) as u64),
                8,
            )
        },
        LoadModel::random_walk(
            rng.next_u64(),
            0.7,
            0.1,
            SimDuration::from_secs(1 + rng.next_range(59) as u64),
            0.1,
            1.0,
            SimDuration::from_secs(600),
        ),
        LoadModel::markov_on_off(
            rng.next_u64(),
            SimDuration::from_secs(1 + rng.next_range(119) as u64),
            SimDuration::from_secs(1 + rng.next_range(119) as u64),
            0.3,
            SimDuration::from_secs(600),
        ),
    ]
}

const CASES: u64 = 12;

/// Availability is always within [0, 1], at any time, for any model.
#[test]
fn availability_is_always_a_fraction() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA11 + case);
        for model in load_models(case) {
            for _ in 0..8 {
                let t = 100_000.0 * rng.next_unit();
                let a = model.availability(SimTime::from_secs_f64(t));
                assert!((0.0..=1.0).contains(&a), "case {case}: a={a} at t={t}");
            }
        }
    }
}

/// next_breakpoint is strictly in the future and availability is
/// constant up to (just before) it.
#[test]
fn breakpoints_delimit_constant_segments() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xB4EA + case);
        for model in load_models(case) {
            for _ in 0..4 {
                let t0 = SimTime::from_secs_f64(10_000.0 * rng.next_unit());
                if let Some(bp) = model.next_breakpoint(t0) {
                    assert!(bp > t0, "case {case}: breakpoint {bp} not after {t0}");
                    let a0 = model.availability(t0);
                    // Probe a midpoint strictly inside the segment.
                    let mid =
                        SimTime::from_nanos(t0.as_nanos() + (bp.as_nanos() - t0.as_nanos()) / 2);
                    if mid > t0 && mid < bp {
                        assert_eq!(model.availability(mid), a0, "case {case}");
                    }
                }
            }
        }
    }
}

/// Work integration: completion time is monotone in the amount of work,
/// and never earlier than start.
#[test]
fn completion_time_is_monotone_in_work() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xC03 + case);
        for model in load_models(case) {
            let node = Node::new(NodeSpec::new("p", 2.0, 1), model);
            for _ in 0..4 {
                let start = SimTime::from_secs_f64(1_000.0 * rng.next_unit());
                let w1 = 100.0 * rng.next_unit();
                let extra = 100.0 * rng.next_unit();
                let c1 = node.completion_time(start, w1);
                let c2 = node.completion_time(start, w1 + extra);
                assert!(c1 >= start, "case {case}");
                assert!(
                    c2 >= c1,
                    "case {case}: more work finished earlier: {c2} < {c1}"
                );
            }
        }
    }
}

/// work_done inverts completion_time (up to float tolerance) whenever
/// the work completes.
#[test]
fn work_done_inverts_completion_time() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xD0E + case);
        for model in load_models(case) {
            let node = Node::new(NodeSpec::new("p", 1.5, 1), model);
            for _ in 0..4 {
                let start = SimTime::from_secs_f64(500.0 * rng.next_unit());
                let work = 0.01 + 49.99 * rng.next_unit();
                let done = node.completion_time(start, work);
                if done == SimTime::MAX {
                    continue; // never completes under this load
                }
                let measured = node.work_done(start, done);
                assert!(
                    (measured - work).abs() < 1e-6 * work.max(1.0),
                    "case {case}: measured {measured} vs {work}"
                );
            }
        }
    }
}

/// Mean availability lies within [0, 1] over any window.
#[test]
fn mean_availability_is_bounded() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xE4A + case);
        for model in load_models(case) {
            for _ in 0..4 {
                let from = SimTime::from_secs_f64(1_000.0 * rng.next_unit());
                let to = SimTime::from_secs_f64(from.as_secs_f64() + 0.1 + 499.9 * rng.next_unit());
                let mean = model.mean_availability(from, to);
                assert!((0.0..=1.0).contains(&mean), "case {case}: mean={mean}");
            }
        }
    }
}

/// The event queue releases events in non-decreasing time order with
/// FIFO tie-breaks, regardless of insertion order.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    for case in 0..24u64 {
        let mut rng = Rng64::new(0xF1F0 + case);
        let n = 1 + rng.next_range(199);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_nanos(rng.next_range(1_000) as u64), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                assert!(at >= lt, "case {case}");
                if at == lt {
                    assert!(id > lid, "case {case}: FIFO violated for ties");
                }
            }
            last = Some((at, id));
        }
    }
}

/// Outage overlays force zero inside and preserve the base outside.
#[test]
fn outage_overlay_is_exact() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x0F_F1 + case);
        for model in load_models(case) {
            let from = 500.0 * rng.next_unit();
            let len = 0.1 + 99.9 * rng.next_unit();
            let from_t = SimTime::from_secs_f64(from);
            let to_t = SimTime::from_secs_f64(from + len);
            let overlaid = model.clone().with_outages(&[(from_t, to_t)]);
            for _ in 0..6 {
                let p = SimTime::from_secs_f64(1_000.0 * rng.next_unit());
                let expected = if p >= from_t && p < to_t {
                    0.0
                } else {
                    model.availability(p)
                };
                assert_eq!(overlaid.availability(p), expected, "case {case} at {p}");
            }
        }
    }
}
